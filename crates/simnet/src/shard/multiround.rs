//! Sharded **multi-round** sessions: every round's referee wait split
//! across [`RoundShard`]s that exchange [`RoundPartialState`] summaries
//! *through the transport* before each `referee_step`.
//!
//! A [`ShardedMultiRoundSession`] runs the same protocol as a
//! [`MultiRoundSession`](crate::MultiRoundSession) but collects each
//! round's uplinks into `k` per-round shard states (routed by the
//! balanced ID partition of `referee_protocol::shard`) and then runs a
//! **cross-shard exchange phase**: every shard serializes its round
//! partial and ships it as an envelope addressed from a synthetic shard
//! ID (`n + 1 + index` — outside the node ID space, so shard traffic
//! and node traffic can never be confused), in an order scrambled by a
//! seed. The collector copes with out-of-order, duplicated and
//! corrupted partials exactly the way it copes with node traffic, and
//! the round stamp — carried both on the envelope and *inside* the
//! encoded partial — keeps every exchange pinned to its round: a
//! replayed partial from another round fails the merge instead of
//! rewriting history.
//!
//! Delivery semantics match [`MultiRoundSession`](crate::MultiRoundSession)
//! bit for bit on every lossless transport (pinned by tests): identical
//! duplicates are absorbed, conflicting ones fail the session while
//! their round is open (after the round's exchange they are committed
//! history, dropped uncompared — mirroring the one-round sharded
//! session), loss is starvation, corruption flows to the decoders. The
//! frugality stats count node traffic only; exchange overhead is
//! reported separately in [`ShardedMultiRoundReport::exchange_bits`].

use crate::clock::{real_clock, SharedClock};
use crate::metrics::SessionMetrics;
use crate::session::Step;
use crate::transport::{Envelope, SessionId, Transport, REFEREE};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use referee_graph::{LabelledGraph, VertexId};
use referee_protocol::multiround::{MultiRoundProtocol, MultiRoundStats, RefereeStep};
use referee_protocol::shard::multiround::{RoundPartialState, RoundShard};
use referee_protocol::shard::{shard_of, Arrival};
use referee_protocol::{DecodeError, Message, NodeView};
use std::collections::BTreeMap;

/// Per-round mailboxes, the sharded analogue of the unsharded session's
/// round buffer: uplinks land directly in their owning shard, exchange
/// partials in the merge accumulator, downlinks and link messages in
/// the same slots as before. Envelopes for *future* rounds land here
/// too — the early-message cache that makes cross-round reordering
/// harmless.
struct ShardRoundBuf {
    shards: Vec<Option<RoundShard>>,
    uplinks_filled: usize,
    /// Set once this round's shards emitted their partials: uplink
    /// stragglers arriving later are committed history.
    exchanged: bool,
    /// Partial envelopes already absorbed, by shard index (idempotent
    /// duplicate handling during the exchange).
    partial_seen: Vec<Option<Message>>,
    merged: usize,
    acc: RoundPartialState,
    downlinks: Vec<Option<Message>>,
    downlinks_filled: usize,
    inbox: Vec<Vec<(VertexId, Message)>>,
    inbox_count: usize,
}

impl ShardRoundBuf {
    fn new(n: usize, k: usize, round: u32) -> Self {
        ShardRoundBuf {
            shards: (0..k).map(|i| Some(RoundShard::new(n, k, i, round))).collect(),
            uplinks_filled: 0,
            exchanged: false,
            partial_seen: vec![None; k],
            merged: 0,
            acc: RoundPartialState::new(n, round),
            downlinks: vec![None; n],
            downlinks_filled: 0,
            inbox: vec![Vec::new(); n],
            inbox_count: 0,
        }
    }
}

enum Phase {
    NodeSend,
    AwaitUplinks,
    Exchange,
    CollectPartials,
    AwaitReceive,
    Finished,
}

/// A multi-round protocol execution whose referee wait is split across
/// `k` mergeable per-round shards (see the module docs).
pub struct ShardedMultiRoundSession<'a, P: MultiRoundProtocol> {
    protocol: &'a P,
    graph: &'a LabelledGraph,
    session: SessionId,
    clock: SharedClock,
    max_rounds: usize,
    k: usize,
    exchange_seed: u64,
    exchange_bits: usize,
    node_states: Vec<P::NodeState>,
    referee_state: P::RefereeState,
    round: u32,
    phase: Phase,
    bufs: BTreeMap<u32, ShardRoundBuf>,
    links_expected: usize,
    link_seen: Vec<u64>,
    link_epoch: u64,
    round_started: f64,
    outcome: Option<Result<Option<P::Output>, DecodeError>>,
    metrics: SessionMetrics,
    mr_stats: MultiRoundStats,
}

impl<'a, P: MultiRoundProtocol> ShardedMultiRoundSession<'a, P> {
    /// A fresh session with `shards` referee shards (clamped to at
    /// least 1); `max_rounds` is the safety stop, as in
    /// [`MultiRoundSession`](crate::MultiRoundSession).
    pub fn new(
        protocol: &'a P,
        graph: &'a LabelledGraph,
        shards: usize,
        max_rounds: usize,
    ) -> Self {
        let n = graph.n();
        let node_states: Vec<P::NodeState> = (1..=n as u32)
            .map(|v| protocol.node_init(NodeView::new(n, v, graph.neighbourhood(v))))
            .collect();
        let referee_state = protocol.referee_init(n);
        let clock = real_clock();
        ShardedMultiRoundSession {
            protocol,
            graph,
            session: SessionId::default(),
            round_started: clock.now(),
            clock,
            max_rounds,
            k: shards.max(1),
            exchange_seed: 0,
            exchange_bits: 0,
            node_states,
            referee_state,
            round: 1,
            phase: Phase::NodeSend,
            bufs: BTreeMap::new(),
            links_expected: 0,
            link_seen: vec![0; n + 1],
            link_epoch: 0,
            outcome: None,
            metrics: SessionMetrics::new(n),
            mr_stats: MultiRoundStats {
                n,
                rounds: 0,
                max_uplink_bits: 0,
                max_downlink_bits: 0,
                max_link_bits: 0,
            },
        }
    }

    /// Number of referee shards.
    pub fn shards(&self) -> usize {
        self.k
    }

    /// Tag this session's envelopes with `id` (multiplexing); inbound
    /// envelopes carrying any other id fail the run as a demux fault.
    pub fn with_session(mut self, id: SessionId) -> Self {
        self.session = id;
        self
    }

    /// Stamp latency metrics from `clock` instead of wall time.
    pub fn with_clock(mut self, clock: SharedClock) -> Self {
        self.round_started = clock.now();
        self.clock = clock;
        self
    }

    /// Scramble the per-round order shards emit their partials with
    /// `seed` — merge is commutative, and a seeded shuffle proves the
    /// exchange order immaterial on every run.
    pub fn with_exchange_seed(mut self, seed: u64) -> Self {
        self.exchange_seed = seed;
        self
    }

    /// Advance as far as deliverable traffic allows.
    pub fn step(&mut self, transport: &mut impl Transport) -> Step {
        match self.phase {
            Phase::NodeSend => self.step_send(transport),
            Phase::AwaitUplinks => self.step_uplinks(transport),
            Phase::Exchange => self.step_exchange(transport),
            Phase::CollectPartials => self.step_collect_partials(transport),
            Phase::AwaitReceive => self.step_receive(transport),
            Phase::Finished => Step::Done,
        }
    }

    /// Drive to completion on `transport`.
    pub fn run(mut self, transport: &mut impl Transport) -> ShardedMultiRoundReport<P::Output> {
        while self.step(transport) == Step::Running {}
        self.into_report(transport)
    }

    /// The outcome, metrics and stats; call after `step` returns
    /// [`Step::Done`].
    pub fn into_report(
        mut self,
        transport: &impl Transport,
    ) -> ShardedMultiRoundReport<P::Output> {
        let outcome = self.outcome.take().expect("session not finished");
        self.metrics.transport.merge(&transport.counters());
        ShardedMultiRoundReport {
            outcome,
            metrics: self.metrics,
            stats: self.mr_stats,
            shards: self.k,
            exchange_bits: self.exchange_bits,
        }
    }

    fn buf(
        bufs: &mut BTreeMap<u32, ShardRoundBuf>,
        n: usize,
        k: usize,
        round: u32,
    ) -> &mut ShardRoundBuf {
        bufs.entry(round).or_insert_with(|| ShardRoundBuf::new(n, k, round))
    }

    /// Classify one arrival into its round buffer (see
    /// [`MultiRoundSession`](crate::MultiRoundSession) for the shared
    /// delivery semantics; shard partials are the addition here).
    fn classify(&mut self, env: Envelope) -> Result<(), DecodeError> {
        let n = self.graph.n();
        let k = self.k;
        if env.session != self.session {
            return Err(DecodeError::Invalid(format!(
                "envelope for session {} delivered to session {} (demux fault)",
                env.session, self.session
            )));
        }
        if env.round < self.round {
            self.metrics.transport.stale += 1;
            return Ok(());
        }
        if env.from == REFEREE {
            // Downlink.
            if env.to == REFEREE || env.to as usize > n {
                return Err(DecodeError::OutOfRange(format!(
                    "downlink to unknown node {}",
                    env.to
                )));
            }
            let buf = Self::buf(&mut self.bufs, n, k, env.round);
            let slot = &mut buf.downlinks[(env.to - 1) as usize];
            match slot {
                None => {
                    *slot = Some(env.payload);
                    buf.downlinks_filled += 1;
                }
                Some(existing) if *existing == env.payload => self.metrics.transport.stale += 1,
                Some(_) => {
                    return Err(DecodeError::Inconsistent(format!(
                        "conflicting duplicate downlink for node {}",
                        env.to
                    )))
                }
            }
            return Ok(());
        }
        if env.from as usize > n {
            // Synthetic shard IDs n+1..=n+k address the cross-shard
            // exchange; anything beyond is an unknown sender.
            if env.to == REFEREE && (env.from as usize) <= n + k {
                return self.classify_partial(env);
            }
            return Err(DecodeError::OutOfRange(format!(
                "message from unknown node {} (n = {n})",
                env.from
            )));
        }
        if env.to == REFEREE {
            // Uplink: route straight into the owning shard.
            let buf = Self::buf(&mut self.bufs, n, k, env.round);
            if buf.exchanged {
                // Stragglers behind this round's exchange are committed
                // history — the shards already shipped their partials —
                // and are dropped uncompared, like the one-round
                // session's post-exchange stragglers.
                self.metrics.transport.stale += 1;
                return Ok(());
            }
            let shard = buf.shards[shard_of(n, k, env.from)]
                .as_mut()
                .expect("shards live until the exchange");
            return match shard.ingest(env.from, env.payload) {
                Ok(Arrival::Fresh) => {
                    buf.uplinks_filled += 1;
                    Ok(())
                }
                Ok(Arrival::Duplicate { identical: true }) => {
                    self.metrics.transport.stale += 1;
                    Ok(())
                }
                Ok(Arrival::Duplicate { identical: false }) => Err(DecodeError::Inconsistent(
                    format!("conflicting duplicate uplink from node {}", env.from),
                )),
                // Out-of-range was rejected above; a routing error here
                // is a bug in this session, surfaced loudly.
                Ok(Arrival::OutOfRange) | Err(_) => Err(DecodeError::Invalid(format!(
                    "misrouted arrival from node {}",
                    env.from
                ))),
            };
        }
        // Node → node link message.
        if env.to as usize > n {
            return Err(DecodeError::OutOfRange(format!("message to unknown node {}", env.to)));
        }
        if !self.graph.has_edge(env.from, env.to) {
            return Err(DecodeError::Invalid(format!(
                "link message along non-edge {} → {}",
                env.from, env.to
            )));
        }
        let buf = Self::buf(&mut self.bufs, n, k, env.round);
        let inbox = &mut buf.inbox[(env.to - 1) as usize];
        match inbox.iter().find(|(from, _)| *from == env.from) {
            Some((_, existing)) if *existing == env.payload => {
                self.metrics.transport.stale += 1
            }
            Some(_) => {
                return Err(DecodeError::Inconsistent(format!(
                    "conflicting duplicate link message {} → {}",
                    env.from, env.to
                )))
            }
            None => {
                inbox.push((env.from, env.payload));
                buf.inbox_count += 1;
            }
        }
        Ok(())
    }

    /// Absorb one cross-shard exchange partial.
    fn classify_partial(&mut self, env: Envelope) -> Result<(), DecodeError> {
        let n = self.graph.n();
        let k = self.k;
        let idx = env.from as usize - n - 1;
        let buf = Self::buf(&mut self.bufs, n, k, env.round);
        match &buf.partial_seen[idx] {
            Some(existing) if *existing == env.payload => {
                self.metrics.transport.stale += 1;
                return Ok(());
            }
            Some(_) => {
                return Err(DecodeError::Inconsistent(format!(
                    "conflicting duplicate partial from shard {idx}"
                )));
            }
            None => {}
        }
        let partial = RoundPartialState::decode(n, &env.payload)?;
        if partial.round() != env.round {
            return Err(DecodeError::Invalid(format!(
                "round-{} partial delivered in a round-{} envelope",
                partial.round(),
                env.round
            )));
        }
        buf.partial_seen[idx] = Some(env.payload);
        buf.acc.merge(partial)?;
        buf.merged += 1;
        Ok(())
    }

    /// Pull envelopes until `ready` holds or the transport drains.
    fn pump(
        &mut self,
        transport: &mut impl Transport,
        ready: impl Fn(&ShardRoundBuf, usize) -> bool,
    ) -> Result<bool, DecodeError> {
        let n = self.graph.n();
        let k = self.k;
        loop {
            {
                let buf = Self::buf(&mut self.bufs, n, k, self.round);
                if ready(buf, self.links_expected) {
                    return Ok(true);
                }
            }
            let Some(env) = transport.recv() else {
                return Ok(false);
            };
            self.classify(env)?;
        }
    }

    fn step_send(&mut self, transport: &mut impl Transport) -> Step {
        let n = self.graph.n();
        if self.mr_stats.rounds >= self.max_rounds {
            return self.finish(Ok(None)); // round cap: referee never finished
        }
        self.round_started = self.clock.now();
        self.mr_stats.rounds += 1;
        self.links_expected = 0;
        for v in 1..=n as u32 {
            let view = NodeView::new(n, v, self.graph.neighbourhood(v));
            let (to_nbrs, uplink) = self.protocol.node_send(
                &self.node_states[(v - 1) as usize],
                view,
                self.round as usize,
            );
            self.mr_stats.max_uplink_bits =
                self.mr_stats.max_uplink_bits.max(uplink.len_bits());
            self.metrics.stats.total_message_bits += uplink.len_bits();
            transport.send(Envelope {
                session: self.session,
                round: self.round,
                from: v,
                to: REFEREE,
                payload: uplink,
            });
            self.link_epoch += 1;
            for (target, payload) in to_nbrs {
                if !self.graph.has_edge(v, target) {
                    return self.finish(Err(DecodeError::Invalid(format!(
                        "node {v} tried to message non-neighbour {target}"
                    ))));
                }
                if self.link_seen[target as usize] == self.link_epoch {
                    return self.finish(Err(DecodeError::Invalid(format!(
                        "node {v} sent two messages to {target} in round {} \
                         (one message per link per round)",
                        self.round
                    ))));
                }
                self.link_seen[target as usize] = self.link_epoch;
                self.mr_stats.max_link_bits =
                    self.mr_stats.max_link_bits.max(payload.len_bits());
                self.metrics.stats.total_message_bits += payload.len_bits();
                self.links_expected += 1;
                transport.send(Envelope {
                    session: self.session,
                    round: self.round,
                    from: v,
                    to: target,
                    payload,
                });
            }
        }
        self.metrics.stats.local_seconds += self.clock.now() - self.round_started;
        self.phase = Phase::AwaitUplinks;
        Step::Running
    }

    fn step_uplinks(&mut self, transport: &mut impl Transport) -> Step {
        let n = self.graph.n();
        match self.pump(transport, |buf, _| buf.uplinks_filled == n) {
            Err(e) => return self.finish(Err(e)),
            Ok(false) => {
                return self.finish(Err(DecodeError::Inconsistent(format!(
                    "transport drained while referee awaited round-{} uplinks",
                    self.round
                ))))
            }
            Ok(true) => {}
        }
        self.phase = Phase::Exchange;
        Step::Running
    }

    fn step_exchange(&mut self, transport: &mut impl Transport) -> Step {
        // Emit every shard's round partial in a seeded order; all
        // partials cross the transport — exposed to the same faults as
        // node traffic — addressed from the synthetic shard IDs.
        let n = self.graph.n();
        let k = self.k;
        let round = self.round;
        let mut order: Vec<usize> = (0..k).collect();
        let seed = self.exchange_seed ^ (round as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        order.shuffle(&mut StdRng::seed_from_u64(seed));
        let buf = Self::buf(&mut self.bufs, n, k, round);
        for idx in order {
            let shard = buf.shards[idx].take().expect("exchange runs once per round");
            let payload = shard.into_partial().encode();
            self.exchange_bits += payload.len_bits();
            transport.send(Envelope {
                session: self.session,
                round,
                from: (n + 1 + idx) as u32,
                to: REFEREE,
                payload,
            });
        }
        Self::buf(&mut self.bufs, n, k, round).exchanged = true;
        self.phase = Phase::CollectPartials;
        Step::Running
    }

    fn step_collect_partials(&mut self, transport: &mut impl Transport) -> Step {
        let n = self.graph.n();
        let k = self.k;
        match self.pump(transport, |buf, _| buf.merged == k) {
            Err(e) => return self.finish(Err(e)),
            Ok(false) => {
                let missing = k - Self::buf(&mut self.bufs, n, k, self.round).merged;
                return self.finish(Err(DecodeError::Inconsistent(format!(
                    "transport drained with {missing} of {k} round-{} shard partials missing",
                    self.round
                ))));
            }
            Ok(true) => {}
        }
        let acc = {
            let buf = self.bufs.get_mut(&self.round).expect("buffer exists once ready");
            std::mem::replace(&mut buf.acc, RoundPartialState::new(0, 0))
        };
        let uplinks = match acc.finish() {
            Ok(u) => u,
            Err(e) => return self.finish(Err(e)),
        };
        let t0 = self.clock.now();
        let step = self.protocol.referee_step(
            &mut self.referee_state,
            n,
            self.round as usize,
            &uplinks,
        );
        self.metrics.stats.global_seconds += self.clock.now() - t0;
        match step {
            RefereeStep::Done(out) => self.finish(Ok(Some(out))),
            RefereeStep::Continue(downlinks) => {
                if downlinks.len() != n {
                    return self.finish(Err(DecodeError::Inconsistent(format!(
                        "referee produced {} downlinks for {n} nodes",
                        downlinks.len()
                    ))));
                }
                for (i, payload) in downlinks.into_iter().enumerate() {
                    self.mr_stats.max_downlink_bits =
                        self.mr_stats.max_downlink_bits.max(payload.len_bits());
                    self.metrics.stats.total_message_bits += payload.len_bits();
                    transport.send(Envelope {
                        session: self.session,
                        round: self.round,
                        from: REFEREE,
                        to: (i + 1) as u32,
                        payload,
                    });
                }
                self.phase = Phase::AwaitReceive;
                Step::Running
            }
        }
    }

    fn step_receive(&mut self, transport: &mut impl Transport) -> Step {
        let n = self.graph.n();
        match self
            .pump(transport, |buf, links| buf.downlinks_filled == n && buf.inbox_count == links)
        {
            Err(e) => return self.finish(Err(e)),
            Ok(false) => {
                return self.finish(Err(DecodeError::Inconsistent(format!(
                    "transport drained while nodes awaited round-{} deliveries",
                    self.round
                ))))
            }
            Ok(true) => {}
        }
        let mut buf = self.bufs.remove(&self.round).expect("buffer exists once ready");
        let t0 = self.clock.now();
        for v in 1..=n as u32 {
            let i = (v - 1) as usize;
            buf.inbox[i].sort_by_key(|&(from, _)| from);
            let view = NodeView::new(n, v, self.graph.neighbourhood(v));
            let downlink = buf.downlinks[i].take().expect("downlink present");
            self.protocol.node_receive(
                &mut self.node_states[i],
                view,
                self.round as usize,
                &buf.inbox[i],
                &downlink,
            );
        }
        self.metrics.stats.local_seconds += self.clock.now() - t0;
        self.metrics.round_seconds.push(self.clock.now() - self.round_started);
        self.round += 1;
        self.phase = Phase::NodeSend;
        Step::Running
    }

    fn finish(&mut self, outcome: Result<Option<P::Output>, DecodeError>) -> Step {
        if self.metrics.round_seconds.len() < self.mr_stats.rounds {
            self.metrics.round_seconds.push(self.clock.now() - self.round_started);
        }
        self.metrics.rounds = self.mr_stats.rounds;
        self.metrics.stats.max_message_bits = self
            .mr_stats
            .max_uplink_bits
            .max(self.mr_stats.max_downlink_bits)
            .max(self.mr_stats.max_link_bits);
        self.outcome = Some(outcome);
        self.phase = Phase::Finished;
        Step::Done
    }
}

/// Outcome of a sharded multi-round session.
#[derive(Debug)]
pub struct ShardedMultiRoundReport<O> {
    /// `Ok(Some(out))` when the referee finished, `Ok(None)` when the
    /// round cap was hit, `Err` on decode/delivery failure.
    pub outcome: Result<Option<O>, DecodeError>,
    /// Runtime metrics. The frugality stats count node traffic only, so
    /// they match the unsharded session exactly.
    pub metrics: SessionMetrics,
    /// Per-link-class message-size stats, identical to the unsharded
    /// session's.
    pub stats: MultiRoundStats,
    /// Shard count the session ran with.
    pub shards: usize,
    /// Total bits of serialized round partials shipped in the exchanges
    /// (all rounds).
    pub exchange_bits: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultConfig, FaultyTransport};
    use crate::session::MultiRoundSession;
    use crate::transport::PerfectTransport;
    use referee_graph::{algo, generators};
    use referee_protocol::multiround::BoruvkaConnectivity;

    #[test]
    fn matches_unsharded_session_bit_for_bit() {
        for g in [
            generators::petersen(),
            generators::path(17),
            generators::path(4).disjoint_union(&generators::path(5)),
            generators::grid(3, 6),
            LabelledGraph::new(0),
            LabelledGraph::new(1),
        ] {
            let mut perfect = PerfectTransport::new();
            let mono = MultiRoundSession::new(&BoruvkaConnectivity, &g, 64).run(&mut perfect);
            let mono_out = mono.outcome.unwrap();
            for k in 1..=8usize {
                let mut t = PerfectTransport::new();
                let sharded = ShardedMultiRoundSession::new(&BoruvkaConnectivity, &g, k, 64)
                    .with_exchange_seed(k as u64 * 131)
                    .run(&mut t);
                assert_eq!(sharded.outcome.unwrap(), mono_out, "k={k}, n={}", g.n());
                assert_eq!(sharded.stats, mono.stats, "k={k}: stats must be identical");
                assert_eq!(
                    sharded.metrics.stats.total_message_bits,
                    mono.metrics.stats.total_message_bits,
                    "k={k}: frugality accounting must ignore the exchange"
                );
                assert_eq!(sharded.shards, k);
                assert!(sharded.exchange_bits > 0, "partials always carry headers");
            }
        }
    }

    #[test]
    fn exchange_order_is_immaterial() {
        let g = generators::grid(4, 4);
        let mut outcomes = Vec::new();
        for seed in 0..12u64 {
            let mut t = PerfectTransport::new();
            let r = ShardedMultiRoundSession::new(&BoruvkaConnectivity, &g, 5, 64)
                .with_exchange_seed(seed)
                .run(&mut t);
            outcomes.push(r.outcome.unwrap());
        }
        assert!(outcomes.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn dup_and_reorder_are_absorbed_bit_for_bit() {
        // No loss, no corruption: duplication and cross-round reordering
        // must be invisible — same verdict as the perfect run.
        for seed in 0..24u64 {
            let g = generators::gnp(
                10 + (seed % 7) as usize,
                0.22,
                &mut rand::rngs::StdRng::seed_from_u64(seed),
            );
            let mut perfect = PerfectTransport::new();
            let mono = MultiRoundSession::new(&BoruvkaConnectivity, &g, 64).run(&mut perfect);
            let cfg = FaultConfig {
                seed,
                loss: 0.0,
                duplication: 0.2,
                reorder: 0.3,
                corruption: 0.0,
            };
            let mut t = FaultyTransport::new(PerfectTransport::new(), cfg);
            let r = ShardedMultiRoundSession::new(&BoruvkaConnectivity, &g, 3, 64)
                .with_exchange_seed(seed)
                .run(&mut t);
            assert_eq!(r.outcome.unwrap(), mono.outcome.unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn faulty_transport_never_fabricates() {
        // Under loss every completed run is exact; lost traffic rejects.
        let mut completed = 0usize;
        let mut rejected = 0usize;
        for seed in 0..60u64 {
            let g = generators::gnp(
                9 + (seed % 8) as usize,
                0.25,
                &mut rand::rngs::StdRng::seed_from_u64(seed ^ 0xabc),
            );
            let cfg = FaultConfig {
                seed,
                loss: 0.004,
                duplication: 0.1,
                reorder: 0.2,
                corruption: 0.0,
            };
            let mut t = FaultyTransport::new(PerfectTransport::new(), cfg);
            let r = ShardedMultiRoundSession::new(&BoruvkaConnectivity, &g, 4, 64)
                .with_exchange_seed(seed)
                .run(&mut t);
            match r.outcome {
                Ok(out) => {
                    let verdict = out.expect("cap is generous").expect("honest bits decode");
                    assert_eq!(verdict, algo::is_connected(&g), "seed {seed} fabricated");
                    completed += 1;
                }
                Err(_) => rejected += 1,
            }
        }
        assert!(completed > 0, "some runs must survive 0.4% loss");
        assert!(rejected > 0, "some runs must lose an envelope");
    }

    #[test]
    fn lost_partial_is_detected_as_starvation() {
        // Drop every exchange envelope (synthetic shard senders): the
        // collector must starve loudly, never hang or fabricate.
        struct DropPartials<T: Transport>(T, usize);
        impl<T: Transport> Transport for DropPartials<T> {
            fn send(&mut self, env: Envelope) {
                if (env.from as usize) <= self.1 {
                    self.0.send(env);
                }
            }
            fn recv(&mut self) -> Option<Envelope> {
                self.0.recv()
            }
            fn counters(&self) -> crate::metrics::TransportCounters {
                self.0.counters()
            }
        }
        let g = generators::grid(3, 3);
        let mut t = DropPartials(PerfectTransport::new(), g.n());
        let r = ShardedMultiRoundSession::new(&BoruvkaConnectivity, &g, 3, 64).run(&mut t);
        let err = r.outcome.unwrap_err();
        assert!(format!("{err}").contains("shard partials missing"), "{err}");
    }

    #[test]
    fn corrupted_partial_is_rejected() {
        // Flip a bit inside every exchange payload's round field: the
        // decoder (round mismatch or structural damage) must reject.
        struct CorruptPartials<T: Transport>(T, usize);
        impl<T: Transport> Transport for CorruptPartials<T> {
            fn send(&mut self, mut env: Envelope) {
                if (env.from as usize) > self.1 {
                    env.payload = env.payload.with_bit_flipped(31); // round field LSB
                }
                self.0.send(env);
            }
            fn recv(&mut self) -> Option<Envelope> {
                self.0.recv()
            }
            fn counters(&self) -> crate::metrics::TransportCounters {
                self.0.counters()
            }
        }
        let g = generators::grid(3, 4);
        let mut t = CorruptPartials(PerfectTransport::new(), g.n());
        let r = ShardedMultiRoundSession::new(&BoruvkaConnectivity, &g, 2, 64).run(&mut t);
        assert!(r.outcome.is_err(), "corrupted round stamp must reject");
    }
}
