//! [`Message`]: one node-to-referee (or referee-to-node) transmission.

use crate::bits::{BitReader, BitWriter};
use crate::DecodeError;

/// An immutable bit string with exact length accounting.
///
/// In the model, "the protocol is said frugal if the size of each message
/// is limited to O(log n) bits" — [`Message::len_bits`] is that size.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Message {
    bytes: Vec<u8>,
    len_bits: usize,
}

impl Message {
    /// The empty message (0 bits). Legal: a protocol may have silent nodes.
    pub fn empty() -> Self {
        Message::default()
    }

    /// Freeze a writer into a message.
    pub fn from_writer(w: BitWriter) -> Self {
        let (bytes, len_bits) = w.finish();
        Message { bytes, len_bits }
    }

    /// Rebuild a message from its raw byte serialization (the inverse of
    /// [`Message::as_bytes`] + [`Message::len_bits`]) — the hook wire
    /// codecs use to deserialize payloads received off a socket.
    ///
    /// The representation must be **canonical**: exactly
    /// `⌈len_bits / 8⌉` bytes, with every padding bit of the final
    /// partial byte zero. Anything else is rejected, because two
    /// non-canonical copies of the same bit string would defeat the
    /// content-based equality the session runtime's duplicate detection
    /// relies on.
    pub fn from_bits(bytes: Vec<u8>, len_bits: usize) -> Result<Message, DecodeError> {
        if bytes.len() != len_bits.div_ceil(8) {
            return Err(DecodeError::Invalid(format!(
                "{} payload bytes cannot carry exactly {len_bits} bits",
                bytes.len()
            )));
        }
        if !len_bits.is_multiple_of(8) {
            let pad_mask = 0xffu8 >> (len_bits % 8);
            let last = *bytes.last().expect("len_bits > 0 implies a final byte");
            if last & pad_mask != 0 {
                return Err(DecodeError::Invalid(
                    "non-canonical payload: padding bits set".into(),
                ));
            }
        }
        Ok(Message { bytes, len_bits })
    }

    /// Exact size in bits.
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// Append every bit of this message to `w`, preserving the exact
    /// bit length (the encode-side counterpart of
    /// [`BitReader::copy_bits_into`]).
    pub fn append_to(&self, w: &mut BitWriter) {
        self.reader()
            .copy_bits_into(w, self.len_bits)
            .expect("a message always holds its own length");
    }

    /// Begin reading.
    pub fn reader(&self) -> BitReader<'_> {
        BitReader::new(&self.bytes, self.len_bits)
    }

    /// Raw bytes (final byte zero-padded).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// A copy with the bit at `idx` flipped — the failure-injection hook
    /// used to verify decoders reject corrupted transmissions.
    pub fn with_bit_flipped(&self, idx: usize) -> Message {
        assert!(idx < self.len_bits, "bit {idx} out of range {}", self.len_bits);
        let mut m = self.clone();
        m.bytes[idx / 8] ^= 1 << (7 - idx % 8);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(value: u64, width: u32) -> Message {
        let mut w = BitWriter::new();
        w.write_bits(value, width);
        Message::from_writer(w)
    }

    #[test]
    fn empty_message() {
        let m = Message::empty();
        assert_eq!(m.len_bits(), 0);
        assert!(m.reader().is_exhausted());
    }

    #[test]
    fn round_trip() {
        let m = msg(0xdead, 16);
        assert_eq!(m.len_bits(), 16);
        assert_eq!(m.reader().read_bits(16).unwrap(), 0xdead);
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let m = msg(0b101010, 6);
        let f = m.with_bit_flipped(2);
        assert_eq!(f.reader().read_bits(6).unwrap(), 0b100010);
        assert_eq!(f.with_bit_flipped(2), m);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn flip_out_of_range_panics() {
        msg(1, 1).with_bit_flipped(1);
    }

    #[test]
    fn equality_is_content_based() {
        assert_eq!(msg(5, 3), msg(5, 3));
        assert_ne!(msg(5, 3), msg(5, 4));
    }

    #[test]
    fn from_bits_round_trips() {
        for (value, width) in [(0u64, 1u32), (0b101, 3), (0xdead, 16), (0x1ffff, 17)] {
            let m = msg(value, width);
            let back = Message::from_bits(m.as_bytes().to_vec(), m.len_bits()).unwrap();
            assert_eq!(back, m);
        }
        assert_eq!(Message::from_bits(Vec::new(), 0).unwrap(), Message::empty());
    }

    #[test]
    fn from_bits_rejects_wrong_byte_count() {
        assert!(Message::from_bits(vec![0, 0], 3).is_err());
        assert!(Message::from_bits(vec![], 1).is_err());
        assert!(Message::from_bits(vec![0], 9).is_err());
        assert!(Message::from_bits(vec![0], 0).is_err());
    }

    #[test]
    fn from_bits_rejects_noncanonical_padding() {
        // 3 valid bits but a padding bit set: two distinct byte strings
        // would alias the same logical message.
        assert!(Message::from_bits(vec![0b1010_0001], 3).is_err());
        assert!(Message::from_bits(vec![0b1010_0000], 3).is_ok());
        // full final byte: no padding to police
        assert!(Message::from_bits(vec![0xff], 8).is_ok());
    }
}
