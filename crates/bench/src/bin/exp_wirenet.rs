//! E27 (systems side): wirenet loopback throughput — the same session
//! fleet driven in-memory and over real TCP with 1/2/4/8 multiplexed
//! connections, plus the cost accounting of the wire (frames, bytes,
//! MAC rejects, backpressure stalls).
//!
//! Run: `cargo run --release -p referee-bench --bin exp_wirenet`

use rand::rngs::StdRng;
use rand::SeedableRng;
use referee_bench::{render_table, section, write_bench_json_axis, BenchRecord, Percentiles};
use referee_graph::{generators, LabelledGraph};
use referee_protocol::easy::EdgeCountProtocol;
use referee_simnet::{AggregateMetrics, OneRoundSession, Scheduler, SessionId};
use referee_wirenet::{AuthKey, FleetClient, FleetServer, TamperConfig, TRACE_CAPACITY_ENV};
use std::time::Instant;

fn fleet(count: usize, seed: u64) -> Vec<LabelledGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|i| generators::gnp(12 + i % 20, 0.2, &mut rng)).collect()
}

fn main() {
    println!("# E27: wirenet — simnet fleets over real loopback sockets");
    println!("# expectation: outcomes identical to in-memory runs; throughput within an");
    println!("# order of magnitude of in-memory despite every envelope crossing TCP twice.");

    let sessions = 1000usize;
    let graphs = fleet(sessions, 2027);
    let truth: Vec<usize> = graphs.iter().map(|g| g.m()).collect();
    let scheduler = Scheduler::new(8, 8);
    let key = AuthKey::from_seed(9);
    let mut records: Vec<BenchRecord> = Vec::new();

    section(&format!("{sessions} EdgeCount sessions, scheduler 8×8"));
    let mut rows = vec![[
        "backend", "conns", "sess/s", "frames", "wire KiB", "fr/write", "mac-rej", "stalls",
    ]
    .into_iter()
    .map(String::from)
    .collect::<Vec<_>>()];

    // In-memory baseline.
    let t0 = Instant::now();
    let sweep = scheduler.sweep_one_round(&EdgeCountProtocol, &graphs, None);
    let wall = t0.elapsed().as_secs_f64();
    for (report, &m) in sweep.reports.iter().zip(&truth) {
        assert_eq!(*report.outcome.as_ref().unwrap().as_ref().unwrap(), m);
    }
    records.push(
        BenchRecord::new("in-memory", 0, sessions as f64 / wall)
            .with_percentiles(Percentiles::from_hist(&sweep.aggregate.latency)),
    );
    rows.push(vec![
        "in-memory".into(),
        "-".into(),
        format!("{:.0}", sessions as f64 / wall),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
        "-".into(),
    ]);

    // Wirenet with growing connection pools, swept twice: with the
    // flight recorder at its default capacity ("wirenet") and fully
    // disabled ("wirenet-notrace", REFEREE_TRACE_CAPACITY=0). Both
    // modes land in the JSON so CI history tracks the recorder's cost.
    //
    // Variance control: every configuration first runs an untimed
    // quarter-fleet warmup (primes sockets, allocator arenas and branch
    // predictors), then records the best of 3 timed trials — loopback
    // throughput on shared CI is noisy, and the max is the estimator
    // least disturbed by a descheduled trial.
    const TRIALS: usize = 3;
    let mut best = [0.0f64; 2];
    for (mode, backend) in ["wirenet", "wirenet-notrace"].into_iter().enumerate() {
        if mode == 1 {
            std::env::set_var(TRACE_CAPACITY_ENV, "0");
        }
        for conns in [1usize, 2, 4, 8] {
            let server = FleetServer::spawn(key).expect("bind");
            let client = FleetClient::connect(server.addr(), conns, key).expect("connect");
            let run_fleet = |count: usize| {
                scheduler.run_indexed(count, |i| {
                    let id = SessionId(i as u64);
                    let mut transport = client.transport(id);
                    OneRoundSession::new(&EdgeCountProtocol, &graphs[i])
                        .with_session(id)
                        .run(&mut transport)
                })
            };
            run_fleet(sessions / 4); // warmup, untimed
            let mut best_rate = 0.0f64;
            let mut best_agg = AggregateMetrics::default();
            for _ in 0..TRIALS {
                let t0 = Instant::now();
                let reports = run_fleet(sessions);
                let wall = t0.elapsed().as_secs_f64();
                let mut agg = AggregateMetrics::default();
                for (report, &m) in reports.iter().zip(&truth) {
                    assert_eq!(*report.outcome.as_ref().unwrap().as_ref().unwrap(), m);
                    agg.absorb(&report.metrics, report.outcome.is_ok());
                }
                let rate = sessions as f64 / wall;
                if rate > best_rate {
                    best_rate = rate;
                    best_agg = agg;
                }
            }
            let c = client.metrics();
            let s = server.stop();
            assert_eq!(s.mac_rejects, 0);
            assert_eq!(c.frames_received, c.frames_sent, "every frame echoed");
            if mode == 1 {
                assert_eq!(c.trace_drops, 0, "a disabled recorder records (and drops) nothing");
            }
            best[mode] = best[mode].max(best_rate);
            records.push(
                BenchRecord::new(backend, conns, best_rate)
                    .with_percentiles(Percentiles::from_hist(&best_agg.latency)),
            );
            rows.push(vec![
                backend.into(),
                conns.to_string(),
                format!("{best_rate:.0}"),
                c.frames_sent.to_string(),
                format!("{:.0}", (c.bytes_sent + c.bytes_received) as f64 / 1024.0),
                format!("{:.1}", c.frames_per_write()),
                s.mac_rejects.to_string(),
                c.backpressure_stalls.to_string(),
            ]);
        }
    }
    std::env::remove_var(TRACE_CAPACITY_ENV);
    println!("{}", render_table(&rows));

    // Overhead guard: recording into the lock-free ring must be free at
    // this granularity. The bound is deliberately loose (loopback
    // throughput on shared CI is noisy) — it exists to catch a future
    // change that puts real work (allocation, locking, I/O) on the
    // trace path, not to police scheduler jitter.
    let ratio = best[0] / best[1];
    println!(
        "trace overhead: best traced {:.0} sess/s vs best untraced {:.0} sess/s \
         (ratio {ratio:.2})",
        best[0], best[1]
    );
    assert!(
        ratio > 0.4,
        "tracing cost a {:.0}% throughput hit — the recorder is no longer cheap",
        (1.0 - ratio) * 100.0
    );

    section("corruption sweep: every 2nd frame tampered, 32 sessions / 32 conns");
    let server = FleetServer::spawn(key).expect("bind");
    let client = FleetClient::connect(server.addr(), 32, key)
        .expect("connect")
        .with_tamper(TamperConfig { flip_every: 2 });
    let mut rejected = 0usize;
    for (i, g) in graphs.iter().take(32).enumerate() {
        let id = SessionId(i as u64);
        let mut transport = client.transport(id);
        let report =
            OneRoundSession::new(&EdgeCountProtocol, g).with_session(id).run(&mut transport);
        match report.outcome {
            Err(_) => rejected += 1,
            Ok(out) => assert_eq!(*out.as_ref().unwrap(), g.m(), "computed on garbage"),
        }
    }
    let c = client.metrics();
    let s = server.stop();
    println!(
        "tampered {} | server mac-rejects {} | sessions failed closed {rejected}/32 | \
         accepted frames all authentic ✓",
        c.tampered, s.mac_rejects
    );
    assert!(s.mac_rejects > 0);
    assert_eq!(s.frames_received, s.frames_sent);

    // The sweep axis here is the connection-pool size, not a shard
    // count — the JSON names it accordingly ("in-memory" carries 0).
    let json =
        write_bench_json_axis("exp_wirenet", "conns", &records).expect("write BENCH json");
    println!("\nmachine-readable results: {}", json.display());
    println!("wirenet experiments completed ✓");
}
