//! E28 (systems side): the sharded referee — 1/2/4/8 shards swept
//! through both backends.
//!
//! * **simnet**: `Scheduler::sweep_one_round_sharded` — per-session
//!   shard states exchanging serialized partials through the transport;
//!   outcomes pinned against the monolithic sweep, exchange overhead
//!   accounted in bits.
//! * **wirenet**: `FleetServer::spawn_sharded` — the server-side shard
//!   workers verifying 1000-session fleets, with cross-shard partial
//!   frames and verdict digests counted on the wire.
//!
//! Run: `cargo run --release -p referee-bench --bin exp_shard`

use rand::rngs::StdRng;
use rand::SeedableRng;
use referee_bench::{render_table, section, write_bench_json, BenchRecord, Percentiles};
use referee_graph::{generators, LabelledGraph};
use referee_protocol::easy::EdgeCountProtocol;
use referee_protocol::referee::local_phase;
use referee_simnet::{Scheduler, SessionId};
use referee_wirenet::{vector_digest, AuthKey, FleetClient, FleetServer, Stage};
use std::time::Instant;

fn fleet(count: usize, seed: u64) -> Vec<LabelledGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|i| generators::gnp(12 + i % 20, 0.2, &mut rng)).collect()
}

fn main() {
    println!("# E28: sharded referee — mergeable partial states, in-memory and on the wire");
    println!("# expectation: outcomes identical at every shard count (merge is commutative");
    println!("# and associative); exchange overhead grows with k; verification throughput");
    println!("# stays in the same order of magnitude as the echo fleet.");

    let sessions = 1000usize;
    let graphs = fleet(sessions, 2028);
    let scheduler = Scheduler::new(8, 8);
    let mut records: Vec<BenchRecord> = Vec::new();

    // ---- simnet: sharded sweeps vs the monolithic sweep ---------------
    section(&format!("simnet: {sessions} EdgeCount sessions, scheduler 8×8"));
    let t0 = Instant::now();
    let mono = scheduler.sweep_one_round(&EdgeCountProtocol, &graphs, None);
    let mono_wall = t0.elapsed().as_secs_f64();
    assert_eq!(mono.aggregate.ok, sessions);

    let mut rows = vec![["shards", "ok", "rejected", "exchange KiB", "sess/s"]
        .into_iter()
        .map(String::from)
        .collect::<Vec<_>>()];
    rows.push(vec![
        "1 (monolithic)".into(),
        mono.aggregate.ok.to_string(),
        mono.aggregate.rejected.to_string(),
        "-".into(),
        format!("{:.0}", sessions as f64 / mono_wall),
    ]);
    for shards in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let sweep =
            scheduler.sweep_one_round_sharded(&EdgeCountProtocol, &graphs, shards, None);
        let wall = t0.elapsed().as_secs_f64();
        let exchange_bits: usize = sweep.reports.iter().map(|r| r.exchange_bits).sum();
        for (s, m) in sweep.reports.iter().zip(&mono.reports) {
            assert_eq!(
                s.outcome.as_ref().unwrap(),
                m.outcome.as_ref().unwrap(),
                "sharded outcome diverged at k={shards}"
            );
        }
        records.push(
            BenchRecord::new("simnet", shards, sessions as f64 / wall)
                .with_percentiles(Percentiles::from_hist(&sweep.aggregate.latency)),
        );
        rows.push(vec![
            shards.to_string(),
            sweep.aggregate.ok.to_string(),
            sweep.aggregate.rejected.to_string(),
            format!("{:.0}", exchange_bits as f64 / 8.0 / 1024.0),
            format!("{:.0}", sessions as f64 / wall),
        ]);
    }
    println!("{}", render_table(&rows));

    // ---- wirenet: the sharded referee service -------------------------
    section(&format!("wirenet: {sessions}-session fleets verified by sharded servers"));
    let key = AuthKey::from_seed(28);
    let truth: Vec<u64> = graphs
        .iter()
        .map(|g| vector_digest(&key, &local_phase(&EdgeCountProtocol, g)))
        .collect();
    let mut rows =
        vec![["shards", "conns", "sess/s", "partials", "verdicts", "wire KiB", "mac-rej"]
            .into_iter()
            .map(String::from)
            .collect::<Vec<_>>()];
    for shards in [1usize, 2, 4, 8] {
        let server = FleetServer::spawn_sharded(key, shards).expect("bind");
        let conns = 8usize;
        let client = FleetClient::connect(server.addr(), conns, key).expect("connect");
        let t0 = Instant::now();
        let digests: Vec<u64> = scheduler.run_indexed(sessions, |i| {
            let g = &graphs[i];
            let arrivals = local_phase(&EdgeCountProtocol, g)
                .into_iter()
                .enumerate()
                .map(|(j, m)| (j as u32 + 1, m));
            client
                .verify_session(SessionId(i as u64), g.n(), arrivals)
                .expect("honest session verifies")
        });
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(digests, truth, "verdict digests must pin the sent vectors");
        let c = client.metrics();
        let s = server.stop();
        assert_eq!(s.mac_rejects, 0);
        assert_eq!(s.verdict_frames as usize, sessions);
        assert_eq!(s.partial_frames as usize, sessions * (shards - 1));
        // The client stamps announce→verdict per session into its
        // Verdict stage histogram — the end-to-end wire latency.
        records.push(
            BenchRecord::new("wirenet", shards, sessions as f64 / wall)
                .with_percentiles(Percentiles::from_hist(c.stage(Stage::Verdict))),
        );
        rows.push(vec![
            shards.to_string(),
            conns.to_string(),
            format!("{:.0}", sessions as f64 / wall),
            s.partial_frames.to_string(),
            s.verdict_frames.to_string(),
            format!("{:.0}", (c.bytes_sent + c.bytes_received) as f64 / 1024.0),
            s.mac_rejects.to_string(),
        ]);
    }
    println!("{}", render_table(&rows));

    let json = write_bench_json("exp_shard", &records).expect("write BENCH json");
    println!("\nmachine-readable results: {}", json.display());
    println!("sharded-referee experiments completed ✓");
}
