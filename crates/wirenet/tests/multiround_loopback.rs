//! The multi-round fleet mode over real loopback TCP: clients drive the
//! node half of Borůvka connectivity, the server's sharded referee runs
//! `referee_step` per round — verdicts pinned against in-process runs
//! and the centralized truth, tampering fails closed with zero
//! undetected corruption.

use rand::rngs::StdRng;
use rand::SeedableRng;
use referee_graph::{algo, generators, LabelledGraph};
use referee_protocol::multiround::{run_multiround, BoruvkaConnectivity};
use referee_protocol::shard::replay::encode_resume;
use referee_protocol::{BitWriter, Message};
use referee_simnet::{Envelope, Scheduler, SessionId};
use referee_wirenet::placement::{link_key, register_frame, shard_key, ShardHostMode};
use referee_wirenet::{
    boruvka_connectivity_service, decode_bool_output, decode_frame, encode_wire_frame, AuthKey,
    FleetClient, FleetServer, FrameKind, ShardHost, TamperConfig, WireError,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn graphs(count: usize, seed: u64) -> Vec<LabelledGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|i| generators::gnp(6 + i % 18, 0.22, &mut rng)).collect()
}

const CAP: usize = 64;

/// Multi-round Borůvka sessions multiplexed over 4 connections against
/// a 4-shard multi-round server: every wire verdict equals the
/// in-process `run_multiround` verdict and the centralized truth, and
/// the server exchanged per-round partials and streamed downlinks.
#[test]
fn multiround_fleet_matches_in_process_runs() {
    let key = AuthKey::from_seed(51);
    let shards = 4usize;
    let server =
        FleetServer::spawn_multiround(key, shards, boruvka_connectivity_service()).unwrap();
    let client = FleetClient::connect(server.addr(), 4, key).unwrap();
    let fleet = graphs(120, 71);

    let verdicts: Vec<bool> = Scheduler::new(8, 4).run_indexed(fleet.len(), |i| {
        let out = client
            .run_multiround_session(SessionId(i as u64), &BoruvkaConnectivity, &fleet[i], CAP)
            .expect("honest session completes");
        decode_bool_output(&out).expect("honest uplinks decode")
    });

    for (i, (wire, g)) in verdicts.iter().zip(&fleet).enumerate() {
        let (local, _) = run_multiround(&BoruvkaConnectivity, g, CAP);
        let local = local.expect("terminates").expect("decodes");
        assert_eq!(*wire, local, "session {i} diverged from the in-process run");
        assert_eq!(*wire, algo::is_connected(g), "session {i} vs centralized");
    }

    let stats = server.stop();
    assert_eq!(stats.verdict_frames as usize, fleet.len());
    assert_eq!(stats.mac_rejects, 0);
    assert_eq!(stats.decode_rejects, 0);
    assert!(stats.partial_frames > 0, "rounds must exchange shard partials");
    assert!(stats.downlink_frames > 0, "continuing rounds must stream downlinks");
}

/// Trivial sizes ride the same wire path: the empty graph (the server
/// steps empty uplink vectors from the implied-empty-shard quorum), a
/// single node, and a two-node disconnected graph.
#[test]
fn multiround_fleet_handles_trivial_sizes() {
    let key = AuthKey::from_seed(52);
    let server = FleetServer::spawn_multiround(key, 3, boruvka_connectivity_service()).unwrap();
    let client = FleetClient::connect(server.addr(), 1, key).unwrap();
    for (i, (g, want)) in [
        (LabelledGraph::new(0), true),
        (LabelledGraph::new(1), true),
        (LabelledGraph::new(2), false),
        (generators::path(2), true),
    ]
    .into_iter()
    .enumerate()
    {
        let out = client
            .run_multiround_session(SessionId(i as u64), &BoruvkaConnectivity, &g, CAP)
            .expect("honest session completes");
        assert_eq!(decode_bool_output(&out).unwrap(), want, "graph {i}");
    }
    let stats = server.stop();
    assert_eq!(stats.verdict_frames, 4);
    assert_eq!(stats.mac_rejects, 0);
}

/// Session ids are keyed per connection and reusable after their
/// verdict, exactly like the one-round service.
#[test]
fn multiround_session_ids_are_reusable() {
    let key = AuthKey::from_seed(53);
    let server = FleetServer::spawn_multiround(key, 2, boruvka_connectivity_service()).unwrap();
    let a = FleetClient::connect(server.addr(), 1, key).unwrap();
    let b = FleetClient::connect(server.addr(), 1, key).unwrap();
    let g = generators::cycle(9).unwrap();
    for client in [&a, &b] {
        for _ in 0..2 {
            let out = client
                .run_multiround_session(SessionId(7), &BoruvkaConnectivity, &g, CAP)
                .unwrap();
            assert!(decode_bool_output(&out).unwrap());
        }
    }
    let stats = server.stop();
    assert_eq!(stats.verdict_frames, 4);
    assert_eq!(stats.decode_rejects, 0, "honest reuse must not poison anything");
}

/// The acceptance adversary: every third outbound frame is corrupted
/// after MAC computation. Every tampered frame must die at the router's
/// MAC check; affected sessions fail closed; any session that *does*
/// verify saw only clean frames, so its verdict must equal the truth —
/// zero undetected corruption.
#[test]
fn multiround_tampering_yields_zero_undetected_corruption() {
    let key = AuthKey::from_seed(54);
    let server = FleetServer::spawn_multiround(key, 2, boruvka_connectivity_service()).unwrap();
    let sessions = 8usize;
    let client = FleetClient::connect(server.addr(), sessions, key)
        .unwrap()
        .with_tamper(TamperConfig { flip_every: 3 });
    let fleet = graphs(sessions, 55);

    let mut failed_closed = 0usize;
    let mut undetected = 0usize;
    for (i, g) in fleet.iter().enumerate() {
        match client.run_multiround_session(SessionId(i as u64), &BoruvkaConnectivity, g, CAP) {
            Err(_) => failed_closed += 1,
            Ok(out) => {
                let verdict = decode_bool_output(&out);
                if verdict != Ok(algo::is_connected(g)) {
                    undetected += 1;
                }
            }
        }
    }
    assert_eq!(undetected, 0, "a corrupted session was accepted");
    assert!(failed_closed > 0, "tampering every 3rd frame must hit most sessions");

    let client_stats = client.metrics();
    let server_stats = server.stop();
    assert!(client_stats.tampered > 0, "tamper hook never fired");
    assert!(server_stats.mac_rejects > 0, "no corruption reached MAC verification");
}

/// A zero-round cap mirrors `run_multiround`'s contract — no protocol
/// runs at all: the client errors before announcing anything, so the
/// server sees no session state.
#[test]
fn zero_round_cap_runs_nothing() {
    let key = AuthKey::from_seed(57);
    let server = FleetServer::spawn_multiround(key, 2, boruvka_connectivity_service()).unwrap();
    let client = FleetClient::connect(server.addr(), 1, key).unwrap();
    let g = generators::path(4);
    let err = client
        .run_multiround_session(SessionId(1), &BoruvkaConnectivity, &g, 0)
        .expect_err("a 0-round cap can never produce a verdict");
    assert!(format!("{err}").contains("0-round cap"), "{err}");
    assert_eq!(client.metrics().frames_sent, 0, "nothing may be announced");
    let stats = server.stop();
    assert_eq!(stats.frames_received, 0);
    assert_eq!(stats.verdict_frames, 0);
}

// ---------------------------------------------------------------------------
// Per-shard key separation on shard-host links
// ---------------------------------------------------------------------------

/// A minimal raw coordinator link for the shard-host tamper tests.
struct RawLink {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl RawLink {
    fn connect(addr: std::net::SocketAddr) -> RawLink {
        let stream = TcpStream::connect(addr).expect("connect to shard host");
        stream.set_read_timeout(Some(Duration::from_millis(20))).expect("read timeout");
        RawLink { stream, buf: Vec::new() }
    }

    fn send(&mut self, bytes: &[u8]) {
        self.stream.write_all(bytes).expect("write frame");
    }

    /// Read until one frame decodes under `key`, the peer hangs up, or
    /// the deadline passes. `Ok(None)` = silence, `Err(true)` = closed.
    fn read_frame(
        &mut self,
        key: &AuthKey,
        deadline: Duration,
    ) -> Result<Option<(FrameKind, Envelope)>, bool> {
        let until = Instant::now() + deadline;
        let mut scratch = [0u8; 4096];
        loop {
            match decode_frame(key, &self.buf) {
                Ok(Some(d)) => {
                    self.buf.drain(..d.consumed);
                    return Ok(Some((d.kind, d.envelope)));
                }
                Ok(None) => {}
                Err(_) => return Err(false), // undecodable under this key
            }
            match self.stream.read(&mut scratch) {
                Ok(0) => return Err(true), // peer closed
                Ok(k) => self.buf.extend_from_slice(&scratch[..k]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if Instant::now() > until {
                        return Ok(None);
                    }
                }
                Err(_) => return Err(true),
            }
        }
    }
}

fn bits(v: u64, w: u32) -> Message {
    let mut wr = BitWriter::new();
    wr.write_bits(v, w);
    Message::from_writer(wr)
}

/// A frame MAC'd with shard A's key, replayed to a link registered as
/// shard B, is MAC-rejected and poisons the link — per-shard keys keep
/// siblings cryptographically apart even inside one fleet. The control
/// link (shard A under its own key) keeps working and ships its
/// partial.
#[test]
fn frame_under_sibling_shard_key_is_rejected() {
    let base = AuthKey::from_seed(61);
    let host = ShardHost::spawn(base).expect("bind shard host");
    let shards = 2usize;

    // Control: shard 0 registered and serving under its own key.
    let key_a = link_key(&base, 0, 1);
    let mut a = RawLink::connect(host.addr());
    a.send(&register_frame(&base, ShardHostMode::OneRound, 0, shards, 1));
    let announce = Envelope {
        session: SessionId(7),
        round: 3, // announce epoch
        from: 1,  // coordinator client-connection id
        to: 0,
        payload: encode_resume(1, 1, 1),
    };
    a.send(&encode_wire_frame(&key_a, FrameKind::Announce, &announce));
    let data =
        Envelope { session: SessionId(7), round: 1, from: 1, to: 1, payload: bits(0b1011, 4) };
    a.send(&encode_wire_frame(&key_a, FrameKind::Data, &data));
    let (kind, env) = a
        .read_frame(&key_a, Duration::from_secs(5))
        .expect("link healthy")
        .expect("shard 0 emits its range partial");
    assert_eq!(kind, FrameKind::Partial);
    assert_eq!(env.round, 3 << 1, "quorum partial stamped with the announce epoch");

    // Attack: a link registered as shard 1 replays a frame MAC'd with
    // shard 0's key.
    let mut b = RawLink::connect(host.addr());
    b.send(&register_frame(&base, ShardHostMode::OneRound, 1, shards, 1));
    b.send(&encode_wire_frame(&key_a, FrameKind::Data, &data));
    // The host must reject the MAC and hang up on the link.
    let outcome = b.read_frame(&link_key(&base, 1, 1), Duration::from_secs(5));
    assert_eq!(outcome, Err(true), "the tampering link must be closed");
    let stats = host.stop();
    assert!(stats.mac_rejects >= 1, "the cross-shard frame must be MAC-rejected");
}

/// A reconnected host replaying a pre-epoch partial fails closed: link
/// keys are generation-scoped, so anything a previous registration
/// generation MAC'd — and anything keyed with the raw (un-scoped)
/// shard key — is rejected by the current generation's verifier, which
/// is exactly the check the coordinator proxy runs on every partial.
#[test]
fn pre_epoch_partial_fails_closed() {
    let base = AuthKey::from_seed(62);
    let partial_env = Envelope {
        session: SessionId(9),
        round: 4 << 1,
        from: 0,
        to: 1,
        payload: bits(0x5a5a, 16),
    };
    // What a crashed generation-1 incarnation of shard 0 would replay…
    let stale = encode_wire_frame(&link_key(&base, 0, 1), FrameKind::Partial, &partial_env);
    // …must die under the post-reconnect generation-2 key:
    assert_eq!(decode_frame(&link_key(&base, 0, 2), &stale), Err(WireError::BadMac));
    // The un-scoped shard key authenticates no link traffic either.
    let unscoped = encode_wire_frame(&shard_key(&base, 0), FrameKind::Partial, &partial_env);
    assert_eq!(decode_frame(&link_key(&base, 0, 1), &unscoped), Err(WireError::BadMac));
    // And a live host enforces it end to end: register generation 2,
    // then replay the generation-1 frame — MAC-rejected, link closed.
    let host = ShardHost::spawn(base).expect("bind shard host");
    let mut link = RawLink::connect(host.addr());
    link.send(&register_frame(&base, ShardHostMode::OneRound, 0, 1, 2));
    link.send(&stale);
    let outcome = link.read_frame(&link_key(&base, 0, 2), Duration::from_secs(5));
    assert_eq!(outcome, Err(true), "the stale-generation link must be closed");
    let stats = host.stop();
    assert!(stats.mac_rejects >= 1, "the pre-epoch frame must be MAC-rejected");
}

/// A multi-round session against the wrong kind of server fails closed
/// (the echo mailbox reflects the Announce, which the client rejects as
/// an unexpected frame) — never hangs.
#[test]
fn multiround_against_echo_server_fails_closed() {
    let key = AuthKey::from_seed(56);
    let server = FleetServer::spawn(key).unwrap(); // echo mailbox
    let client = FleetClient::connect(server.addr(), 1, key).unwrap();
    let g = generators::path(5);
    let err = client
        .run_multiround_session(SessionId(1), &BoruvkaConnectivity, &g, CAP)
        .expect_err("an echo server cannot referee");
    let _ = err; // any DecodeError is acceptable; the point is: no hang
    server.stop();
}
