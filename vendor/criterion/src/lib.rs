//! Offline shim for the subset of `criterion` used by the workspace's
//! benches: benchmark groups, `bench_with_input`/`bench_function`,
//! `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Statistics are rudimentary (mean over an adaptive iteration count,
//! printed to stdout) — enough to compare orders of magnitude offline,
//! not a replacement for real Criterion reports.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", name.into(), parameter) }
    }

    /// Just the parameter (the group name provides context).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Passed to measurement closures; `iter` runs and times the payload.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Run `f` repeatedly (adaptive count, ≥ 10 iterations or ~20 ms).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up / calibration run.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed();
        let budget = Duration::from_millis(20);
        let iters = if once.is_zero() {
            1000
        } else {
            (budget.as_nanos() / once.as_nanos().max(1)).clamp(9, 10_000) as u64
        };
        let t1 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.total = t1.elapsed();
        self.iters = iters;
    }
}

/// A named collection of related measurements.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples adaptively.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Record the per-iteration workload size.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measure `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { total: Duration::ZERO, iters: 1 };
        f(&mut b, input);
        self.report(&id.label, &b);
        self
    }

    /// Measure `f` with no input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { total: Duration::ZERO, iters: 1 };
        f(&mut b);
        self.report(&id.into().label, &b);
        self
    }

    /// Flush the group (printing is eager; provided for API parity).
    pub fn finish(&mut self) {}

    fn report(&self, label: &str, b: &Bencher) {
        let ns = b.total.as_nanos() as f64 / b.iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(e)) if ns > 0.0 => {
                format!("  ({:.1} Melem/s)", e as f64 / ns * 1e3)
            }
            Some(Throughput::Bytes(by)) if ns > 0.0 => {
                format!("  ({:.1} MiB/s)", by as f64 / ns * 1e3 / 1.048_576)
            }
            _ => String::new(),
        };
        println!("{}/{label}: {:.1} ns/iter{rate}", self.name, ns);
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), _parent: self, throughput: None }
    }

    /// Measure a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(BenchmarkId::from(name), f);
        self
    }
}

/// Bundle benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
