//! A dense dynamic bitset over `u64` words.
//!
//! Used for neighbourhood incidence vectors (the binary vector `x` that
//! Algorithm 3 multiplies by the power matrix `A(k, n)`), for visited sets
//! in traversals, and as the adjacency representation inside the exhaustive
//! enumerator. Deliberately minimal: exactly the operations the workspace
//! needs, all branch-light.

/// Fixed-capacity dense bitset (capacity chosen at construction).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    /// Number of addressable bits; bits ≥ `len` are always zero.
    len: usize,
}

impl BitSet {
    /// An empty bitset with capacity for `len` bits, all zero.
    pub fn new(len: usize) -> Self {
        BitSet { words: vec![0; len.div_ceil(64)], len }
    }

    /// Capacity in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Set bit `i` to 1. Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clear bit `i`. Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Get bit `i` (false for `i >= len`).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        i < self.len && (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Set all bits in `0..len`.
    pub fn set_all(&mut self) {
        for w in &mut self.words {
            *w = u64::MAX;
        }
        self.mask_tail();
    }

    /// Clear all bits.
    pub fn clear_all(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference (`self &= !other`).
    pub fn difference_with(&mut self, other: &BitSet) {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// In-place complement (within `0..len`).
    pub fn complement(&mut self) {
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// Size of the intersection without materializing it.
    pub fn intersection_count(&self, other: &BitSet) -> usize {
        assert_eq!(self.len, other.len, "bitset capacity mismatch");
        self.words.iter().zip(&other.words).map(|(a, b)| (a & b).count_ones() as usize).sum()
    }

    /// Index of the lowest set bit, if any.
    pub fn first_set(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterate the indices of set bits, ascending.
    pub fn iter(&self) -> BitIter<'_> {
        BitIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Zero any bits at positions `>= len` (after complement / set_all).
    fn mask_tail(&mut self) {
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
        if self.len == 0 {
            self.words.clear();
        }
    }
}

impl std::fmt::Debug for BitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitSet{{")?;
        for (i, b) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{b}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for BitSet {
    /// Collect indices into a bitset sized to the maximum index + 1.
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let idx: Vec<usize> = iter.into_iter().collect();
        let len = idx.iter().max().map_or(0, |&m| m + 1);
        let mut bs = BitSet::new(len);
        for i in idx {
            bs.set(i);
        }
        bs
    }
}

/// Iterator over set-bit indices of a [`BitSet`].
pub struct BitIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_clear() {
        let mut bs = BitSet::new(130);
        assert!(!bs.get(0));
        bs.set(0);
        bs.set(64);
        bs.set(129);
        assert!(bs.get(0) && bs.get(64) && bs.get(129));
        assert_eq!(bs.count(), 3);
        bs.clear(64);
        assert!(!bs.get(64));
        assert_eq!(bs.count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        BitSet::new(10).set(10);
    }

    #[test]
    fn get_out_of_range_is_false() {
        let bs = BitSet::new(10);
        assert!(!bs.get(100));
    }

    #[test]
    fn iter_ascending() {
        let mut bs = BitSet::new(200);
        for i in [5usize, 0, 199, 64, 63, 65] {
            bs.set(i);
        }
        let got: Vec<usize> = bs.iter().collect();
        assert_eq!(got, vec![0, 5, 63, 64, 65, 199]);
    }

    #[test]
    fn empty_iter() {
        let bs = BitSet::new(0);
        assert_eq!(bs.iter().count(), 0);
        assert!(bs.is_empty());
        let bs2 = BitSet::new(100);
        assert_eq!(bs2.iter().count(), 0);
    }

    #[test]
    fn set_ops() {
        let mut a = BitSet::new(70);
        let mut b = BitSet::new(70);
        for i in [1usize, 3, 69] {
            a.set(i);
        }
        for i in [3usize, 4, 69] {
            b.set(i);
        }
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 3, 4, 69]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3, 69]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1]);
        assert_eq!(a.intersection_count(&b), 2);
    }

    #[test]
    fn complement_respects_capacity() {
        let mut bs = BitSet::new(67);
        bs.set(0);
        bs.set(66);
        bs.complement();
        assert!(!bs.get(0) && !bs.get(66));
        assert!(bs.get(1) && bs.get(65));
        assert_eq!(bs.count(), 65);
        // Bits beyond capacity stay clear (idempotent double complement).
        bs.complement();
        assert_eq!(bs.iter().collect::<Vec<_>>(), vec![0, 66]);
    }

    #[test]
    fn set_all() {
        let mut bs = BitSet::new(65);
        bs.set_all();
        assert_eq!(bs.count(), 65);
        bs.clear_all();
        assert_eq!(bs.count(), 0);
    }

    #[test]
    fn first_set() {
        let mut bs = BitSet::new(200);
        assert_eq!(bs.first_set(), None);
        bs.set(150);
        assert_eq!(bs.first_set(), Some(150));
        bs.set(3);
        assert_eq!(bs.first_set(), Some(3));
    }

    #[test]
    fn from_iterator() {
        let bs: BitSet = [2usize, 7, 3].into_iter().collect();
        assert_eq!(bs.len(), 8);
        assert_eq!(bs.iter().collect::<Vec<_>>(), vec![2, 3, 7]);
        let empty: BitSet = std::iter::empty::<usize>().collect();
        assert_eq!(empty.len(), 0);
    }
}
