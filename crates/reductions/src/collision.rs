//! The pigeonhole of Lemma 1, made concrete (E6).
//!
//! Lemma 1 says a too-small message budget forces two distinct graphs onto
//! the same message vector — after which *no* global function can tell
//! them apart. This module makes both halves of that argument executable:
//!
//! * [`find_collision`] searches a family for two graphs with identical
//!   message vectors under a concrete protocol — an explicit witness;
//! * [`guaranteed_collision_n`] computes, for a given per-message bit
//!   count, the `n` at which the pigeonhole *guarantees* a collision on
//!   the all-graphs family (`2^{bits·n} < 2^{C(n,2)}`), even when the
//!   witness itself is beyond enumeration.
//!
//! A finding worth recording: the §III.A sketch `(deg, Σ neighbour IDs)`
//! ([`DegreeSumSketch`]) is collision-free on **all** graphs up to at
//! least `n = 5` — small-n enumeration cannot refute it. Lemma 1 is what
//! does: at `n = 40` the sketch offers `16·40 = 640` bits against
//! `C(40,2) = 780` edge bits, so two indistinguishable graphs must exist.
//! The explicit small-`n` witnesses below instead use the coarser
//! [`ModularSumSketch`].

use referee_graph::LabelledGraph;
use referee_protocol::{bits_for, BitWriter, Message, NodeView, OneRoundProtocol};
use std::collections::HashMap;

/// Search `graphs` for two members with identical message vectors under
/// `protocol`. Returns the first collision found, if any.
///
/// Any two such graphs are indistinguishable to the referee **whatever**
/// its global function is — a constructive impossibility witness.
pub fn find_collision<P: OneRoundProtocol>(
    protocol: &P,
    graphs: impl Iterator<Item = LabelledGraph>,
) -> Option<(LabelledGraph, LabelledGraph)> {
    let mut seen: HashMap<Vec<Message>, LabelledGraph> = HashMap::new();
    for g in graphs {
        let n = g.n();
        let vector: Vec<Message> = (1..=n as u32)
            .map(|v| protocol.local(NodeView::new(n, v, g.neighbourhood(v))))
            .collect();
        match seen.get(&vector) {
            Some(prev) if prev != &g => return Some((prev.clone(), g)),
            _ => {
                seen.insert(vector, g);
            }
        }
    }
    None
}

/// Count distinct message vectors over a family (the left side of the
/// pigeonhole: `#vectors < #graphs` forces a collision). Returns
/// `(distinct, total)`.
pub fn distinct_vectors<P: OneRoundProtocol>(
    protocol: &P,
    graphs: impl Iterator<Item = LabelledGraph>,
) -> (usize, usize) {
    let mut seen: HashMap<Vec<Message>, ()> = HashMap::new();
    let mut total = 0usize;
    for g in graphs {
        total += 1;
        let n = g.n();
        let vector: Vec<Message> = (1..=n as u32)
            .map(|v| protocol.local(NodeView::new(n, v, g.neighbourhood(v))))
            .collect();
        seen.insert(vector, ());
    }
    (seen.len(), total)
}

/// Smallest `n` at which a protocol spending `bits_per_message(n)` bits
/// per node is *guaranteed* (by Lemma 1's pigeonhole on the all-graphs
/// family) to collide: the first `n` with
/// `n · bits_per_message(n) < C(n, 2)`.
pub fn guaranteed_collision_n(mut bits_per_message: impl FnMut(usize) -> usize) -> usize {
    (2..)
        .find(|&n| n * bits_per_message(n) < n * (n - 1) / 2)
        .expect("quadratic beats n·log n eventually")
}

/// The §III.A sketch `(deg, Σ neighbour IDs)` as a general-graph protocol.
/// Frugal (< 3 log n bits); injective on forests (that is §III.A's
/// correctness) and, empirically, on all tiny graphs — but pigeonholed
/// into collisions at `n ≈ 40` (see module docs).
#[derive(Debug, Clone, Copy, Default)]
pub struct DegreeSumSketch;

impl DegreeSumSketch {
    /// Exact message size in bits at size `n`.
    pub fn message_bits(n: usize) -> usize {
        (bits_for(n.saturating_sub(1)) + bits_for(n * (n + 1) / 2)) as usize
    }
}

impl OneRoundProtocol for DegreeSumSketch {
    /// This sketch carries no global decision; collisions are about the
    /// *local* map only, so the output is the raw vector length.
    type Output = usize;

    fn name(&self) -> String {
        "degree+sum sketch (§III.A triple outside forests)".into()
    }

    fn local(&self, view: NodeView<'_>) -> Message {
        let mut w = BitWriter::new();
        w.write_bits(view.degree() as u64, bits_for(view.n.saturating_sub(1)));
        let sum: u64 = view.neighbours.iter().map(|&x| x as u64).sum();
        w.write_bits(sum, bits_for(view.n * (view.n + 1) / 2));
        Message::from_writer(w)
    }

    fn global(&self, _n: usize, messages: &[Message]) -> usize {
        messages.len()
    }
}

/// A deliberately coarse sketch: `Σ neighbour IDs mod 2^bits`, in `bits`
/// bits — constant-size, hence frugal with constant 0·log n + O(1). Its
/// collisions are reachable by exhaustive search at `n = 4`: adding an
/// edge `{u, v}` where `2^bits | u` and `2^bits | v` changes no message.
#[derive(Debug, Clone, Copy)]
pub struct ModularSumSketch {
    /// Field width; the sum is reduced mod `2^bits`.
    pub bits: u32,
}

impl OneRoundProtocol for ModularSumSketch {
    type Output = usize;

    fn name(&self) -> String {
        format!("modular sum sketch (mod 2^{})", self.bits)
    }

    fn local(&self, view: NodeView<'_>) -> Message {
        let sum: u64 = view.neighbours.iter().map(|&x| x as u64).sum();
        let mut w = BitWriter::new();
        w.write_bits(sum & ((1 << self.bits) - 1), self.bits);
        Message::from_writer(w)
    }

    fn global(&self, _n: usize, messages: &[Message]) -> usize {
        messages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use referee_graph::{algo, enumerate};

    #[test]
    fn degree_sum_injective_on_forests() {
        // §III.A's correctness, pigeonhole-style: on its intended class
        // the sketch vector determines the forest.
        for n in 2..=6usize {
            let forests = enumerate::all_graphs(n).filter(algo::is_forest);
            assert!(
                find_collision(&DegreeSumSketch, forests).is_none(),
                "forest family must be collision-free at n = {n}"
            );
        }
    }

    #[test]
    fn degree_sum_injective_at_tiny_n() {
        // Perhaps surprising: on ALL graphs with ≤ 5 vertices the
        // (deg, sum) sketch never collides — small cases cannot witness
        // Lemma 1; the counting bound below is what settles it.
        for n in 2..=5usize {
            assert!(
                find_collision(&DegreeSumSketch, enumerate::all_graphs(n)).is_none(),
                "unexpected tiny-n collision at n = {n}"
            );
        }
    }

    #[test]
    fn degree_sum_pigeonholed_by_lemma1() {
        // Lemma 1 on the all-graphs family: the sketch spends
        // n·message_bits(n) bits total; once C(n,2) exceeds that, two
        // graphs must share a message vector.
        let n0 = guaranteed_collision_n(DegreeSumSketch::message_bits);
        assert!(n0 <= 40, "collision must be guaranteed by n = 40, got {n0}");
        // and at that n the arithmetic really does cross over:
        assert!(n0 * DegreeSumSketch::message_bits(n0) < n0 * (n0 - 1) / 2);
        // …while just below the bound it does not (first crossing).
        let m = n0 - 1;
        assert!(m * DegreeSumSketch::message_bits(m) >= m * (m - 1) / 2);
    }

    #[test]
    fn modular_sketch_collides_explicitly() {
        // mod-2 sum: adding the edge {2, 4} changes both endpoint sums by
        // an even amount — invisible. Exhaustive search finds a witness.
        let (a, b) = find_collision(&ModularSumSketch { bits: 1 }, enumerate::all_graphs(4))
            .expect("collision at n = 4");
        assert_ne!(a, b);
        // Verify indistinguishability directly.
        for v in 1..=4u32 {
            let sa: u32 = a.neighbourhood(v).iter().sum();
            let sb: u32 = b.neighbourhood(v).iter().sum();
            assert_eq!(sa % 2, sb % 2, "vertex {v}");
        }
    }

    #[test]
    fn modular_sketch_collides_on_square_free() {
        // Theorem 1's family: even restricted to square-free graphs the
        // coarse sketch collides.
        let square_free = enumerate::all_graphs(5).filter(|g| !algo::has_square(g));
        assert!(find_collision(&ModularSumSketch { bits: 2 }, square_free).is_some());
    }

    #[test]
    fn vector_counting_pigeonhole() {
        let (distinct, total) =
            distinct_vectors(&ModularSumSketch { bits: 1 }, enumerate::all_graphs(4));
        assert!(distinct < total, "{distinct} vectors for {total} graphs");
        // 4 one-bit messages can label at most 16 vectors
        assert!(distinct <= 16);
    }

    #[test]
    fn full_adjacency_never_collides() {
        use referee_protocol::baseline::AdjacencyListProtocol;
        // A lossless (non-frugal) local map cannot collide anywhere.
        assert!(find_collision(&AdjacencyListProtocol, enumerate::all_graphs(4)).is_none());
    }
}
