#![warn(missing_docs)]
//! The computation model of Becker et al. (IPDPS 2011): an interconnection
//! network `G` plus a *referee* — a universal node `v₀` adjacent to every
//! vertex — where each node sends one message per round and a protocol is
//! **frugal** if every message is `O(log n)` bits.
//!
//! This crate implements the model itself, independent of any particular
//! protocol:
//!
//! * [`bits`] — bit-exact message serialization ([`BitWriter`]/[`BitReader`];
//!   message sizes are counted in bits, because the paper's bounds are).
//! * [`message`] — [`Message`] and per-run accounting.
//! * [`model`] — [`OneRoundProtocol`], the pair `(Γ^l_n, Γ^g_n)` of
//!   Definition 1, and [`NodeView`], exactly the local knowledge a node has
//!   (its ID, its neighbours' IDs, and `n`).
//! * [`referee`] — the simulator: runs the local phase (in parallel) and
//!   the global phase, collecting [`RunStats`].
//! * [`shard`] — the sharded referee: mergeable [`PartialState`]
//!   assembly over balanced ID ranges, so the §I.B "wait for one message
//!   per vertex" scales out across shard workers (the monolithic
//!   [`referee::assemble_from_arrivals`] is a one-shard run of it).
//!   [`shard::multiround`] lifts the split to multi-round protocols:
//!   per-round [`RoundPartialState`](shard::multiround::RoundPartialState)s
//!   merge into the exact input of each
//!   [`referee_step`](multiround::MultiRoundProtocol::referee_step), and
//!   [`multiround::run_multiround`] is the one-shard special case of
//!   [`shard::multiround::run_multiround_sharded`].
//! * [`frugality`] — empirical audits of the `O(log n)` bound across
//!   family sweeps.
//! * [`hist`] — fixed-bucket log₂-scaled latency histograms
//!   ([`LatencyHistogram`]/[`HistSnapshot`]): lock-free recording,
//!   commutative mergeable snapshots, and a canonical wire layout so
//!   shard workers and remote hosts ship percentiles back to the
//!   coordinator exactly like [`PartialState`].
//! * [`trace`] — causal event tracing ([`FlightRecorder`]/
//!   [`TraceSnapshot`]): a lock-free drop-oldest ring of per-session
//!   trace events with the same mergeable-snapshot discipline as
//!   [`hist`], plus Chrome `trace_event` rendering for failure-triggered
//!   post-mortems.
//! * [`evidence`] — attributable misbehavior: MAC'd
//!   [`EvidenceRecord`] transcripts, the typed [`ProvableError`]
//!   taxonomy, self-contained gamma-coded [`EvidenceBundle`]s, and the
//!   standalone [`verify_bundle`] / [`prosecute`] third-party checks —
//!   see *Accountability* below.
//! * [`baseline`] — the naive adjacency-list protocol (frugal only for
//!   bounded degree, footnote 1 of the paper).
//! * [`multiround`] — the CONGEST-with-referee extension (§IV "more
//!   rounds"), with an `O(log n)`-round connectivity protocol.
//! * [`mac`] — the workspace's keyed-MAC primitive (hand-rolled
//!   SipHash-2-4), shared by the Borůvka proposal uplinks here and the
//!   `wirenet` frame authentication layer.
//! * [`easy`] — the positive boundary: degree-statistic properties that
//!   *are* one-round frugally decidable (edge count, degree sequence,
//!   extremes/regularity, Eulerian parity, fingerprint verification).
//! * [`combinators`] — protocol algebra over [`multiround`]: see
//!   *Combinators & catalog* below.
//! * [`service`] — the type-erased referee half ([`WireReferee`]) and
//!   the named [`ServiceCatalog`] multi-protocol registry.
//!
//! # Combinators & catalog
//!
//! Protocols compose without touching the runner or the referee
//! plumbing:
//!
//! * [`combinators::Chain`] runs `P` to completion, hands its output to
//!   `Q`'s referee (via an optional bridge function), then runs `Q` —
//!   round counters concatenate, stats take the per-dimension max, and
//!   the composite is bit-for-bit equal to running `P` then `Q`
//!   back-to-back.
//! * [`combinators::Extend`] piggybacks an extra per-round uplink
//!   payload (an [`combinators::UplinkExtension`]) onto an existing
//!   protocol without perturbing its verdict.
//! * [`combinators::OneRoundAsMultiRound`] lifts any
//!   [`OneRoundProtocol`] into the multi-round runner unchanged.
//!
//! Because each combinator is itself an `impl MultiRoundProtocol`, the
//! results nest and ride every backend (direct run, sharded referee,
//! simnet, wirenet) for free.
//!
//! To expose a protocol — composed or not — as a named wire service,
//! register it in a [`ServiceCatalog`] with an output encoder:
//!
//! ```
//! use referee_protocol::multiround::BoruvkaConnectivity;
//! use referee_protocol::service::{encode_bool_output, ServiceCatalog};
//!
//! let catalog = ServiceCatalog::new()
//!     .register("boruvka", BoruvkaConnectivity, encode_bool_output);
//! ```
//!
//! A server built on a catalog serves every entry concurrently; clients
//! pick a service by name in their authenticated `Announce`. The recipe
//! for a new service: implement (or compose) the protocol, pick or
//! write a prefix-free output codec (see
//! [`service::encode_bool_output`] / [`service::encode_graph_output`]),
//! `register` it under a unique name, and hand the same catalog to the
//! server builder and to any ground-truth replay
//! ([`service::CatalogEntry::run_local`]).
//!
//! # Accountability
//!
//! Fail-closed rejection proves *something* misbehaved; [`evidence`]
//! proves *who*. Every authenticated transmission can be retained as an
//! [`EvidenceRecord`] — the exact MAC-covered bytes plus the
//! key-schedule derivation path of the key that signed them:
//!
//! ```text
//! body = [ver:1][kind:1][session:8][round:4][from:4][to:4][len_bits:4][payload]
//! tag  = siphash24(base.derive(path₀).derive(path₁)…, body)
//! ```
//!
//! When a referee observes a provable violation (the [`ProvableError`]
//! taxonomy: equivocation, duplicate sender, out-of-range sender,
//! wrong round, malformed uplink, stale replay) it packages the
//! offending records into a gamma-coded, self-contained
//! [`EvidenceBundle`]. The verification recipe for a third party — no
//! live state, no trust in the accuser:
//!
//! 1. obtain the session **base key** and the public
//!    [`SessionParams`] (session id, `n`, round cap) out of band;
//! 2. decode the bundle ([`EvidenceBundle::from_bytes`] for the
//!    self-contained byte form, [`EvidenceBundle::decode`] for the
//!    in-message form);
//! 3. run [`verify_bundle`] — it re-MACs every record under the
//!    bundle's own derivation paths and checks the *shape rule* of the
//!    claimed error; `Ok(`[`Attribution`]`)` names the culprit
//!    (`None` for documented-but-unattributable facts like identical
//!    duplicates, which an at-least-once network produces without
//!    malice), any forgery or mismatch is a typed [`EvidenceError`].
//!
//! Alternatively [`prosecute`] sweeps a whole retained transcript and
//! emits every bundle it can prove. Soundness is the **no-framing**
//! property: only the holder of the derived key can produce a
//! MAC-valid record under a path, and no set of records an honest
//! party signs satisfies any attributable shape rule — pinned by the
//! evidence proptests and the `byzantine_fleet` wire soak.

pub mod baseline;
pub mod bits;
pub mod combinators;
pub mod easy;
pub mod evidence;
pub mod frugality;
pub mod hist;
pub mod mac;
pub mod message;
pub mod model;
pub mod multiround;
pub mod referee;
pub mod service;
pub mod shard;
pub mod trace;

pub use bits::{BitReader, BitWriter};
pub use combinators::{Chain, Extend, OneRoundAsMultiRound, UplinkExtension};
pub use evidence::{
    prosecute, verify_bundle, Attribution, EvidenceBundle, EvidenceError, EvidenceRecord,
    ProvableError, SessionParams,
};
pub use frugality::{FrugalityAudit, FrugalityReport};
pub use hist::{bucket_bound, bucket_of, HistSnapshot, LatencyHistogram, HIST_BUCKETS};
pub use mac::{siphash24, siphash24_truncated, MacKey};
pub use message::Message;
pub use model::{NodeView, OneRoundProtocol};
pub use referee::{
    parallel_threshold, run_protocol, set_parallel_threshold, RunOutcome, RunStats,
};
pub use service::{RefereeStepper, ServiceCatalog, WireReferee};
pub use shard::{
    route_arrival, shard_of, shard_range, Arrival, PartialState, RefereeShard, ShardRange,
};
pub use trace::{FlightRecorder, TraceEvent, TraceKind, TraceSnapshot, DEFAULT_TRACE_CAPACITY};

/// Errors surfaced while decoding messages at the referee.
///
/// A production decoder must *reject* malformed or inconsistent message
/// vectors (failure injection tests feed it corrupted bits) — silently
/// producing a wrong graph would invalidate every experiment built on top.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Bit stream ended prematurely or a length prefix was inconsistent.
    Truncated,
    /// A field held a value outside its documented range.
    OutOfRange(String),
    /// Messages are individually well-formed but mutually inconsistent
    /// (e.g. vertex degrees violate the handshake lemma).
    Inconsistent(String),
    /// The decoded object failed a protocol-specific invariant.
    Invalid(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::OutOfRange(s) => write!(f, "value out of range: {s}"),
            DecodeError::Inconsistent(s) => write!(f, "inconsistent messages: {s}"),
            DecodeError::Invalid(s) => write!(f, "invalid decode: {s}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// `⌈log₂(n + 1)⌉`: the bit width that stores any value in `0..=n`.
/// This is the unit in which all frugality bounds are expressed.
pub fn bits_for(n: usize) -> u32 {
    (usize::BITS - n.leading_zeros()).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_for_small_values() {
        assert_eq!(bits_for(0), 1);
        assert_eq!(bits_for(1), 1);
        assert_eq!(bits_for(2), 2);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 3);
        assert_eq!(bits_for(255), 8);
        assert_eq!(bits_for(256), 9);
    }

    #[test]
    fn bits_for_covers_range() {
        for n in [0usize, 1, 5, 100, 1023, 1024] {
            let w = bits_for(n);
            assert!((1u128 << w) > n as u128, "width {w} must cover {n}");
        }
    }
}
