//! graph6 interchange codec (McKay's format).
//!
//! Lets experiment outputs name concrete witness graphs compactly (e.g.
//! the collision pairs found by the Lemma 1 pigeonhole experiment) and
//! allows cross-checking against external tools like `nauty`.
//!
//! Format: `N(n)` — one byte `n + 63` for `n ≤ 62`, or `126` followed by
//! three bytes for `n ≤ 258047` — then the upper triangle of the adjacency
//! matrix in column-major order `(0,1), (0,2), (1,2), (0,3), …`, packed
//! 6 bits per byte (MSB first), each byte offset by 63.

use crate::{GraphError, LabelledGraph};

/// Encode a graph as a graph6 string.
pub fn to_graph6(g: &LabelledGraph) -> String {
    let n = g.n();
    let mut out = Vec::new();
    if n <= 62 {
        out.push((n + 63) as u8);
    } else {
        assert!(n <= 258_047, "graph6 3-byte size limit");
        out.push(126);
        out.push(((n >> 12) & 0x3f) as u8 + 63);
        out.push(((n >> 6) & 0x3f) as u8 + 63);
        out.push((n & 0x3f) as u8 + 63);
    }
    // upper triangle, column-major: for j in 1..n, for i in 0..j
    let mut acc = 0u8;
    let mut nbits = 0;
    for j in 1..n {
        for i in 0..j {
            acc <<= 1;
            if g.has_edge((i + 1) as u32, (j + 1) as u32) {
                acc |= 1;
            }
            nbits += 1;
            if nbits == 6 {
                out.push(acc + 63);
                acc = 0;
                nbits = 0;
            }
        }
    }
    if nbits > 0 {
        acc <<= 6 - nbits;
        out.push(acc + 63);
    }
    String::from_utf8(out).expect("graph6 bytes are ASCII")
}

/// Decode a graph6 string.
pub fn from_graph6(s: &str) -> Result<LabelledGraph, GraphError> {
    let bytes = s.trim().as_bytes();
    if bytes.is_empty() {
        return Err(GraphError::Parse("empty graph6 string".into()));
    }
    let (n, pos) = if bytes[0] == 126 {
        if bytes.len() < 4 {
            return Err(GraphError::Parse("truncated graph6 size".into()));
        }
        let n = (((bytes[1] - 63) as usize) << 12)
            | (((bytes[2] - 63) as usize) << 6)
            | ((bytes[3] - 63) as usize);
        (n, 4)
    } else {
        if bytes[0] < 63 || bytes[0] > 125 {
            return Err(GraphError::Parse(format!("bad size byte {}", bytes[0])));
        }
        ((bytes[0] - 63) as usize, 1)
    };
    let nbits = n * n.saturating_sub(1) / 2;
    let nbytes = nbits.div_ceil(6);
    if bytes.len() - pos < nbytes {
        return Err(GraphError::Parse(format!(
            "need {nbytes} data bytes for n={n}, got {}",
            bytes.len() - pos
        )));
    }
    let mut g = LabelledGraph::new(n);
    let mut bit_idx = 0usize;
    'outer: for j in 1..n {
        for i in 0..j {
            let byte = bytes[pos + bit_idx / 6];
            if !(63..=126).contains(&byte) {
                return Err(GraphError::Parse(format!("bad data byte {byte}")));
            }
            let bit = (byte - 63) >> (5 - (bit_idx % 6)) & 1;
            if bit == 1 {
                g.add_edge((i + 1) as u32, (j + 1) as u32)?;
            }
            bit_idx += 1;
            if bit_idx >= nbits {
                break 'outer;
            }
        }
    }
    let _ = pos; // consumed via indexing
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn known_encodings() {
        // K3 is "Bw" in standard graph6.
        assert_eq!(to_graph6(&generators::complete(3)), "Bw");
        // P3 as 1-2-3: bits for slots (1,2),(1,3),(2,3) are 1,0,1 → 'g'.
        let p3 = LabelledGraph::from_edges(3, [(1, 2), (2, 3)]).unwrap();
        assert_eq!(to_graph6(&p3), "Bg");
        // The null graph on 0 vertices is "?".
        assert_eq!(to_graph6(&LabelledGraph::new(0)), "?");
        // K4 is "C~".
        assert_eq!(to_graph6(&generators::complete(4)), "C~");
    }

    #[test]
    fn round_trip_families() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        let graphs = vec![
            LabelledGraph::new(0),
            LabelledGraph::new(1),
            LabelledGraph::new(13),
            generators::petersen(),
            generators::grid(5, 7),
            generators::gnp(40, 0.3, &mut rng),
            generators::complete(10),
        ];
        for g in graphs {
            let enc = to_graph6(&g);
            let dec = from_graph6(&enc).unwrap();
            assert_eq!(dec, g, "round trip failed for {enc}");
        }
    }

    #[test]
    fn large_n_three_byte_header() {
        let g = LabelledGraph::from_edges(100, [(1, 100), (50, 51)]).unwrap();
        let enc = to_graph6(&g);
        assert_eq!(from_graph6(&enc).unwrap(), g);
        // n = 100 > 62 would need long form? No: 100 > 62 yes → long form.
        assert_eq!(enc.as_bytes()[0], 126);
    }

    #[test]
    fn decode_errors() {
        assert!(from_graph6("").is_err());
        assert!(from_graph6("~").is_err()); // 126 with no size bytes
        assert!(from_graph6("D").is_err()); // n=5 but no data bytes
        assert!(from_graph6("B\u{1}").is_err()); // bad data byte
    }

    #[test]
    fn trailing_whitespace_tolerated() {
        let g = generators::complete(3);
        assert_eq!(from_graph6("Bw\n").unwrap(), g);
    }

    #[test]
    fn size_boundary_62_63() {
        // n = 62 is the largest short-form size; n = 63 switches to the
        // 126-prefixed long form.
        let g62 = LabelledGraph::from_edges(62, [(1, 62)]).unwrap();
        let e62 = to_graph6(&g62);
        assert_eq!(e62.as_bytes()[0], 62 + 63);
        assert_eq!(from_graph6(&e62).unwrap(), g62);
        let g63 = LabelledGraph::from_edges(63, [(1, 63)]).unwrap();
        let e63 = to_graph6(&g63);
        assert_eq!(e63.as_bytes()[0], 126);
        assert_eq!(from_graph6(&e63).unwrap(), g63);
    }
}
