//! Global minimum edge cut (Stoer–Wagner) and edge connectivity.
//!
//! Substrate for the k-edge-connectivity sketch extension: the referee
//! peels `k` edge-disjoint spanning forests out of the sketches and then
//! needs the *exact* edge connectivity of their (sparse) union, which
//! preserves all cuts of the original graph up to size `k`. For
//! unweighted simple graphs, edge connectivity = global min cut.
//!
//! The implementation is the classical Stoer–Wagner minimum-cut-phase
//! algorithm, `O(n³)` with a plain adjacency matrix — ample for the
//! referee-side graphs these experiments produce (unions hold at most
//! `k(n−1)` edges).

use crate::{LabelledGraph, VertexId};

/// A global minimum cut: its weight (edge count) and one side of the
/// partition (original 1-based IDs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinCut {
    /// Number of edges crossing the cut.
    pub weight: usize,
    /// The vertices on one (the smaller-index-merged) side.
    pub side: Vec<VertexId>,
}

/// Stoer–Wagner global minimum cut. Returns `None` for graphs with
/// fewer than 2 vertices (no cut exists). Disconnected graphs yield
/// weight 0 with one component as the side.
pub fn global_min_cut(g: &LabelledGraph) -> Option<MinCut> {
    let n = g.n();
    if n < 2 {
        return None;
    }
    // Adjacency weights; merged vertices accumulate.
    let mut w = vec![vec![0i64; n]; n];
    for e in g.edges() {
        w[(e.0 - 1) as usize][(e.1 - 1) as usize] = 1;
        w[(e.1 - 1) as usize][(e.0 - 1) as usize] = 1;
    }
    // groups[v] = original vertices currently merged into v.
    let mut groups: Vec<Vec<VertexId>> = (1..=n as VertexId).map(|v| vec![v]).collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut best: Option<MinCut> = None;

    while active.len() > 1 {
        // Minimum cut phase: maximum-adjacency order over `active`.
        let mut in_a = vec![false; n];
        let mut weight_to_a = vec![0i64; n];
        let mut order = Vec::with_capacity(active.len());
        for _ in 0..active.len() {
            let &next = active
                .iter()
                .filter(|&&v| !in_a[v])
                .max_by_key(|&&v| weight_to_a[v])
                .expect("active vertex remains");
            in_a[next] = true;
            order.push(next);
            for &v in &active {
                if !in_a[v] {
                    weight_to_a[v] += w[next][v];
                }
            }
        }
        let t = *order.last().expect("phase order nonempty");
        let s = order[order.len() - 2];
        let cut_of_phase = {
            // weight_to_a[t] was frozen when t entered A; recompute:
            active.iter().filter(|&&v| v != t).map(|&v| w[t][v]).sum::<i64>()
        };
        let candidate = MinCut { weight: cut_of_phase as usize, side: groups[t].clone() };
        if best.as_ref().is_none_or(|b| candidate.weight < b.weight) {
            best = Some(candidate);
        }
        // Merge t into s.
        let moved = std::mem::take(&mut groups[t]);
        groups[s].extend(moved);
        for &v in &active {
            if v != s && v != t {
                w[s][v] += w[t][v];
                w[v][s] = w[s][v];
            }
        }
        active.retain(|&v| v != t);
    }
    best.map(|mut b| {
        b.side.sort_unstable();
        b
    })
}

/// Edge connectivity λ(G): the size of a global minimum cut. 0 for
/// disconnected or trivial graphs.
///
/// ```
/// use referee_graph::{algo, generators};
/// assert_eq!(algo::edge_connectivity(&generators::cycle(9).unwrap()), 2);
/// assert_eq!(algo::edge_connectivity(&generators::hypercube(4)), 4);
/// ```
pub fn edge_connectivity(g: &LabelledGraph) -> usize {
    global_min_cut(g).map_or(0, |c| c.weight)
}

/// Is `g` k-edge-connected? (Requires ≥ 2 vertices and every cut ≥ k.)
pub fn is_k_edge_connected(g: &LabelledGraph, k: usize) -> bool {
    if k == 0 {
        return true;
    }
    g.n() >= 2 && edge_connectivity(g) >= k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::{rngs::StdRng, SeedableRng};

    /// Brute force: try all 2^(n-1) bipartitions.
    fn brute_min_cut(g: &LabelledGraph) -> usize {
        let n = g.n();
        assert!((2..=16).contains(&n));
        let mut best = usize::MAX;
        for mask in 1u32..(1 << (n - 1)) {
            // vertex n always on side B to halve the search
            let crossing = g
                .edges()
                .filter(|e| {
                    let a = (e.0 as usize) < n && mask & (1 << (e.0 - 1)) != 0;
                    let b = (e.1 as usize) < n && mask & (1 << (e.1 - 1)) != 0;
                    a != b
                })
                .count();
            best = best.min(crossing);
        }
        best
    }

    #[test]
    fn known_families() {
        assert_eq!(edge_connectivity(&generators::path(6)), 1);
        assert_eq!(edge_connectivity(&generators::cycle(8).unwrap()), 2);
        assert_eq!(edge_connectivity(&generators::complete(6)), 5);
        assert_eq!(edge_connectivity(&generators::complete_bipartite(3, 5)), 3);
        assert_eq!(edge_connectivity(&generators::hypercube(3)), 3);
        assert_eq!(edge_connectivity(&generators::hypercube(4)), 4);
        assert_eq!(edge_connectivity(&generators::petersen()), 3);
        assert_eq!(edge_connectivity(&generators::grid(3, 4)), 2);
    }

    #[test]
    fn disconnected_and_trivial() {
        assert!(global_min_cut(&LabelledGraph::new(0)).is_none());
        assert!(global_min_cut(&LabelledGraph::new(1)).is_none());
        assert_eq!(edge_connectivity(&LabelledGraph::new(3)), 0);
        let g = generators::path(3).disjoint_union(&generators::path(2));
        assert_eq!(edge_connectivity(&g), 0);
    }

    #[test]
    fn bridge_graph_cut_is_one_and_side_is_correct() {
        // Two triangles joined by a bridge.
        let g = LabelledGraph::from_edges(
            6,
            [(1, 2), (2, 3), (1, 3), (4, 5), (5, 6), (4, 6), (3, 4)],
        )
        .unwrap();
        let cut = global_min_cut(&g).unwrap();
        assert_eq!(cut.weight, 1);
        assert!(cut.side == vec![1, 2, 3] || cut.side == vec![4, 5, 6], "{:?}", cut.side);
    }

    #[test]
    fn matches_brute_force_exhaustively() {
        for g in crate::enumerate::all_graphs(5) {
            assert_eq!(edge_connectivity(&g), brute_min_cut(&g), "{g:?}");
        }
    }

    #[test]
    fn matches_brute_force_on_random() {
        let mut rng = StdRng::seed_from_u64(20);
        for trial in 0..25 {
            let g = generators::gnp(10, 0.3, &mut rng);
            assert_eq!(edge_connectivity(&g), brute_min_cut(&g), "trial {trial}: {g:?}");
        }
    }

    #[test]
    fn cut_side_is_a_certificate() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..10 {
            let g = generators::gnp(12, 0.25, &mut rng);
            if let Some(cut) = global_min_cut(&g) {
                let crossing = g
                    .edges()
                    .filter(|e| {
                        cut.side.binary_search(&e.0).is_ok()
                            != cut.side.binary_search(&e.1).is_ok()
                    })
                    .count();
                assert_eq!(crossing, cut.weight, "side does not witness the weight");
                assert!(!cut.side.is_empty() && cut.side.len() < g.n());
            }
        }
    }

    #[test]
    fn k_edge_connected_predicate() {
        let c = generators::cycle(10).unwrap();
        assert!(is_k_edge_connected(&c, 0));
        assert!(is_k_edge_connected(&c, 1));
        assert!(is_k_edge_connected(&c, 2));
        assert!(!is_k_edge_connected(&c, 3));
        assert!(!is_k_edge_connected(&LabelledGraph::new(1), 1));
    }
}
