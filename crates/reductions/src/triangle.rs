//! Theorem 3: from any triangle-detection protocol `Γ`, a protocol `Δ`
//! reconstructing bipartite graphs (with the fixed balanced parts
//! `{1..n/2}` and `{n/2+1..n}`).
//!
//! The gadget `G'_{s,t}` (Figure 2) adds a single vertex `n+1` adjacent to
//! `s` and `t`; each original vertex has just two possible neighbourhoods
//! (`N` or `N ∪ {n+1}`), so `Δ^l` sends the pair `(m′ᵢ, m″ᵢ)` — "Δ is
//! frugal, since its messages are twice as big as those of Γ".

use crate::util::{bundle, unbundle};
use referee_graph::{LabelledGraph, VertexId};
use referee_protocol::{DecodeError, Message, NodeView, OneRoundProtocol};

/// The reconstruction protocol `Δ` built from a triangle detector `Γ`.
///
/// Correct whenever `G` is triangle-free; the paper instantiates it on
/// balanced bipartite graphs, of which there are `Ω(2^{(n/2)²})` — far too
/// many for Lemma 1's budget.
#[derive(Debug, Clone, Copy)]
pub struct TriangleReduction<P> {
    inner: P,
}

impl<P> TriangleReduction<P> {
    /// Wrap a triangle-detection protocol.
    pub fn new(inner: P) -> Self {
        TriangleReduction { inner }
    }
}

impl<P> OneRoundProtocol for TriangleReduction<P>
where
    P: OneRoundProtocol<Output = bool> + Sync,
{
    type Output = Result<LabelledGraph, DecodeError>;

    fn name(&self) -> String {
        format!("Δ: bipartite reconstruction via [{}] (Thm 3)", self.inner.name())
    }

    fn local(&self, view: NodeView<'_>) -> Message {
        let n1 = view.n + 1;
        let probe = (view.n + 1) as VertexId;
        let m_plain = self.inner.local(NodeView::new(n1, view.id, view.neighbours));
        let mut with_probe = Vec::with_capacity(view.degree() + 1);
        with_probe.extend_from_slice(view.neighbours);
        with_probe.push(probe);
        let m_probe = self.inner.local(NodeView::new(n1, view.id, &with_probe));
        bundle(&[m_plain, m_probe])
    }

    fn global(&self, n: usize, messages: &[Message]) -> Result<LabelledGraph, DecodeError> {
        if messages.len() != n {
            return Err(DecodeError::Inconsistent(format!(
                "expected {n} messages, got {}",
                messages.len()
            )));
        }
        let mut g = LabelledGraph::new(n);
        if n < 2 {
            return Ok(g);
        }
        let n1 = n + 1;
        let probe = (n + 1) as VertexId;
        let mut plain = Vec::with_capacity(n);
        let mut probed = Vec::with_capacity(n);
        for msg in messages {
            let parts = unbundle(msg, 2)?;
            let mut it = parts.into_iter();
            plain.push(it.next().expect("2 parts"));
            probed.push(it.next().expect("2 parts"));
        }
        for s in 1..=n as VertexId {
            for t in (s + 1)..=n as VertexId {
                let mut vec: Vec<Message> = Vec::with_capacity(n1);
                for i in 1..=n as VertexId {
                    let idx = (i - 1) as usize;
                    vec.push(if i == s || i == t {
                        probed[idx].clone()
                    } else {
                        plain[idx].clone()
                    });
                }
                vec.push(self.inner.local(NodeView::new(n1, probe, &[s, t])));
                if self.inner.global(n1, &vec) {
                    g.add_edge(s, t).expect("each pair probed once");
                }
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::TriangleOracle;
    use rand::{rngs::StdRng, SeedableRng};
    use referee_graph::{algo, enumerate, generators};
    use referee_protocol::run_protocol;

    #[test]
    fn reconstructs_balanced_bipartite_exhaustively() {
        let delta = TriangleReduction::new(TriangleOracle);
        for n in [2usize, 4, 5] {
            for g in enumerate::all_balanced_bipartite(n) {
                let out = run_protocol(&delta, &g);
                assert_eq!(out.output.unwrap(), g, "n={n}");
            }
        }
    }

    #[test]
    fn reconstructs_random_bipartite() {
        let mut rng = StdRng::seed_from_u64(60);
        let g = generators::random_balanced_bipartite(20, 0.35, &mut rng);
        let delta = TriangleReduction::new(TriangleOracle);
        assert_eq!(run_protocol(&delta, &g).output.unwrap(), g);
    }

    #[test]
    fn works_on_any_triangle_free_graph() {
        // The construction only needs triangle-freeness, not bipartiteness:
        // the Petersen graph has girth 5.
        let g = generators::petersen();
        assert!(!algo::has_triangle(&g));
        let delta = TriangleReduction::new(TriangleOracle);
        assert_eq!(run_protocol(&delta, &g).output.unwrap(), g);
    }

    #[test]
    fn message_is_two_bundled_parts() {
        let g = generators::random_balanced_bipartite(10, 0.5, &mut StdRng::seed_from_u64(61));
        let delta = TriangleReduction::new(TriangleOracle);
        let msgs = referee_protocol::referee::local_phase(&delta, &g);
        for m in &msgs {
            assert_eq!(unbundle(m, 2).unwrap().len(), 2);
        }
    }

    #[test]
    fn fails_gracefully_on_malformed() {
        let delta = TriangleReduction::new(TriangleOracle);
        let msgs = vec![Message::empty(); 4];
        assert!(delta.global(4, &msgs).is_err());
    }
}
