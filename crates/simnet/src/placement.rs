//! A sans-I/O model of cross-host shard placement under host loss —
//! the deterministic twin of `wirenet::placement`.
//!
//! The wire layer's reconnect contract is subtle: a killed shard host
//! loses exactly its volatile shard state, and the coordinator's
//! [`ShardJournal`] must rebuild it so faithfully that verdicts are
//! bit-for-bit unchanged. Debugging that through real sockets and real
//! kill schedules is miserable; [`PlacementSim`] runs the same
//! journal/replay state machine with **no I/O and a single seed**, so
//! any violation is a seed-reproducible counterexample:
//!
//! * shards are placed on simulated hosts by a
//!   [`PlacementPolicy`];
//! * a seeded schedule interleaves arrival deliveries with host
//!   **kills** — a kill wipes every un-emitted shard on the host, then
//!   the coordinator replays its journals into fresh shards (exactly
//!   what a proxy does on redial);
//! * emitted partials **commit** their journal, after which stragglers
//!   are reported as poison notices (the proxy's synthesized-notice
//!   path).
//!
//! The pinned invariant: for *any* seed, kill rate and placement, the
//! final verdict equals the monolithic
//! [`assemble_from_arrivals`](referee_protocol::referee::assemble_from_arrivals)
//! on the same arrival sequence.

use crate::clock::{Clock, ManualClock};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use referee_graph::VertexId;
use referee_protocol::shard::placement::{HostId, PlacementPolicy};
use referee_protocol::shard::replay::{Recorded, ShardJournal};
use referee_protocol::shard::{route_arrival, Arrival, PartialState, RefereeShard};
use referee_protocol::trace::{FlightRecorder, TraceKind};
use referee_protocol::{DecodeError, Message};
use std::collections::BTreeSet;

/// The single simulated assembly's trace session id (session 0 is the
/// connection-level namespace in `wirenet` traces; the sim mirrors
/// that convention).
const SIM_SESSION: u64 = 1;

/// Trace endpoint ids, mirroring `wirenet::metrics::trace_endpoint`:
/// the coordinator is endpoint 0, simulated host `h` is `0x200 + h`.
const COORDINATOR: u32 = 0;

fn host_endpoint(h: HostId) -> u32 {
    0x200 + h
}

/// Deterministic trace hook for [`PlacementSim::run_traced`]: every
/// recorded event first advances the manual clock by exactly one
/// microsecond, so the same seed reproduces the trace bit-for-bit —
/// timestamps included.
struct SimTracer<'a> {
    recorder: &'a FlightRecorder,
    clock: &'a ManualClock,
}

impl SimTracer<'_> {
    fn record(&self, endpoint: u32, kind: TraceKind, payload: u64) {
        self.clock.advance(1e-6);
        let ts_us = (self.clock.now() * 1e6).round() as u64;
        self.recorder.record(ts_us, SIM_SESSION, endpoint, kind, payload);
    }
}

/// Record through an optional tracer (no-op on the untraced path).
fn tr(tracer: Option<&SimTracer<'_>>, endpoint: u32, kind: TraceKind, payload: u64) {
    if let Some(t) = tracer {
        t.record(endpoint, kind, payload);
    }
}

/// A seeded host-loss model for one sharded assembly (see the module
/// docs).
#[derive(Debug, Clone, Copy)]
pub struct PlacementSim {
    /// Seed for the delivery order and the kill schedule.
    pub seed: u64,
    /// Probability that a host is killed (and restarted with replay)
    /// before any given delivery step.
    pub kill_rate: f64,
}

/// What one [`PlacementSim::run`] did and decided.
#[derive(Debug, Clone)]
pub struct PlacementReport {
    /// The canonical verdict of the surviving assembly.
    pub verdict: Result<Vec<Message>, DecodeError>,
    /// Host kills injected by the schedule.
    pub kills: usize,
    /// Journal entries replayed into restarted shards.
    pub replayed: usize,
    /// Shard partials emitted (including re-emissions after a kill
    /// wiped an emitted-but-uncommitted shard — impossible here, since
    /// emission and commit are atomic in the sim, but counted for
    /// completeness).
    pub partials: usize,
    /// Poison notices synthesized for post-commit stragglers.
    pub notices: usize,
}

impl PlacementSim {
    /// A sim with the given seed and kill rate (clamped to `[0, 1]`).
    pub fn new(seed: u64, kill_rate: f64) -> PlacementSim {
        PlacementSim { seed, kill_rate: kill_rate.clamp(0.0, 1.0) }
    }

    /// Drive one size-`n` assembly, placed by `policy`, over `arrivals`
    /// delivered in a seed-shuffled order with seeded host kills.
    ///
    /// Returns the verdict and the fault accounting; the verdict is
    /// bit-for-bit the monolithic one no matter the seed (pinned by
    /// property tests).
    pub fn run(
        &self,
        n: usize,
        policy: &PlacementPolicy,
        arrivals: &[(VertexId, Message)],
    ) -> PlacementReport {
        self.run_inner(n, policy, arrivals, None)
    }

    /// Like [`run`](Self::run), but records every schedule decision —
    /// kills, journal replays, deliveries, partial emit/merge, poison
    /// notices and the final verdict — into `recorder`, stamped from
    /// `clock` (advanced one microsecond per event). The verdict and
    /// fault accounting are identical to the untraced run, and the
    /// resulting [`TraceSnapshot`](referee_protocol::trace::TraceSnapshot)
    /// is a pure function of `(seed, kill_rate, n, policy, arrivals)`:
    /// the same inputs encode to byte-identical traces.
    pub fn run_traced(
        &self,
        n: usize,
        policy: &PlacementPolicy,
        arrivals: &[(VertexId, Message)],
        recorder: &FlightRecorder,
        clock: &ManualClock,
    ) -> PlacementReport {
        self.run_inner(n, policy, arrivals, Some(&SimTracer { recorder, clock }))
    }

    fn run_inner(
        &self,
        n: usize,
        policy: &PlacementPolicy,
        arrivals: &[(VertexId, Message)],
        tracer: Option<&SimTracer<'_>>,
    ) -> PlacementReport {
        let k = policy.shards();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..arrivals.len()).collect();
        order.shuffle(&mut rng);

        // Host-resident volatile state: shard i's collector, or `None`
        // once its partial was emitted (committed) — the host equivalent
        // of a shipped range.
        let mut shards: Vec<Option<RefereeShard>> =
            (0..k).map(|i| Some(RefereeShard::new(n, k, i))).collect();
        // Coordinator-resident durable state.
        let mut journals: Vec<ShardJournal> = (0..k).map(|_| ShardJournal::new(n)).collect();
        let mut acc = PartialState::new(n);
        let mut report = PlacementReport {
            verdict: Ok(Vec::new()),
            kills: 0,
            replayed: 0,
            partials: 0,
            notices: 0,
        };

        // Emit-and-commit: fold a complete/poisoned shard into the
        // accumulator and prune its journal.
        let emit_ready = |shards: &mut [Option<RefereeShard>],
                          journals: &mut [ShardJournal],
                          acc: &mut PartialState,
                          partials: &mut usize| {
            for (i, slot) in shards.iter_mut().enumerate() {
                let ready = slot.as_ref().is_some_and(|s| s.is_complete() || s.is_poisoned());
                if ready {
                    let partial = slot.take().expect("checked above").into_partial();
                    tr(
                        tracer,
                        host_endpoint(policy.host_of_shard(i)),
                        TraceKind::PartialEmit,
                        i as u64,
                    );
                    acc.merge(partial).expect("same-n partials always merge");
                    tr(tracer, COORDINATOR, TraceKind::PartialMerge, i as u64);
                    journals[i].commit(1);
                    *partials += 1;
                }
            }
        };

        // Empty ranges complete immediately (k > n).
        emit_ready(&mut shards, &mut journals, &mut acc, &mut report.partials);

        let hosts: Vec<HostId> = policy.hosts();
        for step in order {
            // Chaos first: maybe kill (and restart) a host.
            if !hosts.is_empty() && rng.gen_bool(self.kill_rate) {
                let victim = hosts[rng.gen_range(0..hosts.len())];
                report.kills += 1;
                tr(tracer, host_endpoint(victim), TraceKind::Kill, u64::from(victim));
                self.kill_and_replay(
                    n,
                    policy,
                    victim,
                    &mut shards,
                    &mut journals,
                    &mut report.replayed,
                    tracer,
                );
                emit_ready(&mut shards, &mut journals, &mut acc, &mut report.partials);
            }
            let (sender, payload) = &arrivals[step];
            let target = route_arrival(n, k, *sender);
            tr(tracer, COORDINATOR, TraceKind::Uplink, u64::from(*sender));
            // One-round discipline (the same check the wire proxy
            // runs): once the shard's partial merged, *anything* else —
            // in-range duplicate or out-of-range stray — is reported as
            // a synthesized poison notice, never re-collected.
            if journals[target].committed() {
                let poison = PartialState::poison_notice(n, *sender);
                acc.merge(poison).expect("same-n partials always merge");
                report.notices += 1;
                tr(tracer, COORDINATOR, TraceKind::Poison, u64::from(*sender));
                continue;
            }
            match journals[target].record(1, *sender, payload.clone()) {
                Recorded::Stale => unreachable!("round 1 of an uncommitted journal"),
                Recorded::Forward => {
                    let shard = shards[target]
                        .as_mut()
                        .expect("uncommitted journal implies a live shard");
                    ingest_service_policy(shard, *sender, payload.clone());
                    emit_ready(&mut shards, &mut journals, &mut acc, &mut report.partials);
                }
            }
        }

        // Merge whatever never completed (missing nodes surface as the
        // canonical missing-verdict, exactly like the monolithic wait
        // ending early).
        for (i, slot) in shards.iter_mut().enumerate() {
            if let Some(shard) = slot.take() {
                tr(
                    tracer,
                    host_endpoint(policy.host_of_shard(i)),
                    TraceKind::PartialEmit,
                    i as u64,
                );
                acc.merge(shard.into_partial()).expect("same-n partials always merge");
                tr(tracer, COORDINATOR, TraceKind::PartialMerge, i as u64);
                journals[i].commit(1);
            }
        }
        report.verdict = acc.finish();
        tr(tracer, COORDINATOR, TraceKind::Verdict, report.verdict.is_ok() as u64);
        report
    }

    /// Kill `victim`: wipe every un-committed shard it hosts, then
    /// rebuild each from its journal (the proxy's redial replay).
    #[allow(clippy::too_many_arguments)]
    fn kill_and_replay(
        &self,
        n: usize,
        policy: &PlacementPolicy,
        victim: HostId,
        shards: &mut [Option<RefereeShard>],
        journals: &mut [ShardJournal],
        replayed: &mut usize,
        tracer: Option<&SimTracer<'_>>,
    ) {
        let k = policy.shards();
        let lost: BTreeSet<usize> = (0..k)
            .filter(|&i| policy.host_of_shard(i) == victim && !journals[i].committed())
            .collect();
        for &i in &lost {
            let mut fresh = RefereeShard::new(n, k, i);
            for (_, sender, payload) in journals[i].replay() {
                ingest_service_policy(&mut fresh, sender, payload.clone());
                *replayed += 1;
                tr(tracer, host_endpoint(victim), TraceKind::Replay, u64::from(sender));
            }
            shards[i] = Some(fresh);
        }
    }
}

/// The service-side ingest policy every referee deployment in this
/// workspace uses: any duplicate is recorded as a fault, out-of-range
/// senders are recorded wherever they were routed.
fn ingest_service_policy(shard: &mut RefereeShard, sender: VertexId, payload: Message) {
    match shard.ingest(sender, payload) {
        Ok(Arrival::Fresh) | Ok(Arrival::OutOfRange) => {}
        Ok(Arrival::Duplicate { .. }) => shard.note_duplicate(sender),
        Err(_) => unreachable!("route_arrival sends every sender to its owning shard"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use referee_protocol::referee::assemble_from_arrivals;
    use referee_protocol::BitWriter;

    fn msg(v: u64, w: u32) -> Message {
        let mut wr = BitWriter::new();
        wr.write_bits(v, w);
        Message::from_writer(wr)
    }

    fn honest(n: usize) -> Vec<(VertexId, Message)> {
        (1..=n as VertexId).map(|v| (v, msg(v as u64 * 3 + 1, 12))).collect()
    }

    fn check(n: usize, arrivals: &[(VertexId, Message)], policy: &PlacementPolicy, seed: u64) {
        let mono = assemble_from_arrivals(n, arrivals.iter().cloned());
        for kill_rate in [0.0, 0.3, 0.9] {
            let sim = PlacementSim::new(seed, kill_rate);
            let got = sim.run(n, policy, arrivals);
            match (&mono, &got.verdict) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "seed {seed} rate {kill_rate}"),
                (Err(a), Err(b)) => {
                    assert_eq!(format!("{a:?}"), format!("{b:?}"), "seed {seed}")
                }
                other => panic!("verdict shape diverged (seed {seed}): {other:?}"),
            }
        }
    }

    #[test]
    fn honest_assemblies_survive_any_kill_schedule() {
        for n in [0usize, 1, 5, 17] {
            for k in [1usize, 3, 8] {
                let policy = PlacementPolicy::balanced(k, &[0, 1, 2]);
                for seed in 0..10 {
                    check(n, &honest(n), &policy, seed);
                }
            }
        }
    }

    #[test]
    fn faulty_assemblies_match_the_monolithic_verdict() {
        let policy = PlacementPolicy::balanced(4, &[0, 1]);
        let n = 9;
        // Duplicate sender.
        let mut dup = honest(n);
        dup.push((4, msg(0, 4)));
        // Out-of-range stray.
        let mut stray = honest(n);
        stray.push((99, msg(1, 4)));
        // Missing node.
        let missing: Vec<_> = honest(n).into_iter().filter(|(v, _)| *v != 6).collect();
        for (i, arrivals) in [dup, stray, missing].iter().enumerate() {
            for seed in 0..10 {
                check(n, arrivals, &policy, seed * 31 + i as u64);
            }
        }
    }

    #[test]
    fn kills_actually_happen_and_replay_rebuilds() {
        let policy = PlacementPolicy::balanced(4, &[0, 1]);
        let n = 40;
        let sim = PlacementSim::new(7, 0.5);
        let report = sim.run(n, &policy, &honest(n));
        assert!(report.kills > 0, "a 0.5 kill rate over 40 steps must kill");
        assert!(report.replayed > 0, "kills mid-collection must replay journal entries");
        assert!(report.verdict.is_ok());
    }

    #[test]
    fn traced_run_is_bit_for_bit_reproducible() {
        let policy = PlacementPolicy::balanced(4, &[0, 1, 2]);
        let n = 23;
        let arrivals = honest(n);
        let trace_of = |seed: u64| {
            let recorder = FlightRecorder::with_capacity(4096);
            let clock = ManualClock::default();
            let report = PlacementSim::new(seed, 0.4)
                .run_traced(n, &policy, &arrivals, &recorder, &clock);
            (report, recorder.snapshot().encode())
        };
        let (a_report, a_trace) = trace_of(42);
        let (b_report, b_trace) = trace_of(42);
        assert_eq!(a_trace.as_bytes(), b_trace.as_bytes(), "same seed, same bytes");
        assert_eq!(format!("{:?}", a_report.verdict), format!("{:?}", b_report.verdict));
        // A different seed schedules differently — traces diverge.
        let (_, c_trace) = trace_of(43);
        assert_ne!(a_trace.as_bytes(), c_trace.as_bytes(), "different seed, different trace");
    }

    #[test]
    fn traced_run_matches_untraced_and_records_the_schedule() {
        let policy = PlacementPolicy::balanced(4, &[0, 1]);
        let n = 40;
        let arrivals = honest(n);
        let sim = PlacementSim::new(7, 0.5);
        let plain = sim.run(n, &policy, &arrivals);
        let recorder = FlightRecorder::with_capacity(8192);
        let clock = ManualClock::default();
        let traced = sim.run_traced(n, &policy, &arrivals, &recorder, &clock);
        assert_eq!(format!("{:?}", plain.verdict), format!("{:?}", traced.verdict));
        assert_eq!(plain.kills, traced.kills);
        assert_eq!(plain.replayed, traced.replayed);

        let snap = recorder.snapshot();
        let count = |kind: TraceKind| snap.events().iter().filter(|e| e.kind == kind).count();
        assert_eq!(count(TraceKind::Kill), traced.kills);
        assert_eq!(count(TraceKind::Replay), traced.replayed);
        assert_eq!(count(TraceKind::Uplink), arrivals.len());
        assert_eq!(count(TraceKind::PartialEmit), count(TraceKind::PartialMerge));
        assert_eq!(count(TraceKind::Verdict), 1);
        // ManualClock hands every event its own tick, so the timeline is
        // causally ordered: all stamps distinct, and within each
        // endpoint's lane seq order and time order agree.
        let mut ts: Vec<u64> = snap.events().iter().map(|e| e.ts_us).collect();
        let total = ts.len();
        ts.sort_unstable();
        ts.dedup();
        assert_eq!(ts.len(), total, "one distinct tick per event");
        for w in snap.events().windows(2) {
            if w[0].session == w[1].session && w[0].endpoint == w[1].endpoint {
                assert!(w[0].seq < w[1].seq && w[0].ts_us < w[1].ts_us, "lane-monotone");
            }
        }
    }

    #[test]
    fn post_commit_stragglers_poison_via_notices() {
        // n = 1: whichever of the two sender-1 arrivals delivers first
        // completes (and commits) the only shard, so the other is a
        // post-commit straggler in *every* shuffle — it must surface as
        // a synthesized poison notice and an Inconsistent verdict.
        let policy = PlacementPolicy::from_map(vec![0]);
        for seed in 0..8 {
            let sim = PlacementSim::new(seed, 0.0);
            let report = sim.run(1, &policy, &[(1, msg(3, 4)), (1, msg(9, 4))]);
            assert!(matches!(report.verdict, Err(DecodeError::Inconsistent(_))));
            assert_eq!(report.notices, 1, "seed {seed}");
        }
    }
}
