//! One-round public-coin **spanning forest** recovery.
//!
//! [`crate::connectivity`] answers the yes/no question; this protocol
//! returns the *witness*: an explicit spanning forest of `G`, one tree
//! per connected component. The messages are identical to the
//! connectivity protocol's (per-phase ℓ₀-sketches); only the referee's
//! output differs — it keeps the edges the sketch-Borůvka run sampled.
//!
//! Guarantees (Monte-Carlo):
//!
//! * every returned edge is a genuine edge of `G` (a fake edge needs a
//!   2⁻⁶⁴ fingerprint collision), so the output is always a sub-forest;
//! * w.h.p. the forest is *spanning*: `n − c(G)` edges. Sampler misses
//!   can only leave it short, never wrong — and the referee **knows**
//!   when it may be short ([`ForestResult::complete`] is false only if
//!   some component's boundary sketch missed in every phase).
//!
//! This is the one-round analogue of the multi-round
//! `BoruvkaSpanningForest` in `referee-protocol`, and the engine behind
//! the k-edge-connectivity peeling of [`crate::kconn`].

use crate::boruvka::boruvka_components;
use crate::connectivity::SketchConnectivityProtocol;
use crate::l0::L0Sampler;
use referee_graph::{Edge, LabelledGraph};
use referee_protocol::{DecodeError, Message, NodeView, OneRoundProtocol};

/// Referee output of [`SketchSpanningForestProtocol`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForestResult {
    /// The recovered forest edges (canonical order).
    pub edges: Vec<Edge>,
    /// Number of components the referee's union–find ended with (=
    /// `c(G)` when `complete`).
    pub components: usize,
    /// True when every Borůvka phase ended without an unresolved
    /// boundary — the forest is then spanning with certainty up to
    /// fingerprint collisions.
    pub complete: bool,
}

/// One-round spanning-forest protocol: same messages as
/// [`SketchConnectivityProtocol`], richer referee output.
#[derive(Debug, Clone, Copy)]
pub struct SketchSpanningForestProtocol {
    /// Shared seed (public coins).
    pub seed: u64,
}

impl SketchSpanningForestProtocol {
    /// Protocol with the given public coins.
    pub fn new(seed: u64) -> Self {
        SketchSpanningForestProtocol { seed }
    }
}

impl OneRoundProtocol for SketchSpanningForestProtocol {
    /// The recovered forest, or a decode error.
    type Output = Result<ForestResult, DecodeError>;

    fn name(&self) -> String {
        format!("public-coin spanning forest (seed {})", self.seed)
    }

    fn local(&self, view: NodeView<'_>) -> Message {
        // Bit-identical to the connectivity protocol: reuse it.
        SketchConnectivityProtocol::new(self.seed).local(view)
    }

    fn global(&self, n: usize, messages: &[Message]) -> Self::Output {
        if messages.len() != n {
            return Err(DecodeError::Inconsistent(format!(
                "expected {n} messages, got {}",
                messages.len()
            )));
        }
        if n == 0 {
            return Ok(ForestResult { edges: Vec::new(), components: 0, complete: true });
        }
        let phases = SketchConnectivityProtocol::phases_for(n);
        let mut sketches: Vec<Vec<L0Sampler>> = Vec::with_capacity(n);
        for msg in messages {
            let mut r = msg.reader();
            let mut per_node = Vec::with_capacity(phases as usize);
            for phase in 0..phases {
                per_node.push(L0Sampler::read(&mut r, n, self.seed, phase as u64)?);
            }
            if !r.is_exhausted() {
                return Err(DecodeError::Invalid("trailing sketch bits".into()));
            }
            sketches.push(per_node);
        }
        let outcome = boruvka_components(n, &sketches, phases as usize);
        let mut edges: Vec<Edge> =
            outcome.forest.iter().map(|&(u, v)| Edge::new(u, v)).collect();
        edges.sort_unstable();
        Ok(ForestResult {
            edges,
            components: outcome.components,
            complete: outcome.boundary_clear,
        })
    }
}

/// Convenience: recover a spanning forest of `g`.
pub fn sketch_spanning_forest(g: &LabelledGraph, seed: u64) -> ForestResult {
    referee_protocol::run_protocol(&SketchSpanningForestProtocol::new(seed), g)
        .output
        .expect("honest messages decode")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use referee_graph::{algo, generators};

    fn check_is_spanning_forest(g: &LabelledGraph, r: &ForestResult) {
        // Sub-forest of G…
        let f = LabelledGraph::from_edges(g.n(), r.edges.iter().map(|e| (e.0, e.1)))
            .expect("forest edges are simple");
        assert!(algo::is_forest(&f), "returned edges contain a cycle");
        for e in &r.edges {
            assert!(g.has_edge(e.0, e.1), "fake edge {e:?}");
        }
        // …spanning when complete: same component structure.
        if r.complete {
            assert_eq!(r.components, algo::component_count(g));
            assert_eq!(r.edges.len(), g.n() - r.components);
            let gc = algo::components(g);
            let fc = algo::components(&f);
            for u in 0..g.n() {
                for v in 0..g.n() {
                    assert_eq!(gc[u] == gc[v], fc[u] == fc[v], "{u} vs {v}");
                }
            }
        }
    }

    #[test]
    fn recovers_forests_of_structured_graphs() {
        for g in [
            generators::path(40),
            generators::cycle(33).unwrap(),
            generators::grid(6, 7),
            generators::complete(20),
            generators::petersen(),
        ] {
            let r = sketch_spanning_forest(&g, 2011);
            assert!(r.complete, "{g:?} stalled");
            check_is_spanning_forest(&g, &r);
        }
    }

    #[test]
    fn multi_component_graphs() {
        let g = generators::path(11)
            .disjoint_union(&generators::cycle(8).unwrap())
            .disjoint_union(&LabelledGraph::new(3)); // 3 isolated
        let r = sketch_spanning_forest(&g, 5);
        assert!(r.complete);
        assert_eq!(r.components, 5);
        check_is_spanning_forest(&g, &r);
    }

    #[test]
    fn random_graphs_high_success() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut complete_runs = 0;
        for seed in 0..25u64 {
            let g = generators::gnp(40, 0.1, &mut rng);
            let r = sketch_spanning_forest(&g, 6000 + seed);
            check_is_spanning_forest(&g, &r);
            if r.complete {
                complete_runs += 1;
            }
        }
        assert!(complete_runs >= 23, "only {complete_runs}/25 complete");
    }

    #[test]
    fn empty_and_trivial() {
        let r = sketch_spanning_forest(&LabelledGraph::new(0), 1);
        assert_eq!(r, ForestResult { edges: vec![], components: 0, complete: true });
        let r = sketch_spanning_forest(&LabelledGraph::new(4), 1);
        assert_eq!(r.components, 4);
        assert!(r.edges.is_empty() && r.complete);
    }

    #[test]
    fn agrees_with_multiround_boruvka() {
        // The one-round sketch forest and the multi-round CONGEST forest
        // must induce the same component structure (edges may differ).
        let mut rng = StdRng::seed_from_u64(22);
        let g = generators::gnp(30, 0.09, &mut rng);
        let one_round = sketch_spanning_forest(&g, 9);
        let (mr_edges, _) = referee_protocol::multiround::boruvka_spanning_forest(&g);
        if one_round.complete {
            assert_eq!(one_round.edges.len(), mr_edges.len());
        }
    }

    #[test]
    fn malformed_rejected() {
        let p = SketchSpanningForestProtocol::new(1);
        assert!(p.global(3, &vec![Message::empty(); 3]).is_err());
    }
}
