//! Extension of Theorem 2 to **every** diameter threshold `t ≥ 3`:
//! no frugal one-round protocol decides "diam(G) ≤ t", for any fixed
//! `t ≥ 3`.
//!
//! The paper proves the case `t = 3` (Figure 1) and its technique
//! generalizes: replace the single pendant on `s` by a pendant *path* of
//! length `t − 2` ([`crate::gadgets::diameter_t_gadget`]). The neighbourhood of
//! an original vertex still takes only three forms as `(s, t)` ranges
//! over pairs, so a hypothetical `Γ` deciding "diam ≤ t" in one round
//! yields a one-round `Δ` reconstructing *arbitrary* graphs with a 3×
//! message blow-up — contradicting Lemma 1 exactly as in the paper.
//!
//! Note the blow-up in the *graph size* grows with the threshold
//! (`Γ` is invoked at size `n + t` instead of `n + 3`), but the
//! *message* blow-up stays 3: frugality is preserved for every fixed
//! `t`, so each threshold gives its own impossibility theorem.

use crate::util::{bundle, unbundle};
use referee_graph::{algo, LabelledGraph, VertexId};
use referee_protocol::baseline::AdjacencyListProtocol;
use referee_protocol::{DecodeError, Message, NodeView, OneRoundProtocol};

/// A non-frugal oracle deciding "diam(G) ≤ t" exactly (adjacency upload
/// plus centralized all-pairs BFS), used to validate
/// [`DiameterTReduction`] as a faithful simulation.
#[derive(Debug, Clone, Copy)]
pub struct DiameterTOracle {
    /// The diameter threshold this oracle decides.
    pub thresh: u32,
}

impl OneRoundProtocol for DiameterTOracle {
    type Output = bool;

    fn name(&self) -> String {
        format!("diameter≤{} oracle", self.thresh)
    }

    fn local(&self, view: NodeView<'_>) -> Message {
        AdjacencyListProtocol.local(view)
    }

    fn global(&self, n: usize, messages: &[Message]) -> bool {
        match AdjacencyListProtocol.global(n, messages) {
            Ok(g) => algo::diameter_at_most(&g, self.thresh),
            Err(_) => false,
        }
    }
}

/// The reconstruction protocol `Δ` built from any "diam ≤ t" decider
/// `Γ`. Reconstructs **arbitrary** graphs; correct for every `t ≥ 3`.
#[derive(Debug, Clone, Copy)]
pub struct DiameterTReduction<P> {
    inner: P,
    thresh: u32,
}

impl<P> DiameterTReduction<P> {
    /// Wrap a "diam ≤ thresh" decision protocol (`thresh ≥ 3`).
    pub fn new(inner: P, thresh: u32) -> Self {
        assert!(thresh >= 3, "reduction needs thresh ≥ 3, got {thresh}");
        DiameterTReduction { inner, thresh }
    }

    /// Number of gadget vertices appended to `G`: the pendant path
    /// (`t − 2`), the pendant on `t`, and the universal vertex — `t` in
    /// total (3 in the paper's `t = 3` case).
    pub fn extra_vertices(&self) -> usize {
        self.thresh as usize
    }
}

impl<P> OneRoundProtocol for DiameterTReduction<P>
where
    P: OneRoundProtocol<Output = bool> + Sync,
{
    type Output = Result<LabelledGraph, DecodeError>;

    fn name(&self) -> String {
        format!(
            "Δ: full reconstruction via [{}] (diam≤{} gadget)",
            self.inner.name(),
            self.thresh
        )
    }

    fn local(&self, view: NodeView<'_>) -> Message {
        let n = view.n;
        let big = n + self.extra_vertices();
        let ell = (self.thresh - 2) as usize;
        let p1 = (n + 1) as VertexId;
        let b = (n + ell + 1) as VertexId;
        let u = (n + ell + 2) as VertexId;
        // Form 0: untouched original vertex, N ∪ {u}.
        let mut base = Vec::with_capacity(view.degree() + 2);
        base.extend_from_slice(view.neighbours);
        base.push(u);
        let m0 = self.inner.local(NodeView::new(big, view.id, &base));
        // Form s: N ∪ {p₁, u}.
        let mut with_p = Vec::with_capacity(view.degree() + 2);
        with_p.extend_from_slice(view.neighbours);
        with_p.push(p1);
        with_p.push(u);
        let ms = self.inner.local(NodeView::new(big, view.id, &with_p));
        // Form t: N ∪ {b, u}.
        let mut with_b = Vec::with_capacity(view.degree() + 2);
        with_b.extend_from_slice(view.neighbours);
        with_b.push(b);
        with_b.push(u);
        let mt = self.inner.local(NodeView::new(big, view.id, &with_b));
        bundle(&[m0, ms, mt])
    }

    fn global(&self, n: usize, messages: &[Message]) -> Result<LabelledGraph, DecodeError> {
        if messages.len() != n {
            return Err(DecodeError::Inconsistent(format!(
                "expected {n} messages, got {}",
                messages.len()
            )));
        }
        let mut g = LabelledGraph::new(n);
        if n < 2 {
            return Ok(g);
        }
        let big = n + self.extra_vertices();
        let ell = (self.thresh - 2) as usize;
        let p = |i: usize| (n + i) as VertexId;
        let b = p(ell + 1);
        let u = p(ell + 2);

        let mut m0 = Vec::with_capacity(n);
        let mut ms = Vec::with_capacity(n);
        let mut mt = Vec::with_capacity(n);
        for msg in messages {
            let parts = unbundle(msg, 3)?;
            let mut it = parts.into_iter();
            m0.push(it.next().expect("3 parts"));
            ms.push(it.next().expect("3 parts"));
            mt.push(it.next().expect("3 parts"));
        }
        // Gadget-vertex messages that do not depend on (s, t): the
        // universal vertex and the interior of the pendant path.
        let all: Vec<VertexId> = (1..=n as VertexId).collect();
        let m_univ = self.inner.local(NodeView::new(big, u, &all));
        // Interior path vertices p_2 … p_{L-1} see {p_{i−1}, p_{i+1}};
        // p_L sees {p_{L−1}} (or {s} when L = 1 — handled per pair).
        let m_interior: Vec<Message> = (2..ell)
            .map(|i| self.inner.local(NodeView::new(big, p(i), &[p(i - 1), p(i + 1)])))
            .collect();
        let m_tail = if ell >= 2 {
            Some(self.inner.local(NodeView::new(big, p(ell), &[p(ell - 1)])))
        } else {
            None
        };

        for s in 1..=n as VertexId {
            for t in (s + 1)..=n as VertexId {
                let mut vec: Vec<Message> = Vec::with_capacity(big);
                for i in 1..=n as VertexId {
                    let idx = (i - 1) as usize;
                    vec.push(if i == s {
                        ms[idx].clone()
                    } else if i == t {
                        mt[idx].clone()
                    } else {
                        m0[idx].clone()
                    });
                }
                // p₁ sees {s} (L = 1) or {s, p₂}.
                if ell == 1 {
                    vec.push(self.inner.local(NodeView::new(big, p(1), &[s])));
                } else {
                    let mut nbrs = [s, p(2)];
                    nbrs.sort_unstable();
                    vec.push(self.inner.local(NodeView::new(big, p(1), &nbrs)));
                    for m in &m_interior {
                        vec.push(m.clone());
                    }
                    vec.push(m_tail.clone().expect("tail exists for L ≥ 2"));
                }
                vec.push(self.inner.local(NodeView::new(big, b, &[t])));
                vec.push(m_univ.clone());
                debug_assert_eq!(vec.len(), big);
                if self.inner.global(big, &vec) {
                    g.add_edge(s, t).expect("each pair probed once");
                }
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gadgets::{diameter_gadget, diameter_t_gadget};
    use rand::{rngs::StdRng, SeedableRng};
    use referee_graph::{enumerate, generators};
    use referee_protocol::run_protocol;

    #[test]
    fn gadget_iff_exhaustive_for_small_thresholds() {
        for thresh in 3..=6u32 {
            for n in 2..=4usize {
                for g in enumerate::all_graphs(n) {
                    for s in 1..=n as u32 {
                        for t in (s + 1)..=n as u32 {
                            let gadget = diameter_t_gadget(&g, s, t, thresh);
                            assert_eq!(
                                algo::diameter_at_most(&gadget, thresh),
                                g.has_edge(s, t),
                                "thresh={thresh}, n={n}, g={g:?}, s={s}, t={t}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn gadget_iff_random_large() {
        let mut rng = StdRng::seed_from_u64(60);
        for thresh in [3u32, 4, 7, 12] {
            let g = generators::gnp(30, 0.15, &mut rng);
            for (s, t) in [(1u32, 2u32), (5, 17), (29, 30), (3, 28)] {
                let gadget = diameter_t_gadget(&g, s, t, thresh);
                assert_eq!(
                    algo::diameter_at_most(&gadget, thresh),
                    g.has_edge(s, t),
                    "thresh={thresh}, s={s}, t={t}"
                );
            }
        }
    }

    #[test]
    fn thresh_3_matches_paper_gadget() {
        let mut rng = StdRng::seed_from_u64(61);
        let g = generators::gnp(9, 0.3, &mut rng);
        assert_eq!(diameter_t_gadget(&g, 2, 7, 3), diameter_gadget(&g, 2, 7));
    }

    #[test]
    fn gadget_diameter_is_exactly_thresh_or_thresh_plus_1() {
        // The proof's accounting: the critical pair realises the diameter.
        let mut rng = StdRng::seed_from_u64(62);
        let g = generators::gnp(12, 0.25, &mut rng);
        for thresh in 3..=8u32 {
            for (s, t) in [(1u32, 2u32), (4, 9)] {
                let gadget = diameter_t_gadget(&g, s, t, thresh);
                let d = algo::diameter(&gadget).finite().expect("gadget connected");
                let expect = if g.has_edge(s, t) { thresh } else { thresh + 1 };
                assert_eq!(d, expect, "thresh={thresh}, s={s}, t={t}");
            }
        }
    }

    #[test]
    fn reconstruction_exhaustive() {
        for thresh in [3u32, 4, 5] {
            let delta = DiameterTReduction::new(DiameterTOracle { thresh }, thresh);
            for n in 2..=4usize {
                for g in enumerate::all_graphs(n) {
                    let out = run_protocol(&delta, &g);
                    assert_eq!(out.output.unwrap(), g, "thresh={thresh}, n={n}");
                }
            }
        }
    }

    #[test]
    fn reconstruction_random_graphs() {
        let mut rng = StdRng::seed_from_u64(63);
        for thresh in [3u32, 5, 9] {
            let g = generators::gnp(12, 0.4, &mut rng);
            let delta = DiameterTReduction::new(DiameterTOracle { thresh }, thresh);
            assert_eq!(run_protocol(&delta, &g).output.unwrap(), g, "thresh={thresh}");
        }
    }

    #[test]
    fn blowup_is_three_independent_of_thresh() {
        // The paper's §II closing remark, extended: 3·k(n + t − 1) bits.
        let g = generators::path(8);
        for thresh in [3u32, 6, 10] {
            let delta = DiameterTReduction::new(DiameterTOracle { thresh }, thresh);
            let msgs = referee_protocol::referee::local_phase(&delta, &g);
            for m in &msgs {
                let parts = unbundle(m, 3).unwrap();
                assert_eq!(parts.len(), 3, "thresh={thresh}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "thresh ≥ 3")]
    fn rejects_thresh_below_3() {
        let _ = DiameterTReduction::new(DiameterTOracle { thresh: 2 }, 2);
    }

    #[test]
    fn oracle_decides_correctly() {
        let p = generators::path(6); // diam 5
        assert!(run_protocol(&DiameterTOracle { thresh: 5 }, &p).output);
        assert!(!run_protocol(&DiameterTOracle { thresh: 4 }, &p).output);
    }
}
