//! Vertex connectivity κ(G) via Menger's theorem and unit-capacity
//! max-flow (internally-vertex-disjoint path counting).
//!
//! Completes the connectivity substrate around the paper's §IV open
//! question: [`components`](crate::algo::components()) answers *whether*
//! the network is connected, [`mincut`](crate::algo::mincut) how many
//! **links** must fail to split it, and this module how many **nodes**
//! must fail — with the Whitney chain `κ ≤ λ ≤ δ` as the cross-check
//! invariant binding all three (property-tested exhaustively).
//!
//! Algorithm: vertex splitting (`v → v_in → v_out` with capacity 1)
//! turns vertex cuts into edge cuts; Edmonds–Karp counts disjoint paths
//! per non-adjacent pair. `κ(G) = min` over pairs — `O(n²)` flow calls,
//! each `O(κ·m)` with unit capacities. A reference implementation for
//! referee-side analysis of reconstructed topologies, not a
//! large-scale solver.

use crate::{LabelledGraph, VertexId};

/// Residual-graph arena for unit-capacity max-flow.
struct FlowNet {
    // edge arrays: to[e], cap[e]; paired edges e ^ 1 are residuals.
    to: Vec<u32>,
    cap: Vec<i32>,
    head: Vec<Vec<u32>>, // adjacency: node -> edge indices
}

impl FlowNet {
    fn new(nodes: usize) -> Self {
        FlowNet { to: Vec::new(), cap: Vec::new(), head: vec![Vec::new(); nodes] }
    }

    fn add_edge(&mut self, u: usize, v: usize, c: i32) {
        let e = self.to.len() as u32;
        self.to.push(v as u32);
        self.cap.push(c);
        self.to.push(u as u32);
        self.cap.push(0);
        self.head[u].push(e);
        self.head[v].push(e + 1);
    }

    /// One BFS augmenting step; returns whether a path was found.
    fn augment(&mut self, s: usize, t: usize) -> bool {
        let n = self.head.len();
        let mut prev_edge = vec![u32::MAX; n];
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[s] = true;
        queue.push_back(s);
        'bfs: while let Some(u) = queue.pop_front() {
            for &e in &self.head[u] {
                let v = self.to[e as usize] as usize;
                if !visited[v] && self.cap[e as usize] > 0 {
                    visited[v] = true;
                    prev_edge[v] = e;
                    if v == t {
                        break 'bfs;
                    }
                    queue.push_back(v);
                }
            }
        }
        if !visited[t] {
            return false;
        }
        // Unit capacities: augment by exactly 1 along the path.
        let mut v = t;
        while v != s {
            let e = prev_edge[v] as usize;
            self.cap[e] -= 1;
            self.cap[e ^ 1] += 1;
            v = self.to[e ^ 1] as usize;
        }
        true
    }
}

/// Number of internally-vertex-disjoint `s`–`t` paths (Menger), for
/// non-adjacent distinct `s`, `t`. Both 1-based.
pub fn vertex_disjoint_paths(g: &LabelledGraph, s: VertexId, t: VertexId) -> usize {
    assert!(s != t, "need distinct endpoints");
    assert!(!g.has_edge(s, t), "endpoints must be non-adjacent (else κ_st is unbounded)");
    let n = g.n();
    // node v (0-based i): in = 2i, out = 2i + 1.
    let mut net = FlowNet::new(2 * n);
    let big = n as i32 + 1;
    for i in 0..n {
        let c = if i == (s - 1) as usize || i == (t - 1) as usize { big } else { 1 };
        net.add_edge(2 * i, 2 * i + 1, c);
    }
    for e in g.edges() {
        let (u, v) = ((e.0 - 1) as usize, (e.1 - 1) as usize);
        net.add_edge(2 * u + 1, 2 * v, big);
        net.add_edge(2 * v + 1, 2 * u, big);
    }
    let (src, dst) = (2 * (s - 1) as usize + 1, 2 * (t - 1) as usize);
    let mut flow = 0;
    while net.augment(src, dst) {
        flow += 1;
        if flow > n {
            unreachable!("flow exceeds n (capacity accounting broken)");
        }
    }
    flow
}

/// Vertex connectivity κ(G): the minimum number of vertex deletions
/// that disconnect the graph (or leave a single vertex). Conventions:
/// `κ(K_n) = n − 1`, `κ = 0` for disconnected or trivial graphs.
pub fn vertex_connectivity(g: &LabelledGraph) -> usize {
    let n = g.n();
    if n < 2 {
        return 0;
    }
    if !crate::algo::is_connected(g) {
        return 0;
    }
    let mut best = n - 1; // complete-graph convention
                          // κ = min over non-adjacent pairs; fixing s in a minimum cut's
                          // complement is guaranteed by scanning all pairs (reference-grade).
    for s in 1..=n as VertexId {
        for t in (s + 1)..=n as VertexId {
            if !g.has_edge(s, t) {
                best = best.min(vertex_disjoint_paths(g, s, t));
                if best == 0 {
                    return 0;
                }
            }
        }
    }
    best
}

/// Is `g` k-vertex-connected?
pub fn is_k_vertex_connected(g: &LabelledGraph, k: usize) -> bool {
    if k == 0 {
        return true;
    }
    g.n() > k && vertex_connectivity(g) >= k
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{articulation_points, edge_connectivity};
    use crate::generators;
    use rand::{rngs::StdRng, SeedableRng};

    /// Brute force: smallest vertex set whose removal disconnects the
    /// remainder (bitmask subsets; test sizes keep n ≤ 10).
    fn brute_kappa(g: &LabelledGraph) -> usize {
        let n = g.n();
        if n < 2 || !crate::algo::is_connected(g) {
            return 0;
        }
        let mut best = n - 1; // complete-graph convention
        for mask in 0u32..(1 << n) {
            let size = mask.count_ones() as usize;
            if size >= best {
                continue;
            }
            let keep: Vec<VertexId> =
                (1..=n as VertexId).filter(|v| mask & (1 << (v - 1)) == 0).collect();
            if keep.len() > 1 {
                let (sub, _) = g.induced_subgraph(&keep);
                if !crate::algo::is_connected(&sub) {
                    best = size;
                }
            }
        }
        best
    }

    #[test]
    fn known_families() {
        assert_eq!(vertex_connectivity(&generators::path(6)), 1);
        assert_eq!(vertex_connectivity(&generators::cycle(8).unwrap()), 2);
        assert_eq!(vertex_connectivity(&generators::complete(6)), 5);
        assert_eq!(vertex_connectivity(&generators::complete_bipartite(3, 5)), 3);
        assert_eq!(vertex_connectivity(&generators::petersen()), 3);
        assert_eq!(vertex_connectivity(&generators::hypercube(4)), 4);
        assert_eq!(vertex_connectivity(&generators::grid(3, 4)), 2);
        assert_eq!(vertex_connectivity(&generators::wheel(8).unwrap()), 3);
    }

    #[test]
    fn trivial_and_disconnected() {
        assert_eq!(vertex_connectivity(&LabelledGraph::new(0)), 0);
        assert_eq!(vertex_connectivity(&LabelledGraph::new(1)), 0);
        assert_eq!(vertex_connectivity(&LabelledGraph::new(5)), 0);
        let g = generators::path(3).disjoint_union(&generators::complete(3));
        assert_eq!(vertex_connectivity(&g), 0);
    }

    #[test]
    fn menger_on_a_theta_graph() {
        // Two vertices joined by three internally disjoint paths.
        let g = LabelledGraph::from_edges(
            8,
            [(1, 3), (3, 2), (1, 4), (4, 5), (5, 2), (1, 6), (6, 7), (7, 8), (8, 2)],
        )
        .unwrap();
        assert_eq!(vertex_disjoint_paths(&g, 1, 2), 3);
        // κ = 2: deleting the two hubs {1, 2} strands the path interiors
        // (no single deletion disconnects anything).
        assert_eq!(vertex_connectivity(&g), 2);
    }

    #[test]
    fn articulation_iff_kappa_one() {
        let mut rng = StdRng::seed_from_u64(30);
        for _ in 0..20 {
            let g = generators::gnp(12, 0.22, &mut rng);
            if !crate::algo::is_connected(&g) || g.n() < 3 {
                continue;
            }
            let has_art = !articulation_points(&g).is_empty();
            let kappa = vertex_connectivity(&g);
            assert_eq!(kappa == 1, has_art && g.n() > 2, "{g:?}");
        }
    }

    #[test]
    fn whitney_chain_exhaustive() {
        // κ ≤ λ ≤ δ on every connected labelled graph with 5 vertices.
        for g in crate::enumerate::all_graphs(5) {
            if !crate::algo::is_connected(&g) {
                continue;
            }
            let kappa = vertex_connectivity(&g);
            let lambda = edge_connectivity(&g);
            let delta = g.vertices().map(|v| g.degree(v)).min().unwrap();
            assert!(kappa <= lambda, "{g:?}: κ={kappa} > λ={lambda}");
            assert!(lambda <= delta, "{g:?}: λ={lambda} > δ={delta}");
        }
    }

    #[test]
    fn matches_brute_force_random() {
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..15 {
            let g = generators::gnp(8, 0.4, &mut rng);
            assert_eq!(vertex_connectivity(&g), brute_kappa(&g), "trial {trial}: {g:?}");
        }
    }

    #[test]
    fn k_vertex_connected_predicate() {
        let c = generators::cycle(6).unwrap();
        assert!(is_k_vertex_connected(&c, 0));
        assert!(is_k_vertex_connected(&c, 2));
        assert!(!is_k_vertex_connected(&c, 3));
        // K4 is 3-connected but not 4-connected (n > k required).
        let k4 = generators::complete(4);
        assert!(is_k_vertex_connected(&k4, 3));
        assert!(!is_k_vertex_connected(&k4, 4));
    }

    #[test]
    #[should_panic(expected = "non-adjacent")]
    fn disjoint_paths_rejects_adjacent_endpoints() {
        let _ = vertex_disjoint_paths(&generators::complete(3), 1, 2);
    }
}
