//! Graph generators: every family the paper names plus the random models
//! the experiments sweep over.
//!
//! * [`structured`] — paths, cycles, stars, cliques, complete bipartite,
//!   grids (planar, degeneracy ≤ 2… ≤ 5 families), tori, hypercubes,
//!   Petersen.
//! * [`random`] — G(n, p), G(n, m), random trees/forests (Prüfer),
//!   balanced bipartite (Theorem 3's class), random regular (pairing
//!   model), incremental square-free (Theorem 1's class).
//! * [`degenerate`] — random k-degenerate graphs with a known elimination
//!   order, and k-trees (treewidth exactly k), the classes of Theorem 5.
//! * [`families`] — seeded workload families for catalog-wide sweeps
//!   (bounded treewidth via elimination orders, Chung–Lu power law,
//!   forced-disconnected, per-protocol adversarial inputs), enumerable
//!   through [`GraphFamily`].
//! * [`planar`] — planar-by-construction families (Apollonian networks,
//!   triangulations, outerplanar, series-parallel, wheels) exercising the
//!   §III claim "planar graphs have degeneracy 5", plus circulants and
//!   complete binary trees as companions.

pub mod degenerate;
pub mod families;
pub mod planar;
pub mod preferential;
pub mod random;
pub mod structured;

pub use degenerate::{check_degeneracy_at_most, k_tree, random_k_degenerate};
pub use families::{
    adversarial_boruvka, adversarial_degeneracy, adversarial_sketch, bounded_treewidth,
    disconnected, power_law, GraphFamily,
};
pub use planar::{
    circulant, complete_binary_tree, fan, random_apollonian, random_outerplanar, random_planar,
    random_planar_triangulation, random_series_parallel, wheel,
};
pub use preferential::{barabasi_albert, uniform_attachment};
pub use random::{
    gnm, gnp, random_balanced_bipartite, random_forest, random_regular, random_square_free,
    random_tree,
};
pub use structured::{
    caterpillar, complete, complete_bipartite, cycle, grid, hypercube, icosahedron, octahedron,
    path, petersen, star, torus,
};
