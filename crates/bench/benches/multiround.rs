//! E12/E14 (runtime side): the §IV connectivity protocols — multi-round
//! Borůvka simulation cost and one-round partition-connectivity cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{rngs::StdRng, SeedableRng};
use referee_core::partition::partition_connectivity;
use referee_graph::generators;
use referee_protocol::multiround::boruvka_connectivity;

fn bench_boruvka(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiround/boruvka");
    group.sample_size(10);
    for n in [256usize, 1024, 4096] {
        let mut rng = StdRng::seed_from_u64(50);
        let g = generators::gnp(n, 3.0 / n as f64, &mut rng);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| boruvka_connectivity(g).0)
        });
    }
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("multiround/partition");
    group.sample_size(10);
    let n = 2048usize;
    let mut rng = StdRng::seed_from_u64(51);
    let g = generators::gnp(n, 3.0 / n as f64, &mut rng);
    for k in [2usize, 8, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &g, |b, g| {
            b.iter(|| partition_connectivity(g, k).connected)
        });
    }
    group.finish();
}

fn bench_sketch_connectivity(c: &mut Criterion) {
    use referee_sketches::connectivity::sketch_connectivity;
    let mut group = c.benchmark_group("multiround/sketch_one_round");
    group.sample_size(10);
    for n in [64usize, 256, 1024] {
        let mut rng = StdRng::seed_from_u64(52);
        let g = generators::gnp(n, 3.0 / n as f64, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| sketch_connectivity(g, 7))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_boruvka, bench_partition, bench_sketch_connectivity);
criterion_main!(benches);
