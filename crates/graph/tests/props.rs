//! Property tests for the graph substrate: algorithm cross-checks against
//! independent reference implementations on random graphs.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use referee_graph::{algo, enumerate, generators, graph6, LabelledGraph};

/// Strategy: a random G(n, p) with its seed, shrinkable via the seed.
fn arb_gnp(max_n: usize) -> impl Strategy<Value = LabelledGraph> {
    (2usize..=max_n, 0u64..1000, 0u32..=10).prop_map(|(n, seed, p10)| {
        let mut rng = StdRng::seed_from_u64(seed);
        generators::gnp(n, p10 as f64 / 10.0, &mut rng)
    })
}

/// Floyd–Warshall reference for diameter.
fn diameter_reference(g: &LabelledGraph) -> Option<u32> {
    let n = g.n();
    const INF: u32 = u32::MAX / 4;
    let mut d = vec![vec![INF; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0;
    }
    for e in g.edges() {
        d[(e.0 - 1) as usize][(e.1 - 1) as usize] = 1;
        d[(e.1 - 1) as usize][(e.0 - 1) as usize] = 1;
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = d[i][k].saturating_add(d[k][j]);
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    let mut max = 0;
    for row in &d {
        for &dist in row {
            if dist >= INF {
                return None;
            }
            max = max.max(dist);
        }
    }
    Some(max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn diameter_matches_floyd_warshall(g in arb_gnp(14)) {
        prop_assert_eq!(algo::diameter(&g).finite(), diameter_reference(&g));
    }

    #[test]
    fn degeneracy_matches_brute_force(g in arb_gnp(16)) {
        prop_assert_eq!(
            algo::degeneracy_ordering(&g).degeneracy,
            algo::degeneracy_brute_force(&g)
        );
    }

    #[test]
    fn degeneracy_order_is_valid_witness(g in arb_gnp(20)) {
        let ord = algo::degeneracy_ordering(&g);
        prop_assert!(algo::degeneracy::verify_elimination_order(
            &g, &ord.order, ord.degeneracy
        ));
    }

    #[test]
    fn bipartite_iff_no_odd_cycle(g in arb_gnp(10)) {
        // reference: try all 2-colourings (n ≤ 10 ⇒ ≤ 1024)
        let n = g.n();
        let mut colourable = false;
        'outer: for mask in 0u32..(1 << n) {
            for e in g.edges() {
                let cu = (mask >> (e.0 - 1)) & 1;
                let cv = (mask >> (e.1 - 1)) & 1;
                if cu == cv {
                    continue 'outer;
                }
            }
            colourable = true;
            break;
        }
        prop_assert_eq!(algo::is_bipartite(&g), colourable);
    }

    #[test]
    fn complement_involution_and_edge_sum(g in arb_gnp(20)) {
        let c = g.complement();
        prop_assert_eq!(c.m() + g.m(), g.n() * (g.n() - 1) / 2);
        prop_assert_eq!(c.complement(), g);
    }

    #[test]
    fn graph6_round_trip(g in arb_gnp(30)) {
        let enc = graph6::to_graph6(&g);
        prop_assert_eq!(graph6::from_graph6(&enc).unwrap(), g);
    }

    #[test]
    fn spanning_forest_preserves_components(g in arb_gnp(20)) {
        let f = algo::spanning_forest(&g);
        prop_assert_eq!(f.len(), g.n() - algo::component_count(&g));
        let fg = LabelledGraph::from_edges(g.n(), f.iter().map(|e| (e.0, e.1))).unwrap();
        prop_assert_eq!(algo::components(&fg), algo::components(&g));
        prop_assert!(algo::is_forest(&fg));
    }

    #[test]
    fn mask_round_trip(n in 2usize..7, mask_seed in any::<u64>()) {
        let slots = enumerate::slot_edges(n);
        let bits = enumerate::edge_slots(n);
        let mask = mask_seed & ((1u64 << bits) - 1);
        let g = enumerate::graph_from_mask(n, mask, &slots);
        prop_assert_eq!(enumerate::mask_from_graph(&g, &slots), mask);
        prop_assert_eq!(g.m() as u32, mask.count_ones());
    }

    #[test]
    fn neighbourhood_bitset_consistent(g in arb_gnp(25)) {
        for v in g.vertices() {
            let bs = g.neighbourhood_bitset(v);
            let ids: Vec<u32> = bs.iter().map(|i| (i + 1) as u32).collect();
            prop_assert_eq!(ids.as_slice(), g.neighbourhood(v));
            prop_assert_eq!(bs.count(), g.degree(v));
        }
    }

    #[test]
    fn girth_3_iff_triangle(g in arb_gnp(12)) {
        prop_assert_eq!(algo::girth(&g) == Some(3), algo::has_triangle(&g));
    }

    #[test]
    fn eccentricity_radius_diameter_coherent(g in arb_gnp(14)) {
        match algo::eccentricities(&g) {
            None => prop_assert!(!algo::is_connected(&g)),
            Some(ecc) => {
                prop_assert!(algo::is_connected(&g));
                let max = ecc.iter().copied().max().unwrap();
                let min = ecc.iter().copied().min().unwrap();
                prop_assert_eq!(algo::diameter(&g).finite(), Some(max));
                prop_assert_eq!(algo::radius(&g), Some(min));
                // radius ≤ diameter ≤ 2·radius
                prop_assert!(min <= max && max <= 2 * min);
                // center vertices achieve the radius
                for c in algo::center(&g) {
                    prop_assert_eq!(ecc[(c - 1) as usize], min);
                }
            }
        }
    }

    #[test]
    fn relabel_preserves_invariants(g in arb_gnp(16), seed in any::<u64>()) {
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut perm: Vec<u32> = (1..=g.n() as u32).collect();
        perm.shuffle(&mut rng);
        let h = g.relabel(&perm);
        prop_assert_eq!(h.m(), g.m());
        prop_assert_eq!(algo::component_count(&h), algo::component_count(&g));
        prop_assert_eq!(algo::diameter(&h), algo::diameter(&g));
        prop_assert_eq!(
            algo::degeneracy_ordering(&h).degeneracy,
            algo::degeneracy_ordering(&g).degeneracy
        );
        prop_assert_eq!(algo::count_triangles(&h), algo::count_triangles(&g));
        prop_assert_eq!(algo::is_bipartite(&h), algo::is_bipartite(&g));
    }
}

// ---------------------------------------------------------------------------
// Extension-layer properties: treewidth, connectivity trio, patterns
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// §I.A chain with heuristic sandwich: degeneracy ≤ tw ≤ min-fill,
    /// min-degree; and the produced decompositions validate.
    #[test]
    fn treewidth_chain_and_decomposition(g in arb_gnp(9)) {
        let deg = algo::degeneracy_ordering(&g).degeneracy;
        let tw = algo::treewidth_exact(&g);
        let mf = algo::min_fill_order(&g);
        let md = algo::min_degree_order(&g);
        prop_assert!(deg <= tw);
        prop_assert!(tw <= mf.width && tw <= md.width);
        let td = algo::decomposition_from_order(&g, &mf.order);
        prop_assert!(td.validate(&g).is_ok());
        prop_assert_eq!(td.width(), mf.width);
        // any permutation's width also bounds tw
        prop_assert!(tw <= algo::width_of_order(&g, &mf.order));
    }

    /// Whitney inequalities κ ≤ λ ≤ δ on connected graphs, and the
    /// bridge/articulation characterizations of the low end.
    #[test]
    fn connectivity_trio_consistent(g in arb_gnp(10)) {
        if algo::is_connected(&g) && g.n() >= 3 {
            let kappa = algo::vertex_connectivity(&g);
            let lambda = algo::edge_connectivity(&g);
            let delta = g.vertices().map(|v| g.degree(v)).min().unwrap();
            prop_assert!(kappa <= lambda && lambda <= delta);
            prop_assert_eq!(lambda == 1, !algo::bridges(&g).is_empty());
            prop_assert_eq!(kappa == 1, !algo::articulation_points(&g).is_empty());
        }
    }

    /// Deleting a bridge splits exactly one component in two; deleting a
    /// non-bridge never changes the count.
    #[test]
    fn bridge_deletion_semantics(g in arb_gnp(12)) {
        let base = algo::component_count(&g);
        let b = algo::biconnectivity(&g);
        for e in g.edges() {
            let mut h = g.clone();
            h.remove_edge(e.0, e.1).unwrap();
            let after = algo::component_count(&h);
            if b.is_bridge(e.0, e.1) {
                prop_assert_eq!(after, base + 1);
            } else {
                prop_assert_eq!(after, base);
            }
        }
    }

    /// Subgraph-isomorphism sanity: every graph embeds into itself, into
    /// its supergraphs, and any found embedding is a valid witness.
    #[test]
    fn subgraph_embedding_properties(g in arb_gnp(8)) {
        prop_assert!(algo::has_subgraph(&g, &g));
        // adding edges preserves containment of the original pattern
        let mut super_g = g.grow(g.n() + 1);
        super_g.add_edge(1, g.n() as u32 + 1).unwrap();
        prop_assert!(algo::has_subgraph(&super_g, &g));
        // witness validity for a fixed small pattern
        let p3 = generators::path(3);
        if let Some(emb) = algo::find_subgraph(&g, &p3) {
            prop_assert_eq!(emb.len(), 3);
            prop_assert!(g.has_edge(emb[0], emb[1]) && g.has_edge(emb[1], emb[2]));
            prop_assert!(emb[0] != emb[2]);
        }
        // induced ⊆ non-induced
        let c4 = generators::cycle(4).unwrap();
        if algo::has_induced_subgraph(&g, &c4) {
            prop_assert!(algo::has_subgraph(&g, &c4));
        }
    }

    /// Generic embedding counter agrees with the specialized triangle
    /// counter (÷ |Aut(K3)| = 6).
    #[test]
    fn embedding_counts_cross_check(g in arb_gnp(8)) {
        prop_assert_eq!(
            algo::count_embeddings(&g, &generators::complete(3)) / 6,
            algo::count_triangles(&g)
        );
    }

    /// Planar-by-construction families really keep their promises, for
    /// arbitrary seeds.
    #[test]
    fn planar_generators_promises(seed in any::<u64>(), n in 4usize..40) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ap = generators::random_apollonian(n, &mut rng).unwrap();
        prop_assert_eq!(ap.m(), 3 * n - 6);
        prop_assert!(algo::degeneracy_ordering(&ap).degeneracy <= 3);

        let op = generators::random_outerplanar(n, &mut rng).unwrap();
        prop_assert_eq!(op.m(), 2 * n - 3);
        prop_assert!(algo::degeneracy_ordering(&op).degeneracy <= 2);

        let sp = generators::random_series_parallel(n, &mut rng).unwrap();
        prop_assert!(algo::degeneracy_ordering(&sp).degeneracy <= 2);
        prop_assert!(algo::is_connected(&sp));

        let tri = generators::random_planar_triangulation(n, n, &mut rng).unwrap();
        prop_assert_eq!(tri.m(), 3 * n - 6);
        prop_assert!(algo::degeneracy_ordering(&tri).degeneracy <= 5);
    }

    /// Preferential attachment: degeneracy exactly m, connected, and the
    /// edge count is deterministic.
    #[test]
    fn ba_generator_promises(seed in any::<u64>(), n in 8usize..60, m in 1usize..5) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::barabasi_albert(n, m, &mut rng).unwrap();
        prop_assert_eq!(g.m(), m * (m + 1) / 2 + m * (n - m - 1));
        prop_assert!(algo::is_connected(&g));
        prop_assert_eq!(algo::degeneracy_ordering(&g).degeneracy, m);
    }

    /// Stoer–Wagner min cut: the returned side is a certificate, and
    /// the weight matches a brute-force bipartition scan.
    #[test]
    fn mincut_certificate_and_brute(g in arb_gnp(8)) {
        if let Some(cut) = algo::global_min_cut(&g) {
            let crossing = g
                .edges()
                .filter(|e| {
                    cut.side.binary_search(&e.0).is_ok() != cut.side.binary_search(&e.1).is_ok()
                })
                .count();
            prop_assert_eq!(crossing, cut.weight);
            // brute force over bipartitions
            let n = g.n();
            let mut best = usize::MAX;
            for mask in 1u32..(1 << (n - 1)) {
                let cross = g
                    .edges()
                    .filter(|e| {
                        let a = mask & (1 << (e.0 - 1)) != 0;
                        let b = mask & (1 << (e.1 - 1)) != 0;
                        a != b
                    })
                    .count();
                best = best.min(cross);
            }
            prop_assert_eq!(cut.weight, best);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Workload families are pure functions of `(family, n, seed)`:
    /// regenerating must yield the byte-identical graph6 string, and the
    /// advertised family parameters must hold on every sample.
    #[test]
    fn workload_families_are_seed_deterministic(
        n in 10usize..40,
        seed in any::<u64>(),
    ) {
        for family in generators::GraphFamily::standard() {
            let a = graph6::to_graph6(&family.generate(n, seed));
            let b = graph6::to_graph6(&family.generate(n, seed));
            prop_assert_eq!(&a, &b, "{} must be deterministic per seed", family.name());
        }
    }

    /// Family parameters are honoured on arbitrary seeds, not just the
    /// fixed ones the unit tests use.
    #[test]
    fn workload_family_parameters_hold(
        n in 12usize..36,
        seed in any::<u64>(),
        width in 1usize..4,
        parts in 1usize..5,
    ) {
        let tw = generators::bounded_treewidth(n, width, 0.8, seed);
        prop_assert!(generators::check_degeneracy_at_most(&tw, width));
        let dis = generators::disconnected(n, parts, seed);
        prop_assert_eq!(algo::component_count(&dis), parts);
        let adv = generators::adversarial_sketch(n, seed);
        prop_assert!(algo::is_connected(&adv));
        prop_assert_eq!(algo::global_min_cut(&adv).expect("n >= 2").weight, 1);
    }
}
