//! The multi-round referee service: [`FleetServer`](crate::FleetServer)
//! in `spawn_multiround` mode runs the **referee half** of a
//! [`MultiRoundProtocol`](referee_protocol::multiround::MultiRoundProtocol)
//! itself, round by round, with the per-round uplink wait sharded
//! exactly like the one-round service. The server hosts a whole
//! [`ServiceCatalog`]: every worker keys its per-session state by
//! (connection, session, service), so one listener serves
//! heterogeneous protocols concurrently — each client names its
//! service in the MAC'd `Announce`, and an unknown name fails closed
//! with a typed error verdict instead of hanging.
//!
//! # Topology
//!
//! One **router** thread owns the listener and every client connection;
//! `k` **shard workers** each own the
//! [`RoundShard`]
//! states for their slice of every session's ID space. Per session:
//!
//! 1. the client announces `(session, n, service name)`
//!    ([`Announce`](FrameKind::Announce)); the router resolves the name
//!    against the catalog and every worker opens shard `i` for round 1
//!    under that service's referee and round cap;
//! 2. round-stamped [`Data`](FrameKind::Data) uplink frames are routed
//!    to workers by sender range; a worker whose range completes for
//!    round `r` ships its
//!    [`RoundPartialState`]
//!    as a [`Partial`](FrameKind::Partial) frame — MAC'd by the same
//!    wire codec under the exchange-domain key, its envelope stamped
//!    with the session's announce **epoch** and the round carried
//!    *inside* the authenticated payload — and advances to round `r+1`;
//! 3. worker 0 merges each round's partials (any order; empty-range
//!    shards are implied — they never emit) and, once round `r`'s
//!    quorum is complete (or poisoned, which fixes the verdict's `Err`
//!    shape), runs the protocol's
//!    [`referee_step`](referee_protocol::multiround::MultiRoundProtocol::referee_step);
//! 4. `Continue` streams one MAC'd downlink [`Data`](FrameKind::Data)
//!    frame per node back to the client (from = referee, round `r`);
//!    `Done` ships the encoded output as a
//!    [`Verdict`](FrameKind::Verdict) frame and retires the session
//!    everywhere.
//!
//! [`FleetClient::run_multiround_session`](crate::FleetClient::run_multiround_session)
//! drives the node half of the same protocol against this service:
//! node→node CONGEST links stay client-side (they never involve the
//! referee), uplinks and downlinks cross the wire, and the final
//! verdict is the server's word — the client can cross-check it against
//! a local run, exactly as `verify_session` cross-checks digests.
//!
//! # Failure behaviour
//!
//! The lifecycle mirrors [`crate::shard`]: sessions are keyed by
//! (connection, session id), epochs fence stale cross-shard partials of
//! re-announced ids, tampered frames poison their connection at the
//! router's MAC check, and faulty sessions fail fast — a duplicate or
//! out-of-range sender poisons its round, worker 0 judges without
//! waiting for quorum, and the client receives the canonical rejection
//! class instead of hanging (bounded further by the client's
//! [`WireTimeouts::verdict`](crate::WireTimeouts) round deadline). A
//! round cap on the server ([`WireReferee::round_cap`]) bounds referee
//! state even against a client that stalls mid-protocol.

use crate::auth::AuthKey;
use crate::fleet::accept_conn;
use crate::frame::{decode_frame, encode_wire_frame, FrameKind, WireError};
use crate::metrics::{trace_endpoint, Stage, WireMetrics};
use crate::placement::{run_proxy, ProxyConfig, ProxyEvent, RemotePlacement, ShardHostMode};
use crate::poll::{fd_of, Poller, PollerBackend, Readiness, Waker};
use crate::reactor::{Conn, SCRATCH_BYTES, WRITE_BACKPRESSURE_BYTES};
use crate::shard::{acc_first_order, build_evidence, evidence_record, evidence_record_for};
use referee_protocol::evidence::{EvidenceRecord, ProvableError};
use referee_protocol::multiround::RefereeStep;
use referee_protocol::shard::multiround::{RoundPartialState, RoundShard};
use referee_protocol::shard::{route_arrival, shard_range, Arrival};
use referee_protocol::trace::TraceKind;
use referee_protocol::{BitWriter, DecodeError, Message};
use referee_simnet::{Envelope, SessionId};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Domain-separation tweak for the multi-round shard-exchange key
/// (distinct from the one-round service's, so partials can never cross
/// service modes).
const MR_EXCHANGE_TWEAK: u64 = 0x6d72_7368_6172_6478; // "mrshardx"

/// How many finished session routes the router remembers (FIFO) — same
/// rationale and bound as the one-round sharded service.
const FINISHED_ROUTE_CAP: usize = 4096;

// The protocol-agnostic referee service layer — [`WireReferee`],
// [`RefereeStepper`], [`ProtocolReferee`], the output codecs, and the
// multi-protocol [`ServiceCatalog`] — lives in `protocol::service`
// (nothing about it is wire-specific); re-exported here so historical
// `referee_wirenet::multiround::…` paths keep working.
pub use referee_protocol::service::{
    boruvka_connectivity_service, decode_bool_output, decode_graph_output, encode_bool_output,
    encode_graph_output, ProtocolReferee, RefereeStepper, ServiceCatalog, WireReferee,
    MAX_SERVICE_NAME_BYTES,
};

use referee_protocol::service::{class_error, error_class};

/// Serialize a session's `Announce` payload: the 32-bit network size,
/// optionally followed by a one-byte length prefix + the UTF-8 bytes of
/// the requested catalog service's name. A bare 32-bit payload selects
/// service index 0 — exactly the wire bytes pre-catalog clients sent,
/// so single-service deployments interoperate unchanged.
pub(crate) fn encode_mr_announce(n: usize, service: Option<&str>) -> Message {
    let mut w = BitWriter::new();
    w.write_bits(n as u64, 32);
    if let Some(name) = service {
        debug_assert!(name.len() <= MAX_SERVICE_NAME_BYTES);
        w.write_bits(name.len() as u64, 8);
        for b in name.bytes() {
            w.write_bits(u64::from(b), 8);
        }
    }
    Message::from_writer(w)
}

/// Inverse of [`encode_mr_announce`]: `(n, requested service name)`.
/// `None` rejects a malformed payload (trailing bits, truncated name,
/// non-UTF-8 name) — the router closes the connection, exactly as for
/// any other undecodable frame.
fn decode_mr_announce(payload: &Message) -> Option<(usize, Option<String>)> {
    let mut r = payload.reader();
    let n = r.read_bits(32).ok()? as usize;
    if r.is_exhausted() {
        return Some((n, None));
    }
    let len = r.read_bits(8).ok()? as usize;
    let mut bytes = Vec::with_capacity(len);
    for _ in 0..len {
        bytes.push(r.read_bits(8).ok()? as u8);
    }
    if !r.is_exhausted() {
        return None;
    }
    String::from_utf8(bytes).ok().map(|name| (n, Some(name)))
}

/// Serialize a session's terminal verdict: `1` + the encoded protocol
/// output on success, else `0` + the 2-bit transport-rejection class.
pub(crate) fn encode_mr_verdict(result: &Result<Message, DecodeError>) -> Message {
    let mut w = BitWriter::new();
    match result {
        Ok(out) => {
            w.push_bit(true);
            out.append_to(&mut w);
        }
        Err(e) => {
            w.push_bit(false);
            w.write_bits(error_class(e), 2);
        }
    }
    Message::from_writer(w)
}

/// Inverse of [`encode_mr_verdict`]: the encoded protocol output, or
/// the rejection that ended the session.
pub(crate) fn decode_mr_verdict(msg: &Message) -> Result<Message, DecodeError> {
    let mut r = msg.reader();
    if r.read_bit()? {
        let mut w = BitWriter::new();
        r.copy_bits_into(&mut w, r.remaining())?;
        return Ok(Message::from_writer(w));
    }
    let class = r.read_bits(2)?;
    if !r.is_exhausted() {
        return Err(DecodeError::Invalid("trailing bits after verdict class".into()));
    }
    Err(class_error(class))
}

/// Router → worker (and worker → worker 0) traffic; sessions keyed by
/// `(conn, session)` like the one-round service.
pub(crate) enum MrMsg {
    /// A session opened: every worker creates its round-1 shard under
    /// the catalog service the router resolved (an index into the
    /// shared [`ServiceCatalog`] — the router fails unknown names
    /// closed before they reach any worker).
    Announce { conn: u32, session: u64, n: usize, epoch: u32, service: u32 },
    /// An authenticated round-stamped uplink routed to this worker's
    /// range.
    Data { conn: u32, env: Envelope },
    /// A wire-encoded [`FrameKind::Partial`] frame (worker 0 only). The
    /// envelope's `round` carries the session's announce epoch — the
    /// protocol round travels inside the authenticated payload.
    Partial(Vec<u8>),
    /// A session's verdict shipped: drop its state everywhere.
    Finish { conn: u32, session: u64 },
    /// A connection died: drop its sessions.
    Retire { conn: u32 },
}

/// Worker 0 → router.
enum MrOutbound {
    /// Stream round `round`'s downlinks (`msgs[i]` to node `i + 1`).
    Downlinks { conn: u32, session: SessionId, round: u32, msgs: Vec<Message> },
    /// The session's terminal verdict.
    Verdict { conn: u32, session: SessionId, payload: Message },
    /// A serialized evidence bundle for a provable violation observed
    /// on `conn` (any worker; judges nothing — the session stays live).
    Evidence { conn: u32, session: SessionId, from: u32, payload: Message },
}

/// The outbound channel paired with the router poller's waker: mpsc
/// sends are invisible to `epoll`, so every downlink burst or verdict
/// nudges the router out of its kernel readiness wait.
struct OutTx {
    tx: Sender<MrOutbound>,
    waker: Waker,
}

impl OutTx {
    fn send(&self, out: MrOutbound) {
        let _ = self.tx.send(out);
        self.waker.wake();
    }
}

/// Router-side per-session record.
struct SessionRoute {
    n: usize,
    finished: bool,
}

/// Per-session state inside one worker — keyed by (conn, session) in
/// the worker's map, with the resolved catalog `service` pinned at
/// announce time (the stepper and round cap are that service's; a
/// re-announced id may land on a different service under a fresh
/// epoch).
struct MrSession {
    conn: u32,
    n: usize,
    epoch: u32,
    #[allow(dead_code)] // recorded for debugging; cap + stepper already carry its effect
    service: u32,
    /// Total shards in the partition (needed to open each next round).
    shards: usize,
    /// The round this worker's shard is currently collecting.
    shard: RoundShard,
    /// Worker 0 only: the referee, its next round, and per-round merge
    /// accumulators `(state, quorum)`.
    stepper: Option<Box<dyn RefereeStepper>>,
    referee_round: u32,
    pending: BTreeMap<u32, (RoundPartialState, usize)>,
    /// Shards with non-empty ranges for this `n` — the per-round merge
    /// quorum (empty-range shards never emit; their empty partials are
    /// implied).
    needed: usize,
    /// Server-side round cap.
    cap: usize,
    /// When this worker saw the announce — the zero point for the
    /// server-side verdict stage histogram.
    opened: Instant,
    /// When the referee's current round opened (reset per round) — the
    /// zero point for the per-round partial-merge stage histogram.
    round_opened: Instant,
}

/// The multi-round-mode server loop (spawned by
/// [`FleetServer::spawn_multiround`](crate::FleetServer::spawn_multiround)).
pub(crate) fn run_multiround_server(
    listener: TcpListener,
    key: AuthKey,
    catalog: Arc<ServiceCatalog>,
    shards: usize,
    shutdown: &AtomicBool,
    metrics: &WireMetrics,
    poller: Poller,
) {
    let exchange_key = key.derive(MR_EXCHANGE_TWEAK);
    let (out_tx, out_rx) = std::sync::mpsc::channel::<MrOutbound>();
    let mut worker_txs: Vec<Sender<MrMsg>> = Vec::with_capacity(shards);
    let mut worker_rxs: Vec<Receiver<MrMsg>> = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = std::sync::mpsc::channel();
        worker_txs.push(tx);
        worker_rxs.push(rx);
    }
    thread::scope(|scope| {
        for (i, rx) in worker_rxs.into_iter().enumerate().rev() {
            let tx0 = if i == 0 { None } else { Some(worker_txs[0].clone()) };
            let otx = OutTx { tx: out_tx.clone(), waker: poller.waker() };
            let exchange_key = &exchange_key;
            let base = &key;
            let catalog = Arc::clone(&catalog);
            scope.spawn(move || {
                mr_worker(i, shards, rx, tx0, otx, exchange_key, base, catalog, metrics, true)
            });
        }
        drop(out_tx);
        mr_route(
            listener,
            key,
            &catalog,
            shards,
            shutdown,
            metrics,
            &worker_txs,
            &out_rx,
            &poller,
        );
        drop(worker_txs);
    });
}

/// Convert router traffic into the placement proxy's event type.
pub(crate) fn mr_proxy_event(m: MrMsg) -> Option<ProxyEvent> {
    match m {
        // Remote shard hosts only collect per-round uplink ranges —
        // they never run a referee, so the service index stays
        // coordinator-side.
        MrMsg::Announce { conn, session, n, epoch, service: _ } => {
            Some(ProxyEvent::Announce { conn, session, n, epoch })
        }
        MrMsg::Data { conn, env } => Some(ProxyEvent::Data { conn, env }),
        MrMsg::Finish { conn, session } => Some(ProxyEvent::Finish { conn, session }),
        MrMsg::Retire { conn } => Some(ProxyEvent::Retire { conn }),
        MrMsg::Partial(_) => None,
    }
}

/// The multi-round server loop with **remotely placed** shards: every
/// per-round range wait lives on a
/// [`ShardHost`](crate::placement::ShardHost) named by `placement`; the
/// in-process worker 0 keeps only the referee and the per-round merge
/// accumulators, fed by one proxy per shard.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_multiround_server_remote(
    listener: TcpListener,
    key: AuthKey,
    catalog: Arc<ServiceCatalog>,
    placement: RemotePlacement,
    backoff: Duration,
    shutdown: &AtomicBool,
    metrics: &WireMetrics,
    poller: Poller,
) {
    let shards = placement.shards();
    let exchange_key = key.derive(MR_EXCHANGE_TWEAK);
    let (out_tx, out_rx) = std::sync::mpsc::channel::<MrOutbound>();
    let mut worker_txs: Vec<Sender<MrMsg>> = Vec::with_capacity(shards + 1);
    let mut worker_rxs: Vec<Receiver<MrMsg>> = Vec::with_capacity(shards + 1);
    for _ in 0..=shards {
        let (tx, rx) = std::sync::mpsc::channel();
        worker_txs.push(tx);
        worker_rxs.push(rx);
    }
    thread::scope(|scope| {
        let mut rxs = worker_rxs.into_iter();
        let proxy_rxs: Vec<_> = rxs.by_ref().take(shards).collect();
        let acc_rx = rxs.next().expect("accumulator channel");
        {
            let otx = OutTx { tx: out_tx.clone(), waker: poller.waker() };
            let exchange_key = &exchange_key;
            let base = &key;
            let catalog = Arc::clone(&catalog);
            scope.spawn(move || {
                mr_worker(
                    0,
                    shards,
                    acc_rx,
                    None,
                    otx,
                    exchange_key,
                    base,
                    catalog,
                    metrics,
                    false,
                )
            });
        }
        for (i, rx) in proxy_rxs.into_iter().enumerate() {
            let acc_tx = worker_txs[shards].clone();
            let base = &key;
            let exchange_key = &exchange_key;
            let placement = &placement;
            let catalog = Arc::clone(&catalog);
            scope.spawn(move || {
                run_proxy(
                    ProxyConfig {
                        mode: ShardHostMode::MultiRound,
                        index: i,
                        shards,
                        base,
                        exchange_key,
                        placement,
                        metrics,
                        backoff,
                    },
                    rx,
                    mr_proxy_event,
                    move |bytes| {
                        let _ = acc_tx.send(MrMsg::Partial(bytes));
                    },
                    // Shard hosts are service-agnostic: they bound a
                    // session by the catalog's widest cap (worker 0
                    // judges by the exact per-service cap regardless).
                    move |n| catalog.max_round_cap(n),
                )
            });
        }
        drop(out_tx);
        mr_route(
            listener,
            key,
            &catalog,
            shards,
            shutdown,
            metrics,
            &worker_txs,
            &out_rx,
            &poller,
        );
        drop(worker_txs);
    });
}

/// The router: accepts, authenticates, routes round-stamped uplinks by
/// session + node range, and streams downlink and verdict frames back.
/// Like the echo server's pump, it rides the poller's readiness *sets*:
/// only the connections the kernel flagged are filled and parsed each
/// wake (a full probe sweep of the pool happens only when readiness
/// degrades to `All` — the sweep backend, or the capped wait timeout).
#[allow(clippy::too_many_arguments)]
fn mr_route(
    listener: TcpListener,
    key: AuthKey,
    catalog: &ServiceCatalog,
    shards: usize,
    shutdown: &AtomicBool,
    metrics: &WireMetrics,
    worker_txs: &[Sender<MrMsg>],
    out_rx: &Receiver<MrOutbound>,
    poller: &Poller,
) {
    let listener_fd = fd_of(&listener);
    poller.register(listener_fd);
    let mut gates: Vec<(u32, Conn)> = Vec::new();
    let mut announced: HashMap<(u32, u64), SessionRoute> = HashMap::new();
    let mut finished_fifo: VecDeque<(u32, u64)> = VecDeque::new();
    let mut next_id: u32 = 1;
    let mut next_epoch: u32 = 1;
    let mut scratch = vec![0u8; SCRATCH_BYTES];
    let mut ready: Vec<i32> = Vec::new();
    let mut readiness = Readiness::All;
    while !shutdown.load(Ordering::Relaxed) {
        let mut progress = false;
        if readiness == Readiness::All || ready.contains(&listener_fd) {
            while let Some((id, mut conn)) = accept_conn(&listener, &key, &mut next_id) {
                metrics.connections(1);
                conn.trace_with(metrics.recorder_arc(), trace_endpoint::SERVER);
                conn.meter_with(metrics.syscall_meter());
                poller.register(conn.fd());
                metrics.trace(0, trace_endpoint::SERVER, TraceKind::Dial, u64::from(id));
                gates.push((id, conn));
                progress = true;
            }
        }
        let pump_list: Vec<usize> = match readiness {
            Readiness::All => (0..gates.len()).collect(),
            Readiness::Fds => ready
                .iter()
                .filter_map(|fd| gates.iter().position(|(_, c)| c.fd() == *fd))
                .collect(),
        };
        for gi in pump_list {
            let (id, conn) = &mut gates[gi];
            progress |= conn.flush() > 0;
            if conn.pending_write() > WRITE_BACKPRESSURE_BYTES {
                if !conn.stalled {
                    conn.stalled = true;
                    metrics.backpressure_stalls(1);
                }
                continue;
            }
            conn.stalled = false;
            let got = conn.fill(&mut scratch);
            metrics.bytes_received(got as u64);
            progress |= got > 0;
            loop {
                match conn.next_frame() {
                    Ok(None) => break,
                    Ok(Some((FrameKind::Announce, env))) => {
                        metrics.frames_received(1);
                        let Some((n, name)) = decode_mr_announce(&env.payload) else {
                            metrics.decode_rejects(1);
                            conn.close();
                            break;
                        };
                        if announced
                            .get(&(*id, env.session.0))
                            .is_some_and(|route| !route.finished)
                        {
                            metrics.decode_rejects(1);
                            conn.close();
                            break;
                        }
                        // Resolve the requested service (a bare
                        // announce is index 0 — the pre-catalog wire
                        // format). An unknown name fails *closed*: the
                        // session is born finished with a typed error
                        // verdict already queued, so the client gets a
                        // canonical rejection instead of a hang, the
                        // connection stays usable, and no worker ever
                        // hears of the session.
                        let service = match &name {
                            None if !catalog.is_empty() => 0,
                            Some(name) if catalog.index_of(name).is_some() => {
                                catalog.index_of(name).expect("checked") as u32
                            }
                            _ => {
                                metrics.decode_rejects(1);
                                let payload =
                                    encode_mr_verdict(&Err(DecodeError::Invalid(format!(
                                        "unknown catalog service {:?}",
                                        name.as_deref().unwrap_or("")
                                    ))));
                                let verdict_env = Envelope {
                                    session: env.session,
                                    round: 0,
                                    from: 0,
                                    to: 0,
                                    payload,
                                };
                                let frame_len = conn
                                    .queue_frame_mut(FrameKind::Verdict, &verdict_env)
                                    .len();
                                metrics.frames_sent(1);
                                metrics.verdict_frames(1);
                                metrics.bytes_sent(frame_len as u64);
                                metrics.trace(
                                    env.session.0,
                                    trace_endpoint::SERVER,
                                    TraceKind::Verdict,
                                    u64::from(*id),
                                );
                                announced.insert(
                                    (*id, env.session.0),
                                    SessionRoute { n, finished: true },
                                );
                                finished_fifo.push_back((*id, env.session.0));
                                while finished_fifo.len() > FINISHED_ROUTE_CAP {
                                    let key = finished_fifo.pop_front().expect("len > cap > 0");
                                    if announced.get(&key).is_some_and(|r| r.finished) {
                                        announced.remove(&key);
                                    }
                                }
                                progress = true;
                                continue;
                            }
                        };
                        let epoch = next_epoch & 0x7fff_ffff;
                        next_epoch = next_epoch.wrapping_add(1);
                        metrics.trace(
                            env.session.0,
                            trace_endpoint::SERVER,
                            TraceKind::Announce,
                            n as u64,
                        );
                        announced
                            .insert((*id, env.session.0), SessionRoute { n, finished: false });
                        // Accumulator-first: see `acc_first_order` — a
                        // partial must never overtake its announce into
                        // the accumulator's inbox.
                        for wi in acc_first_order(worker_txs.len(), shards) {
                            let _ = worker_txs[wi].send(MrMsg::Announce {
                                conn: *id,
                                session: env.session.0,
                                n,
                                epoch,
                                service,
                            });
                        }
                        progress = true;
                    }
                    Ok(Some((FrameKind::Data, env))) => {
                        metrics.frames_received(1);
                        match announced.get(&(*id, env.session.0)) {
                            Some(route) if route.finished => {
                                metrics.orphan_frames(1);
                            }
                            Some(route) => {
                                let target = route_arrival(route.n, shards, env.from);
                                metrics.trace(
                                    env.session.0,
                                    trace_endpoint::SERVER,
                                    TraceKind::Uplink,
                                    u64::from(env.from),
                                );
                                let _ = worker_txs[target].send(MrMsg::Data { conn: *id, env });
                            }
                            None => {
                                metrics.decode_rejects(1);
                                conn.close();
                                break;
                            }
                        }
                        progress = true;
                    }
                    Ok(Some(_)) => {
                        metrics.decode_rejects(1);
                        conn.close();
                        break;
                    }
                    Err(WireError::BadMac) => {
                        metrics.mac_rejects(1);
                        metrics.trace(0, trace_endpoint::SERVER, TraceKind::MacReject, 0);
                        conn.close();
                        break;
                    }
                    Err(_) => {
                        metrics.decode_rejects(1);
                        conn.close();
                        break;
                    }
                }
            }
            // Anything the parse loop queued directly (an unknown-
            // service verdict) leaves before the conn drops off the
            // readiness radar.
            conn.flush();
        }
        // Worker traffic queues frames on connections the kernel never
        // flagged, so track which conns the drain touched and flush
        // exactly those afterwards (one batched `write(2)` per conn per
        // burst — a whole round's downlinks coalesce first).
        let mut touched: Vec<u32> = Vec::new();
        while let Ok(out) = out_rx.try_recv() {
            match out {
                MrOutbound::Downlinks { conn: cid, session, round, msgs } => {
                    match gates.iter_mut().find(|(id, c)| *id == cid && c.is_open()) {
                        Some((_, conn)) => {
                            // A whole round's downlinks coalesce in the
                            // write buffer; the post-drain flush of the
                            // touched conns ships them in one write.
                            if !touched.contains(&cid) {
                                touched.push(cid);
                            }
                            for (i, payload) in msgs.into_iter().enumerate() {
                                let env = Envelope {
                                    session,
                                    round,
                                    from: 0, // the referee
                                    to: (i + 1) as u32,
                                    payload,
                                };
                                let frame_len =
                                    conn.queue_frame_mut(FrameKind::Data, &env).len();
                                metrics.frames_sent(1);
                                metrics.downlink_frames(1);
                                metrics.bytes_sent(frame_len as u64);
                            }
                        }
                        None => metrics.orphan_frames(1),
                    }
                }
                MrOutbound::Verdict { conn: cid, session, payload } => {
                    match gates.iter_mut().find(|(id, c)| *id == cid && c.is_open()) {
                        Some((_, conn)) => {
                            if !touched.contains(&cid) {
                                touched.push(cid);
                            }
                            let env = Envelope { session, round: 0, from: 0, to: 0, payload };
                            let frame_len =
                                conn.queue_frame_mut(FrameKind::Verdict, &env).len();
                            metrics.frames_sent(1);
                            metrics.bytes_sent(frame_len as u64);
                            metrics.trace(
                                session.0,
                                trace_endpoint::SERVER,
                                TraceKind::Verdict,
                                u64::from(cid),
                            );
                        }
                        None => metrics.orphan_frames(1),
                    }
                    if let Some(route) = announced.get_mut(&(cid, session.0)) {
                        route.finished = true;
                        finished_fifo.push_back((cid, session.0));
                        while finished_fifo.len() > FINISHED_ROUTE_CAP {
                            let key = finished_fifo.pop_front().expect("len > cap > 0");
                            if announced.get(&key).is_some_and(|r| r.finished) {
                                announced.remove(&key);
                            }
                        }
                    }
                    for wi in acc_first_order(worker_txs.len(), shards) {
                        let _ = worker_txs[wi]
                            .send(MrMsg::Finish { conn: cid, session: session.0 });
                    }
                }
                MrOutbound::Evidence { conn: cid, session, from, payload } => {
                    match gates.iter_mut().find(|(id, c)| *id == cid && c.is_open()) {
                        Some((_, conn)) => {
                            if !touched.contains(&cid) {
                                touched.push(cid);
                            }
                            let env = Envelope { session, round: 0, from, to: 0, payload };
                            let frame_len =
                                conn.queue_frame_mut(FrameKind::Evidence, &env).len();
                            metrics.frames_sent(1);
                            metrics.bytes_sent(frame_len as u64);
                        }
                        None => metrics.orphan_frames(1),
                    }
                }
            }
            progress = true;
        }
        for cid in touched {
            if let Some((_, conn)) = gates.iter_mut().find(|(id, _)| *id == cid) {
                conn.flush();
            }
        }
        let closed: Vec<u32> =
            gates.iter().filter(|(_, c)| !c.is_open()).map(|(id, _)| *id).collect();
        for cid in &closed {
            announced.retain(|(owner, _), _| owner != cid);
            for wi in acc_first_order(worker_txs.len(), shards) {
                let _ = worker_txs[wi].send(MrMsg::Retire { conn: *cid });
            }
        }
        if !closed.is_empty() {
            gates.retain(|(_, c)| c.is_open());
        }
        // Epoll: pumped sockets drained to WouldBlock; new bytes arrive
        // as readiness edges and worker traffic wakes the poller via
        // the out channel's waker, so wait (the capped timeout reports
        // `All`, re-probing stalled conns at sweep cadence). Sweep: no
        // edges — re-sweep immediately while traffic flows.
        if progress && poller.backend() == PollerBackend::Sweep {
            readiness = Readiness::All;
            continue;
        }
        readiness = poller.wait_ready(&mut ready);
    }
}

/// Shards with non-empty ranges under a `shards`-way split of `1..=n` —
/// the per-round merge quorum (empty ranges never emit partials).
fn nonempty_shards(n: usize, shards: usize) -> usize {
    (0..shards).filter(|&i| !shard_range(n, shards, i).is_empty()).count()
}

/// Build, self-verify, and ship an evidence bundle for a multi-round
/// session — the mr twin of the one-round service's `emit_evidence`.
/// The bundle rides the worker→router outbound channel as an
/// [`MrOutbound::Evidence`] and reaches the client as a
/// [`FrameKind::Evidence`] frame; it never touches round/verdict
/// bookkeeping, so the session's failure path is unchanged.
#[allow(clippy::too_many_arguments)]
fn mr_evidence(
    index: usize,
    base: &AuthKey,
    session: u64,
    ws: &MrSession,
    error: ProvableError,
    records: Vec<EvidenceRecord>,
    otx: &OutTx,
    metrics: &WireMetrics,
) {
    let Some(bundle) = build_evidence(
        base,
        ws.conn,
        session,
        ws.n,
        ws.cap as u32,
        error,
        records,
        trace_endpoint::worker(index as u32),
        metrics,
    ) else {
        return;
    };
    otx.send(MrOutbound::Evidence {
        conn: ws.conn,
        session: SessionId(session),
        from: bundle.accused.unwrap_or(0),
        payload: bundle.encode(),
    });
}

/// One multi-round shard worker: owns shard `index` of every announced
/// session's per-round uplink wait. With `owns_range` false (remote
/// placement) the worker collects nothing itself — it keeps only the
/// referee and the per-round merge accumulators, its "shard" a
/// permanently empty range that never emits.
#[allow(clippy::too_many_arguments)]
fn mr_worker(
    index: usize,
    shards: usize,
    rx: Receiver<MrMsg>,
    tx0: Option<Sender<MrMsg>>,
    otx: OutTx,
    exchange_key: &AuthKey,
    base: &AuthKey,
    catalog: Arc<ServiceCatalog>,
    metrics: &WireMetrics,
    owns_range: bool,
) {
    let mut sessions: HashMap<(u32, u64), MrSession> = HashMap::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            MrMsg::Announce { conn, session, n, epoch, service } => {
                // A worker whose range is empty for this n can never
                // receive routed data and never emits: skip the session
                // entirely (worker 0 always participates — it runs the
                // referee).
                if index != 0 && shard_range(n, shards, index).is_empty() {
                    continue;
                }
                // The router resolved (and fail-closed) the service
                // name before broadcasting, so the index is valid.
                let entry =
                    catalog.by_index(service as usize).expect("router validated the service");
                let mut ws = MrSession {
                    conn,
                    n,
                    epoch,
                    service,
                    shards,
                    shard: if owns_range {
                        RoundShard::new(n, shards, index, 1)
                    } else {
                        // n = 0 yields the empty range: the emit loop
                        // returns immediately, forever.
                        RoundShard::new(0, 1, 0, 1)
                    },
                    stepper: (index == 0).then(|| entry.open(n)),
                    referee_round: 1,
                    pending: BTreeMap::new(),
                    needed: nonempty_shards(n, shards),
                    cap: entry.round_cap(n),
                    opened: Instant::now(),
                    round_opened: Instant::now(),
                };
                emit_ready_rounds(index, session, &mut ws, &tx0, exchange_key, metrics);
                if index == 0 && try_advance(session, &mut ws, &otx, metrics) {
                    continue; // e.g. n = 0: judged straight from announce
                }
                sessions.insert((conn, session), ws);
            }
            MrMsg::Data { conn, env } => {
                let session = env.session.0;
                let Some(ws) = sessions.get_mut(&(conn, session)) else {
                    metrics.orphan_frames(1);
                    continue;
                };
                let cap = ws.cap as u32;
                if env.from == 0 || env.from as usize > ws.n {
                    // Out-of-range stray: recorded round-agnostically —
                    // it poisons the current shard and fails the
                    // session fast, whatever round it claimed.
                    mr_evidence(
                        index,
                        base,
                        session,
                        ws,
                        ProvableError::OutOfRangeSender,
                        vec![evidence_record(base, conn, &env)],
                        &otx,
                        metrics,
                    );
                    let _ = ws.shard.ingest(env.from, env.payload);
                } else if env.round == ws.shard.round() {
                    match ws.shard.ingest(env.from, env.payload.clone()) {
                        Ok(Arrival::Fresh) | Ok(Arrival::OutOfRange) => {}
                        Ok(Arrival::Duplicate { identical }) => {
                            let (error, records) = if identical {
                                // Provable but NOT attributable: an
                                // at-least-once network duplicates
                                // frames too, so nobody is accused.
                                let rec = evidence_record(base, conn, &env);
                                (ProvableError::DuplicateSender, vec![rec.clone(), rec])
                            } else {
                                // Equivocation: the recorded original
                                // and the conflicting arrival, signed
                                // into the same (round, sender) slot.
                                match ws.shard.message_for(env.from).cloned() {
                                    Some(prev) => (
                                        ProvableError::Equivocation,
                                        vec![
                                            evidence_record_for(base, conn, &env, &prev),
                                            evidence_record(base, conn, &env),
                                        ],
                                    ),
                                    None => (ProvableError::Equivocation, Vec::new()),
                                }
                            };
                            if !records.is_empty() {
                                mr_evidence(
                                    index, base, session, ws, error, records, &otx, metrics,
                                );
                            }
                            ws.shard.note_duplicate(env.from);
                        }
                        Err(_) => {
                            // Router/worker range disagreement — a bug,
                            // not wire data; surfaced in metrics.
                            metrics.decode_rejects(1);
                            continue;
                        }
                    }
                } else if env.round == 0 || env.round > cap {
                    // A round stamp outside 1..=cap can never be an
                    // honest uplink of this session — provable on the
                    // frame alone. Round 0 would otherwise be absorbed
                    // as a harmless straggler; past-cap stamps poison
                    // like any other race-ahead below.
                    mr_evidence(
                        index,
                        base,
                        session,
                        ws,
                        ProvableError::WrongRound,
                        vec![evidence_record(base, conn, &env)],
                        &otx,
                        metrics,
                    );
                    if env.round > cap {
                        ws.shard.note_duplicate(env.from);
                    }
                } else if env.round < ws.shard.round() {
                    // A straggler behind an already-emitted round
                    // partial: the referee consumed that round (per-
                    // connection FIFO means the client re-sent it), so
                    // it can no longer influence any verdict.
                    metrics.orphan_frames(1);
                } else {
                    // An uplink for a round whose downlinks were never
                    // issued — a client racing ahead of the protocol.
                    // Poison the current round so the session fails
                    // fast instead of wedging.
                    ws.shard.note_duplicate(env.from);
                }
                emit_ready_rounds(index, session, ws, &tx0, exchange_key, metrics);
                if index == 0 && try_advance(session, ws, &otx, metrics) {
                    sessions.remove(&(conn, session));
                }
            }
            MrMsg::Partial(bytes) => {
                // Worker 0 only: authenticate and decode a sibling
                // shard's round partial through the wire codec.
                let decoded = match decode_frame(exchange_key, &bytes) {
                    Ok(Some(d)) if d.kind == FrameKind::Partial => d,
                    Ok(_) => {
                        metrics.decode_rejects(1);
                        continue;
                    }
                    Err(WireError::BadMac) => {
                        metrics.mac_rejects(1);
                        continue;
                    }
                    Err(_) => {
                        metrics.decode_rejects(1);
                        continue;
                    }
                };
                let session = decoded.envelope.session.0;
                let conn = decoded.envelope.to;
                let Some(ws) = sessions.get_mut(&(conn, session)) else {
                    metrics.orphan_frames(1); // finished or retired in flight
                    continue;
                };
                // The envelope's round field carries the announce epoch:
                // a stale partial from a previous run of this (conn,
                // session) key must not merge into the current one.
                if decoded.envelope.round != ws.epoch {
                    metrics.orphan_frames(1);
                    continue;
                }
                let merged = RoundPartialState::decode(ws.n, &decoded.envelope.payload)
                    .and_then(|p| {
                        let round = p.round();
                        if round < ws.referee_round {
                            // The referee already consumed this round —
                            // impossible from a live sibling (each
                            // emits once per round); defensive drop.
                            metrics.orphan_frames(1);
                            return Ok(());
                        }
                        let (acc, quorum) = ws
                            .pending
                            .remove(&round)
                            .unwrap_or_else(|| (RoundPartialState::new(ws.n, round), 0));
                        let mut acc = acc;
                        acc.merge(p)?;
                        ws.pending.insert(round, (acc, quorum + 1));
                        Ok(())
                    });
                match merged {
                    Ok(()) => {
                        metrics.trace(
                            session,
                            trace_endpoint::worker(0),
                            TraceKind::PartialMerge,
                            u64::from(decoded.envelope.from),
                        );
                        if try_advance(session, ws, &otx, metrics) {
                            sessions.remove(&(conn, session));
                        }
                    }
                    Err(e) => {
                        send_mr_verdict(session, ws, Err(e), &otx, metrics);
                        sessions.remove(&(conn, session));
                    }
                }
            }
            MrMsg::Finish { conn, session } => {
                sessions.remove(&(conn, session));
            }
            MrMsg::Retire { conn } => {
                sessions.retain(|(owner, _), _| *owner != conn);
            }
        }
    }
}

/// While this worker's current round shard is complete or poisoned,
/// emit its partial toward the accumulator and open the next round.
/// In practice the loop runs at most once per arrival burst — a freshly
/// opened round with a non-empty range has no arrivals yet — and it
/// always terminates: every iteration advances the round, and the cap
/// guard stops runaway emission for sessions the referee has already
/// judged past their cap.
fn emit_ready_rounds(
    index: usize,
    session: u64,
    ws: &mut MrSession,
    tx0: &Option<Sender<MrMsg>>,
    exchange_key: &AuthKey,
    metrics: &WireMetrics,
) {
    loop {
        if ws.shard.range().is_empty() {
            // n = 0 (worker 0 only — Announce filters everyone else):
            // there is nothing to emit, ever; the zero quorum in
            // `try_advance` supplies the implied empty partials.
            return;
        }
        if !(ws.shard.is_complete() || ws.shard.is_poisoned()) {
            return;
        }
        if ws.shard.round() as usize > ws.cap {
            return; // past the cap: the referee judges, nothing to emit
        }
        let next = RoundShard::new(ws.n, ws.shards, index, ws.shard.round() + 1);
        let partial = std::mem::replace(&mut ws.shard, next).into_partial();
        let round = partial.round();
        metrics.trace(
            session,
            trace_endpoint::worker(index as u32),
            TraceKind::PartialEmit,
            u64::from(round),
        );
        match tx0 {
            Some(tx) => {
                let payload = partial.encode();
                let body = crate::frame::HEADER_BYTES
                    + payload.len_bits().div_ceil(8)
                    + crate::frame::TAG_BYTES;
                if body > crate::frame::MAX_BODY_BYTES {
                    // A partial beyond the frame cap (a session far
                    // outside frugal message sizes) is dropped; the
                    // session starves and the client's round deadline
                    // rejects it — never a worker panic.
                    metrics.decode_rejects(1);
                    return;
                }
                let env = Envelope {
                    session: SessionId(session),
                    round: ws.epoch,
                    from: index as u32,
                    to: ws.conn,
                    payload,
                };
                metrics.partial_frames(1);
                let _ = tx.send(MrMsg::Partial(encode_wire_frame(
                    exchange_key,
                    FrameKind::Partial,
                    &env,
                )));
            }
            None => {
                let (mut acc, quorum) = ws
                    .pending
                    .remove(&round)
                    .unwrap_or_else(|| (RoundPartialState::new(ws.n, round), 0));
                if let Err(e) = acc.merge(partial) {
                    unreachable!("same-n same-round partials always merge: {e}");
                }
                ws.pending.insert(round, (acc, quorum + 1));
            }
        }
    }
}

/// Worker 0: consume every round whose quorum is complete (or whose
/// accumulator is poisoned — no further partial can turn an `Err` into
/// an `Ok`), stepping the referee in round order. Returns whether the
/// session is done (verdict sent).
fn try_advance(session: u64, ws: &mut MrSession, otx: &OutTx, metrics: &WireMetrics) -> bool {
    loop {
        if ws.referee_round as usize > ws.cap {
            send_mr_verdict(
                session,
                ws,
                Err(DecodeError::Invalid(format!(
                    "no verdict within the {}-round cap",
                    ws.cap
                ))),
                otx,
                metrics,
            );
            return true;
        }
        let round = ws.referee_round;
        let (acc, quorum) = ws
            .pending
            .remove(&round)
            .unwrap_or_else(|| (RoundPartialState::new(ws.n, round), 0));
        if quorum < ws.needed && !acc.poisoned() {
            ws.pending.insert(round, (acc, quorum));
            return false;
        }
        metrics.record_stage(Stage::PartialMerge, ws.round_opened.elapsed());
        match acc.finish() {
            Err(e) => {
                send_mr_verdict(session, ws, Err(e), otx, metrics);
                return true;
            }
            Ok(uplinks) => {
                let stepper = ws.stepper.as_mut().expect("worker 0 owns the referee");
                let stepped = Instant::now();
                let step = stepper.step(ws.n, round as usize, &uplinks);
                metrics.record_stage(Stage::RefereeStep, stepped.elapsed());
                metrics.trace(
                    session,
                    trace_endpoint::worker(0),
                    TraceKind::RefereeStep,
                    u64::from(round),
                );
                match step {
                    RefereeStep::Done(out) => {
                        send_mr_verdict(session, ws, Ok(out), otx, metrics);
                        return true;
                    }
                    RefereeStep::Continue(downlinks) => {
                        if downlinks.len() != ws.n {
                            send_mr_verdict(
                                session,
                                ws,
                                Err(DecodeError::Inconsistent(format!(
                                    "referee produced {} downlinks for {} nodes",
                                    downlinks.len(),
                                    ws.n
                                ))),
                                otx,
                                metrics,
                            );
                            return true;
                        }
                        otx.send(MrOutbound::Downlinks {
                            conn: ws.conn,
                            session: SessionId(session),
                            round,
                            msgs: downlinks,
                        });
                        ws.referee_round += 1;
                        ws.round_opened = Instant::now();
                    }
                }
            }
        }
    }
}

fn send_mr_verdict(
    session: u64,
    ws: &MrSession,
    result: Result<Message, DecodeError>,
    otx: &OutTx,
    metrics: &WireMetrics,
) {
    metrics.record_stage(Stage::Verdict, ws.opened.elapsed());
    metrics.verdict_frames(1);
    otx.send(MrOutbound::Verdict {
        conn: ws.conn,
        session: SessionId(session),
        payload: encode_mr_verdict(&result),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_output_codec_round_trips() {
        for out in [
            Ok(true),
            Ok(false),
            Err(DecodeError::Truncated),
            Err(DecodeError::OutOfRange("x".into())),
            Err(DecodeError::Inconsistent("y".into())),
            Err(DecodeError::Invalid("z".into())),
        ] {
            let decoded = decode_bool_output(&encode_bool_output(&out));
            match (&out, &decoded) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(a), Err(b)) => {
                    assert_eq!(std::mem::discriminant(a), std::mem::discriminant(b))
                }
                other => panic!("shape changed: {other:?}"),
            }
        }
    }

    #[test]
    fn mr_verdict_codec_round_trips() {
        let mut w = BitWriter::new();
        w.write_bits(0b1_0110_0101, 9);
        let payload = Message::from_writer(w);
        let ok = decode_mr_verdict(&encode_mr_verdict(&Ok(payload.clone()))).unwrap();
        assert_eq!(ok, payload);
        let empty = decode_mr_verdict(&encode_mr_verdict(&Ok(Message::empty()))).unwrap();
        assert_eq!(empty, Message::empty());
        for e in [
            DecodeError::Truncated,
            DecodeError::OutOfRange("a".into()),
            DecodeError::Inconsistent("b".into()),
            DecodeError::Invalid("c".into()),
        ] {
            let back = decode_mr_verdict(&encode_mr_verdict(&Err(e.clone()))).unwrap_err();
            assert_eq!(std::mem::discriminant(&back), std::mem::discriminant(&e));
        }
    }

    #[test]
    fn announce_codec_round_trips() {
        for (n, service) in [
            (0usize, None),
            (17, None),
            (5, Some("boruvka")),
            (1 << 20, Some("sketch-then-reconstruct")),
            (3, Some("x")),
        ] {
            let payload = encode_mr_announce(n, service);
            assert_eq!(decode_mr_announce(&payload), Some((n, service.map(str::to_string))));
        }
        // A bare 32-bit announce is exactly the pre-catalog wire bytes.
        let mut w = BitWriter::new();
        w.write_bits(42, 32);
        assert_eq!(encode_mr_announce(42, None), Message::from_writer(w));
    }

    #[test]
    fn announce_codec_rejects_malformed() {
        // Truncated name: length prefix promises more bytes than exist.
        let mut w = BitWriter::new();
        w.write_bits(5, 32);
        w.write_bits(4, 8);
        w.write_bits(u64::from(b'a'), 8);
        assert_eq!(decode_mr_announce(&Message::from_writer(w)), None);
        // Trailing bits after the name.
        let mut w = BitWriter::new();
        w.write_bits(5, 32);
        w.write_bits(1, 8);
        w.write_bits(u64::from(b'a'), 8);
        w.push_bit(true);
        assert_eq!(decode_mr_announce(&Message::from_writer(w)), None);
        // Non-UTF-8 name bytes.
        let mut w = BitWriter::new();
        w.write_bits(5, 32);
        w.write_bits(1, 8);
        w.write_bits(0xff, 8);
        assert_eq!(decode_mr_announce(&Message::from_writer(w)), None);
    }

    #[test]
    fn nonempty_shard_quorums() {
        assert_eq!(nonempty_shards(0, 4), 0);
        assert_eq!(nonempty_shards(1, 4), 1);
        assert_eq!(nonempty_shards(3, 8), 3);
        assert_eq!(nonempty_shards(10, 4), 4);
        assert_eq!(nonempty_shards(10, 1), 1);
    }
}
