//! Remote shard placement over real loopback sockets, pinned against
//! the in-process paths: for every shard count `k` in `1..=8` the
//! remote-shard verdicts equal `run_multiround_sharded` (multi-round)
//! and the one-round digests equal `vector_digest` — bit for bit,
//! including under a seeded shard-host kill/reconnect schedule — and
//! the tamper sweep accepts zero corrupted sessions.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use referee_graph::{algo, generators, LabelledGraph};
use referee_protocol::easy::EdgeCountProtocol;
use referee_protocol::multiround::BoruvkaConnectivity;
use referee_protocol::referee::local_phase;
use referee_protocol::shard::multiround::run_multiround_sharded;
use referee_simnet::SessionId;
use referee_wirenet::{
    boruvka_connectivity_service, decode_bool_output, vector_digest, AuthKey, FleetClient,
    FleetServer, PlacementPolicy, RemotePlacement, ShardHost, TamperConfig,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

const CAP: usize = 64;

fn graphs(count: usize, seed: u64) -> Vec<LabelledGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|i| generators::gnp(4 + i % 14, 0.25, &mut rng)).collect()
}

/// Two shard hosts + a remote placement of `k` shards across them.
fn placed(key: AuthKey, k: usize) -> (Vec<ShardHost>, RemotePlacement) {
    let hosts: Vec<ShardHost> =
        (0..2).map(|_| ShardHost::spawn(key).expect("bind shard host")).collect();
    let policy = PlacementPolicy::balanced(k, &[0, 1]);
    let placement = RemotePlacement::new(
        policy,
        hosts.iter().enumerate().map(|(i, h)| (i as u32, h.addr())),
    )
    .expect("addresses cover the policy");
    (hosts, placement)
}

proptest! {
    // Each case spawns real sockets; keep the case count modest — the
    // k and seed spaces are still swept.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Multi-round: remote-shard verdicts equal the in-process
    /// `run_multiround_sharded` for arbitrary k in 1..=8 and seeds.
    #[test]
    fn remote_multiround_matches_in_process(k in 1usize..=8, seed in any::<u64>()) {
        let key = AuthKey::from_seed(seed ^ 0x5eed);
        let (hosts, placement) = placed(key, k);
        let server = FleetServer::builder(key)
            .placement(placement)
            .multiround(boruvka_connectivity_service())
            .spawn()
            .expect("bind coordinator");
        let client = FleetClient::connect(server.addr(), 2, key).expect("connect");
        for (i, g) in graphs(6, seed).iter().enumerate() {
            let out = client
                .run_multiround_session(SessionId(i as u64), &BoruvkaConnectivity, g, CAP)
                .expect("honest session completes");
            let wire = decode_bool_output(&out).expect("honest uplinks decode");
            let (local, _) = run_multiround_sharded(&BoruvkaConnectivity, g, k, CAP);
            prop_assert_eq!(wire, local.expect("terminates").expect("decodes"), "k={}", k);
            prop_assert_eq!(wire, algo::is_connected(g));
        }
        let stats = server.stop();
        prop_assert_eq!(stats.mac_rejects, 0);
        drop(hosts);
    }

    /// One-round: remote-shard digests equal `vector_digest` of the
    /// sent vectors for arbitrary k in 1..=8 and seeds.
    #[test]
    fn remote_one_round_matches_digests(k in 1usize..=8, seed in any::<u64>()) {
        let key = AuthKey::from_seed(seed ^ 0xd16e);
        let (hosts, placement) = placed(key, k);
        let server =
            FleetServer::builder(key).placement(placement).spawn().expect("bind coordinator");
        let client = FleetClient::connect(server.addr(), 2, key).expect("connect");
        for (i, g) in graphs(6, seed).iter().enumerate() {
            let messages = local_phase(&EdgeCountProtocol, g);
            let arrivals =
                messages.iter().cloned().enumerate().map(|(j, m)| (j as u32 + 1, m));
            let digest = client
                .verify_session(SessionId(i as u64), g.n(), arrivals)
                .expect("honest session verifies");
            prop_assert_eq!(digest, vector_digest(&key, &messages), "k={}", k);
        }
        let stats = server.stop();
        prop_assert_eq!(stats.mac_rejects, 0);
        drop(hosts);
    }
}

/// A seeded kill/reconnect schedule mid-fleet: one shard host is
/// repeatedly stopped and respawned (on fresh ports, the address book
/// re-pointed); journal replay must keep every verdict bit-for-bit
/// equal to the in-process sharded run.
#[test]
fn kill_reconnect_schedule_preserves_verdicts() {
    let key = AuthKey::from_seed(4242);
    let k = 4usize;
    let (mut hosts, placement) = placed(key, k);
    let server = FleetServer::builder(key)
        .placement(placement.clone())
        .multiround(boruvka_connectivity_service())
        .spawn()
        .expect("bind coordinator");
    let client = FleetClient::connect(server.addr(), 2, key).expect("connect");
    let fleet = graphs(50, 99);

    let stop = Arc::new(AtomicBool::new(false));
    let chaos = {
        let stop = Arc::clone(&stop);
        let placement = placement.clone();
        let victim = hosts.pop().expect("two hosts"); // host id 1
        std::thread::spawn(move || {
            let mut victim = Some(victim);
            let mut kills = 0usize;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(25));
                let h = victim.take().expect("host present");
                h.stop(); // volatile shard state dies with it
                kills += 1;
                std::thread::sleep(Duration::from_millis(10));
                let fresh = ShardHost::spawn(key).expect("respawn");
                assert!(placement.update_host(1, fresh.addr()));
                victim = Some(fresh);
            }
            (victim, kills)
        })
    };

    let mut verdicts = Vec::new();
    for (i, g) in fleet.iter().enumerate() {
        let out = client
            .run_multiround_session(SessionId(i as u64), &BoruvkaConnectivity, g, CAP)
            .expect("honest session completes despite kills");
        verdicts.push(decode_bool_output(&out).expect("decodes"));
    }
    stop.store(true, Ordering::SeqCst);
    let (survivor, kills) = chaos.join().expect("chaos thread");
    assert!(kills > 0, "the schedule must actually kill");

    for (i, (wire, g)) in verdicts.iter().zip(&fleet).enumerate() {
        let (local, _) = run_multiround_sharded(&BoruvkaConnectivity, g, k, CAP);
        assert_eq!(
            *wire,
            local.expect("terminates").expect("decodes"),
            "session {i} diverged under the kill schedule"
        );
    }
    let stats = server.stop();
    assert!(
        stats.shard_reconnects as u64 > k as u64,
        "kills must force redials: {}",
        stats.shard_reconnects
    );
    drop(survivor);
    drop(hosts);
}

/// The tamper adversary against the remote topology: corrupted client
/// frames die at the router; zero corrupted sessions are accepted.
#[test]
fn remote_tamper_sweep_zero_undetected() {
    let key = AuthKey::from_seed(909);
    let (hosts, placement) = placed(key, 3);
    let server = FleetServer::builder(key)
        .placement(placement)
        .multiround(boruvka_connectivity_service())
        .spawn()
        .expect("bind coordinator");
    let sessions = 10usize;
    let client = FleetClient::connect(server.addr(), sessions, key)
        .expect("connect")
        .with_tamper(TamperConfig { flip_every: 3 });
    let mut failed_closed = 0usize;
    let mut undetected = 0usize;
    for (i, g) in graphs(sessions, 17).iter().enumerate() {
        match client.run_multiround_session(SessionId(i as u64), &BoruvkaConnectivity, g, CAP) {
            Err(_) => failed_closed += 1,
            Ok(out) => {
                if decode_bool_output(&out) != Ok(algo::is_connected(g)) {
                    undetected += 1;
                }
            }
        }
    }
    assert_eq!(undetected, 0, "a corrupted session was accepted");
    assert!(failed_closed > 0, "tampering every 3rd frame must hit most sessions");
    let stats = server.stop();
    assert!(stats.mac_rejects > 0, "corruption must die at the router MAC check");
    drop(hosts);
}

/// n = 0 and tiny sessions ride the remote path too (empty-range shards
/// are implied at the accumulator, never announced to hosts in
/// multi-round mode).
#[test]
fn remote_trivial_sizes() {
    let key = AuthKey::from_seed(31337);
    let (hosts, placement) = placed(key, 5);
    let server = FleetServer::builder(key)
        .placement(placement)
        .multiround(boruvka_connectivity_service())
        .spawn()
        .expect("bind coordinator");
    let client = FleetClient::connect(server.addr(), 1, key).expect("connect");
    for (i, (g, want)) in [
        (LabelledGraph::new(0), true),
        (LabelledGraph::new(1), true),
        (LabelledGraph::new(2), false),
        (generators::path(3), true),
    ]
    .into_iter()
    .enumerate()
    {
        let out = client
            .run_multiround_session(SessionId(i as u64), &BoruvkaConnectivity, &g, CAP)
            .expect("honest session completes");
        assert_eq!(decode_bool_output(&out).unwrap(), want, "graph {i}");
    }
    server.stop();
    drop(hosts);
}
