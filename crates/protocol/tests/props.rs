//! Property tests for the model crate: bit-stream round-trips, simulator
//! invariants, and multi-round protocols against centralized truth.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use referee_graph::{algo, generators};
use referee_protocol::baseline::AdjacencyListProtocol;
use referee_protocol::multiround::{boruvka_connectivity, boruvka_spanning_forest};
use referee_protocol::{run_protocol, BitWriter, Message};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bit_fields_round_trip(fields in proptest::collection::vec((any::<u64>(), 1u32..=64), 0..20)) {
        let mut w = BitWriter::new();
        let mut masked = Vec::new();
        for &(v, width) in &fields {
            let m = if width == 64 { v } else { v & ((1u64 << width) - 1) };
            w.write_bits(m, width);
            masked.push((m, width));
        }
        let expect_len: usize = fields.iter().map(|&(_, w)| w as usize).sum();
        let msg = Message::from_writer(w);
        prop_assert_eq!(msg.len_bits(), expect_len);
        let mut r = msg.reader();
        for (m, width) in masked {
            prop_assert_eq!(r.read_bits(width).unwrap(), m);
        }
        prop_assert!(r.is_exhausted());
    }

    #[test]
    fn gamma_codes_round_trip(values in proptest::collection::vec(1u64.., 0..50)) {
        let mut w = BitWriter::new();
        for &v in &values {
            w.write_gamma(v);
        }
        let msg = Message::from_writer(w);
        let mut r = msg.reader();
        for &v in &values {
            prop_assert_eq!(r.read_gamma().unwrap(), v);
        }
        prop_assert!(r.is_exhausted());
    }

    #[test]
    fn mixed_fields_and_gammas(pairs in proptest::collection::vec((1u64..1_000_000, 0u64..256), 0..30)) {
        let mut w = BitWriter::new();
        for &(g, f) in &pairs {
            w.write_gamma(g);
            w.write_bits(f, 8);
        }
        let msg = Message::from_writer(w);
        let mut r = msg.reader();
        for &(g, f) in &pairs {
            prop_assert_eq!(r.read_gamma().unwrap(), g);
            prop_assert_eq!(r.read_bits(8).unwrap(), f);
        }
    }

    #[test]
    fn reader_never_reads_past_end(len in 0usize..64, ask in 0u32..=64) {
        let w = {
            let mut w = BitWriter::new();
            for i in 0..len {
                w.push_bit(i % 2 == 0);
            }
            w
        };
        let msg = Message::from_writer(w);
        let mut r = msg.reader();
        if (ask as usize) <= len {
            prop_assert!(r.read_bits(ask).is_ok());
        } else {
            prop_assert!(r.read_bits(ask).is_err());
        }
    }

    #[test]
    fn adjacency_baseline_round_trips(n in 1usize..40, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(n, 0.25, &mut rng);
        let out = run_protocol(&AdjacencyListProtocol, &g);
        prop_assert_eq!(out.output.unwrap(), g.clone());
        // max message = (Δ + 1) · width exactly
        let width = referee_protocol::bits_for(n) as usize;
        prop_assert_eq!(out.stats.max_message_bits, (g.max_degree() + 1) * width);
    }

    #[test]
    fn boruvka_matches_centralized(n in 2usize..60, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(n, 2.0 / n as f64, &mut rng);
        let (ans, stats) = boruvka_connectivity(&g);
        prop_assert_eq!(ans, algo::is_connected(&g));
        prop_assert!(stats.rounds <= 4 * referee_protocol::bits_for(n) as usize + 8);
    }

    #[test]
    fn spanning_forest_invariants(n in 2usize..40, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(n, 0.1, &mut rng);
        let (forest, _) = boruvka_spanning_forest(&g);
        prop_assert_eq!(forest.len(), n - algo::component_count(&g));
        for &(u, v) in &forest {
            prop_assert!(g.has_edge(u, v));
        }
        // sorted canonical output
        prop_assert!(forest.windows(2).all(|w| w[0] < w[1]));
    }
}
