//! The sharded referee service: [`FleetServer`](crate::FleetServer) in
//! `spawn_sharded` mode assembles sessions itself instead of echoing.
//!
//! # Topology
//!
//! One **router** thread owns the listener and every client connection;
//! `k` **shard workers** each own the [`RefereeShard`] states for
//! their slice of every session's ID space. Per session:
//!
//! 1. the client announces `(session, n)`
//!    ([`Announce`](FrameKind::Announce)); the router broadcasts it so
//!    every worker opens its shard (`shard i` owning
//!    `shard_range(n, k, i)`);
//! 2. authenticated [`Data`](FrameKind::Data) frames are routed to
//!    workers by sender range (`route_arrival`) — the router never
//!    touches payloads;
//! 3. a worker whose range completes serializes its
//!    [`PartialState`] into a
//!    [`Partial`](FrameKind::Partial) frame — encoded and MAC'd by the
//!    **same wire codec** as everything else, under a key derived for
//!    the exchange domain — and ships it to worker 0 (in-process by
//!    default; with a [`RemotePlacement`] the ranges live on
//!    [`ShardHost`](crate::placement::ShardHost) peers instead — see
//!    [`crate::placement`]);
//! 4. worker 0 merges the `k` partials (any arrival order — merge is
//!    commutative) and finishes: the canonical verdict plus, on
//!    success, a keyed [`vector_digest`] of the assembled message
//!    vector, returned to the client as a
//!    [`Verdict`](FrameKind::Verdict) frame under the client
//!    connection's derived key.
//!
//! # Lifecycle and failure behaviour
//!
//! Sessions are keyed by **(connection, session id)** end to end, so
//! independent clients may number their sessions identically. A judged
//! session is retired from the router and every worker the moment its
//! verdict ships (the id becomes re-announceable on its connection);
//! a dying connection retires all of its sessions everywhere.
//!
//! Faulty sessions fail **fast**: a duplicate or out-of-range sender
//! fixes the verdict's `Err` shape, so the observing shard emits its
//! (poisoned) partial immediately — and arrivals landing after a shard
//! already shipped are themselves reported as poison notices — letting
//! worker 0 judge without waiting for ranges that may never fill. The
//! fast verdict reports the first fault *detected* in the connection's
//! FIFO arrival order (deterministic per client), which may name a
//! different offender than the fully-canonical protocol-layer verdict;
//! the `Err`-vs-`Ok` shape is always identical.
//!
//! A client that corrupts or loses traffic never yields a wrong accept:
//! tampered frames die at the router's MAC check (poisoning the
//! connection, whose sessions are then retired from every worker), and
//! the digest lets the client cross-check that the referee assembled
//! *exactly* the vector it sent.

use crate::auth::AuthKey;
use crate::fleet::accept_conn;
use crate::frame::{decode_frame, encode_wire_frame, FrameKind, WireError};
use crate::metrics::{trace_endpoint, Stage, WireMetrics};
use crate::placement::{run_proxy, ProxyConfig, ProxyEvent, RemotePlacement, ShardHostMode};
use crate::poll::{fd_of, Poller, PollerBackend, Readiness, Waker};
use crate::reactor::{Conn, SCRATCH_BYTES, WRITE_BACKPRESSURE_BYTES};
use referee_protocol::evidence::{
    encode_record_body, verify_bundle, EvidenceBundle, EvidenceRecord, ProvableError,
    SessionParams,
};
use referee_protocol::shard::{route_arrival, Arrival, PartialState, RefereeShard};
use referee_protocol::trace::TraceKind;
use referee_protocol::{BitWriter, DecodeError, Message};
use referee_simnet::{Envelope, SessionId};
use std::collections::{HashMap, VecDeque};
use std::net::TcpListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::thread;
use std::time::{Duration, Instant};

/// Domain-separation tweak for the shard-to-shard exchange key.
const EXCHANGE_TWEAK: u64 = 0x7368_6172_645f_7863; // "shard_xc"

/// Domain-separation tweak for the message-vector digest key.
const DIGEST_TWEAK: u64 = 0x7368_6172_645f_6467; // "shard_dg"

/// How many finished session routes the router remembers (FIFO). A
/// finished route only exists to classify short-lived stragglers behind
/// a fast verdict as harmless; beyond this window a straggler is
/// treated as the protocol violation it is, and the memory stays
/// bounded no matter how many sessions a long-lived connection judges.
const FINISHED_ROUTE_CAP: usize = 4096;

/// Keyed digest of an assembled message vector: SipHash-2-4 under
/// `key.derive(DIGEST_TWEAK)` over every message's position, bit length
/// and canonical bytes. Both ends of a fleet compute it from the base
/// key, so a verdict's digest pins the *exact* vector the referee
/// assembled — any reordering, truncation or substitution changes it.
pub fn vector_digest(key: &AuthKey, messages: &[Message]) -> u64 {
    let mut buf = Vec::new();
    for (i, m) in messages.iter().enumerate() {
        buf.extend_from_slice(&(i as u32 + 1).to_be_bytes());
        buf.extend_from_slice(&(m.len_bits() as u32).to_be_bytes());
        buf.extend_from_slice(m.as_bytes());
    }
    key.derive(DIGEST_TWEAK).tag(&buf)
}

/// Serialize a verdict: ok bit + digest on success, else a 2-bit
/// rejection class (the canonical `DecodeError` variant — the detailed
/// text stays server-side).
pub(crate) fn encode_verdict(result: &Result<u64, DecodeError>) -> Message {
    let mut w = BitWriter::new();
    match result {
        Ok(digest) => {
            w.push_bit(true);
            w.write_bits(*digest, 64);
        }
        Err(e) => {
            w.push_bit(false);
            let class = match e {
                DecodeError::Truncated => 0u64,
                DecodeError::OutOfRange(_) => 1,
                DecodeError::Inconsistent(_) => 2,
                DecodeError::Invalid(_) => 3,
            };
            w.write_bits(class, 2);
        }
    }
    Message::from_writer(w)
}

/// Inverse of [`encode_verdict`]; malformed verdict payloads surface as
/// `DecodeError::Invalid`.
pub(crate) fn decode_verdict(msg: &Message) -> Result<u64, DecodeError> {
    let mut r = msg.reader();
    if r.read_bit()? {
        let digest = r.read_bits(64)?;
        if !r.is_exhausted() {
            return Err(DecodeError::Invalid("trailing bits after verdict digest".into()));
        }
        return Ok(digest);
    }
    let class = r.read_bits(2)?;
    if !r.is_exhausted() {
        return Err(DecodeError::Invalid("trailing bits after verdict class".into()));
    }
    Err(match class {
        0 => DecodeError::Truncated,
        1 => DecodeError::OutOfRange("sharded referee: out-of-range sender".into()),
        2 => DecodeError::Inconsistent("sharded referee: duplicate or missing message".into()),
        _ => DecodeError::Invalid("sharded referee: invalid session traffic".into()),
    })
}

/// Router → worker (and worker → worker 0) traffic. Sessions are keyed
/// by `(conn, session)` throughout, so independent clients may number
/// their sessions identically without colliding.
pub(crate) enum ShardMsg {
    /// A session opened: every worker creates its shard. `epoch` is the
    /// router's announce sequence number for this (conn, session) run.
    Announce { conn: u32, session: u64, n: usize, epoch: u32 },
    /// An authenticated arrival routed to this worker's range.
    Data { conn: u32, env: Envelope },
    /// A wire-encoded [`FrameKind::Partial`] frame (worker 0 only).
    /// The frame's `round` packs `(epoch << 1) | poison_bit`: epoch
    /// guards against a slow sibling's partial from a *previous* run of
    /// a re-announced (conn, session) key leaking into the current one
    /// (worker→worker-0 sends are not ordered against router→worker-0
    /// sends); poison_bit 0 = a shard's range partial (counts toward
    /// the merge quorum), 1 = a poison notice for an arrival observed
    /// after the range partial shipped (merged, but not quorum).
    Partial(Vec<u8>),
    /// A session's verdict shipped: drop its state everywhere.
    Finish { conn: u32, session: u64 },
    /// A connection died: drop its sessions.
    Retire { conn: u32 },
}

/// Worker → router: a frame to deliver to a client — a session verdict
/// ([`FrameKind::Verdict`], worker 0 only) or an evidence bundle
/// ([`FrameKind::Evidence`], any worker that observed a provable
/// violation).
struct VerdictMsg {
    conn: u32,
    session: SessionId,
    kind: FrameKind,
    /// The frame's `from` field: 0 for verdicts, the accused principal
    /// (or 0 when unattributable) for evidence.
    from: u32,
    payload: Message,
}

/// The verdict channel paired with the router poller's waker: mpsc
/// sends are invisible to `epoll`, so every verdict send nudges the
/// router out of its kernel readiness wait.
struct VerdictTx {
    tx: Sender<VerdictMsg>,
    waker: Waker,
}

impl VerdictTx {
    fn send(&self, v: VerdictMsg) {
        let _ = self.tx.send(v);
        self.waker.wake();
    }
}

/// Router-side per-session record: network size plus whether the
/// verdict already shipped (late data for a finished session is
/// harmless straggle, not a protocol violation, and the id becomes
/// re-announceable).
struct SessionRoute {
    n: usize,
    finished: bool,
}

/// Per-session state inside one worker.
struct WorkerSession {
    conn: u32,
    n: usize,
    /// The announce epoch of this run (stamped into partial frames so
    /// stale cross-shard traffic of an earlier run cannot merge here).
    epoch: u32,
    /// `None` once the shard completed (or poisoned) and its partial
    /// was emitted.
    shard: Option<RefereeShard>,
    /// Every Fresh uplink this worker's range accepted, retained past
    /// the partial's emission: a late conflicting frame for an
    /// already-shipped range must still be provable as equivocation
    /// (the shard itself is gone by then — see the `None` arm of the
    /// data path). Bounded by the session's range width and lifetime.
    transcript: Vec<(u32, Message)>,
    /// Worker 0 only: the merge accumulator and quorum progress.
    acc: PartialState,
    merged: usize,
    /// When this worker saw the announce — the zero point for the
    /// partial-merge and server-side verdict stage histograms.
    opened: Instant,
}

/// The sharded-mode server loop (spawned by
/// [`FleetServer::spawn_sharded`](crate::FleetServer::spawn_sharded)).
pub(crate) fn run_sharded_server(
    listener: TcpListener,
    key: AuthKey,
    shards: usize,
    shutdown: &AtomicBool,
    metrics: &WireMetrics,
    poller: Poller,
) {
    let exchange_key = key.derive(EXCHANGE_TWEAK);
    let (verdict_tx, verdict_rx) = std::sync::mpsc::channel::<VerdictMsg>();
    let mut worker_txs: Vec<Sender<ShardMsg>> = Vec::with_capacity(shards);
    let mut worker_rxs: Vec<Receiver<ShardMsg>> = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (tx, rx) = std::sync::mpsc::channel();
        worker_txs.push(tx);
        worker_rxs.push(rx);
    }
    thread::scope(|scope| {
        for (i, rx) in worker_rxs.into_iter().enumerate().rev() {
            // Worker 0 merges its own partial directly and must not hold
            // a sender to itself (its inbox would never disconnect).
            let tx0 = if i == 0 { None } else { Some(worker_txs[0].clone()) };
            let vtx = VerdictTx { tx: verdict_tx.clone(), waker: poller.waker() };
            let exchange_key = &exchange_key;
            let base = &key;
            scope.spawn(move || {
                shard_worker(i, shards, rx, tx0, vtx, exchange_key, base, metrics, true)
            });
        }
        drop(verdict_tx);
        route(listener, key, shards, shutdown, metrics, &worker_txs, &verdict_rx, &poller);
        // Dropping the senders disconnects every worker inbox; the scope
        // then joins the workers.
        drop(worker_txs);
    });
}

/// Index order for broadcasting router control traffic to workers: the
/// merge accumulator FIRST, then everyone else. Every worker's reaction
/// to a control message funnels into the accumulator's inbox — e.g. an
/// empty-range shard host ships its partial the instant a proxy relays
/// a fresh announce — and channel causality only keeps that reaction
/// *behind* the message that caused it if the router enqueued the
/// accumulator's copy before any other worker's. In-process layouts
/// keep the accumulator at index 0 (forward order was already safe);
/// remote placement appends its channel after the `shards` proxies,
/// where forward order let partials overtake their announce and starve
/// the merge quorum.
pub(crate) fn acc_first_order(len: usize, shards: usize) -> impl Iterator<Item = usize> {
    let acc = if len > shards { shards } else { 0 };
    std::iter::once(acc).chain((0..len).filter(move |i| *i != acc))
}

/// Convert router traffic into the placement proxy's event type
/// (`Partial` never flows router → proxy).
pub(crate) fn shard_proxy_event(m: ShardMsg) -> Option<ProxyEvent> {
    match m {
        ShardMsg::Announce { conn, session, n, epoch } => {
            Some(ProxyEvent::Announce { conn, session, n, epoch })
        }
        ShardMsg::Data { conn, env } => Some(ProxyEvent::Data { conn, env }),
        ShardMsg::Finish { conn, session } => Some(ProxyEvent::Finish { conn, session }),
        ShardMsg::Retire { conn } => Some(ProxyEvent::Retire { conn }),
        ShardMsg::Partial(_) => None,
    }
}

/// The sharded-mode server loop with **remotely placed** shards: every
/// shard's range lives on a [`ShardHost`](crate::placement::ShardHost)
/// named by `placement`; the in-process worker 0 degenerates to the
/// merge accumulator (it owns no range), fed by one proxy per shard.
pub(crate) fn run_sharded_server_remote(
    listener: TcpListener,
    key: AuthKey,
    placement: RemotePlacement,
    backoff: Duration,
    shutdown: &AtomicBool,
    metrics: &WireMetrics,
    poller: Poller,
) {
    let shards = placement.shards();
    let exchange_key = key.derive(EXCHANGE_TWEAK);
    let (verdict_tx, verdict_rx) = std::sync::mpsc::channel::<VerdictMsg>();
    // One channel per shard proxy, plus the accumulator's (last), which
    // the router also broadcasts control traffic to.
    let mut worker_txs: Vec<Sender<ShardMsg>> = Vec::with_capacity(shards + 1);
    let mut worker_rxs: Vec<Receiver<ShardMsg>> = Vec::with_capacity(shards + 1);
    for _ in 0..=shards {
        let (tx, rx) = std::sync::mpsc::channel();
        worker_txs.push(tx);
        worker_rxs.push(rx);
    }
    thread::scope(|scope| {
        let mut rxs = worker_rxs.into_iter();
        let proxy_rxs: Vec<_> = rxs.by_ref().take(shards).collect();
        let acc_rx = rxs.next().expect("accumulator channel");
        {
            let vtx = VerdictTx { tx: verdict_tx.clone(), waker: poller.waker() };
            let exchange_key = &exchange_key;
            let base = &key;
            scope.spawn(move || {
                shard_worker(0, shards, acc_rx, None, vtx, exchange_key, base, metrics, false)
            });
        }
        for (i, rx) in proxy_rxs.into_iter().enumerate() {
            let acc_tx = worker_txs[shards].clone();
            let base = &key;
            let exchange_key = &exchange_key;
            let placement = &placement;
            scope.spawn(move || {
                run_proxy(
                    ProxyConfig {
                        mode: ShardHostMode::OneRound,
                        index: i,
                        shards,
                        base,
                        exchange_key,
                        placement,
                        metrics,
                        backoff,
                    },
                    rx,
                    shard_proxy_event,
                    move |bytes| {
                        let _ = acc_tx.send(ShardMsg::Partial(bytes));
                    },
                    |_| 1,
                )
            });
        }
        drop(verdict_tx);
        route(listener, key, shards, shutdown, metrics, &worker_txs, &verdict_rx, &poller);
        drop(worker_txs);
    });
}

/// The router: accepts, authenticates, routes by session + node range,
/// and writes verdicts back. Rides the poller's readiness *sets* like
/// the echo server's pump: each wake fills and parses only the
/// connections the kernel flagged; a full probe sweep of the pool
/// happens only when readiness degrades to `All` (the sweep backend, or
/// the capped wait timeout re-probing stalled conns).
#[allow(clippy::too_many_arguments)]
fn route(
    listener: TcpListener,
    key: AuthKey,
    shards: usize,
    shutdown: &AtomicBool,
    metrics: &WireMetrics,
    worker_txs: &[Sender<ShardMsg>],
    verdict_rx: &Receiver<VerdictMsg>,
    poller: &Poller,
) {
    let listener_fd = fd_of(&listener);
    poller.register(listener_fd);
    let mut gates: Vec<(u32, Conn)> = Vec::new();
    let mut announced: HashMap<(u32, u64), SessionRoute> = HashMap::new();
    let mut finished_fifo: VecDeque<(u32, u64)> = VecDeque::new();
    let mut next_id: u32 = 1;
    // Announce sequence, packed into 31 bits of the partial frames'
    // round field (wraps after 2³¹ announces — a collision would need a
    // partial of that exact ancient run still in flight).
    let mut next_epoch: u32 = 1;
    let mut scratch = vec![0u8; SCRATCH_BYTES];
    let mut ready: Vec<i32> = Vec::new();
    let mut readiness = Readiness::All;
    while !shutdown.load(Ordering::Relaxed) {
        let mut progress = false;
        if readiness == Readiness::All || ready.contains(&listener_fd) {
            while let Some((id, mut conn)) = accept_conn(&listener, &key, &mut next_id) {
                metrics.connections(1);
                conn.trace_with(metrics.recorder_arc(), trace_endpoint::SERVER);
                conn.meter_with(metrics.syscall_meter());
                poller.register(conn.fd());
                metrics.trace(0, trace_endpoint::SERVER, TraceKind::Dial, u64::from(id));
                gates.push((id, conn));
                progress = true;
            }
        }
        let pump_list: Vec<usize> = match readiness {
            Readiness::All => (0..gates.len()).collect(),
            Readiness::Fds => ready
                .iter()
                .filter_map(|fd| gates.iter().position(|(_, c)| c.fd() == *fd))
                .collect(),
        };
        for gi in pump_list {
            let (id, conn) = &mut gates[gi];
            progress |= conn.flush() > 0;
            if conn.pending_write() > WRITE_BACKPRESSURE_BYTES {
                if !conn.stalled {
                    conn.stalled = true;
                    metrics.backpressure_stalls(1);
                }
                continue;
            }
            conn.stalled = false;
            let got = conn.fill(&mut scratch);
            metrics.bytes_received(got as u64);
            progress |= got > 0;
            loop {
                match conn.next_frame() {
                    Ok(None) => break,
                    Ok(Some((FrameKind::Announce, env))) => {
                        metrics.frames_received(1);
                        let mut r = env.payload.reader();
                        let n = match r.read_bits(32) {
                            Ok(n) if r.is_exhausted() => n as usize,
                            _ => {
                                metrics.decode_rejects(1);
                                conn.close();
                                break;
                            }
                        };
                        // Re-announcing a *finished* session id is legal
                        // (long-lived clients recycle ids); a live one is
                        // a protocol violation.
                        if announced
                            .get(&(*id, env.session.0))
                            .is_some_and(|route| !route.finished)
                        {
                            metrics.decode_rejects(1);
                            conn.close();
                            break;
                        }
                        let epoch = next_epoch & 0x7fff_ffff;
                        next_epoch = next_epoch.wrapping_add(1);
                        metrics.trace(
                            env.session.0,
                            trace_endpoint::SERVER,
                            TraceKind::Announce,
                            n as u64,
                        );
                        announced
                            .insert((*id, env.session.0), SessionRoute { n, finished: false });
                        for wi in acc_first_order(worker_txs.len(), shards) {
                            let _ = worker_txs[wi].send(ShardMsg::Announce {
                                conn: *id,
                                session: env.session.0,
                                n,
                                epoch,
                            });
                        }
                        progress = true;
                    }
                    Ok(Some((FrameKind::Data, env))) => {
                        metrics.frames_received(1);
                        match announced.get(&(*id, env.session.0)) {
                            Some(route) if route.finished => {
                                // Stragglers behind a fast verdict — the
                                // session is already judged.
                                metrics.orphan_frames(1);
                            }
                            Some(route) => {
                                let target = route_arrival(route.n, shards, env.from);
                                metrics.trace(
                                    env.session.0,
                                    trace_endpoint::SERVER,
                                    TraceKind::Uplink,
                                    u64::from(env.from),
                                );
                                let _ =
                                    worker_txs[target].send(ShardMsg::Data { conn: *id, env });
                            }
                            None => {
                                // Data for a session this connection
                                // never announced.
                                metrics.decode_rejects(1);
                                conn.close();
                                break;
                            }
                        }
                        progress = true;
                    }
                    Ok(Some(_)) => {
                        metrics.decode_rejects(1);
                        conn.close();
                        break;
                    }
                    Err(WireError::BadMac) => {
                        metrics.mac_rejects(1);
                        metrics.trace(0, trace_endpoint::SERVER, TraceKind::MacReject, 0);
                        conn.close();
                        break;
                    }
                    Err(_) => {
                        metrics.decode_rejects(1);
                        conn.close();
                        break;
                    }
                }
            }
        }
        // Verdicts land on connections the kernel never flagged: track
        // which conns the drain touches and flush exactly those after —
        // every verdict queued this burst still ships in one write per
        // conn.
        let mut touched: Vec<u32> = Vec::new();
        while let Ok(v) = verdict_rx.try_recv() {
            match gates.iter_mut().find(|(id, c)| *id == v.conn && c.is_open()) {
                Some((_, conn)) => {
                    let env = Envelope {
                        session: v.session,
                        round: 0,
                        from: v.from,
                        to: 0,
                        payload: v.payload,
                    };
                    if !touched.contains(&v.conn) {
                        touched.push(v.conn);
                    }
                    let frame_len = conn.queue_frame_mut(v.kind, &env).len();
                    metrics.frames_sent(1);
                    metrics.bytes_sent(frame_len as u64);
                    if v.kind == FrameKind::Verdict {
                        metrics.trace(
                            v.session.0,
                            trace_endpoint::SERVER,
                            TraceKind::Verdict,
                            u64::from(v.conn),
                        );
                    }
                }
                None => metrics.orphan_frames(1),
            }
            // Evidence frames ride the verdict channel but judge
            // nothing: the session stays live.
            if v.kind != FrameKind::Verdict {
                progress = true;
                continue;
            }
            // The session is judged: mark its route finished (late data
            // becomes straggle, the id becomes re-announceable) and let
            // every worker drop its state. Finished routes are kept in
            // a bounded FIFO — old ones evict, so the map cannot grow
            // with the number of sessions ever judged.
            if let Some(route) = announced.get_mut(&(v.conn, v.session.0)) {
                route.finished = true;
                finished_fifo.push_back((v.conn, v.session.0));
                while finished_fifo.len() > FINISHED_ROUTE_CAP {
                    let key = finished_fifo.pop_front().expect("len > cap > 0");
                    // Only evict if still finished — the id may have
                    // been legitimately re-announced since.
                    if announced.get(&key).is_some_and(|r| r.finished) {
                        announced.remove(&key);
                    }
                }
            }
            for wi in acc_first_order(worker_txs.len(), shards) {
                let _ = worker_txs[wi]
                    .send(ShardMsg::Finish { conn: v.conn, session: v.session.0 });
            }
            progress = true;
        }
        for cid in touched {
            if let Some((_, conn)) = gates.iter_mut().find(|(id, _)| *id == cid) {
                conn.flush();
            }
        }
        let closed: Vec<u32> =
            gates.iter().filter(|(_, c)| !c.is_open()).map(|(id, _)| *id).collect();
        for cid in &closed {
            announced.retain(|(owner, _), _| owner != cid);
            for wi in acc_first_order(worker_txs.len(), shards) {
                let _ = worker_txs[wi].send(ShardMsg::Retire { conn: *cid });
            }
        }
        if !closed.is_empty() {
            gates.retain(|(_, c)| c.is_open());
        }
        // Epoll: pumped sockets were drained to WouldBlock and worker
        // verdicts wake the poller through the channel's waker, so go
        // straight back to the wait (its capped timeout reports `All`,
        // re-probing stalled conns at sweep cadence). Sweep: no edges —
        // re-sweep immediately while traffic flows.
        if progress && poller.backend() == PollerBackend::Sweep {
            readiness = Readiness::All;
            continue;
        }
        readiness = poller.wait_ready(&mut ready);
    }
}

/// One shard worker: owns shard `index` of every announced session.
/// With `owns_range` false (remote placement) the worker holds no shard
/// of its own — it is the pure merge accumulator, fed `Partial` frames
/// by the shard proxies and expecting one quorum partial from each of
/// the `shards` remotely-placed ranges.
#[allow(clippy::too_many_arguments)]
fn shard_worker(
    index: usize,
    shards: usize,
    rx: Receiver<ShardMsg>,
    tx0: Option<Sender<ShardMsg>>,
    vtx: VerdictTx,
    exchange_key: &AuthKey,
    base: &AuthKey,
    metrics: &WireMetrics,
    owns_range: bool,
) {
    let mut sessions: HashMap<(u32, u64), WorkerSession> = HashMap::new();
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Announce { conn, session, n, epoch } => {
                let mut ws = WorkerSession {
                    conn,
                    n,
                    epoch,
                    shard: owns_range.then(|| RefereeShard::new(n, shards, index)),
                    transcript: Vec::new(),
                    acc: PartialState::new(n),
                    merged: 0,
                    opened: Instant::now(),
                };
                emit_if_complete(index, session, &mut ws, &tx0, &vtx, exchange_key, metrics);
                if finish_if_merged(shards, session, &mut ws, &vtx, base, metrics) {
                    continue; // n = 0 single shard: verdict already out
                }
                sessions.insert((conn, session), ws);
            }
            ShardMsg::Data { conn, env } => {
                let session = env.session.0;
                let Some(ws) = sessions.get_mut(&(conn, session)) else {
                    metrics.orphan_frames(1);
                    continue;
                };
                // One-round uplinks are stamped round 1 by contract;
                // any other stamp is a provable violation. Evidence
                // only — ingestion below is unchanged, so the verdict
                // shape stays what it always was.
                if env.round != 1 {
                    let rec = evidence_record(base, conn, &env);
                    emit_evidence(
                        index,
                        base,
                        conn,
                        session,
                        ws.n,
                        ProvableError::WrongRound,
                        vec![rec],
                        &vtx,
                        metrics,
                    );
                }
                match ws.shard.as_mut() {
                    Some(shard) => {
                        match shard.ingest(env.from, env.payload.clone()) {
                            Ok(Arrival::Fresh) => {
                                ws.transcript.push((env.from, env.payload.clone()));
                            }
                            Ok(Arrival::OutOfRange) => {
                                let rec = evidence_record(base, conn, &env);
                                emit_evidence(
                                    index,
                                    base,
                                    conn,
                                    session,
                                    ws.n,
                                    ProvableError::OutOfRangeSender,
                                    vec![rec],
                                    &vtx,
                                    metrics,
                                );
                            }
                            Ok(Arrival::Duplicate { identical }) => {
                                let records = if identical {
                                    // Provable but NOT attributable: an
                                    // at-least-once network duplicates
                                    // frames too, so nobody is accused.
                                    let rec = evidence_record(base, conn, &env);
                                    vec![rec.clone(), rec]
                                } else {
                                    // Equivocation: the recorded
                                    // original and the conflicting
                                    // arrival, signed into the same
                                    // (round, sender) slot.
                                    match shard.message_for(env.from).cloned() {
                                        Some(prev) => vec![
                                            evidence_record_for(base, conn, &env, &prev),
                                            evidence_record(base, conn, &env),
                                        ],
                                        None => Vec::new(),
                                    }
                                };
                                if !records.is_empty() {
                                    let error = if identical {
                                        ProvableError::DuplicateSender
                                    } else {
                                        ProvableError::Equivocation
                                    };
                                    emit_evidence(
                                        index, base, conn, session, ws.n, error, records, &vtx,
                                        metrics,
                                    );
                                }
                                shard.note_duplicate(env.from);
                            }
                            Err(_) => {
                                // Router/worker disagreement on ranges —
                                // a bug, not wire data; surfaced in
                                // metrics.
                                metrics.decode_rejects(1);
                                continue;
                            }
                        }
                    }
                    None => {
                        // The range partial already shipped, so this
                        // arrival is by definition a duplicate (the
                        // shard only ships once its range is full) or an
                        // out-of-range stray. The shard's state is gone,
                        // but the retained transcript still proves what
                        // the sender originally said — so the violation
                        // stays attributable even here.
                        let (error, records) = if env.from == 0 || env.from as usize > ws.n {
                            let rec = evidence_record(base, conn, &env);
                            (ProvableError::OutOfRangeSender, vec![rec])
                        } else {
                            match ws
                                .transcript
                                .iter()
                                .find(|(f, _)| *f == env.from)
                                .map(|(_, m)| m.clone())
                            {
                                Some(prev) if prev == env.payload => {
                                    let rec = evidence_record(base, conn, &env);
                                    (ProvableError::DuplicateSender, vec![rec.clone(), rec])
                                }
                                Some(prev) => (
                                    ProvableError::Equivocation,
                                    vec![
                                        evidence_record_for(base, conn, &env, &prev),
                                        evidence_record(base, conn, &env),
                                    ],
                                ),
                                // An in-range sender this worker
                                // never accepted: a router/worker
                                // range disagreement, nothing to
                                // prove from this frame alone.
                                None => (ProvableError::Equivocation, Vec::new()),
                            }
                        };
                        if !records.is_empty() {
                            emit_evidence(
                                index, base, conn, session, ws.n, error, records, &vtx, metrics,
                            );
                        }
                        // Report the fault so the session fails fast
                        // instead of wedging a not-yet-complete sibling
                        // shard's wait.
                        let poison = PartialState::poison_notice(ws.n, env.from);
                        // A poison notice is a few bits — never oversized.
                        let _ = apply_partial(
                            index,
                            session,
                            ws,
                            poison,
                            false,
                            &tx0,
                            exchange_key,
                        );
                    }
                }
                emit_if_complete(index, session, ws, &tx0, &vtx, exchange_key, metrics);
                if finish_if_merged(shards, session, ws, &vtx, base, metrics) {
                    sessions.remove(&(conn, session));
                }
            }
            ShardMsg::Partial(bytes) => {
                // Worker 0 only: authenticate and decode a sibling
                // shard's partial through the same codec the wire uses.
                let decoded = match decode_frame(exchange_key, &bytes) {
                    Ok(Some(d)) if d.kind == FrameKind::Partial => d,
                    Ok(_) => {
                        metrics.decode_rejects(1);
                        continue;
                    }
                    Err(WireError::BadMac) => {
                        metrics.mac_rejects(1);
                        continue;
                    }
                    Err(_) => {
                        metrics.decode_rejects(1);
                        continue;
                    }
                };
                let session = decoded.envelope.session.0;
                let conn = decoded.envelope.to;
                let Some(ws) = sessions.get_mut(&(conn, session)) else {
                    metrics.orphan_frames(1); // finished or retired while in flight
                    continue;
                };
                // `round` packs (epoch << 1) | poison_bit. A stale
                // partial from a previous run of this (conn, session)
                // key — possible because worker→worker-0 sends are not
                // ordered against the router's — must not merge into
                // the current run.
                if decoded.envelope.round >> 1 != ws.epoch {
                    metrics.orphan_frames(1);
                    continue;
                }
                let counts_toward_quorum = decoded.envelope.round & 1 == 0;
                let merge = PartialState::decode(ws.n, &decoded.envelope.payload)
                    .and_then(|p| ws.acc.merge(p));
                match merge {
                    Ok(()) => {
                        metrics.trace(
                            session,
                            trace_endpoint::worker(0),
                            TraceKind::PartialMerge,
                            u64::from(decoded.envelope.from),
                        );
                        if counts_toward_quorum {
                            ws.merged += 1;
                        }
                        if finish_if_merged(shards, session, ws, &vtx, base, metrics) {
                            sessions.remove(&(conn, session));
                        }
                    }
                    Err(e) => {
                        // A partial that does not decode or merge is an
                        // internal fault; fail the session closed.
                        send_verdict(session, ws, Err(e), &vtx, metrics);
                        sessions.remove(&(conn, session));
                    }
                }
            }
            ShardMsg::Finish { conn, session } => {
                sessions.remove(&(conn, session));
            }
            ShardMsg::Retire { conn } => {
                sessions.retain(|(owner, _), _| *owner != conn);
            }
        }
    }
}

/// Route a partial (a shard's range summary or a poison notice) toward
/// the accumulator: worker 0 merges in place, everyone else ships a
/// MAC'd [`FrameKind::Partial`] frame whose `round` packs the run epoch
/// and the poison bit (see [`ShardMsg::Partial`]). Returns `false` if
/// the partial is too large for the wire codec's frame cap — the caller
/// must then fail the session rather than panic a worker (poison
/// notices are a few bits and can never trip this).
#[must_use]
fn apply_partial(
    index: usize,
    session: u64,
    ws: &mut WorkerSession,
    partial: PartialState,
    quorum: bool,
    tx0: &Option<Sender<ShardMsg>>,
    exchange_key: &AuthKey,
) -> bool {
    match tx0 {
        Some(tx) => {
            let payload = partial.encode();
            let body = crate::frame::HEADER_BYTES
                + payload.len_bits().div_ceil(8)
                + crate::frame::TAG_BYTES;
            if body > crate::frame::MAX_BODY_BYTES {
                return false;
            }
            let env = Envelope {
                session: SessionId(session),
                round: (ws.epoch << 1) | u32::from(!quorum),
                from: index as u32,
                to: ws.conn,
                payload,
            };
            let _ = tx.send(ShardMsg::Partial(encode_wire_frame(
                exchange_key,
                FrameKind::Partial,
                &env,
            )));
        }
        None => {
            if let Err(e) = ws.acc.merge(partial) {
                unreachable!("same-n partials always merge: {e}");
            }
            if quorum {
                ws.merged += 1;
            }
        }
    }
    true
}

/// If this worker's shard range just completed — or recorded a fault,
/// which fixes the verdict's `Err` shape no matter what else arrives —
/// emit its partial toward the accumulator. A partial too large for the
/// frame cap (a session far outside frugal message sizes) rejects the
/// session instead of serving it.
#[allow(clippy::too_many_arguments)]
fn emit_if_complete(
    index: usize,
    session: u64,
    ws: &mut WorkerSession,
    tx0: &Option<Sender<ShardMsg>>,
    vtx: &VerdictTx,
    exchange_key: &AuthKey,
    metrics: &WireMetrics,
) {
    let ready = ws.shard.as_ref().is_some_and(|s| s.is_complete() || s.is_poisoned());
    if !ready {
        return;
    }
    let partial = ws.shard.take().expect("checked above").into_partial();
    if apply_partial(index, session, ws, partial, true, tx0, exchange_key) {
        metrics.trace(
            session,
            trace_endpoint::worker(index as u32),
            TraceKind::PartialEmit,
            index as u64,
        );
        if tx0.is_some() {
            metrics.partial_frames(1);
        }
    } else {
        send_verdict(
            session,
            ws,
            Err(DecodeError::Invalid("shard partial exceeds the wire frame cap".into())),
            vtx,
            metrics,
        );
    }
}

/// Worker 0: if all `shards` partials are merged — or the accumulator
/// is already poisoned, which no further partial can turn into an `Ok`
/// — finish the assembly and ship the verdict. Returns whether the
/// session is done.
fn finish_if_merged(
    shards: usize,
    session: u64,
    ws: &mut WorkerSession,
    vtx: &VerdictTx,
    base: &AuthKey,
    metrics: &WireMetrics,
) -> bool {
    if ws.merged < shards && !ws.acc.poisoned() {
        return false;
    }
    metrics.record_stage(Stage::PartialMerge, ws.opened.elapsed());
    let acc = std::mem::replace(&mut ws.acc, PartialState::new(0));
    let stepped = Instant::now();
    let result = acc.finish().map(|messages| vector_digest(base, &messages));
    metrics.record_stage(Stage::RefereeStep, stepped.elapsed());
    // Assembly completes at the merge accumulator — worker 0.
    metrics.trace(session, trace_endpoint::worker(0), TraceKind::RefereeStep, shards as u64);
    send_verdict(session, ws, result, vtx, metrics);
    true
}

fn send_verdict(
    session: u64,
    ws: &WorkerSession,
    result: Result<u64, DecodeError>,
    vtx: &VerdictTx,
    metrics: &WireMetrics,
) {
    metrics.record_stage(Stage::Verdict, ws.opened.elapsed());
    metrics.verdict_frames(1);
    vtx.send(VerdictMsg {
        conn: ws.conn,
        session: SessionId(session),
        kind: FrameKind::Verdict,
        from: 0,
        payload: encode_verdict(&result),
    });
}

/// Re-sign one client payload as a transcript record. The evidence
/// record body layout is byte-for-byte the wire frame's MAC-covered
/// body, and the record key path `[conn]` folds to the connection key
/// both ends already derived — so a record cut from a decoded arrival
/// carries exactly the tag the client's frame did (pinned by tests).
pub(crate) fn evidence_record_for(
    base: &AuthKey,
    conn: u32,
    env: &Envelope,
    payload: &Message,
) -> EvidenceRecord {
    let body = encode_record_body(
        crate::frame::WIRE_VERSION,
        FrameKind::Data as u8,
        env.session.0,
        env.round,
        env.from,
        env.to,
        payload,
    );
    EvidenceRecord::sign(base.mac_key(), vec![u64::from(conn)], body)
}

/// [`evidence_record_for`] over the arrival's own payload.
pub(crate) fn evidence_record(base: &AuthKey, conn: u32, env: &Envelope) -> EvidenceRecord {
    evidence_record_for(base, conn, env, &env.payload)
}

/// Assemble and self-verify one evidence bundle accusing `conn` (when
/// the error is attributable). `None` means the offending frame's
/// fields fall outside the self-contained shape rules (say, a data
/// frame addressed off the referee) and prove nothing to a third party
/// — the accountability layer never ships a bundle `verify_bundle`
/// would bounce. Also logs the bundle on `metrics` and traces the
/// emission.
#[allow(clippy::too_many_arguments)]
pub(crate) fn build_evidence(
    base: &AuthKey,
    conn: u32,
    session: u64,
    n: usize,
    round_cap: u32,
    error: ProvableError,
    records: Vec<EvidenceRecord>,
    endpoint: u32,
    metrics: &WireMetrics,
) -> Option<EvidenceBundle> {
    let accused = error.attributable().then_some(conn);
    let bundle = EvidenceBundle { error, accused, records };
    let params = SessionParams { session, n: n as u32, round_cap };
    verify_bundle(base.mac_key(), &params, &bundle).ok()?;
    metrics.record_evidence(&bundle);
    metrics.trace(session, endpoint, TraceKind::Evidence, u64::from(accused.unwrap_or(0)));
    Some(bundle)
}

/// [`build_evidence`] for the one-round service, shipped client-ward
/// through the worker's verdict channel.
#[allow(clippy::too_many_arguments)]
fn emit_evidence(
    index: usize,
    base: &AuthKey,
    conn: u32,
    session: u64,
    n: usize,
    error: ProvableError,
    records: Vec<EvidenceRecord>,
    vtx: &VerdictTx,
    metrics: &WireMetrics,
) {
    let Some(bundle) = build_evidence(
        base,
        conn,
        session,
        n,
        1,
        error,
        records,
        trace_endpoint::worker(index as u32),
        metrics,
    ) else {
        return;
    };
    vtx.send(VerdictMsg {
        conn,
        session: SessionId(session),
        kind: FrameKind::Evidence,
        from: bundle.accused.unwrap_or(0),
        payload: bundle.encode(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdict_codec_round_trips() {
        for result in [
            Ok(0u64),
            Ok(u64::MAX),
            Ok(0xdead_beef),
            Err(DecodeError::Truncated),
            Err(DecodeError::OutOfRange("x".into())),
            Err(DecodeError::Inconsistent("y".into())),
            Err(DecodeError::Invalid("z".into())),
        ] {
            let decoded = decode_verdict(&encode_verdict(&result));
            match (&result, &decoded) {
                (Ok(a), Ok(b)) => assert_eq!(a, b),
                (Err(a), Err(b)) => assert_eq!(
                    std::mem::discriminant(a),
                    std::mem::discriminant(b),
                    "{a:?} vs {b:?}"
                ),
                other => panic!("verdict round trip changed shape: {other:?}"),
            }
        }
    }

    #[test]
    fn digest_pins_position_content_and_length() {
        let key = AuthKey::from_seed(4);
        let m = |v: u64, w: u32| {
            let mut wr = BitWriter::new();
            wr.write_bits(v, w);
            Message::from_writer(wr)
        };
        let base = vec![m(1, 8), m(2, 8)];
        let swapped = vec![m(2, 8), m(1, 8)];
        let padded = vec![m(1, 8), m(2, 9)];
        let d = vector_digest(&key, &base);
        assert_ne!(d, vector_digest(&key, &swapped), "order must matter");
        assert_ne!(d, vector_digest(&key, &padded), "bit length must matter");
        assert_ne!(d, vector_digest(&AuthKey::from_seed(5), &base), "key must matter");
        assert_eq!(d, vector_digest(&key, &base.clone()), "deterministic");
    }
}
