//! One-round connectivity with public coins (E17).
//!
//! Protocol: every node sends, for each Borůvka phase `p < P ≈ log₂ n`,
//! an independent ℓ₀-sketch of its signed edge-incidence vector (fresh
//! hash keys per phase keep the post-conditioning distribution honest).
//! The referee maintains components in a union–find; in phase `p` it sums
//! the phase-`p` sketches over each component (linearity ⇒ a sketch of
//! that component's boundary), samples one boundary edge per component,
//! and merges. Every component with any outgoing edge acquires one, so
//! non-isolated components at least halve per phase and `P = ⌈log₂ n⌉ + 1`
//! phases suffice — **one round of communication, ~log n phases of pure
//! referee computation**.
//!
//! Message size: `P · L · 192` bits with `L ≈ 2 log₂ n + 2` levels, i.e.
//! `O(log² n)` words = `O(log³ n)` bits. Not frugal in the paper's strict
//! `O(log n)` sense — but exponentially below the `Ω(n)`-bit cost of
//! shipping neighbourhoods, which is the point of the commentary: the
//! open question's difficulty is determinism, not one-roundedness.
//!
//! The protocol is Monte-Carlo: each per-component sample can fail
//! (probability bounded by the ℓ₀-sampler's miss rate); failures only
//! *delay* merges, and a wrong final answer requires every phase to miss
//! some component's boundary — the `success_rate` test below measures it
//! empirically at > 95% with the default parameters, and failures are
//! one-sided (a connected graph may be declared disconnected; the reverse
//! needs a fingerprint collision, probability ≤ 2⁻⁶⁴ per sample — every
//! verified sample is a genuine boundary edge otherwise).

use crate::l0::{EdgeSlot, L0Sampler};
use referee_graph::dsu::Dsu;
use referee_graph::LabelledGraph;
use referee_protocol::{BitWriter, DecodeError, Message, NodeView, OneRoundProtocol};

/// The public-coin one-round connectivity protocol.
#[derive(Debug, Clone, Copy)]
pub struct SketchConnectivityProtocol {
    /// Shared seed — the public randomness. Nodes and referee must agree.
    pub seed: u64,
}

impl SketchConnectivityProtocol {
    /// Protocol with the given public coins.
    pub fn new(seed: u64) -> Self {
        SketchConnectivityProtocol { seed }
    }

    /// Borůvka phase budget for an n-node graph.
    pub fn phases_for(n: usize) -> u32 {
        (usize::BITS - n.max(1).leading_zeros()) + 1
    }

    /// Per-message size in bits at size `n` (exact, all messages equal).
    pub fn message_bits(n: usize) -> usize {
        Self::phases_for(n) as usize * L0Sampler::levels_for(n) as usize * 3 * 64
    }

    fn node_sketches(&self, view: NodeView<'_>) -> Vec<L0Sampler> {
        let n = view.n;
        (0..Self::phases_for(n))
            .map(|phase| {
                let mut sk = L0Sampler::new(n, self.seed, phase as u64);
                for &nb in view.neighbours {
                    let (u, v) = (view.id.min(nb), view.id.max(nb));
                    let sign = if view.id == u { 1 } else { -1 };
                    sk.update(EdgeSlot::encode(u, v), sign);
                }
                sk
            })
            .collect()
    }
}

impl OneRoundProtocol for SketchConnectivityProtocol {
    /// `Ok(connected?)`, or a decode error on malformed messages.
    type Output = Result<bool, DecodeError>;

    fn name(&self) -> String {
        format!("public-coin sketch connectivity (seed {})", self.seed)
    }

    fn local(&self, view: NodeView<'_>) -> Message {
        let mut w = BitWriter::new();
        for sk in self.node_sketches(view) {
            sk.write(&mut w);
        }
        Message::from_writer(w)
    }

    fn global(&self, n: usize, messages: &[Message]) -> Self::Output {
        if messages.len() != n {
            return Err(DecodeError::Inconsistent(format!(
                "expected {n} messages, got {}",
                messages.len()
            )));
        }
        if n <= 1 {
            return Ok(true);
        }
        let phases = Self::phases_for(n);
        // Parse: sketches[v][phase]
        let mut sketches: Vec<Vec<L0Sampler>> = Vec::with_capacity(n);
        for msg in messages {
            let mut r = msg.reader();
            let mut per_node = Vec::with_capacity(phases as usize);
            for phase in 0..phases {
                per_node.push(L0Sampler::read(&mut r, n, self.seed, phase as u64)?);
            }
            if !r.is_exhausted() {
                return Err(DecodeError::Invalid("trailing sketch bits".into()));
            }
            sketches.push(per_node);
        }

        let mut dsu = Dsu::new(n);
        for phase in 0..phases as usize {
            if dsu.components() == 1 {
                break;
            }
            // Sum this phase's sketches per component.
            let mut comp_sketch: std::collections::HashMap<usize, L0Sampler> =
                std::collections::HashMap::new();
            for (v, node_sketches) in sketches.iter().enumerate() {
                let root = dsu.find(v);
                comp_sketch
                    .entry(root)
                    .and_modify(|s| s.merge(&node_sketches[phase]))
                    .or_insert_with(|| node_sketches[phase].clone());
            }
            // Sample one boundary edge per component and merge. Range-
            // check the slot BEFORE decoding: a corrupted sketch that
            // slipped past the fingerprint must not feed garbage into the
            // triangular-number inversion.
            for (_root, sk) in comp_sketch {
                if let Some(slot) = sk.sample() {
                    if slot.0 >= EdgeSlot::universe(n) {
                        continue;
                    }
                    let (u, v) = slot.decode();
                    dsu.union((u - 1) as usize, (v - 1) as usize);
                }
            }
        }
        Ok(dsu.components() == 1)
    }
}

/// Measurements comparing the sketch protocol against exact baselines.
#[derive(Debug, Clone)]
pub struct SketchStats {
    /// Graph size.
    pub n: usize,
    /// Per-node message bits of the sketch protocol.
    pub sketch_bits: usize,
    /// Per-node bits of the naive adjacency upload for this graph.
    pub adjacency_bits: usize,
    /// `sketch_bits / log₂(n)` — how far above strict frugality.
    pub ratio_to_log: f64,
}

/// Compute the message-size comparison for a given graph.
pub fn compare_sizes(g: &LabelledGraph) -> SketchStats {
    let n = g.n();
    let sketch_bits = SketchConnectivityProtocol::message_bits(n);
    let width = referee_protocol::bits_for(n) as usize;
    let adjacency_bits = (g.max_degree() + 1) * width;
    SketchStats {
        n,
        sketch_bits,
        adjacency_bits,
        ratio_to_log: sketch_bits as f64 / (n.max(2) as f64).log2(),
    }
}

/// Convenience: run the protocol on a graph with the given seed.
pub fn sketch_connectivity(g: &LabelledGraph, seed: u64) -> bool {
    referee_protocol::run_protocol(&SketchConnectivityProtocol::new(seed), g)
        .output
        .expect("honest messages decode")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use referee_graph::{algo, generators};

    #[test]
    fn connected_families_accepted() {
        for g in [
            generators::path(64),
            generators::cycle(65).unwrap(),
            generators::complete(32),
            generators::grid(8, 8),
            generators::petersen(),
        ] {
            assert!(sketch_connectivity(&g, 2011), "{g:?}");
        }
    }

    #[test]
    fn disconnected_rejected_always() {
        // One-sided error: disconnected graphs can never be accepted
        // (sampled edges are real edges, so unions never cross true
        // components).
        let g = generators::path(20).disjoint_union(&generators::cycle(9).unwrap());
        for seed in 0..20u64 {
            assert!(!sketch_connectivity(&g, seed), "seed {seed}");
        }
        assert!(!sketch_connectivity(&LabelledGraph::new(5), 0));
    }

    #[test]
    fn success_rate_on_connected_random() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut trials = 0;
        let mut correct = 0;
        for seed in 0..30u64 {
            let g = generators::gnp(48, 0.12, &mut rng);
            if !algo::is_connected(&g) {
                continue;
            }
            trials += 1;
            if sketch_connectivity(&g, seed) {
                correct += 1;
            }
        }
        assert!(trials >= 10, "want enough connected samples, got {trials}");
        assert!(correct * 100 >= trials * 95, "success {correct}/{trials} below 95%");
    }

    #[test]
    fn message_size_polylog_not_linear() {
        // The punchline: sketch bits grow polylog in n while the dense-
        // graph adjacency upload grows as n·log n; the crossover sits
        // around n ≈ 2^13 and widens exponentially beyond it.
        let adj_bits = |n: usize| n * referee_protocol::bits_for(n) as usize; // Δ = n−1
        for n in [1 << 13, 1 << 16, 1 << 20] {
            let sketch = SketchConnectivityProtocol::message_bits(n);
            assert!(
                sketch < adj_bits(n),
                "n={n}: sketch {sketch} vs adjacency {}",
                adj_bits(n)
            );
        }
        // growth from n=64 to n=4096 (64×) is only a small constant
        let growth = SketchConnectivityProtocol::message_bits(4096) as f64
            / SketchConnectivityProtocol::message_bits(64) as f64;
        assert!(growth < 4.0, "growth {growth}");
        // and compare_sizes agrees with the formula on a concrete graph
        let s = compare_sizes(&generators::complete(64));
        assert_eq!(s.sketch_bits, SketchConnectivityProtocol::message_bits(64));
        assert_eq!(s.adjacency_bits, 64 * 7);
    }

    #[test]
    fn agrees_with_centralized_across_densities() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut mismatches = 0;
        let mut total = 0;
        for seed in 0..24u64 {
            let g = generators::gnp(40, 0.08, &mut rng);
            total += 1;
            if sketch_connectivity(&g, 1000 + seed) != algo::is_connected(&g) {
                mismatches += 1;
            }
        }
        // Monte-Carlo: allow a rare one-sided miss.
        assert!(mismatches <= total / 10, "{mismatches}/{total} mismatches");
    }

    #[test]
    fn trivial_sizes() {
        assert!(sketch_connectivity(&LabelledGraph::new(0), 1));
        assert!(sketch_connectivity(&LabelledGraph::new(1), 1));
        assert!(!sketch_connectivity(&LabelledGraph::new(2), 1));
    }

    #[test]
    fn malformed_messages_rejected() {
        let p = SketchConnectivityProtocol::new(3);
        let msgs = vec![Message::empty(); 4];
        assert!(p.global(4, &msgs).is_err());
    }
}
