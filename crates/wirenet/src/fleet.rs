//! The fleet layer: a referee-side acceptor ([`FleetServer`]) and a
//! node-side connection pool ([`FleetClient`]) whose [`SocketTransport`]
//! drives unchanged `simnet` sessions over real TCP.
//!
//! # Architecture
//!
//! A `simnet` session owns *both* sides of the referee model and treats
//! its [`Transport`] as the network between them. `wirenet` makes that
//! network real: every envelope a session sends is framed, MAC-tagged
//! and written to a TCP connection; the server authenticates frames and
//! serves one of two roles:
//!
//! * **Echo mailbox** (the default, [`FleetServer::spawn`]): every
//!   authenticated frame is sent straight back; the client demultiplexes
//!   returning frames into per-session queues where `recv` picks them
//!   up. Protocol logic runs unchanged on the client's session state
//!   machines, every message crossing OS sockets twice.
//! * **Sharded referee service** ([`FleetServer::spawn_sharded`]): the
//!   server performs the referee's assembly itself, split across shard
//!   workers that exchange [`PartialState`](referee_protocol::shard::PartialState)
//!   frames and reply with verdicts — see [`crate::shard`] and
//!   [`FleetClient::verify_session`].
//!
//! # Per-connection keys
//!
//! At accept time the server assigns every connection an id and sends a
//! [`Hello`](crate::frame::FrameKind::Hello) frame (MAC'd with the
//! fleet's base key) carrying it; both ends then switch the connection
//! to `base.derive(id)`. A leaked per-connection key therefore forges
//! nothing on sibling connections (pinned by a loopback test). Clients
//! send nothing before the Hello arrives, so no frame ever crosses under
//! the wrong key; a client whose base key mismatches the server's fails
//! at [`FleetClient::connect`] — closed before any data flows.
//!
//! Multiplexing: each session is bound round-robin to one of a handful
//! of connections and tagged with its [`SessionId`]; a thousand sessions
//! share ≤ 8 sockets. Per-connection TCP ordering plus per-session
//! queues preserve FIFO delivery per session, which is exactly
//! [`PerfectTransport`](referee_simnet::PerfectTransport) semantics —
//! so outcomes are bit-for-bit identical to in-memory runs (pinned by
//! the loopback tests).
//!
//! Failure model: any MAC or decode failure poisons its connection on
//! the spot (a length-prefixed stream cannot resynchronize, and a
//! tampering peer must not keep talking). Sessions bound to a poisoned
//! connection starve, observe an empty transport, and reject with the
//! *existing* `DecodeError` delivery-failure paths — no new failure
//! oracle is introduced.
//!
//! Backpressure: client senders stall (and count the stall) whenever a
//! connection's write buffer exceeds the reactor's high-water mark, and
//! pump the reactor until it drains; the server stops *reading* from any
//! connection whose outbound buffer is over the mark, letting TCP push
//! back on the peer — so memory stays bounded on both ends no matter how
//! bursty (or slow-reading) the fleet is.
//!
//! Lifecycle: dropping a [`SocketTransport`] retires its session's
//! demux lane; echoes still in flight are counted as `orphan_frames`
//! and discarded, and the session id becomes reusable.

use crate::auth::AuthKey;
use crate::frame::{FrameKind, WireError};
use crate::metrics::{trace_endpoint, Stage, WireMetrics, WireSnapshot};
use crate::multiround::{
    decode_mr_verdict, encode_mr_announce, run_multiround_server, run_multiround_server_remote,
    ServiceCatalog, WireReferee, MAX_SERVICE_NAME_BYTES,
};
use crate::placement::{default_redial_backoff, RemotePlacement};
use crate::poll::{
    default_backend, fd_of, resolve_poller, Poller, PollerBackend, Readiness, POLLER_ENV,
};
use crate::reactor::{Conn, SCRATCH_BYTES, WRITE_BACKPRESSURE_BYTES};
use crate::shard::{decode_verdict, run_sharded_server, run_sharded_server_remote};
use referee_graph::{LabelledGraph, VertexId};
use referee_protocol::multiround::MultiRoundProtocol;
use referee_protocol::trace::{TraceKind, TraceSnapshot};
use referee_protocol::{BitWriter, DecodeError, Message, NodeView};
use referee_simnet::{Envelope, SessionId, Transport, TransportCounters};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

/// The sweep backend's sleep between pump sweeps that made no progress
/// (also the floor for the epoll wait cap). Overridable per server via
/// [`FleetServerBuilder::idle_sleep`].
pub(crate) const IDLE_SLEEP: Duration = Duration::from_micros(50);

/// Client write-buffer occupancy that triggers an eager flush inside
/// `send_kind` instead of waiting for the next pump: big-burst senders
/// overlap socket writes with encoding, while short bursts (a session's
/// handful of uplinks) coalesce into one `write(2)`.
const FLUSH_COALESCE_BYTES: usize = 16 * 1024;

/// How long a follower thread waits on the pump condvar before
/// re-checking its lane (the leader thread is inside the kernel wait
/// and will notify sooner on any readiness).
const FOLLOWER_WAIT: Duration = Duration::from_millis(2);

/// Environment variable overriding the Hello handshake deadline, in
/// milliseconds (see [`WireTimeouts::hello`]).
pub const HELLO_TIMEOUT_ENV: &str = "REFEREE_WIRENET_HELLO_TIMEOUT_MS";

/// Environment variable overriding the verdict/round deadline, in
/// milliseconds (see [`WireTimeouts::verdict`]).
pub const VERDICT_TIMEOUT_ENV: &str = "REFEREE_WIRENET_VERDICT_TIMEOUT_MS";

/// The client-side wire deadlines, configurable per
/// [`FleetClient::connect_with`] or process-wide via environment
/// variables (the same pattern as [`BIND_ENV`]). These used to be
/// hardcoded consts; a slow CI host or a long multi-round session could
/// spuriously trip the fixed 30 s verdict deadline with no recourse —
/// now the defaults are only defaults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireTimeouts {
    /// How long a connecting client waits for the server's Hello
    /// (default 10 s, or [`HELLO_TIMEOUT_ENV`]).
    pub hello: Duration,
    /// How long a client waits for a sharded referee's verdict after
    /// streaming a complete session — and, in multi-round mode, for
    /// each round's downlinks. The server judges in microseconds per
    /// step; this bound only exists so a server-side fault (a dead
    /// shard worker, a dropped verdict) surfaces as an error instead of
    /// a hang (default 30 s, or [`VERDICT_TIMEOUT_ENV`]).
    pub verdict: Duration,
}

impl Default for WireTimeouts {
    /// The defaults, with environment overrides applied.
    fn default() -> WireTimeouts {
        WireTimeouts::resolve(
            std::env::var(HELLO_TIMEOUT_ENV).ok().as_deref(),
            std::env::var(VERDICT_TIMEOUT_ENV).ok().as_deref(),
        )
    }
}

impl WireTimeouts {
    /// Deadline precedence: a parseable positive millisecond value from
    /// the environment, else the historical default. Split out (with
    /// the env values as parameters) so it is unit-testable without
    /// mutating the process environment; unparseable values fall back
    /// to the default rather than failing a connect.
    fn resolve(hello_env: Option<&str>, verdict_env: Option<&str>) -> WireTimeouts {
        let parse = |env: Option<&str>, default_ms: u64| {
            env.and_then(|s| s.trim().parse::<u64>().ok())
                .filter(|&ms| ms > 0)
                .map_or(Duration::from_millis(default_ms), Duration::from_millis)
        };
        WireTimeouts { hello: parse(hello_env, 10_000), verdict: parse(verdict_env, 30_000) }
    }
}

/// Environment variable overriding the server bind address
/// (`ip:port`, e.g. `0.0.0.0:7431` for cross-host fleets).
pub const BIND_ENV: &str = "REFEREE_WIRENET_BIND";

/// The default bind address: loopback, ephemeral port.
const DEFAULT_BIND: &str = "127.0.0.1:0";

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// The referee-side acceptor: either an authenticated echo mailbox or a
/// sharded referee service (see the module docs).
///
/// Runs on its own thread over nonblocking accept + connection pumps;
/// [`FleetServer::stop`] (or drop) shuts it down and joins.
#[derive(Debug)]
pub struct FleetServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<WireMetrics>,
    thread: Option<JoinHandle<()>>,
}

/// Configures a [`FleetServer`] before spawning: bind address (builder,
/// else [`BIND_ENV`], else loopback-ephemeral) and referee mode.
pub struct FleetServerBuilder {
    key: AuthKey,
    shards: usize,
    bind: Option<SocketAddr>,
    multiround: Option<ServiceCatalog>,
    placement: Option<RemotePlacement>,
    redial_backoff: Option<Duration>,
    poller: Option<PollerBackend>,
    idle_sleep: Option<Duration>,
}

impl std::fmt::Debug for FleetServerBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FleetServerBuilder")
            .field("shards", &self.shards)
            .field("bind", &self.bind)
            .field("multiround", &self.multiround.is_some())
            .field("placement", &self.placement.is_some())
            .field("redial_backoff", &self.redial_backoff)
            .field("poller", &self.poller)
            .field("idle_sleep", &self.idle_sleep)
            .finish_non_exhaustive()
    }
}

impl FleetServerBuilder {
    /// Run as a sharded referee service with `shards` shard workers
    /// (clamped to at least 1). Without this call the server is the
    /// echo mailbox.
    pub fn shards(mut self, shards: usize) -> FleetServerBuilder {
        self.shards = shards.max(1);
        self
    }

    /// Run as a **multi-round** referee service: `referee` supplies the
    /// per-session [`RefereeStepper`](crate::multiround::RefereeStepper)s
    /// whose `referee_step` runs once per round over the sharded uplink
    /// wait (see [`crate::multiround`]). Combine with
    /// [`shards`](FleetServerBuilder::shards) for the worker count;
    /// drive sessions with
    /// [`FleetClient::run_multiround_session`]. Equivalent to
    /// [`catalog`](FleetServerBuilder::catalog) with the single-entry
    /// catalog `ServiceCatalog::single(referee)`.
    pub fn multiround(self, referee: Arc<dyn WireReferee>) -> FleetServerBuilder {
        self.catalog(ServiceCatalog::single(referee))
    }

    /// Run as a **multi-protocol** multi-round referee service: every
    /// entry of `catalog` is served concurrently, with clients naming
    /// their service in the MAC'd `Announce`
    /// ([`FleetClient::run_multiround_session_as`]; the plain
    /// [`run_multiround_session`](FleetClient::run_multiround_session)
    /// selects entry 0). Announcing an unknown name fails closed with
    /// a typed error verdict.
    pub fn catalog(mut self, catalog: ServiceCatalog) -> FleetServerBuilder {
        self.multiround = Some(catalog);
        self
    }

    /// Place the referee's shards on **remote shard hosts**: the server
    /// becomes a coordinator whose shard ranges live on the
    /// [`ShardHost`](crate::placement::ShardHost)s named by
    /// `placement` (one proxy per shard forwards routed uplinks,
    /// journals for replay, and survives shard-host kill/restart — see
    /// [`crate::placement`]). The shard count comes from the
    /// placement's [`PlacementPolicy`](crate::placement::PlacementPolicy),
    /// overriding [`shards`](FleetServerBuilder::shards). Combine with
    /// [`multiround`](FleetServerBuilder::multiround) for the
    /// multi-round service; without it the one-round verifier is
    /// served.
    pub fn placement(mut self, placement: RemotePlacement) -> FleetServerBuilder {
        self.shards = placement.shards();
        self.placement = Some(placement);
        self
    }

    /// How long a shard proxy waits between redial attempts to a dead
    /// or restarting [`ShardHost`](crate::placement::ShardHost)
    /// (remote placement only). Defaults to the historical 20 ms, or
    /// the [`REDIAL_BACKOFF_ENV`](crate::placement::REDIAL_BACKOFF_ENV)
    /// environment value — this builder knob wins over both.
    pub fn redial_backoff(mut self, backoff: Duration) -> FleetServerBuilder {
        self.redial_backoff = Some(backoff);
        self
    }

    /// Bind to `addr` instead of the default. For cross-host fleets
    /// bind a routable address (e.g. `0.0.0.0:7431`) and point clients
    /// at it; the [`BIND_ENV`] environment variable does the same
    /// without code changes.
    pub fn bind(mut self, addr: SocketAddr) -> FleetServerBuilder {
        self.bind = Some(addr);
        self
    }

    /// Select the idle-wait backend for the server's pump loops:
    /// [`PollerBackend::Epoll`] (the default — kernel readiness with a
    /// wakeup fd) or [`PollerBackend::Sweep`] (the historical
    /// sleep-and-sweep loop). This knob wins over the [`POLLER_ENV`]
    /// environment variable; epoll silently degrades to sweep where
    /// unavailable.
    pub fn poller(mut self, backend: PollerBackend) -> FleetServerBuilder {
        self.poller = Some(backend);
        self
    }

    /// Override the idle interval between no-progress pump sweeps
    /// (default `50 µs`): the sweep backend sleeps it,
    /// the epoll backend uses it (floored at 2 ms — `epoll_wait`
    /// granularity) as the wait cap.
    pub fn idle_sleep(mut self, idle: Duration) -> FleetServerBuilder {
        self.idle_sleep = Some(idle);
        self
    }

    /// Bind, spawn the server thread(s) and start serving.
    pub fn spawn(self) -> io::Result<FleetServer> {
        let addr = resolve_bind(self.bind, std::env::var(BIND_ENV).ok().as_deref())?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(WireMetrics::default());
        let key = self.key;
        let shards = self.shards;
        let multiround = self.multiround;
        let placement = self.placement;
        let backoff = self.redial_backoff.unwrap_or_else(default_redial_backoff);
        let backend = resolve_poller(self.poller, std::env::var(POLLER_ENV).ok().as_deref());
        let poller = Poller::new(backend, self.idle_sleep.unwrap_or(IDLE_SLEEP));
        let thread = {
            let shutdown = Arc::clone(&shutdown);
            let metrics = Arc::clone(&metrics);
            thread::Builder::new().name("wirenet-server".into()).spawn(move || {
                match (placement, multiround) {
                    (Some(p), Some(catalog)) => run_multiround_server_remote(
                        listener,
                        key,
                        Arc::new(catalog),
                        p,
                        backoff,
                        &shutdown,
                        &metrics,
                        poller,
                    ),
                    (Some(p), None) => run_sharded_server_remote(
                        listener, key, p, backoff, &shutdown, &metrics, poller,
                    ),
                    (None, Some(catalog)) => run_multiround_server(
                        listener,
                        key,
                        Arc::new(catalog),
                        shards.max(1),
                        &shutdown,
                        &metrics,
                        poller,
                    ),
                    (None, None) if shards == 0 => {
                        run_server(listener, key, &shutdown, &metrics, &poller)
                    }
                    (None, None) => {
                        run_sharded_server(listener, key, shards, &shutdown, &metrics, poller)
                    }
                }
            })?
        };
        Ok(FleetServer { addr, shutdown, metrics, thread: Some(thread) })
    }
}

/// Bind-address precedence: explicit builder address, else the
/// [`BIND_ENV`] environment value, else loopback-ephemeral. Split out
/// (with the env value as a parameter) so it is unit-testable without
/// mutating the process environment.
fn resolve_bind(explicit: Option<SocketAddr>, env: Option<&str>) -> io::Result<SocketAddr> {
    if let Some(addr) = explicit {
        return Ok(addr);
    }
    match env {
        Some(s) => s.parse().map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("{BIND_ENV}={s} is not an ip:port address: {e}"),
            )
        }),
        None => Ok(DEFAULT_BIND.parse().expect("constant address parses")),
    }
}

impl FleetServer {
    /// Configure a server before spawning (bind address, sharded or
    /// multi-round mode).
    pub fn builder(key: AuthKey) -> FleetServerBuilder {
        FleetServerBuilder {
            key,
            shards: 0,
            bind: None,
            multiround: None,
            placement: None,
            redial_backoff: None,
            poller: None,
            idle_sleep: None,
        }
    }

    /// Spawn the echo mailbox on the default bind address.
    pub fn spawn(key: AuthKey) -> io::Result<FleetServer> {
        FleetServer::builder(key).spawn()
    }

    /// Spawn the sharded referee service with `shards` shard workers on
    /// the default bind address.
    pub fn spawn_sharded(key: AuthKey, shards: usize) -> io::Result<FleetServer> {
        FleetServer::builder(key).shards(shards).spawn()
    }

    /// Spawn the **multi-round** referee service with `shards` shard
    /// workers on the default bind address; `referee` is the protocol
    /// referee the server runs per round (e.g.
    /// [`boruvka_connectivity_service`](crate::multiround::boruvka_connectivity_service)).
    pub fn spawn_multiround(
        key: AuthKey,
        shards: usize,
        referee: Arc<dyn WireReferee>,
    ) -> io::Result<FleetServer> {
        FleetServer::builder(key).shards(shards).multiround(referee).spawn()
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live server-side wire metrics.
    pub fn metrics(&self) -> WireSnapshot {
        self.metrics.snapshot()
    }

    /// Every evidence bundle the server's workers cut (up to the
    /// `REFEREE_EVIDENCE_CAP` retention cap), in emission order. Each
    /// one is self-contained: verify it with
    /// [`verify_bundle`](referee_protocol::evidence::verify_bundle)
    /// against the fleet key and the session's parameters alone.
    pub fn evidence(&self) -> Vec<referee_protocol::evidence::EvidenceBundle> {
        self.metrics.evidence()
    }

    /// The server's causally-ordered flight-recorder timeline: the
    /// local ring's surviving events merged with every trace segment
    /// shipped by remote shard hosts (see `protocol::trace`).
    pub fn stitched_trace(&self) -> TraceSnapshot {
        self.metrics.stitched_trace()
    }

    /// Shut down, join the server thread, and return its final metrics.
    pub fn stop(mut self) -> WireSnapshot {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.metrics.snapshot()
    }
}

impl Drop for FleetServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Accept one pending connection, if any: assign the next connection
/// id, queue the Hello (MAC'd with the base key — the only frame that
/// ever crosses under it), and switch the connection to its derived
/// key. Hello frames are handshake overhead and deliberately absent
/// from the frame metrics.
pub(crate) fn accept_conn(
    listener: &TcpListener,
    base: &AuthKey,
    next_id: &mut u32,
) -> Option<(u32, Conn)> {
    let (stream, _) = listener.accept().ok()?;
    let mut conn = Conn::new(stream, *base).ok()?;
    let id = *next_id;
    *next_id += 1;
    conn.queue_frame(
        FrameKind::Hello,
        &Envelope {
            session: SessionId(0),
            round: 0,
            from: id,
            to: 0,
            payload: Message::empty(),
        },
    );
    conn.set_key(base.derive(id as u64));
    Some((id, conn))
}

fn run_server(
    listener: TcpListener,
    key: AuthKey,
    shutdown: &AtomicBool,
    metrics: &WireMetrics,
    poller: &Poller,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut next_id: u32 = 1;
    let mut scratch = vec![0u8; SCRATCH_BYTES];
    let listener_fd = fd_of(&listener);
    poller.register(listener_fd);
    let mut ready: Vec<i32> = Vec::new();
    let mut readiness = Readiness::All;
    while !shutdown.load(Ordering::Relaxed) {
        let mut progress = false;
        // Accept when the listener edged (or on a full sweep — the
        // degraded path every non-Fds readiness answer takes). An Err
        // is WouldBlock or a transient failure: try again next sweep.
        if readiness == Readiness::All || ready.contains(&listener_fd) {
            while let Some((id, mut conn)) = accept_conn(&listener, &key, &mut next_id) {
                metrics.connections(1);
                conn.meter_with(metrics.syscall_meter());
                conn.trace_with(metrics.recorder_arc(), trace_endpoint::SERVER);
                metrics.trace(0, trace_endpoint::SERVER, TraceKind::Dial, u64::from(id));
                poller.register(conn.fd());
                conns.push(conn);
                progress = true;
            }
        }
        // Pump the connections the kernel flagged (all of them when
        // readiness degraded): flush echoes, read frames, validate,
        // echo back.
        let pump_list: Vec<usize> = match readiness {
            Readiness::All => (0..conns.len()).collect(),
            Readiness::Fds => {
                ready.iter().filter_map(|fd| conns.iter().position(|c| c.fd() == *fd)).collect()
            }
        };
        for ci in pump_list {
            let conn = &mut conns[ci];
            conn.flush();
            // Backpressure: a peer that writes but never reads would
            // otherwise grow our echo buffer without bound. Stop
            // reading until the buffer drains — TCP then pushes back on
            // the peer's sends. Counted once per episode (latched), not
            // once per 50 µs sweep.
            if conn.pending_write() > WRITE_BACKPRESSURE_BYTES {
                if !conn.stalled {
                    conn.stalled = true;
                    metrics.backpressure_stalls(1);
                }
                continue;
            }
            conn.stalled = false;
            let got = conn.fill(&mut scratch);
            metrics.bytes_received(got as u64);
            progress |= got > 0;
            loop {
                // `echo_frame` authenticates and requeues the raw bytes
                // in place: no envelope build, no intermediate copy —
                // the server never looks inside a Data frame, so per
                // frame it pays one MAC and one memcpy, nothing else.
                match conn.echo_frame() {
                    Ok(None) => break,
                    Ok(Some((FrameKind::Data, wire_len))) => {
                        metrics.frames_received(1);
                        metrics.frames_sent(1);
                        metrics.bytes_sent(wire_len as u64);
                    }
                    Ok(Some((kind, _))) => {
                        // Control frames have no business at an echo
                        // mailbox; a peer sending them is confused or
                        // hostile.
                        let _ = kind;
                        metrics.decode_rejects(1);
                        conn.close();
                        break;
                    }
                    Err(WireError::BadMac) => {
                        // Tamper-evident fail-fast: a connection that
                        // carried one corrupted frame is dead to us.
                        metrics.mac_rejects(1);
                        metrics.trace(0, trace_endpoint::SERVER, TraceKind::MacReject, 0);
                        conn.close();
                        break;
                    }
                    Err(_) => {
                        metrics.decode_rejects(1);
                        conn.close();
                        break;
                    }
                }
            }
            // One batched flush per connection per sweep: every echo
            // queued by the decode loop above leaves in a single
            // `write(2)` (frames_per_write > 1 under load).
            conn.flush();
        }
        conns.retain(Conn::is_open);
        // Under epoll, every pumped socket was drained to `WouldBlock`
        // and anything new arrives as a fresh readiness edge, so go
        // straight back to the wait (whose capped timeout reports
        // `All`, re-probing stalled or missed sockets at sweep
        // cadence). The sweep backend has no edges: keep the
        // historical behavior of re-sweeping immediately while traffic
        // flows, sleeping only when a sweep moves nothing.
        if progress && poller.backend() == PollerBackend::Sweep {
            readiness = Readiness::All;
            continue;
        }
        readiness = poller.wait_ready(&mut ready);
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Deliberate wire-level fault injection: flip one deterministic bit in
/// the MAC-covered region of every `flip_every`-th outbound frame.
///
/// This is the adversary the acceptance criterion aims at: since the
/// flip lands *after* the MAC was computed, every tampered frame must be
/// rejected by the receiver's MAC verification — zero undetected.
#[derive(Debug, Clone, Copy)]
pub struct TamperConfig {
    /// Corrupt every n-th frame (`1` = every frame).
    pub flip_every: u64,
}

/// One session's demultiplexing lane on the client.
#[derive(Debug, Default)]
struct Lane {
    conn: usize,
    inbound: VecDeque<Envelope>,
    in_flight: u64,
    /// The sharded referee's verdict payload, once it arrives.
    verdict: Option<Message>,
}

/// Hasher for the lane map. Its keys are session ids the *client
/// itself* hands out (dense, never adversarial), and the map sits on
/// the hot path — several lookups per frame — so the DoS-resistant
/// default SipHash is pure overhead. A splitmix64 finisher mixes every
/// input bit into every output bit in a handful of arithmetic ops.
#[derive(Debug, Clone, Copy, Default)]
struct LaneHasher(u64);

impl std::hash::Hasher for LaneHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    // The generic byte path (unused by u64 keys, but required): FNV-1a.
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
    }

    fn write_u64(&mut self, x: u64) {
        // splitmix64 finisher.
        let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        self.0 = z ^ (z >> 31);
    }
}

/// Session id → lane, with the cheap mixer above.
type LaneMap = HashMap<u64, Lane, std::hash::BuildHasherDefault<LaneHasher>>;

#[derive(Debug)]
struct CoreState {
    conns: Vec<Conn>,
    lanes: LaneMap,
    next_conn: usize,
    tamper: Option<TamperConfig>,
    tamper_counter: u64,
    scratch: Vec<u8>,
    /// Whether some thread is currently the *pump leader*: it released
    /// the lock and is blocked in the poller wait, and will pump on
    /// return. Other waiters become followers on the condvar; senders
    /// rely on their own next pump (not the leader) to flush.
    pumping: bool,
}

/// Shared connection-pool state behind every [`SocketTransport`].
#[derive(Debug)]
pub(crate) struct FleetCore {
    state: Mutex<CoreState>,
    metrics: Arc<WireMetrics>,
    pub(crate) timeouts: WireTimeouts,
    /// The pool's readiness poller: every connection is registered at
    /// connect; idle waits block here instead of sleeping.
    poller: Poller,
    /// Wakes follower threads when the pump leader finishes a sweep.
    pump_done: Condvar,
}

impl FleetCore {
    fn lock(&self) -> MutexGuard<'_, CoreState> {
        // A panicked holder leaves consistent state (buffers are either
        // queued or not); ride through poisoning.
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// The idle wait every client loop uses when its lane has nothing
    /// deliverable: *one* thread (the leader) releases the lock and
    /// blocks in the kernel readiness wait, then relocks, pumps, and
    /// notifies; every other thread (followers) parks on the condvar.
    /// The mutex+condvar pair means a follower can never miss the
    /// leader's sweep; the leader's wait is capped (and woken by
    /// senders via [`Poller::wake`]), so no readiness edge strands
    /// anyone for long.
    fn wait_pump(&self, mut st: MutexGuard<'_, CoreState>) {
        if st.pumping {
            // Follower: the leader will pump; wait for its notify (or
            // the cap) and let the caller's loop re-examine the lane.
            let _ = self
                .pump_done
                .wait_timeout(st, FOLLOWER_WAIT)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            return;
        }
        st.pumping = true;
        drop(st);
        let mut ready = Vec::new();
        let readiness = self.poller.wait_ready(&mut ready);
        let mut st = self.lock();
        st.pumping = false;
        let moved = match readiness {
            // Wake, timeout, overflow, or the sweep backend: probe the
            // whole pool (the historical behavior, and the liveness
            // backstop for any readiness edge we failed to account).
            Readiness::All => self.pump(&mut st),
            // The kernel named the ready sockets: pump exactly those
            // and leave the rest of the pool's fds untouched — at
            // large pool sizes this is the difference between O(ready)
            // and O(pool) syscalls per wakeup.
            Readiness::Fds => {
                let mut moved = false;
                for fd in ready {
                    if let Some(ci) = st.conns.iter().position(|c| c.fd() == fd) {
                        st.conns[ci].readable = true;
                        moved |= self.pump_conn(&mut st, ci);
                    }
                }
                moved
            }
        };
        drop(st);
        // Wake followers only when the pump moved bytes: a timed-out
        // wait that found nothing has nothing to deliver, and
        // broadcasting anyway marches every parked thread through a
        // futex wake, a contended relock and a fruitless lane check —
        // pure scheduler churn on an oversubscribed host. Followers
        // re-check on their own cap regardless, so skipping the notify
        // never strands one beyond FOLLOWER_WAIT.
        if moved {
            self.pump_done.notify_all();
        }
    }

    /// One nonblocking sweep over every connection: flush writes, read
    /// sockets, demultiplex complete frames into lanes. Returns whether
    /// anything moved. Only the pump leader (and connect/chaos paths)
    /// sweeps everything; session threads pump just their own
    /// connection via [`FleetCore::pump_conn`], so the per-call cost
    /// does not scale with the pool size.
    fn pump(&self, st: &mut CoreState) -> bool {
        let mut progress = false;
        for ci in 0..st.conns.len() {
            // A full sweep is the "trust nothing" path: probe every
            // socket regardless of what readiness bookkeeping says.
            st.conns[ci].readable = true;
            progress |= self.pump_conn(st, ci);
        }
        progress
    }

    /// Flush, drain and demultiplex a single connection.
    fn pump_conn(&self, st: &mut CoreState, ci: usize) -> bool {
        let CoreState { conns, lanes, scratch, .. } = st;
        let conn = &mut conns[ci];
        if !conn.is_open() {
            return false;
        }
        let mut progress = conn.flush() > 0;
        // Only probe the socket while the kernel may have bytes for us:
        // under the epoll backend the leader re-arms `readable` from
        // real readiness events, so an idle lane's pump costs zero
        // `read(2)`s instead of one guaranteed `EAGAIN` per call. The
        // sweep backend never clears the flag (no event source).
        if conn.readable {
            let got = conn.fill(scratch);
            self.metrics.bytes_received(got as u64);
            progress |= got > 0;
            if self.poller.backend() == PollerBackend::Epoll {
                // `fill` drained to a short read or `EAGAIN`: the
                // socket is empty until the next readiness edge.
                conn.readable = false;
            }
        }
        loop {
            match conn.next_frame() {
                Ok(None) => break,
                Ok(Some((FrameKind::Data, env))) => {
                    self.metrics.frames_received(1);
                    match lanes.get_mut(&env.session.0) {
                        Some(lane) => {
                            lane.in_flight = lane.in_flight.saturating_sub(1);
                            lane.inbound.push_back(env);
                        }
                        None => {
                            // A late echo for a lane already retired
                            // (the transport was dropped with frames
                            // still in flight) — count and discard.
                            self.metrics.orphan_frames(1);
                        }
                    }
                    progress = true;
                }
                Ok(Some((FrameKind::Verdict, env))) => {
                    self.metrics.frames_received(1);
                    match lanes.get_mut(&env.session.0) {
                        Some(lane) => lane.verdict = Some(env.payload),
                        None => self.metrics.orphan_frames(1),
                    }
                    progress = true;
                }
                Ok(Some((FrameKind::Evidence, env))) => {
                    // The server cut a bundle proving a protocol
                    // violation on this fleet: log it (counter + capped
                    // retention) so operators can pull it via
                    // [`FleetClient::evidence`] and verify it
                    // third-party against the session key schedule.
                    self.metrics.frames_received(1);
                    match referee_protocol::evidence::EvidenceBundle::decode(&env.payload) {
                        Ok(bundle) => {
                            self.metrics.record_evidence(&bundle);
                            self.metrics.trace(
                                env.session.0,
                                trace_endpoint::CLIENT,
                                TraceKind::Evidence,
                                u64::from(env.from),
                            );
                        }
                        Err(_) => self.metrics.decode_rejects(1),
                    }
                    progress = true;
                }
                Ok(Some((_, _))) => {
                    // Hello was consumed at connect; Announce and
                    // Partial never flow server → client.
                    self.metrics.decode_rejects(1);
                    conn.close();
                    break;
                }
                Err(WireError::BadMac) => {
                    self.metrics.mac_rejects(1);
                    conn.close();
                    break;
                }
                Err(_) => {
                    self.metrics.decode_rejects(1);
                    conn.close();
                    break;
                }
            }
        }
        progress
    }

    /// Frame and queue one envelope of `kind`. `false` means the
    /// session's connection is dead and the envelope was destroyed.
    fn send_kind(&self, kind: FrameKind, env: &Envelope) -> bool {
        let mut st = self.lock();
        let ci = st.lanes.get(&env.session.0).expect("session registered").conn;
        // Backpressure: never let a write buffer grow unboundedly.
        if st.conns[ci].pending_write() > WRITE_BACKPRESSURE_BYTES {
            self.metrics.backpressure_stalls(1);
            loop {
                self.pump_conn(&mut st, ci);
                if st.conns[ci].pending_write() <= WRITE_BACKPRESSURE_BYTES
                    || !st.conns[ci].is_open()
                {
                    break;
                }
                self.wait_pump(st);
                st = self.lock();
            }
        }
        if !st.conns[ci].is_open() {
            return false;
        }
        // Deterministic tamper decision up front (it only needs the
        // counter), so the frame borrow below stays exclusive.
        let tamper_mult = match st.tamper {
            Some(tamper) => {
                st.tamper_counter += 1;
                st.tamper_counter
                    .is_multiple_of(tamper.flip_every.max(1))
                    .then(|| st.tamper_counter.wrapping_mul(0x9e3779b97f4a7c15))
            }
            None => None,
        };
        // Encode straight into the connection's write buffer: no
        // per-frame allocation, and no eager flush — frames coalesce
        // until the pump sweep (or the coalesce ceiling) writes them
        // out in one syscall.
        let frame_len = {
            let frame = st.conns[ci].queue_frame_mut(kind, env);
            if let Some(mult) = tamper_mult {
                // Deterministic bit position inside the MAC-covered
                // body — never the length prefix, so the stream stays
                // framed and the corruption reaches MAC verification.
                let body_bits = (frame.len() - 4) * 8;
                let bit = (mult % body_bits as u64) as usize;
                frame[4 + bit / 8] ^= 1 << (7 - bit % 8);
            }
            frame.len()
        };
        if tamper_mult.is_some() {
            self.metrics.tampered(1);
        }
        self.metrics.frames_sent(1);
        self.metrics.bytes_sent(frame_len as u64);
        if kind == FrameKind::Data {
            st.lanes.get_mut(&env.session.0).expect("session registered").in_flight += 1;
        }
        if st.conns[ci].pending_write() >= FLUSH_COALESCE_BYTES {
            st.conns[ci].flush();
        }
        // No poller nudge: the sender's own next `recv`/`await_*` call
        // pumps (and therefore flushes) this connection before it can
        // park, so queued frames never wait on the leader. Waking the
        // leader here cost an eventfd `write(2)` plus a full-pool probe
        // sweep per send burst and bought nothing.
        true
    }

    fn send(&self, env: &Envelope) -> bool {
        self.send_kind(FrameKind::Data, env)
    }

    /// Deliver the next envelope for `session`, pumping the reactor
    /// while frames are still in flight. `None` means the lane is truly
    /// drained: nothing queued, nothing in flight (or the connection
    /// died, destroying whatever was in flight).
    fn recv(&self, session: SessionId) -> Option<Envelope> {
        loop {
            let mut st = self.lock();
            // Fast path: deliver already-demultiplexed traffic without
            // touching any socket. Queued uplinks are not delayed by
            // skipping the pump — the next wait_pump (ours or another
            // lane's) flushes them in one batched write.
            let lane = st.lanes.get_mut(&session.0).expect("session registered");
            if let Some(env) = lane.inbound.pop_front() {
                return Some(env);
            }
            // Pump only this lane's connection: sibling lanes' traffic
            // is the leader's job, and sweeping the whole pool here
            // would make every recv cost O(connections) in syscalls.
            let ci = lane.conn;
            self.pump_conn(&mut st, ci);
            let lane = st.lanes.get_mut(&session.0).expect("session registered");
            if let Some(env) = lane.inbound.pop_front() {
                return Some(env);
            }
            if lane.in_flight == 0 {
                return None;
            }
            if !st.conns[ci].is_open() {
                return None; // in-flight frames died with the connection
            }
            self.wait_pump(st);
        }
    }

    /// Block until the sharded referee's verdict for `session` arrives,
    /// its connection dies, or [`WireTimeouts::verdict`] elapses.
    pub(crate) fn await_verdict(&self, session: SessionId) -> Result<Message, DecodeError> {
        let deadline = Instant::now() + self.timeouts.verdict;
        loop {
            let mut st = self.lock();
            let ci = st.lanes.get(&session.0).expect("session registered").conn;
            self.pump_conn(&mut st, ci);
            let lane = st.lanes.get_mut(&session.0).expect("session registered");
            if let Some(v) = lane.verdict.take() {
                return Ok(v);
            }
            if !st.conns[ci].is_open() {
                return Err(DecodeError::Inconsistent(
                    "connection poisoned while awaiting the shard verdict".into(),
                ));
            }
            if Instant::now() > deadline {
                return Err(DecodeError::Inconsistent(
                    "no verdict from the sharded referee within the deadline".into(),
                ));
            }
            self.wait_pump(st);
        }
    }

    /// Block until either round `round`'s complete downlink vector or
    /// the session's verdict arrives — or the connection dies, or
    /// [`WireTimeouts::verdict`] elapses (the per-round deadline).
    fn await_round(
        &self,
        session: SessionId,
        n: usize,
        round: u32,
    ) -> Result<RoundWait, DecodeError> {
        let deadline = Instant::now() + self.timeouts.verdict;
        let mut downlinks: Vec<Option<Message>> = vec![None; n];
        let mut filled = 0usize;
        loop {
            let mut st = self.lock();
            let ci = st.lanes.get(&session.0).expect("session registered").conn;
            self.pump_conn(&mut st, ci);
            let lane = st.lanes.get_mut(&session.0).expect("session registered");
            if let Some(v) = lane.verdict.take() {
                return Ok(RoundWait::Verdict(v));
            }
            while let Some(env) = lane.inbound.pop_front() {
                if env.from != 0 || env.to == 0 || env.to as usize > n {
                    return Err(DecodeError::Invalid(format!(
                        "unexpected frame {} → {} during round {round}",
                        env.from, env.to
                    )));
                }
                if env.round != round {
                    return Err(DecodeError::Invalid(format!(
                        "round-{} downlink delivered during round {round}",
                        env.round
                    )));
                }
                let slot = &mut downlinks[(env.to - 1) as usize];
                if slot.is_some() {
                    return Err(DecodeError::Inconsistent(format!(
                        "duplicate downlink for node {} in round {round}",
                        env.to
                    )));
                }
                *slot = Some(env.payload);
                filled += 1;
            }
            if filled == n {
                let msgs = downlinks.into_iter().map(|d| d.expect("all filled")).collect();
                return Ok(RoundWait::Downlinks(msgs));
            }
            if !st.conns[ci].is_open() {
                return Err(DecodeError::Inconsistent(
                    "connection poisoned while awaiting round downlinks".into(),
                ));
            }
            if Instant::now() > deadline {
                return Err(DecodeError::Inconsistent(format!(
                    "no round-{round} downlinks from the multi-round referee within the \
                     deadline"
                )));
            }
            self.wait_pump(st);
        }
    }

    /// Register `session` on the next connection (round-robin).
    fn register(&self, session: SessionId) -> usize {
        let mut st = self.lock();
        let conn = st.next_conn % st.conns.len();
        st.next_conn += 1;
        let prev = st.lanes.insert(session.0, Lane { conn, ..Lane::default() });
        assert!(prev.is_none(), "session {session} registered twice");
        conn
    }

    /// Retire a session's lane (called when its transport is dropped).
    /// Echoes still in flight surface later as `orphan_frames`.
    fn release(&self, session: SessionId) {
        self.lock().lanes.remove(&session.0);
    }
}

/// What ended one round's wait on the client.
enum RoundWait {
    /// The referee continued: one downlink per node, in ID order.
    Downlinks(Vec<Message>),
    /// The referee finished: the raw verdict payload.
    Verdict(Message),
}

/// A node-side pool of ≤ a-handful of TCP connections multiplexing a
/// whole fleet of sessions.
#[derive(Debug)]
pub struct FleetClient {
    core: Arc<FleetCore>,
}

impl FleetClient {
    /// Open `conns` connections to a [`FleetServer`] at `addr` and
    /// complete the per-connection key handshake on each. Both ends must
    /// hold the same base `key`; a mismatch fails here (the server's
    /// Hello does not authenticate), before any data is sent. Deadlines
    /// come from [`WireTimeouts::default`] (environment-overridable);
    /// use [`connect_with`](FleetClient::connect_with) to pass explicit
    /// ones.
    pub fn connect(addr: SocketAddr, conns: usize, key: AuthKey) -> io::Result<FleetClient> {
        FleetClient::connect_with(addr, conns, key, WireTimeouts::default())
    }

    /// Like [`connect`](FleetClient::connect), with explicit wire
    /// deadlines (the Hello handshake wait and the verdict/round wait).
    pub fn connect_with(
        addr: SocketAddr,
        conns: usize,
        key: AuthKey,
        timeouts: WireTimeouts,
    ) -> io::Result<FleetClient> {
        assert!(conns >= 1, "a fleet needs at least one connection");
        let metrics = Arc::new(WireMetrics::default());
        let poller = Poller::new(default_backend(), IDLE_SLEEP);
        let mut scratch = vec![0u8; SCRATCH_BYTES];
        let mut pool = Vec::with_capacity(conns);
        for _ in 0..conns {
            let dialed = Instant::now();
            let mut conn = Conn::new(TcpStream::connect(addr)?, key)?;
            conn.meter_with(metrics.syscall_meter());
            poller.register(conn.fd());
            let id = await_hello(&mut conn, &mut scratch, timeouts.hello, &poller)?;
            conn.set_key(key.derive(id as u64));
            conn.trace_with(metrics.recorder_arc(), trace_endpoint::CLIENT);
            metrics.trace(0, trace_endpoint::CLIENT, TraceKind::Dial, u64::from(id));
            metrics.record_stage(Stage::ConnectHello, dialed.elapsed());
            metrics.connections(1);
            pool.push(conn);
        }
        Ok(FleetClient {
            core: Arc::new(FleetCore {
                state: Mutex::new(CoreState {
                    conns: pool,
                    lanes: LaneMap::default(),
                    next_conn: 0,
                    tamper: None,
                    tamper_counter: 0,
                    scratch,
                    pumping: false,
                }),
                metrics,
                timeouts,
                poller,
                pump_done: Condvar::new(),
            }),
        })
    }

    /// Enable wire-level fault injection on every outbound frame.
    pub fn with_tamper(self, tamper: TamperConfig) -> FleetClient {
        self.core.lock().tamper = Some(tamper);
        self
    }

    /// Register `session` (round-robin across the pool) and return the
    /// transport that carries it. Drive it with a session built with
    /// [`with_session`](referee_simnet::OneRoundSession::with_session)
    /// on the same id — inbound envelopes are demultiplexed by that tag.
    ///
    /// Panics if the session id is already held by a *live* transport
    /// (ids must be unique among concurrent sessions). Dropping the
    /// transport retires the id; late echoes of a retired session are
    /// counted as `orphan_frames` and discarded, so reuse an id only
    /// once its traffic has drained.
    pub fn transport(&self, session: SessionId) -> SocketTransport {
        self.core.register(session);
        SocketTransport {
            core: Arc::clone(&self.core),
            session,
            counters: TransportCounters::default(),
        }
    }

    /// Have a **sharded** [`FleetServer`] assemble and verify one
    /// session: announce the network size, stream the `(sender,
    /// message)` arrivals, and block for the referee's verdict.
    ///
    /// `Ok(digest)` is the server's keyed digest of the assembled
    /// message vector (compare against
    /// [`vector_digest`](crate::shard::vector_digest) of the locally
    /// known vector to rule out any silent reordering or substitution);
    /// `Err` carries the canonical rejection verdict, or the delivery
    /// failure if the connection died first. Faulty sessions fail
    /// *fast*: a duplicate or out-of-range sender fixes the verdict's
    /// `Err` shape, so the server judges without waiting for the rest
    /// of the vector, and supplying anything other than exactly `n`
    /// arrivals errors client-side before a single frame is sent (so an
    /// aborted call leaves no session state behind). Panics if `session` is already
    /// registered, like [`transport`](FleetClient::transport); once the
    /// verdict returns, the id is reusable — the server retires judged
    /// sessions from every shard worker.
    pub fn verify_session(
        &self,
        session: SessionId,
        n: usize,
        arrivals: impl IntoIterator<Item = (u32, Message)>,
    ) -> Result<u64, DecodeError> {
        self.core.register(session);
        let result = self.verify_inner(session, n, arrivals);
        self.core.release(session);
        result
    }

    fn verify_inner(
        &self,
        session: SessionId,
        n: usize,
        arrivals: impl IntoIterator<Item = (u32, Message)>,
    ) -> Result<u64, DecodeError> {
        // Validate the arrival count *before* announcing: fewer than n
        // can never complete every shard (§I.B: the referee waits for
        // one message per vertex), more than n necessarily contains a
        // duplicate or stray — and a trailing extra could race the
        // verdict. Rejecting up front means an aborted call leaves no
        // wedged session state on the server.
        let arrivals: Vec<(u32, Message)> = arrivals.into_iter().collect();
        if arrivals.len() != n {
            return Err(DecodeError::Inconsistent(format!(
                "a size-{n} session needs exactly {n} arrivals, got {}",
                arrivals.len()
            )));
        }
        let opened = Instant::now();
        let mut w = BitWriter::new();
        w.write_bits(n as u64, 32);
        let announce =
            Envelope { session, round: 0, from: 0, to: 0, payload: Message::from_writer(w) };
        if !self.core.send_kind(FrameKind::Announce, &announce) {
            return Err(DecodeError::Inconsistent(
                "connection died announcing the session".into(),
            ));
        }
        self.core.metrics.record_stage(Stage::Announce, opened.elapsed());
        self.core.metrics.trace(
            session.0,
            trace_endpoint::CLIENT,
            TraceKind::Announce,
            n as u64,
        );
        for (sender, payload) in arrivals {
            let env = Envelope { session, round: 1, from: sender, to: 0, payload };
            if !self.core.send_kind(FrameKind::Data, &env) {
                return Err(DecodeError::Inconsistent(format!(
                    "connection died sending the message of node {sender}"
                )));
            }
        }
        self.core.metrics.record_stage(Stage::UplinksComplete, opened.elapsed());
        self.core.metrics.trace(session.0, trace_endpoint::CLIENT, TraceKind::Uplink, n as u64);
        let verdict = decode_verdict(&self.core.await_verdict(session)?);
        self.core.metrics.record_stage(Stage::Verdict, opened.elapsed());
        self.core.metrics.trace(
            session.0,
            trace_endpoint::CLIENT,
            TraceKind::Verdict,
            verdict.is_ok() as u64,
        );
        verdict
    }

    /// Drive one multi-round session against a **multi-round**
    /// [`FleetServer`] (see [`crate::multiround`]): this client runs the
    /// *node half* of `protocol` — node sends, node→node CONGEST links
    /// (kept local; they never involve the referee), node receives —
    /// while the server runs `referee_step` per round over its sharded
    /// uplink wait and streams MAC'd downlinks back.
    ///
    /// `Ok` carries the server's **encoded** final output (decode with
    /// the helper matching the served referee, e.g.
    /// [`decode_bool_output`](crate::multiround::decode_bool_output));
    /// `Err` is the canonical rejection class, a delivery failure, or a
    /// deadline miss ([`WireTimeouts::verdict`] bounds every round's
    /// wait, so a stalled server errors instead of hanging). Panics if
    /// `session` is registered on a live transport, like
    /// [`transport`](FleetClient::transport); the id is reusable once
    /// the call returns.
    pub fn run_multiround_session<P: MultiRoundProtocol>(
        &self,
        session: SessionId,
        protocol: &P,
        g: &LabelledGraph,
        max_rounds: usize,
    ) -> Result<Message, DecodeError> {
        self.core.register(session);
        let result = self.run_multiround_inner(session, None, protocol, g, max_rounds);
        self.core.release(session);
        result
    }

    /// Like [`run_multiround_session`](FleetClient::run_multiround_session),
    /// but against a **named service** of a catalog-mode server
    /// ([`FleetServerBuilder::catalog`](crate::FleetServerBuilder::catalog)):
    /// the service name rides inside the MAC'd `Announce`, so one
    /// server concurrently referees whichever protocol each session
    /// selects. A name the server's catalog doesn't know fails closed —
    /// the server answers a typed
    /// [`DecodeError::Invalid`] verdict immediately, never a hang.
    pub fn run_multiround_session_as<P: MultiRoundProtocol>(
        &self,
        session: SessionId,
        service: &str,
        protocol: &P,
        g: &LabelledGraph,
        max_rounds: usize,
    ) -> Result<Message, DecodeError> {
        self.core.register(session);
        let result = self.run_multiround_inner(session, Some(service), protocol, g, max_rounds);
        self.core.release(session);
        result
    }

    fn run_multiround_inner<P: MultiRoundProtocol>(
        &self,
        session: SessionId,
        service: Option<&str>,
        protocol: &P,
        g: &LabelledGraph,
        max_rounds: usize,
    ) -> Result<Message, DecodeError> {
        let n = g.n();
        if service.is_some_and(|s| s.is_empty() || s.len() > MAX_SERVICE_NAME_BYTES) {
            return Err(DecodeError::Invalid(format!(
                "service names must be 1..={MAX_SERVICE_NAME_BYTES} bytes"
            )));
        }
        if max_rounds == 0 {
            // Mirror `run_multiround`'s contract: a zero-round cap runs
            // no protocol at all. The local API reports "referee never
            // finished" as `Ok(None)`; this wire API's analogue is the
            // cap error — returned before anything is announced, so the
            // server sees no session state either.
            return Err(DecodeError::Invalid(
                "no verdict within the client's 0-round cap".into(),
            ));
        }
        let opened = Instant::now();
        let announce = Envelope {
            session,
            round: 0,
            from: 0,
            to: 0,
            payload: encode_mr_announce(n, service),
        };
        if !self.core.send_kind(FrameKind::Announce, &announce) {
            return Err(DecodeError::Inconsistent(
                "connection died announcing the session".into(),
            ));
        }
        self.core.metrics.record_stage(Stage::Announce, opened.elapsed());
        self.core.metrics.trace(
            session.0,
            trace_endpoint::CLIENT,
            TraceKind::Announce,
            n as u64,
        );
        if n == 0 {
            // No nodes, no rounds to drive: the server steps the empty
            // uplink vectors itself and judges.
            let verdict = decode_mr_verdict(&self.core.await_verdict(session)?);
            self.core.metrics.record_stage(Stage::Verdict, opened.elapsed());
            return verdict;
        }
        let mut node_states: Vec<P::NodeState> = (1..=n as u32)
            .map(|v| protocol.node_init(NodeView::new(n, v, g.neighbourhood(v))))
            .collect();
        for round in 1..=max_rounds as u32 {
            let round_opened = Instant::now();
            // Phase 1: node sends. Uplinks cross the wire; link
            // messages are delivered locally, one per edge per round.
            let mut inbox: Vec<Vec<(VertexId, Message)>> = vec![Vec::new(); n];
            for v in 1..=n as u32 {
                let view = NodeView::new(n, v, g.neighbourhood(v));
                let (to_nbrs, uplink) =
                    protocol.node_send(&node_states[(v - 1) as usize], view, round as usize);
                let env = Envelope { session, round, from: v, to: 0, payload: uplink };
                if !self.core.send_kind(FrameKind::Data, &env) {
                    return Err(DecodeError::Inconsistent(format!(
                        "connection died sending the round-{round} uplink of node {v}"
                    )));
                }
                for (target, payload) in to_nbrs {
                    if !g.has_edge(v, target) {
                        return Err(DecodeError::Invalid(format!(
                            "node {v} tried to message non-neighbour {target}"
                        )));
                    }
                    if inbox[(target - 1) as usize].iter().any(|(from, _)| *from == v) {
                        return Err(DecodeError::Invalid(format!(
                            "node {v} sent two messages to {target} in round {round} \
                             (one message per link per round)"
                        )));
                    }
                    inbox[(target - 1) as usize].push((v, payload));
                }
            }
            self.core.metrics.record_stage(Stage::UplinksComplete, round_opened.elapsed());
            self.core.metrics.trace(
                session.0,
                trace_endpoint::CLIENT,
                TraceKind::Uplink,
                u64::from(round),
            );
            // Phase 2: the referee's word — downlinks or the verdict.
            let downlinks = match self.core.await_round(session, n, round)? {
                RoundWait::Verdict(v) => {
                    self.core.metrics.record_stage(Stage::Verdict, opened.elapsed());
                    self.core.metrics.trace(
                        session.0,
                        trace_endpoint::CLIENT,
                        TraceKind::Verdict,
                        u64::from(round),
                    );
                    return decode_mr_verdict(&v);
                }
                RoundWait::Downlinks(d) => d,
            };
            // Phase 3: node receives.
            for v in 1..=n as u32 {
                let i = (v - 1) as usize;
                inbox[i].sort_by_key(|&(from, _)| from);
                let view = NodeView::new(n, v, g.neighbourhood(v));
                protocol.node_receive(
                    &mut node_states[i],
                    view,
                    round as usize,
                    &inbox[i],
                    &downlinks[i],
                );
            }
        }
        Err(DecodeError::Invalid(format!(
            "no verdict within the client's {max_rounds}-round cap"
        )))
    }

    /// Live client-side wire metrics.
    pub fn metrics(&self) -> WireSnapshot {
        self.core.metrics.snapshot()
    }

    /// Every evidence bundle the server shipped to this client (up to
    /// the `REFEREE_EVIDENCE_CAP` retention cap), in arrival order —
    /// the operator-side copy of the server's accountability log.
    pub fn evidence(&self) -> Vec<referee_protocol::evidence::EvidenceBundle> {
        self.core.metrics.evidence()
    }

    /// The client's flight-recorder timeline (session lifecycle events
    /// as the caller saw them), for stitching with the server's in a
    /// post-mortem.
    pub fn stitched_trace(&self) -> TraceSnapshot {
        self.core.metrics.stitched_trace()
    }
}

/// Pump `conn` until the server's Hello arrives, returning the assigned
/// connection id. The Hello is the only frame keyed with the base key,
/// so a key mismatch surfaces here as an authentication failure.
fn await_hello(
    conn: &mut Conn,
    scratch: &mut [u8],
    timeout: Duration,
    poller: &Poller,
) -> io::Result<u32> {
    let deadline = Instant::now() + timeout;
    loop {
        conn.flush();
        conn.fill(scratch);
        match conn.next_frame() {
            Ok(Some((FrameKind::Hello, env))) => return Ok(env.from),
            Ok(Some((kind, _))) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected Hello, server sent a {kind:?} frame"),
                ))
            }
            Ok(None) => {
                if !conn.is_open() {
                    return Err(io::Error::new(
                        io::ErrorKind::ConnectionReset,
                        "server closed before Hello",
                    ));
                }
                if Instant::now() > deadline {
                    return Err(io::Error::new(
                        io::ErrorKind::TimedOut,
                        "no Hello from server (is it a referee fleet server?)",
                    ));
                }
                poller.wait();
            }
            Err(e) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("handshake failed: {e} (key mismatch?)"),
                ))
            }
        }
    }
}

/// A [`Transport`] handle binding one session to the shared pool: sends
/// stamp the session id and frame the envelope onto the session's
/// connection; receives pump the reactor and deliver only this
/// session's traffic.
///
/// `recv` honours the `Transport` contract exactly: it returns `None`
/// only when every envelope ever sent has been delivered or destroyed —
/// while frames are in flight it pumps the reactor until they return,
/// so sessions never mistake wire latency for loss.
#[derive(Debug)]
pub struct SocketTransport {
    core: Arc<FleetCore>,
    session: SessionId,
    counters: TransportCounters,
}

impl SocketTransport {
    /// The session this transport is bound to.
    pub fn session(&self) -> SessionId {
        self.session
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        // Retire the lane so long-lived clients neither leak one lane
        // per finished session nor forbid id reuse.
        self.core.release(self.session);
    }
}

impl Transport for SocketTransport {
    fn send(&mut self, mut env: Envelope) {
        env.session = self.session;
        self.counters.sent += 1;
        if !self.core.send(&env) {
            // Connection dead: the envelope was destroyed in transit.
            self.counters.dropped += 1;
        }
    }

    fn recv(&mut self) -> Option<Envelope> {
        let env = self.core.recv(self.session)?;
        self.counters.delivered += 1;
        Some(env)
    }

    fn counters(&self) -> TransportCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_resolution_precedence() {
        // Explicit beats env beats default; the env value is passed as
        // a parameter so no test ever mutates the process environment.
        let explicit: SocketAddr = "10.0.0.1:7431".parse().unwrap();
        assert_eq!(resolve_bind(Some(explicit), Some("0.0.0.0:9999")).unwrap(), explicit);
        assert_eq!(
            resolve_bind(None, Some("0.0.0.0:9999")).unwrap(),
            "0.0.0.0:9999".parse::<SocketAddr>().unwrap()
        );
        let default = resolve_bind(None, None).unwrap();
        assert!(default.ip().is_loopback());
        assert_eq!(default.port(), 0);
        let err = resolve_bind(None, Some("not-an-address")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn timeout_resolution_precedence() {
        // Env values (milliseconds) override; the historical consts stay
        // the defaults. Env values are parameters here so no test ever
        // mutates the process environment.
        let d = WireTimeouts::resolve(None, None);
        assert_eq!(d.hello, Duration::from_secs(10));
        assert_eq!(d.verdict, Duration::from_secs(30));
        let e = WireTimeouts::resolve(Some("250"), Some("90000"));
        assert_eq!(e.hello, Duration::from_millis(250));
        assert_eq!(e.verdict, Duration::from_secs(90));
        // Garbage or zero falls back to the default instead of failing
        // every connect on a typo'd environment.
        assert_eq!(WireTimeouts::resolve(Some("zebra"), Some("0")), d);
    }
}
