//! [`IBig`]: signed arbitrary-precision integer (sign–magnitude over
//! [`UBig`]).
//!
//! Needed by the Newton-identity decoder: the recurrence
//! `j·e_j = Σ_{i=1}^{j} (-1)^{i-1} e_{j-i} p_i` alternates signs even though
//! the inputs (power sums) and outputs (elementary symmetric polynomials of
//! positive IDs) are non-negative, and polynomial evaluation at candidate
//! roots swings negative between roots.

use crate::{UBig, WideError};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Sign of an [`IBig`]. Zero is always [`Sign::Positive`] (normalized).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// ≥ 0.
    Positive,
    /// < 0 (magnitude is then non-zero).
    Negative,
}

impl Sign {
    fn flip(self) -> Sign {
        match self {
            Sign::Positive => Sign::Negative,
            Sign::Negative => Sign::Positive,
        }
    }
}

/// Signed arbitrary-precision integer.
///
/// Invariant: zero always carries [`Sign::Positive`], so `==` is structural.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IBig {
    sign: Sign,
    mag: UBig,
}

impl IBig {
    /// The value 0.
    pub fn zero() -> Self {
        IBig { sign: Sign::Positive, mag: UBig::zero() }
    }

    /// The value 1.
    pub fn one() -> Self {
        IBig { sign: Sign::Positive, mag: UBig::one() }
    }

    /// Build from a sign and magnitude (normalizing zero).
    pub fn from_sign_mag(sign: Sign, mag: UBig) -> Self {
        if mag.is_zero() {
            IBig::zero()
        } else {
            IBig { sign, mag }
        }
    }

    /// The sign.
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// The magnitude.
    pub fn magnitude(&self) -> &UBig {
        &self.mag
    }

    /// True iff the value is 0.
    pub fn is_zero(&self) -> bool {
        self.mag.is_zero()
    }

    /// True iff the value is < 0.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Convert to a non-negative [`UBig`], failing on negatives.
    pub fn to_ubig(&self) -> Result<UBig, WideError> {
        match self.sign {
            Sign::Positive => Ok(self.mag.clone()),
            Sign::Negative => Err(WideError::NegativeToUnsigned),
        }
    }

    /// Exact division by a small positive integer; `None` if not divisible.
    ///
    /// Newton's identities divide by the index `j`; divisibility is
    /// guaranteed for consistent sketches and *checked* here so corrupted
    /// messages surface as decode failures instead of wrong graphs.
    pub fn exact_div_small(&self, d: u64) -> Option<IBig> {
        let (q, r) = self.mag.divrem_small(d).ok()?;
        if r != 0 {
            return None;
        }
        Some(IBig::from_sign_mag(self.sign, q))
    }
}

impl From<&UBig> for IBig {
    fn from(u: &UBig) -> Self {
        IBig::from_sign_mag(Sign::Positive, u.clone())
    }
}

impl From<UBig> for IBig {
    fn from(u: UBig) -> Self {
        IBig::from_sign_mag(Sign::Positive, u)
    }
}

impl From<i64> for IBig {
    fn from(v: i64) -> Self {
        if v < 0 {
            IBig::from_sign_mag(Sign::Negative, UBig::from(v.unsigned_abs()))
        } else {
            IBig::from_sign_mag(Sign::Positive, UBig::from(v as u64))
        }
    }
}

impl Neg for IBig {
    type Output = IBig;
    fn neg(self) -> IBig {
        IBig::from_sign_mag(self.sign.flip(), self.mag)
    }
}

impl Neg for &IBig {
    type Output = IBig;
    fn neg(self) -> IBig {
        IBig::from_sign_mag(self.sign.flip(), self.mag.clone())
    }
}

impl Add for &IBig {
    type Output = IBig;
    fn add(self, rhs: &IBig) -> IBig {
        if self.sign == rhs.sign {
            return IBig::from_sign_mag(self.sign, self.mag.add_ref(&rhs.mag));
        }
        // Opposite signs: subtract the smaller magnitude from the larger.
        match self.mag.cmp(&rhs.mag) {
            Ordering::Equal => IBig::zero(),
            Ordering::Greater => {
                IBig::from_sign_mag(self.sign, self.mag.checked_sub(&rhs.mag).unwrap())
            }
            Ordering::Less => {
                IBig::from_sign_mag(rhs.sign, rhs.mag.checked_sub(&self.mag).unwrap())
            }
        }
    }
}

impl Add for IBig {
    type Output = IBig;
    fn add(self, rhs: IBig) -> IBig {
        &self + &rhs
    }
}

impl Sub for &IBig {
    type Output = IBig;
    fn sub(self, rhs: &IBig) -> IBig {
        self + &(-rhs)
    }
}

impl Sub for IBig {
    type Output = IBig;
    fn sub(self, rhs: IBig) -> IBig {
        &self - &rhs
    }
}

impl Mul for &IBig {
    type Output = IBig;
    fn mul(self, rhs: &IBig) -> IBig {
        let sign = if self.sign == rhs.sign { Sign::Positive } else { Sign::Negative };
        IBig::from_sign_mag(sign, self.mag.mul_ref(&rhs.mag))
    }
}

impl Mul for IBig {
    type Output = IBig;
    fn mul(self, rhs: IBig) -> IBig {
        &self * &rhs
    }
}

impl Ord for IBig {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Positive, Sign::Negative) => Ordering::Greater,
            (Sign::Negative, Sign::Positive) => Ordering::Less,
            (Sign::Positive, Sign::Positive) => self.mag.cmp(&other.mag),
            (Sign::Negative, Sign::Negative) => other.mag.cmp(&self.mag),
        }
    }
}

impl PartialOrd for IBig {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for IBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "-")?;
        }
        write!(f, "{}", self.mag)
    }
}

impl fmt::Debug for IBig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IBig({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ib(v: i64) -> IBig {
        IBig::from(v)
    }

    #[test]
    fn zero_is_positive() {
        assert_eq!(ib(0).sign(), Sign::Positive);
        assert_eq!(-ib(0), ib(0));
        assert_eq!(ib(5) + ib(-5), ib(0));
    }

    #[test]
    fn add_matches_i64() {
        let vals = [-100i64, -1, 0, 1, 7, 100, i32::MAX as i64];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(ib(a) + ib(b), ib(a + b), "{a} + {b}");
                assert_eq!(ib(a) - ib(b), ib(a - b), "{a} - {b}");
                assert_eq!(ib(a) * ib(b), ib(a * b), "{a} * {b}");
            }
        }
    }

    #[test]
    fn ordering_matches_i64() {
        let vals = [-100i64, -1, 0, 1, 100];
        for &a in &vals {
            for &b in &vals {
                assert_eq!(ib(a).cmp(&ib(b)), a.cmp(&b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn display_negative() {
        assert_eq!(ib(-42).to_string(), "-42");
        assert_eq!(ib(0).to_string(), "0");
    }

    #[test]
    fn to_ubig() {
        assert_eq!(ib(5).to_ubig().unwrap(), UBig::from(5u64));
        assert!(ib(-5).to_ubig().is_err());
        assert_eq!(ib(0).to_ubig().unwrap(), UBig::zero());
    }

    #[test]
    fn exact_div() {
        assert_eq!(ib(12).exact_div_small(3), Some(ib(4)));
        assert_eq!(ib(-12).exact_div_small(3), Some(ib(-4)));
        assert_eq!(ib(13).exact_div_small(3), None);
        assert_eq!(ib(0).exact_div_small(7), Some(ib(0)));
        assert_eq!(ib(5).exact_div_small(0), None);
    }

    #[test]
    fn large_magnitude_ops() {
        let big = IBig::from(UBig::from(2u64).pow(200));
        let neg = -big.clone();
        assert_eq!(&big + &neg, IBig::zero());
        assert!((&neg - &IBig::one()).is_negative());
        assert_eq!(&big * &neg, -IBig::from(UBig::from(2u64).pow(400)));
    }
}
