//! A guided tour of the paper's title question: **what can(not) be
//! computed in one round?**
//!
//! Four stops, one per regime:
//!
//! 1. CAN, trivially — degree statistics (O(1)–O(log n) bits).
//! 2. CAN, remarkably — full topology reconstruction for bounded
//!    degeneracy (Theorem 5), covering forests, planar graphs, bounded
//!    treewidth, and scale-free networks.
//! 3. CANNOT — squares, triangles, diameter ≤ 3 (Theorems 1–3): the
//!    counting argument in action, with an explicit collision witness.
//! 4. OPEN — connectivity (§IV), bracketed from three sides: partition
//!    protocols, extra rounds, and public randomness.
//!
//! Run with: `cargo run --release --example what_can_be_computed`

use referee_one_round::prelude::*;
use referee_one_round::protocol::easy::{EdgeCountProtocol, EulerianDegreeProtocol};
use referee_one_round::reductions::{collision, counting};

fn main() {
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(2011);

    println!("══ 1. CAN, trivially: aggregate statistics ══════════════════════════");
    let g = generators::gnp(400, 0.02, &mut rng);
    let edges = run_protocol(&EdgeCountProtocol, &g);
    println!(
        "  G(400, 0.02): referee learns m = {} from {}-bit messages",
        edges.output.expect("honest"),
        edges.stats.max_message_bits
    );
    let parity = run_protocol(&EulerianDegreeProtocol, &g);
    println!(
        "  Eulerian degree condition from ONE bit per node: all even = {}",
        parity.output.expect("honest")
    );

    println!("\n══ 2. CAN, remarkably: Theorem 5 reconstruction ═════════════════════");
    let planar = generators::random_planar_triangulation(300, 600, &mut rng).unwrap();
    let k = algo::degeneracy_ordering(&planar).degeneracy;
    let out = run_protocol(&DegeneracyProtocol::new(k), &planar);
    let bits = out.stats.max_message_bits;
    match out.output.expect("honest") {
        Reconstruction::Graph(h) => {
            assert_eq!(h, planar);
            println!(
                "  planar triangulation, n = 300, m = {}: EXACT reconstruction from\n  \
                 {bits}-bit messages (degeneracy {k}; {:.1}× log₂ n)",
                planar.m(),
                bits as f64 / (300f64).log2()
            );
        }
        Reconstruction::NotInClass => unreachable!("planar ⇒ degeneracy ≤ 5"),
    }
    let ba = generators::barabasi_albert(300, 3, &mut rng).unwrap();
    let out = run_protocol(&DegeneracyProtocol::new(3), &ba);
    println!(
        "  scale-free (BA, m = 3), hub degree {}: still {} bits — the hub's naive\n  \
         adjacency upload would need {} bits",
        ba.max_degree(),
        out.stats.max_message_bits,
        (ba.max_degree() + 1) * bits_for(300) as usize
    );
    assert!(matches!(out.output.expect("honest"), Reconstruction::Graph(h) if h == ba));

    println!("\n══ 3. CANNOT: the counting wall (Lemma 1) ═══════════════════════════");
    for n in [5usize, 6, 7] {
        let sf = counting::count_square_free_exact(n);
        println!(
            "  n = {n}: {sf} square-free graphs need {:.1} bits; a frugal round\n  \
             carries at most c·n·⌈log₂ n⌉ = {} bits (c = 4)",
            (sf as f64).log2(),
            counting::budget_log2(n, 4)
        );
    }
    println!("  (the square-free count grows as 2^Θ(n^1.5) — any budget loses eventually)");
    // An explicit pigeonhole witness for a concrete frugal sketch.
    let pair = collision::find_collision(
        &referee_one_round::protocol::easy::NeighbourhoodSumProtocol,
        referee_one_round::graph::enumerate::all_graphs(6),
    );
    match pair {
        Some((a, b)) => println!(
            "  collision witness at n = 6: the (deg, ΣID) fingerprint cannot tell\n  \
             {a:?}\n  from\n  {b:?}"
        ),
        None => println!("  (deg, ΣID) is still injective at n = 6 — the wall is further out"),
    }

    println!("\n══ 4. OPEN: connectivity (§IV), bracketed three ways ════════════════");
    let maze = generators::gnp(300, 1.1 / 300.0, &mut rng);
    let truth = algo::is_connected(&maze);
    let part = partition_connectivity(&maze, 8);
    println!(
        "  8-part partition protocol: {} bits/node (O(k log n)), answer {}",
        part.max_message_bits, part.connected
    );
    let (boruvka_ans, stats) = boruvka_connectivity(&maze);
    println!(
        "  multi-round Borůvka: {} rounds of ≤ {} bit messages, answer {}",
        stats.rounds,
        stats.max_uplink_bits.max(stats.max_downlink_bits),
        boruvka_ans
    );
    let coins = sketch_connectivity(&maze, 42);
    println!(
        "  ONE round + public coins: {} bits/node (O(log³ n)), answer {}",
        SketchConnectivityProtocol::message_bits(300),
        coins
    );
    assert_eq!(part.connected, truth);
    assert_eq!(boruvka_ans, truth);
    println!(
        "  ground truth: {truth} — deterministic ONE-round frugal connectivity is\n  \
         the paper's open question; all three brackets above relax exactly one knob."
    );
}
