//! A **linear** ℓ₀-sampler over the edge-slot universe.
//!
//! The signed edge-incidence vector of vertex `w` has, for each incident
//! edge `{u, v}` (`u < v`), entry `+1` at slot `(u,v)` if `w = u` and `-1`
//! if `w = v`. Adding the vectors of all vertices in a set `S` cancels
//! every edge with both endpoints in `S`, leaving exactly the boundary
//! `∂S` with ±1 entries — the identity that lets the referee run Borůvka
//! on sums of sketches.
//!
//! The sampler keeps, per sampling level `l` (retaining slots w.p. 2⁻ˡ),
//! three wrapping-u64 linear accumulators: `Σ sign`, `Σ sign·slot`,
//! `Σ sign·fp(slot)`. A level holding exactly one nonzero entry is
//! recognized by `Σ sign = ±1` plus a fingerprint check (false positive
//! probability 2⁻⁶⁴ per level); the slot id is then recovered exactly.

use crate::hash::KeyedHash;
use referee_graph::VertexId;
use referee_protocol::{BitReader, BitWriter, DecodeError};

/// A canonical edge slot: the pair `(u, v)`, `u < v`, as a linear index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeSlot(pub u64);

impl EdgeSlot {
    /// Encode `(u, v)` with `u < v` (1-based IDs) in colex order.
    pub fn encode(u: VertexId, v: VertexId) -> Self {
        assert!(0 < u && u < v, "need 0 < u < v, got ({u}, {v})");
        let v64 = v as u64;
        EdgeSlot((v64 - 1) * (v64 - 2) / 2 + (u as u64 - 1))
    }

    /// Decode back to `(u, v)`, `u < v`.
    pub fn decode(self) -> (VertexId, VertexId) {
        // find v: largest v with (v-1)(v-2)/2 <= slot
        let s = self.0;
        // solve (v-1)(v-2)/2 ≤ s < v(v-1)/2 by sqrt then fix up
        let mut v = ((2.0 * s as f64).sqrt() as u64) + 1;
        while (v - 1) * v / 2 <= s {
            v += 1;
        }
        while (v - 2) * (v - 1) / 2 > s {
            v -= 1;
        }
        let u = s - (v - 1) * (v - 2) / 2 + 1;
        (u as VertexId, v as VertexId)
    }

    /// Number of slots for an n-vertex graph: C(n, 2).
    pub fn universe(n: usize) -> u64 {
        let n = n as u64;
        n * n.saturating_sub(1) / 2
    }
}

/// One level's linear accumulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Level {
    count: u64,  // Σ sign (wrapping)
    id_sum: u64, // Σ sign·slot (wrapping)
    fp_sum: u64, // Σ sign·fp(slot) (wrapping)
}

/// A linear ℓ₀-sampling sketch. All operations are linear, so
/// [`L0Sampler::merge`] of the sketches of two vertex sets is the sketch
/// of their symmetric-difference boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L0Sampler {
    levels: Vec<Level>,
    seed: u64,
    stream: u64,
}

impl L0Sampler {
    /// Number of levels for an n-vertex universe: enough that the top
    /// level is empty w.h.p. even for boundaries of size C(n,2).
    pub fn levels_for(n: usize) -> u32 {
        64 - EdgeSlot::universe(n).max(1).leading_zeros() + 2
    }

    /// Fresh empty sketch keyed by `(seed, stream)` — nodes and referee
    /// must use identical keys (the public coins).
    pub fn new(n: usize, seed: u64, stream: u64) -> Self {
        L0Sampler { levels: vec![Level::default(); Self::levels_for(n) as usize], seed, stream }
    }

    fn retain_hash(&self) -> KeyedHash {
        KeyedHash::new(self.seed, self.stream.wrapping_mul(2))
    }

    fn fp_hash(&self) -> KeyedHash {
        KeyedHash::new(self.seed, self.stream.wrapping_mul(2) + 1)
    }

    /// Add `sign · e_slot` to the sketched vector (`sign` = ±1).
    pub fn update(&mut self, slot: EdgeSlot, sign: i64) {
        debug_assert!(sign == 1 || sign == -1);
        let retain = self.retain_hash();
        let fp = self.fp_hash().hash(slot.0);
        let s = sign as u64; // wrapping two's complement works out
        for (l, level) in self.levels.iter_mut().enumerate() {
            if retain.retained_at(slot.0, l as u32) {
                level.count = level.count.wrapping_add(s);
                level.id_sum = level.id_sum.wrapping_add(s.wrapping_mul(slot.0));
                level.fp_sum = level.fp_sum.wrapping_add(s.wrapping_mul(fp));
            } else {
                break; // retention is nested: deeper levels also exclude
            }
        }
    }

    /// Linear merge: `self += other`. Panics on key mismatch (that would
    /// silently corrupt the linearity).
    pub fn merge(&mut self, other: &L0Sampler) {
        assert_eq!(self.seed, other.seed, "sketch key mismatch");
        assert_eq!(self.stream, other.stream, "sketch stream mismatch");
        assert_eq!(self.levels.len(), other.levels.len());
        for (a, b) in self.levels.iter_mut().zip(&other.levels) {
            a.count = a.count.wrapping_add(b.count);
            a.id_sum = a.id_sum.wrapping_add(b.id_sum);
            a.fp_sum = a.fp_sum.wrapping_add(b.fp_sum);
        }
    }

    /// Try to recover one nonzero coordinate of the sketched vector.
    ///
    /// Scans levels for a verified singleton. Returns `None` when no
    /// level isolates a single slot (possible for awkward vector sizes —
    /// the connectivity protocol compensates with independent copies).
    pub fn sample(&self) -> Option<EdgeSlot> {
        let fp = self.fp_hash();
        let retain = self.retain_hash();
        for (l, level) in self.levels.iter().enumerate() {
            let (sign, slot) = if level.count == 1 {
                (1u64, level.id_sum)
            } else if level.count == u64::MAX {
                (u64::MAX, level.id_sum.wrapping_neg())
            } else {
                continue;
            };
            // Verify: fingerprint and level membership must cohere.
            if level.fp_sum == sign.wrapping_mul(fp.hash(slot))
                && retain.retained_at(slot, l as u32)
            {
                return Some(EdgeSlot(slot));
            }
        }
        None
    }

    /// True iff every accumulator is zero (a zero vector sketches to
    /// zero; the converse holds w.h.p.).
    pub fn is_zero(&self) -> bool {
        self.levels.iter().all(|l| *l == Level::default())
    }

    /// Serialized size in bits.
    pub fn serialized_bits(&self) -> usize {
        self.levels.len() * 3 * 64
    }

    /// Append to a bit stream (fixed layout: 3 × 64 bits per level).
    pub fn write(&self, w: &mut BitWriter) {
        for l in &self.levels {
            w.write_bits(l.count, 64);
            w.write_bits(l.id_sum, 64);
            w.write_bits(l.fp_sum, 64);
        }
    }

    /// Read back a sketch written by [`L0Sampler::write`].
    pub fn read(
        r: &mut BitReader<'_>,
        n: usize,
        seed: u64,
        stream: u64,
    ) -> Result<Self, DecodeError> {
        let mut s = L0Sampler::new(n, seed, stream);
        for l in s.levels.iter_mut() {
            l.count = r.read_bits(64)?;
            l.id_sum = r.read_bits(64)?;
            l.fp_sum = r.read_bits(64)?;
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_slot_round_trip() {
        for v in 2..=50u32 {
            for u in 1..v {
                let slot = EdgeSlot::encode(u, v);
                assert_eq!(slot.decode(), (u, v), "({u},{v})");
            }
        }
        assert_eq!(EdgeSlot::encode(1, 2).0, 0);
        assert_eq!(EdgeSlot::universe(4), 6);
    }

    #[test]
    fn singleton_always_recovered() {
        for x in [0u64, 1, 5, 1000, 123_456] {
            let mut s = L0Sampler::new(1000, 42, 0);
            s.update(EdgeSlot(x), 1);
            assert_eq!(s.sample(), Some(EdgeSlot(x)), "slot {x}");
            let mut neg = L0Sampler::new(1000, 42, 0);
            neg.update(EdgeSlot(x), -1);
            assert_eq!(neg.sample(), Some(EdgeSlot(x)), "negative slot {x}");
        }
    }

    #[test]
    fn cancellation_gives_zero() {
        let mut a = L0Sampler::new(100, 7, 3);
        let mut b = L0Sampler::new(100, 7, 3);
        for x in [3u64, 17, 99, 2048] {
            a.update(EdgeSlot(x), 1);
            b.update(EdgeSlot(x), -1);
        }
        a.merge(&b);
        assert!(a.is_zero());
        assert_eq!(a.sample(), None);
    }

    #[test]
    fn merge_equals_bulk_update() {
        let mut bulk = L0Sampler::new(500, 9, 1);
        let mut a = L0Sampler::new(500, 9, 1);
        let mut b = L0Sampler::new(500, 9, 1);
        for x in 0..200u64 {
            let sign = if x % 3 == 0 { -1 } else { 1 };
            bulk.update(EdgeSlot(x), sign);
            if x % 2 == 0 {
                a.update(EdgeSlot(x), sign);
            } else {
                b.update(EdgeSlot(x), sign);
            }
        }
        a.merge(&b);
        assert_eq!(a, bulk);
    }

    #[test]
    fn sampling_success_rate_on_sparse_vectors() {
        // With many slots the top non-empty level usually isolates one;
        // measure the success rate across streams.
        let mut hits = 0;
        let trials = 200;
        for stream in 0..trials {
            let mut s = L0Sampler::new(2000, 1234, stream);
            for x in 0..50u64 {
                s.update(EdgeSlot(x * 37 + stream), 1);
            }
            if let Some(slot) = s.sample() {
                assert!((0..50).any(|x| x * 37 + stream == slot.0), "bogus sample");
                hits += 1;
            }
        }
        assert!(hits * 10 >= trials * 7, "success {hits}/{trials} too low");
    }

    #[test]
    fn serialization_round_trip() {
        let mut s = L0Sampler::new(300, 5, 8);
        for x in [1u64, 2, 3, 500] {
            s.update(EdgeSlot(x), if x % 2 == 0 { -1 } else { 1 });
        }
        let mut w = BitWriter::new();
        s.write(&mut w);
        let msg = referee_protocol::Message::from_writer(w);
        assert_eq!(msg.len_bits(), s.serialized_bits());
        let back = L0Sampler::read(&mut msg.reader(), 300, 5, 8).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.sample(), s.sample());
    }

    #[test]
    #[should_panic(expected = "key mismatch")]
    fn merge_rejects_key_mismatch() {
        let mut a = L0Sampler::new(10, 1, 0);
        let b = L0Sampler::new(10, 2, 0);
        a.merge(&b);
    }
}
