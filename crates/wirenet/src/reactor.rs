//! The reactor substrate: nonblocking connections with explicit
//! read/write buffers, pumped by kernel-readiness sweeps.
//!
//! Every connection is `O_NONBLOCK`, and a *pump* sweep attempts to
//! flush each write buffer and drain each socket into its read buffer,
//! reporting whether anything moved. When a whole sweep makes no
//! progress, callers (the server loops,
//! [`FleetClient`](crate::FleetClient) transports) block in a
//! [`Poller`](crate::poll) wait — `epoll_wait(2)` on every registered
//! socket plus a wakeup fd on Linux, the historical sleep-and-sweep
//! fallback elsewhere (see [`crate::poll`] for the backend and
//! edge-trigger story).
//!
//! The byte path batches in both directions: outbound frames are
//! encoded *in place* into the connection's reusable write buffer
//! (`Conn::queue_frame` → `encode_frame_into`, MAC computed over the
//! appended span, zero per-frame allocation) and coalesce there until
//! one `Conn::flush` pushes everything queued with as few `write(2)`
//! calls as the socket accepts; inbound, one `Conn::fill` drains the
//! socket to `WouldBlock` and the decoder then parses every complete
//! frame from the read buffer before the loop returns to the poller.
//! The `write_syscalls`/`read_syscalls` counters (via
//! `Conn::meter_with`) and the derived `frames_per_write` ratio in
//! [`WireSnapshot`](crate::WireSnapshot) make the batching observable.
//!
//! Frame extraction (`Conn::next_frame`) runs the streaming decoder
//! over the read buffer; a decode or MAC failure poisons the connection
//! (a corrupted length-prefixed stream cannot be resynchronized), which
//! the fleet layer converts into session-level
//! [`DecodeError`](referee_protocol::DecodeError) rejections.

use crate::auth::AuthKey;
use crate::frame::{decode_frame, encode_frame_into, verify_frame, FrameKind, WireError};
use crate::metrics::SyscallMeter;
use referee_protocol::trace::{wall_clock_us, FlightRecorder, TraceKind};
use referee_simnet::Envelope;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

/// Size of the stack-free read scratch buffer.
pub(crate) const SCRATCH_BYTES: usize = 64 * 1024;

/// Write-buffer occupancy above which senders stall (backpressure).
pub(crate) const WRITE_BACKPRESSURE_BYTES: usize = 256 * 1024;

/// One nonblocking connection with its buffers and its frame key.
///
/// The key starts as the fleet's base key and is switched to the
/// per-connection derived key once the [`FrameKind::Hello`] handshake
/// names the connection (see `fleet`): a leaked per-connection key then
/// authenticates nothing on sibling connections.
pub(crate) struct Conn {
    stream: TcpStream,
    key: AuthKey,
    /// Bytes read off the socket, not yet consumed by the decoder.
    rbuf: Vec<u8>,
    /// Consumed prefix of `rbuf` (compacted lazily).
    rpos: usize,
    /// Bytes queued for transmission, not yet written.
    wbuf: Vec<u8>,
    /// Written prefix of `wbuf` (compacted lazily).
    wpos: usize,
    open: bool,
    /// Latch for episode-counted backpressure: set while the peer is
    /// being throttled, so a stall episode is counted once, not once
    /// per poll sweep.
    pub(crate) stalled: bool,
    /// Kernel-readiness hint: `true` when the socket may have unread
    /// bytes. Loops that get per-fd readiness from an epoll poller
    /// clear this after draining to `WouldBlock` and re-set it when the
    /// kernel flags the fd again, skipping the speculative (always
    /// `EAGAIN`) probe `read(2)` per idle pump. Loops without per-fd
    /// readiness (sweep backend, routers) leave it `true` — `fill`
    /// then probes unconditionally, exactly the historical behavior.
    pub(crate) readable: bool,
    /// Connection-level trace hook: `(recorder, endpoint id)`. When
    /// set, any close — poison, EOF, or socket error — records a
    /// [`TraceKind::Kill`] attributed to `endpoint`, so a chaos kill
    /// shows up in the trace of every peer that observed the
    /// connection die.
    trace: Option<(Arc<FlightRecorder>, u32)>,
    /// Syscall meter: counts every `write(2)`/`read(2)` this connection
    /// issues, proving (or disproving) that frames batch per syscall.
    meter: Option<SyscallMeter>,
}

impl Conn {
    /// Adopt `stream` into the reactor: nonblocking, Nagle off (frames
    /// are latency-sensitive and tiny). Frames are authenticated with
    /// `key` until [`Conn::set_key`] switches to a derived one.
    pub fn new(stream: TcpStream, key: AuthKey) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            key,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            open: true,
            stalled: false,
            readable: true,
            trace: None,
            meter: None,
        })
    }

    /// Attach a syscall meter (cloned off
    /// [`WireMetrics::syscall_meter`](crate::metrics::WireMetrics::syscall_meter)):
    /// every `write(2)` and `read(2)` the connection issues is counted,
    /// so `frames_per_write` in the snapshot measures real batching.
    pub fn meter_with(&mut self, meter: SyscallMeter) {
        self.meter = Some(meter);
    }

    /// The raw socket fd for poller registration (`-1` on platforms
    /// without fds — the poller skips those).
    pub fn fd(&self) -> i32 {
        crate::poll::fd_of(&self.stream)
    }

    /// Attach a trace hook (see the `trace` field): the connection's
    /// [`TraceKind::Kill`] is recorded when it closes for any reason.
    /// The caller records its own `Dial`-side event — what "opening"
    /// means (accept, connect, proxy redial) is layer-specific.
    pub fn trace_with(&mut self, recorder: Arc<FlightRecorder>, endpoint: u32) {
        self.trace = Some((recorder, endpoint));
    }

    /// Record the connection's death once, at the open → closed edge.
    fn mark_closed(&mut self) {
        if self.open {
            if let Some((recorder, endpoint)) = &self.trace {
                recorder.record(wall_clock_us(), 0, *endpoint, TraceKind::Kill, 0);
            }
        }
        self.open = false;
    }

    /// Switch this connection's frame key (the post-Hello derived key).
    pub fn set_key(&mut self, key: AuthKey) {
        self.key = key;
    }

    /// Encode `env` as a frame of `kind` under this connection's key
    /// and queue it for transmission — encoding appends straight into
    /// the reused write buffer (MAC computed in place), so queueing a
    /// frame allocates nothing once the buffer is warm.
    pub fn queue_frame(&mut self, kind: FrameKind, env: &Envelope) {
        encode_frame_into(&self.key, kind, env, &mut self.wbuf);
    }

    /// As `Conn::queue_frame`, returning the queued frame's bytes as
    /// a mutable slice — the hook the tamper harness uses to flip bits
    /// *after* the MAC was computed, without a round trip through a
    /// temporary allocation.
    pub fn queue_frame_mut(&mut self, kind: FrameKind, env: &Envelope) -> &mut [u8] {
        let start = self.wbuf.len();
        encode_frame_into(&self.key, kind, env, &mut self.wbuf);
        &mut self.wbuf[start..]
    }

    /// Whether the connection is still usable.
    pub fn is_open(&self) -> bool {
        self.open
    }

    /// Poison the connection (decode failure, peer misbehaviour).
    pub fn close(&mut self) {
        self.mark_closed();
    }

    /// Bytes queued but not yet written.
    pub fn pending_write(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Queue frame bytes for transmission (actual writing happens in
    /// `Conn::flush` sweeps). Production paths queue through
    /// `Conn::queue_frame` (encode in place) or [`Conn::echo_frame`]
    /// (requeue in place); tests inject pre-built byte streams.
    #[cfg(test)]
    pub fn queue(&mut self, bytes: &[u8]) {
        self.wbuf.extend_from_slice(bytes);
    }

    /// Write as much queued data as the socket accepts right now.
    /// Returns bytes written.
    pub fn flush(&mut self) -> usize {
        let mut written = 0;
        while self.open && self.wpos < self.wbuf.len() {
            if let Some(m) = &self.meter {
                m.count_write();
            }
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => self.mark_closed(),
                Ok(k) => {
                    self.wpos += k;
                    written += k;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => self.mark_closed(),
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
        } else if self.wpos > SCRATCH_BYTES {
            self.wbuf.drain(..self.wpos);
            self.wpos = 0;
        }
        written
    }

    /// Read whatever the socket has ready into the read buffer.
    /// Returns bytes read (0 on would-block; EOF closes the connection).
    pub fn fill(&mut self, scratch: &mut [u8]) -> usize {
        let mut read = 0;
        while self.open {
            if let Some(m) = &self.meter {
                m.count_read();
            }
            match self.stream.read(scratch) {
                Ok(0) => self.mark_closed(), // EOF
                Ok(k) => {
                    self.rbuf.extend_from_slice(&scratch[..k]);
                    read += k;
                    if k < scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => self.mark_closed(),
            }
        }
        read
    }

    /// Decode the next complete frame out of the read buffer, if any,
    /// under this connection's key.
    ///
    /// An `Err` is terminal: the caller must [`Conn::close`] (this
    /// method does not, so the caller can count the rejection first).
    pub fn next_frame(&mut self) -> Result<Option<(FrameKind, Envelope)>, WireError> {
        match decode_frame(&self.key, &self.rbuf[self.rpos..])? {
            None => {
                self.note_drained();
                Ok(None)
            }
            Some(decoded) => {
                self.consume(decoded.consumed);
                Ok(Some((decoded.kind, decoded.envelope)))
            }
        }
    }

    /// The echo mailbox's hot path: authenticate the next complete
    /// frame *without* materializing its envelope
    /// ([`verify_frame`]) and, when it is a [`FrameKind::Data`] frame,
    /// queue its raw bytes straight from the read buffer into the
    /// write buffer — the codec is canonical (`decode ∘ encode = id`),
    /// so this single memcpy is the re-encoding, minus the second MAC
    /// and minus the envelope's two allocations per frame that
    /// `next_frame` would build just to be thrown away. Returns the
    /// frame's kind and wire length; non-`Data` kinds are consumed but
    /// *not* echoed (callers reject them anyway). An `Err` is terminal,
    /// as for [`Conn::next_frame`].
    pub fn echo_frame(&mut self) -> Result<Option<(FrameKind, usize)>, WireError> {
        match verify_frame(&self.key, &self.rbuf[self.rpos..])? {
            None => {
                self.note_drained();
                Ok(None)
            }
            Some((kind, consumed)) => {
                if kind == FrameKind::Data {
                    self.wbuf.extend_from_slice(&self.rbuf[self.rpos..self.rpos + consumed]);
                }
                self.consume(consumed);
                Ok(Some((kind, consumed)))
            }
        }
    }

    /// The read buffer holds no complete frame: reclaim it if fully
    /// consumed.
    fn note_drained(&mut self) {
        if self.rpos > 0 && self.rpos == self.rbuf.len() {
            self.rbuf.clear();
            self.rpos = 0;
        }
    }

    /// Mark `n` buffered bytes as decoded, compacting lazily.
    fn consume(&mut self, n: usize) {
        self.rpos += n;
        if self.rpos > SCRATCH_BYTES {
            self.rbuf.drain(..self.rpos);
            self.rpos = 0;
        }
    }
}

impl std::fmt::Debug for Conn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Conn")
            .field("open", &self.open)
            .field("unread", &(self.rbuf.len() - self.rpos))
            .field("unwritten", &self.pending_write())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_frame;
    use referee_protocol::Message;
    use referee_simnet::SessionId;
    use std::net::TcpListener;

    fn pair(key: AuthKey) -> (Conn, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (Conn::new(a, key).unwrap(), Conn::new(b, key).unwrap())
    }

    fn env(session: u64, round: u32) -> Envelope {
        Envelope {
            session: SessionId(session),
            round,
            from: 1,
            to: 0,
            payload: Message::empty(),
        }
    }

    #[test]
    fn frames_cross_a_socket_pair() {
        let key = AuthKey::from_seed(5);
        let (mut a, mut b) = pair(key);
        for i in 0..100u64 {
            a.queue(&encode_frame(&key, &env(i, i as u32 + 1)));
        }
        let mut scratch = vec![0u8; SCRATCH_BYTES];
        let mut got = Vec::new();
        let mut spins = 0;
        while got.len() < 100 {
            a.flush();
            b.fill(&mut scratch);
            while let Some((kind, e)) = b.next_frame().unwrap() {
                assert_eq!(kind, FrameKind::Data);
                got.push(e);
            }
            spins += 1;
            assert!(spins < 10_000, "socket pair never delivered");
        }
        for (i, e) in got.iter().enumerate() {
            assert_eq!(e.session, SessionId(i as u64), "FIFO order preserved");
        }
    }

    #[test]
    fn corrupted_stream_errors_and_conn_closes() {
        let key = AuthKey::from_seed(6);
        let (mut a, mut b) = pair(key);
        let mut bytes = encode_frame(&key, &env(1, 1));
        let len = bytes.len();
        bytes[len - 1] ^= 0x01; // corrupt inside the MAC tag
        a.queue(&bytes);
        let mut scratch = vec![0u8; SCRATCH_BYTES];
        let mut spins = 0;
        loop {
            a.flush();
            b.fill(&mut scratch);
            match b.next_frame() {
                Ok(None) => {
                    spins += 1;
                    assert!(spins < 10_000, "corruption never surfaced");
                }
                Ok(Some(e)) => panic!("corrupted frame decoded: {e:?}"),
                Err(WireError::BadMac) => break,
                Err(other) => panic!("expected BadMac, got {other}"),
            }
        }
        b.close();
        assert!(!b.is_open());
    }

    #[test]
    fn per_connection_keys_partition_the_stream() {
        // After set_key, frames under the old key are rejected and
        // frames under the new key decode — the handshake switch-over.
        let base = AuthKey::from_seed(8);
        let (mut a, mut b) = pair(base);
        let derived = base.derive(1);
        a.set_key(derived);
        b.set_key(derived);
        a.queue_frame(FrameKind::Data, &env(4, 2));
        a.queue(&encode_frame(&base, &env(5, 3)));
        let mut scratch = vec![0u8; SCRATCH_BYTES];
        let mut spins = 0;
        loop {
            a.flush();
            b.fill(&mut scratch);
            match b.next_frame() {
                Ok(None) => {
                    spins += 1;
                    assert!(spins < 10_000, "frames never arrived");
                }
                Ok(Some((FrameKind::Data, e))) => assert_eq!(e.session, SessionId(4)),
                Ok(Some(other)) => panic!("unexpected frame {other:?}"),
                Err(WireError::BadMac) => break, // the base-keyed frame
                Err(other) => panic!("expected BadMac, got {other}"),
            }
        }
    }
}
