//! Wire-level observability: atomic counters shared between the reactor,
//! the transports, and whoever reports — plus per-stage latency
//! histograms and a causal-event flight recorder over the session
//! lifecycle.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use referee_protocol::evidence::EvidenceBundle;
use referee_protocol::hist::{HistSnapshot, LatencyHistogram};
use referee_protocol::trace::{self, FlightRecorder, TraceKind, TraceSnapshot};

/// Environment variable sizing the per-endpoint [`FlightRecorder`] ring
/// (events). `0` disables tracing entirely; unset or unparsable keeps
/// [`DEFAULT_TRACE_CAPACITY`](referee_protocol::trace::DEFAULT_TRACE_CAPACITY).
pub const TRACE_CAPACITY_ENV: &str = "REFEREE_TRACE_CAPACITY";

/// Environment variable capping the per-endpoint evidence-bundle log
/// (bundles retained in memory; the `evidence_bundles` counter keeps
/// counting past the cap). `0` disables retention entirely; unset or
/// unparsable keeps [`DEFAULT_EVIDENCE_CAP`].
pub const EVIDENCE_CAP_ENV: &str = "REFEREE_EVIDENCE_CAP";

/// Default number of [`EvidenceBundle`]s retained per endpoint. Bundles
/// are a few dozen bytes each, and a healthy fleet emits none, so the
/// cap only guards against a hostile peer grinding out violations.
pub const DEFAULT_EVIDENCE_CAP: usize = 1024;

/// Resolve a recorder capacity from the env value (passed as a
/// parameter so unit tests never mutate the process environment —
/// the same discipline as [`WireTimeouts`](crate::WireTimeouts)).
pub(crate) fn resolve_trace_capacity(env: Option<&str>) -> usize {
    env.and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(referee_protocol::trace::DEFAULT_TRACE_CAPACITY)
}

/// Resolve the evidence-log cap from the env value (same parameter
/// discipline as [`resolve_trace_capacity`]).
pub(crate) fn resolve_evidence_cap(env: Option<&str>) -> usize {
    env.and_then(|v| v.trim().parse::<usize>().ok()).unwrap_or(DEFAULT_EVIDENCE_CAP)
}

/// Endpoint-id conventions for [`TraceEvent`](referee_protocol::TraceEvent)s
/// recorded by the wire layers, so stitched timelines attribute every
/// event to the process/role that recorded it.
pub mod trace_endpoint {
    /// The coordinator / fleet-server router.
    pub const SERVER: u32 = 0;
    /// A client connection pool.
    pub const CLIENT: u32 = 1;
    /// The coordinator-side placement proxy for shard `i`.
    pub fn proxy(i: u32) -> u32 {
        0x100 + i
    }
    /// The remote shard host serving shard `i`.
    pub fn shard_host(i: u32) -> u32 {
        0x200 + i
    }
    /// Server-side shard worker `i` (in-process sharded services).
    pub fn worker(i: u32) -> u32 {
        0x300 + i
    }
    /// An external chaos/fault injector (kill schedules in soak
    /// harnesses record what they did under this endpoint, so the
    /// post-mortem shows the injected faults on the same timeline).
    pub const CHAOS: u32 = 0x400;
}

/// Named stages of the session lifecycle, each timed into its own
/// latency histogram on [`WireMetrics`]. Client-side endpoints populate
/// the connect/announce/uplink/verdict stages; server-side endpoints
/// populate the merge and referee stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// TCP connect through the Hello exchange (client pool connections
    /// and placement-proxy dials to a shard host).
    ConnectHello,
    /// Session open → announce frame queued and flushed.
    Announce,
    /// Announce → the session's last uplink queued (per round in
    /// multi-round mode).
    UplinksComplete,
    /// Server side: a session (or round) opening → its partial states
    /// fully merged across shards.
    PartialMerge,
    /// One referee invocation: the global phase, or one multi-round
    /// step.
    RefereeStep,
    /// Announce → verdict observed (received on a client, sent on a
    /// server).
    Verdict,
}

impl Stage {
    /// Every stage, in lifecycle order — the index into
    /// [`WireSnapshot::stages`].
    pub const ALL: [Stage; 6] = [
        Stage::ConnectHello,
        Stage::Announce,
        Stage::UplinksComplete,
        Stage::PartialMerge,
        Stage::RefereeStep,
        Stage::Verdict,
    ];

    /// Stable snake_case name (used in logs and bench output).
    pub fn name(self) -> &'static str {
        match self {
            Stage::ConnectHello => "connect_hello",
            Stage::Announce => "announce",
            Stage::UplinksComplete => "uplinks_complete",
            Stage::PartialMerge => "partial_merge",
            Stage::RefereeStep => "referee_step",
            Stage::Verdict => "verdict",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// A cloneable handle counting the `write(2)`/`read(2)` syscalls a
/// [`Conn`](crate::reactor) issues, shared with the owning
/// [`WireMetrics`] — the evidence that the batched hot path really
/// batches: `frames_sent / write_syscalls` is
/// [`WireSnapshot::frames_per_write`].
#[derive(Debug, Clone)]
pub struct SyscallMeter {
    writes: Arc<AtomicU64>,
    reads: Arc<AtomicU64>,
}

impl SyscallMeter {
    /// Count one `write(2)` issued (would-block attempts included —
    /// they are real syscalls).
    pub(crate) fn count_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Count one `read(2)` issued.
    pub(crate) fn count_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
    }
}

/// Live counters for one endpoint (a client's connection pool or a
/// server). All counter and trace methods are lock-free; read a
/// coherent-enough view with [`WireMetrics::snapshot`].
#[derive(Debug)]
pub struct WireMetrics {
    frames_sent: AtomicU64,
    frames_received: AtomicU64,
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    mac_rejects: AtomicU64,
    decode_rejects: AtomicU64,
    backpressure_stalls: AtomicU64,
    tampered: AtomicU64,
    orphan_frames: AtomicU64,
    connections: AtomicU64,
    partial_frames: AtomicU64,
    verdict_frames: AtomicU64,
    downlink_frames: AtomicU64,
    shard_reconnects: AtomicU64,
    replayed_frames: AtomicU64,
    evidence_bundles: AtomicU64,
    /// `write(2)`/`read(2)` syscall counters, `Arc`-shared so every
    /// connection carries a cheap [`SyscallMeter`] clone into the
    /// reactor layer.
    write_syscalls: Arc<AtomicU64>,
    read_syscalls: Arc<AtomicU64>,
    stages: [LatencyHistogram; Stage::ALL.len()],
    /// The endpoint's black-box flight recorder (lock-free ring).
    /// `Arc`-shared so individual connections can carry a trace hook
    /// into the reactor layer without borrowing the whole metrics.
    recorder: Arc<FlightRecorder>,
    /// Trace segments shipped in from remote endpoints (shard hosts on
    /// `Finish`/`Retire`), stitched with the local ring by
    /// [`WireMetrics::stitched_trace`]. Only touched at segment-ship
    /// and post-mortem time, so a mutex is fine here.
    remote_trace: Mutex<TraceSnapshot>,
    /// Evidence bundles cut (or received) by this endpoint, capped at
    /// `evidence_cap` ([`EVIDENCE_CAP_ENV`]). Violations are rare and
    /// off the hot path, so a mutex is fine here too.
    evidence_log: Mutex<Vec<EvidenceBundle>>,
    evidence_cap: usize,
}

impl Default for WireMetrics {
    /// Recorder capacity comes from [`TRACE_CAPACITY_ENV`] (default
    /// [`DEFAULT_TRACE_CAPACITY`](referee_protocol::trace::DEFAULT_TRACE_CAPACITY),
    /// `0` disables tracing).
    fn default() -> Self {
        WireMetrics::with_trace_capacity(resolve_trace_capacity(
            std::env::var(TRACE_CAPACITY_ENV).ok().as_deref(),
        ))
    }
}

macro_rules! bump {
    ($name:ident) => {
        pub(crate) fn $name(&self, by: u64) {
            self.$name.fetch_add(by, Ordering::Relaxed);
        }
    };
}

impl WireMetrics {
    /// Metrics with an explicitly sized flight recorder (`0` disables
    /// tracing; counters and histograms are unaffected).
    pub fn with_trace_capacity(capacity: usize) -> WireMetrics {
        WireMetrics {
            frames_sent: AtomicU64::new(0),
            frames_received: AtomicU64::new(0),
            bytes_sent: AtomicU64::new(0),
            bytes_received: AtomicU64::new(0),
            mac_rejects: AtomicU64::new(0),
            decode_rejects: AtomicU64::new(0),
            backpressure_stalls: AtomicU64::new(0),
            tampered: AtomicU64::new(0),
            orphan_frames: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            partial_frames: AtomicU64::new(0),
            verdict_frames: AtomicU64::new(0),
            downlink_frames: AtomicU64::new(0),
            shard_reconnects: AtomicU64::new(0),
            replayed_frames: AtomicU64::new(0),
            evidence_bundles: AtomicU64::new(0),
            write_syscalls: Arc::new(AtomicU64::new(0)),
            read_syscalls: Arc::new(AtomicU64::new(0)),
            stages: std::array::from_fn(|_| LatencyHistogram::new()),
            // Creation-time epoch: a restarted process observing the
            // same endpoint lane (a respawned shard host) gets a later,
            // disjoint seq range, keeping stitched lanes strictly
            // monotone across incarnations.
            recorder: Arc::new(FlightRecorder::with_capacity_and_epoch(
                capacity,
                trace::wall_clock_us(),
            )),
            remote_trace: Mutex::new(TraceSnapshot::new()),
            evidence_log: Mutex::new(Vec::new()),
            evidence_cap: resolve_evidence_cap(std::env::var(EVIDENCE_CAP_ENV).ok().as_deref()),
        }
    }

    bump!(frames_sent);
    bump!(frames_received);
    bump!(bytes_sent);
    bump!(bytes_received);
    bump!(mac_rejects);
    bump!(decode_rejects);
    bump!(backpressure_stalls);
    bump!(tampered);
    bump!(orphan_frames);
    bump!(connections);
    bump!(partial_frames);
    bump!(verdict_frames);
    bump!(downlink_frames);
    bump!(shard_reconnects);
    bump!(replayed_frames);

    /// A [`SyscallMeter`] clone sharing this endpoint's syscall
    /// counters — attach it to every [`Conn`](crate::reactor) via
    /// `meter_with` so `frames_per_write` measures real batching.
    pub(crate) fn syscall_meter(&self) -> SyscallMeter {
        SyscallMeter {
            writes: Arc::clone(&self.write_syscalls),
            reads: Arc::clone(&self.read_syscalls),
        }
    }

    /// Record one duration sample into `stage`'s latency histogram.
    pub(crate) fn record_stage(&self, stage: Stage, elapsed: Duration) {
        self.stages[stage.index()].record_duration(elapsed);
    }

    /// Fold a frozen histogram (e.g. decoded off the wire from a remote
    /// [`ShardHost`](crate::ShardHost)) into `stage`'s live histogram —
    /// the coordinator-side half of cross-host latency aggregation.
    pub fn absorb_stage(&self, stage: Stage, snap: &HistSnapshot) {
        self.stages[stage.index()].absorb(snap);
    }

    /// Record one causal trace event into this endpoint's flight
    /// recorder, stamped with wall-clock microseconds so cooperating
    /// processes on one machine stitch onto a single time axis.
    /// Lock-free; a no-op when the recorder is disabled.
    pub fn trace(&self, session: u64, endpoint: u32, kind: TraceKind, payload: u64) {
        self.recorder.record(trace::wall_clock_us(), session, endpoint, kind, payload);
    }

    /// The endpoint's flight recorder (for incremental segment
    /// shipping via [`FlightRecorder::snapshot_since`]).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// A shared handle to the flight recorder — what the reactor's
    /// per-connection trace hooks hold.
    pub(crate) fn recorder_arc(&self) -> Arc<FlightRecorder> {
        Arc::clone(&self.recorder)
    }

    /// Fold a trace segment shipped from a remote endpoint (the
    /// coordinator-side half of cross-process trace stitching —
    /// the trace analogue of [`WireMetrics::absorb_stage`]).
    pub fn absorb_trace(&self, snap: &TraceSnapshot) {
        self.remote_trace.lock().expect("remote trace lock").merge(snap);
    }

    /// Log one [`EvidenceBundle`] cut (or received) by this endpoint:
    /// bumps the `evidence_bundles` counter unconditionally and retains
    /// the bundle up to the [`EVIDENCE_CAP_ENV`] cap.
    pub fn record_evidence(&self, bundle: &EvidenceBundle) {
        self.evidence_bundles.fetch_add(1, Ordering::Relaxed);
        let mut log = self.evidence_log.lock().expect("evidence log lock");
        if log.len() < self.evidence_cap {
            log.push(bundle.clone());
        }
    }

    /// A copy of every retained [`EvidenceBundle`], in emission order.
    pub fn evidence(&self) -> Vec<EvidenceBundle> {
        self.evidence_log.lock().expect("evidence log lock").clone()
    }

    /// One causally-ordered timeline: the local ring's surviving events
    /// merged with every absorbed remote segment.
    pub fn stitched_trace(&self) -> TraceSnapshot {
        let mut snap = self.recorder.snapshot();
        snap.merge(&self.remote_trace.lock().expect("remote trace lock"));
        snap
    }

    /// A point-in-time copy of every counter and stage histogram.
    pub fn snapshot(&self) -> WireSnapshot {
        WireSnapshot {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_received: self.bytes_received.load(Ordering::Relaxed),
            mac_rejects: self.mac_rejects.load(Ordering::Relaxed),
            decode_rejects: self.decode_rejects.load(Ordering::Relaxed),
            backpressure_stalls: self.backpressure_stalls.load(Ordering::Relaxed),
            tampered: self.tampered.load(Ordering::Relaxed),
            orphan_frames: self.orphan_frames.load(Ordering::Relaxed),
            connections: self.connections.load(Ordering::Relaxed),
            partial_frames: self.partial_frames.load(Ordering::Relaxed),
            verdict_frames: self.verdict_frames.load(Ordering::Relaxed),
            downlink_frames: self.downlink_frames.load(Ordering::Relaxed),
            shard_reconnects: self.shard_reconnects.load(Ordering::Relaxed),
            replayed_frames: self.replayed_frames.load(Ordering::Relaxed),
            evidence_bundles: self.evidence_bundles.load(Ordering::Relaxed),
            write_syscalls: self.write_syscalls.load(Ordering::Relaxed),
            read_syscalls: self.read_syscalls.load(Ordering::Relaxed),
            trace_drops: self.recorder.dropped(),
            stages: std::array::from_fn(|i| self.stages[i].snapshot()),
        }
    }
}

/// A frozen view of [`WireMetrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireSnapshot {
    /// Frames queued for transmission (after any tampering).
    pub frames_sent: u64,
    /// Frames received, authenticated and decoded.
    pub frames_received: u64,
    /// Wire bytes queued for transmission.
    pub bytes_sent: u64,
    /// Wire bytes read off sockets.
    pub bytes_received: u64,
    /// Frames rejected by MAC verification.
    pub mac_rejects: u64,
    /// Frames rejected for structural reasons (version, length,
    /// payload canonicality).
    pub decode_rejects: u64,
    /// Backpressure events. On a client: sends that had to wait for a
    /// congested write buffer to drain. On a server: throttling
    /// episodes where reading from a peer was paused until its echo
    /// buffer drained.
    pub backpressure_stalls: u64,
    /// Frames deliberately corrupted by the fault-injection hook.
    pub tampered: u64,
    /// Authenticated frames that arrived for a session no longer (or
    /// never) registered — late echoes after session teardown.
    pub orphan_frames: u64,
    /// Connections ever opened.
    pub connections: u64,
    /// Sharded referee only: cross-shard `PartialState` frames
    /// exchanged between shard workers.
    pub partial_frames: u64,
    /// Sharded referee only: session verdicts issued.
    pub verdict_frames: u64,
    /// Multi-round referee only: per-round downlink frames streamed
    /// back to clients.
    pub downlink_frames: u64,
    /// Remote placement only: (re)connections a coordinator proxy made
    /// to its shard host — 1 per proxy for a clean run, more after
    /// shard-host loss.
    pub shard_reconnects: u64,
    /// Remote placement only: journaled frames resent to a reconnected
    /// shard host (announcements excluded).
    pub replayed_frames: u64,
    /// Evidence bundles cut (server) or received (client) — see
    /// [`WireMetrics::record_evidence`] and
    /// [`referee_protocol::evidence`]. Nonzero means a peer committed a
    /// provable protocol violation.
    pub evidence_bundles: u64,
    /// `write(2)` syscalls issued by this endpoint's connections
    /// (would-block attempts included). With the batched write path,
    /// this should sit well below `frames_sent` — see
    /// [`WireSnapshot::frames_per_write`].
    pub write_syscalls: u64,
    /// `read(2)` syscalls issued by this endpoint's connections.
    pub read_syscalls: u64,
    /// Trace events overwritten by flight-recorder ring overflow
    /// (drop-oldest) — nonzero means the post-mortem window was shorter
    /// than the incident and the ring needs resizing
    /// (`REFEREE_TRACE_CAPACITY`).
    pub trace_drops: u64,
    /// Per-stage latency histograms, indexed in [`Stage::ALL`] order.
    pub stages: [HistSnapshot; Stage::ALL.len()],
}

impl WireSnapshot {
    /// The latency histogram for one lifecycle stage.
    pub fn stage(&self, stage: Stage) -> &HistSnapshot {
        &self.stages[stage.index()]
    }

    /// Frames sent per `write(2)` issued — the batching ratio of the
    /// coalescing write path. Above 1.0 means frames shared syscalls;
    /// `0.0` when no writes were issued (or syscalls are unmetered).
    pub fn frames_per_write(&self) -> f64 {
        if self.write_syscalls == 0 {
            0.0
        } else {
            self.frames_sent as f64 / self.write_syscalls as f64
        }
    }

    /// Saturating counter (and histogram-bucket) difference
    /// `self − earlier`, so one phase of a run — a tamper sweep, a soak
    /// window — can be measured in isolation from the counters'
    /// lifetime totals.
    pub fn delta(&self, earlier: &WireSnapshot) -> WireSnapshot {
        WireSnapshot {
            frames_sent: self.frames_sent.saturating_sub(earlier.frames_sent),
            frames_received: self.frames_received.saturating_sub(earlier.frames_received),
            bytes_sent: self.bytes_sent.saturating_sub(earlier.bytes_sent),
            bytes_received: self.bytes_received.saturating_sub(earlier.bytes_received),
            mac_rejects: self.mac_rejects.saturating_sub(earlier.mac_rejects),
            decode_rejects: self.decode_rejects.saturating_sub(earlier.decode_rejects),
            backpressure_stalls: self
                .backpressure_stalls
                .saturating_sub(earlier.backpressure_stalls),
            tampered: self.tampered.saturating_sub(earlier.tampered),
            orphan_frames: self.orphan_frames.saturating_sub(earlier.orphan_frames),
            connections: self.connections.saturating_sub(earlier.connections),
            partial_frames: self.partial_frames.saturating_sub(earlier.partial_frames),
            verdict_frames: self.verdict_frames.saturating_sub(earlier.verdict_frames),
            downlink_frames: self.downlink_frames.saturating_sub(earlier.downlink_frames),
            shard_reconnects: self.shard_reconnects.saturating_sub(earlier.shard_reconnects),
            replayed_frames: self.replayed_frames.saturating_sub(earlier.replayed_frames),
            evidence_bundles: self.evidence_bundles.saturating_sub(earlier.evidence_bundles),
            write_syscalls: self.write_syscalls.saturating_sub(earlier.write_syscalls),
            read_syscalls: self.read_syscalls.saturating_sub(earlier.read_syscalls),
            trace_drops: self.trace_drops.saturating_sub(earlier.trace_drops),
            stages: std::array::from_fn(|i| self.stages[i].delta(&earlier.stages[i])),
        }
    }
}

impl std::fmt::Display for WireSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "conns {} | frames {}/{} | bytes {}/{} | mac-rejects {} | decode-rejects {} | \
             stalls {} | tampered {} | orphans {} | partials {} | verdicts {} | downlinks {} \
             | shard-reconnects {} | replays {} | evidence {} | \
             syscalls {}w/{}r ({:.1} frames/write) | trace-drops {}",
            self.connections,
            self.frames_sent,
            self.frames_received,
            self.bytes_sent,
            self.bytes_received,
            self.mac_rejects,
            self.decode_rejects,
            self.backpressure_stalls,
            self.tampered,
            self.orphan_frames,
            self.partial_frames,
            self.verdict_frames,
            self.downlink_frames,
            self.shard_reconnects,
            self.replayed_frames,
            self.evidence_bundles,
            self.write_syscalls,
            self.read_syscalls,
            self.frames_per_write(),
            self.trace_drops,
        )?;
        for stage in Stage::ALL {
            let h = self.stage(stage);
            if h.count() > 0 {
                write!(f, " | {} {}", stage.name(), h)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let m = WireMetrics::default();
        m.frames_sent(3);
        m.bytes_received(100);
        m.mac_rejects(1);
        let s = m.snapshot();
        assert_eq!(s.frames_sent, 3);
        assert_eq!(s.bytes_received, 100);
        assert_eq!(s.mac_rejects, 1);
        assert_eq!(s.frames_received, 0);
        assert!(format!("{s}").contains("mac-rejects 1"));
    }

    #[test]
    fn syscall_meter_feeds_frames_per_write() {
        let m = WireMetrics::default();
        assert_eq!(m.snapshot().frames_per_write(), 0.0, "no writes yet");
        let meter = m.syscall_meter();
        let clone = meter.clone(); // connections share the same counters
        meter.count_write();
        clone.count_write();
        clone.count_read();
        m.frames_sent(6);
        let s = m.snapshot();
        assert_eq!(s.write_syscalls, 2);
        assert_eq!(s.read_syscalls, 1);
        assert!((s.frames_per_write() - 3.0).abs() < f64::EPSILON);
        assert!(format!("{s}").contains("syscalls 2w/1r (3.0 frames/write)"));
        // Delta isolates phases for the syscall counters too.
        meter.count_write();
        let d = m.snapshot().delta(&s);
        assert_eq!(d.write_syscalls, 1);
        assert_eq!(d.read_syscalls, 0);
    }

    #[test]
    fn snapshot_reflects_stage_histograms() {
        let m = WireMetrics::default();
        m.record_stage(Stage::Verdict, Duration::from_micros(700));
        m.record_stage(Stage::Verdict, Duration::from_micros(900));
        m.record_stage(Stage::RefereeStep, Duration::from_micros(3));
        let s = m.snapshot();
        assert_eq!(s.stage(Stage::Verdict).count(), 2);
        assert_eq!(s.stage(Stage::Verdict).p50(), 1023);
        assert_eq!(s.stage(Stage::RefereeStep).count(), 1);
        assert_eq!(s.stage(Stage::Announce).count(), 0);
        let rendered = format!("{s}");
        assert!(rendered.contains("verdict n=2 p50=1023us"), "{rendered}");
        assert!(!rendered.contains("announce"), "{rendered}");
    }

    #[test]
    fn absorb_stage_merges_remote_histograms() {
        let m = WireMetrics::default();
        m.record_stage(Stage::PartialMerge, Duration::from_micros(10));
        let mut remote = referee_protocol::HistSnapshot::new();
        remote.record_us(2000);
        remote.record_us(12);
        m.absorb_stage(Stage::PartialMerge, &remote);
        assert_eq!(m.snapshot().stage(Stage::PartialMerge).count(), 3);
    }

    #[test]
    fn trace_drops_pin_drop_oldest_overflow() {
        // A deliberately tiny ring: 4 slots fed 7 events must drop the
        // *oldest* 3 and report exactly that in the snapshot counter.
        let m = WireMetrics::with_trace_capacity(4);
        for i in 0..7u64 {
            m.trace(i, trace_endpoint::SERVER, TraceKind::Uplink, i);
        }
        let s = m.snapshot();
        assert_eq!(s.trace_drops, 3);
        let surviving = m.stitched_trace();
        assert_eq!(surviving.len(), 4);
        let sessions: Vec<u64> = surviving.events().iter().map(|e| e.session).collect();
        assert_eq!(sessions, [3, 4, 5, 6], "the newest four survive drop-oldest");
        assert!(format!("{s}").contains("trace-drops 3"));
        // Delta keeps isolating phases for the new counter too.
        for i in 0..2u64 {
            m.trace(i, trace_endpoint::SERVER, TraceKind::Uplink, i);
        }
        assert_eq!(m.snapshot().delta(&s).trace_drops, 2);
    }

    #[test]
    fn evidence_log_counts_and_caps() {
        use referee_protocol::evidence::{EvidenceBundle, EvidenceRecord, ProvableError};
        let bundle = EvidenceBundle {
            error: ProvableError::OutOfRangeSender,
            accused: Some(9),
            records: vec![EvidenceRecord { path: vec![7], body: vec![1, 2, 3], tag: 42 }],
        };
        let m = WireMetrics { evidence_cap: 2, ..WireMetrics::default() };
        for _ in 0..5 {
            m.record_evidence(&bundle);
        }
        // The counter keeps counting past the cap; the log stops.
        let s = m.snapshot();
        assert_eq!(s.evidence_bundles, 5);
        assert_eq!(m.evidence().len(), 2);
        assert_eq!(m.evidence()[0], bundle);
        assert!(format!("{s}").contains("evidence 5"));
        // Delta isolates phases for the evidence counter too.
        m.record_evidence(&bundle);
        assert_eq!(m.snapshot().delta(&s).evidence_bundles, 1);
    }

    #[test]
    fn evidence_cap_resolution_precedence() {
        assert_eq!(resolve_evidence_cap(None), DEFAULT_EVIDENCE_CAP);
        assert_eq!(resolve_evidence_cap(Some("16")), 16);
        assert_eq!(resolve_evidence_cap(Some(" 8 ")), 8);
        // 0 is a *valid* setting: it disables retention (not counting).
        assert_eq!(resolve_evidence_cap(Some("0")), 0);
        assert_eq!(resolve_evidence_cap(Some("junk")), DEFAULT_EVIDENCE_CAP);
    }

    #[test]
    fn trace_capacity_resolution_precedence() {
        use referee_protocol::trace::DEFAULT_TRACE_CAPACITY;
        assert_eq!(resolve_trace_capacity(None), DEFAULT_TRACE_CAPACITY);
        assert_eq!(resolve_trace_capacity(Some("64")), 64);
        assert_eq!(resolve_trace_capacity(Some(" 128 ")), 128);
        // 0 is a *valid* setting: it disables the recorder.
        assert_eq!(resolve_trace_capacity(Some("0")), 0);
        assert_eq!(resolve_trace_capacity(Some("junk")), DEFAULT_TRACE_CAPACITY);
        let m = WireMetrics::with_trace_capacity(0);
        m.trace(1, trace_endpoint::CLIENT, TraceKind::Dial, 0);
        assert!(m.stitched_trace().is_empty());
        assert_eq!(m.snapshot().trace_drops, 0, "disabled recorders drop nothing");
    }

    #[test]
    fn stitching_absorbs_remote_segments() {
        let m = WireMetrics::with_trace_capacity(16);
        m.trace(5, trace_endpoint::SERVER, TraceKind::Announce, 9);
        let remote = WireMetrics::with_trace_capacity(16);
        remote.trace(5, trace_endpoint::shard_host(2), TraceKind::PartialEmit, 2);
        m.absorb_trace(&remote.stitched_trace());
        let stitched = m.stitched_trace();
        assert_eq!(stitched.len(), 2);
        assert_eq!(stitched.session_events(5).count(), 2);
        // Absorbing the same segment again is idempotent.
        m.absorb_trace(&remote.stitched_trace());
        assert_eq!(m.stitched_trace(), stitched);
    }

    #[test]
    fn delta_isolates_a_phase() {
        let m = WireMetrics::default();
        m.frames_sent(10);
        m.connections(2);
        m.record_stage(Stage::Verdict, Duration::from_micros(100));
        let before = m.snapshot();
        m.frames_sent(5);
        m.mac_rejects(1);
        m.record_stage(Stage::Verdict, Duration::from_micros(4000));
        let after = m.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.frames_sent, 5);
        assert_eq!(d.mac_rejects, 1);
        assert_eq!(d.connections, 0);
        assert_eq!(d.stage(Stage::Verdict).count(), 1);
        assert_eq!(d.stage(Stage::Verdict).p50(), 4095);
        // Degenerate direction saturates instead of wrapping.
        let rev = before.delta(&after);
        assert_eq!(rev.frames_sent, 0);
        assert_eq!(rev.stage(Stage::Verdict).count(), 0);
    }
}
