//! One module per experiment family (see `EXPERIMENTS.md` E1–E25).

pub mod blowup;
pub mod counting;
pub mod degeneracy;
pub mod extensions;
pub mod gadget_validation;
pub mod message_size;
pub mod openq;
