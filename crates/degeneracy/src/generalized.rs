//! Generalized degeneracy (§III's closing remark).
//!
//! A graph has *generalized degeneracy* ≤ k if there is a vertex ordering
//! `(r_1, …, r_n)` where each `r_i` has degree ≤ k **either in** `G_i`
//! (the subgraph induced by `{r_1..r_i}`) **or in its complement**. The
//! paper: "We can adapt our protocol for the reconstruction of graphs of
//! generalized degeneracy at most k, by encoding both the neighborhood and
//! the non-neighborhood of each vertex."
//!
//! Refinement implemented here: the nodes send **the same message as the
//! plain protocol** (Algorithm 3). The co-neighbourhood sketch need not be
//! transmitted, because the referee can derive it — over any live set `A`
//! it knows, `co_b_p(v) = Σ_{i ∈ A} i^p − ID(v)^p − b_p(v)`, and the total
//! `Σ_{i ∈ A} i^p` is maintained incrementally as vertices are pruned. So
//! generalized degeneracy costs *zero extra bits* over Theorem 5. (The
//! paper's variant that sends both sketches would merely double the
//! message; the class reconstructed is identical.)

use crate::decode::{NeighbourhoodDecoder, NewtonDecoder};
use crate::encode::PowerSumSketch;
use crate::protocol::Reconstruction;
use referee_graph::{LabelledGraph, VertexId};
use referee_protocol::{DecodeError, Message, NodeView, OneRoundProtocol};
use referee_wideint::UBig;

/// Reconstruction protocol for graphs of generalized degeneracy ≤ k.
#[derive(Debug, Clone, Copy)]
pub struct GeneralizedDegeneracyProtocol {
    k: usize,
}

impl GeneralizedDegeneracyProtocol {
    /// Protocol with class parameter `k ≥ 1`.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "parameter must be ≥ 1");
        GeneralizedDegeneracyProtocol { k }
    }

    /// The class parameter.
    pub fn k(&self) -> usize {
        self.k
    }
}

impl OneRoundProtocol for GeneralizedDegeneracyProtocol {
    type Output = Result<Reconstruction, DecodeError>;

    fn name(&self) -> String {
        format!("generalized-degeneracy-{} reconstruction", self.k)
    }

    /// Identical to Algorithm 3 (see module docs for why no co-sketch is
    /// transmitted).
    fn local(&self, view: NodeView<'_>) -> Message {
        PowerSumSketch::compute(view.n, view.id, view.neighbours, self.k)
            .to_message(view.n, self.k)
    }

    fn global(&self, n: usize, messages: &[Message]) -> Self::Output {
        if messages.len() != n {
            return Err(DecodeError::Inconsistent(format!(
                "expected {n} messages, got {}",
                messages.len()
            )));
        }
        let mut sk = crate::protocol::parse_sketches(messages, n, self.k)?;
        let originals = sk.clone();

        // totals[p-1] = Σ_{i live} i^p, maintained as vertices are pruned.
        let mut totals: Vec<UBig> = (1..=self.k)
            .map(|p| {
                let mut acc = UBig::zero();
                for i in 1..=n as u64 {
                    acc.add_assign_ref(&UBig::pow_of(i, p as u32));
                }
                acc
            })
            .collect();
        let mut alive = vec![true; n];
        let mut live_count = n;
        let decoder = NewtonDecoder;
        let mut g = LabelledGraph::new(n);

        while live_count > 0 {
            // Find a prunable vertex: degree ≤ k or co-degree ≤ k among
            // the live set. O(n) scan per prune keeps the code direct; the
            // whole loop is O(n²), same as Algorithm 4's stated bound.
            let mut choice: Option<(usize, bool)> = None; // (index, via_complement)
            for i in 0..n {
                if !alive[i] {
                    continue;
                }
                if sk[i].degree <= self.k {
                    choice = Some((i, false));
                    break;
                }
                // A live vertex can have at most live_count − 1 live
                // neighbours; a larger claimed degree means corruption.
                let co_deg = (live_count - 1).checked_sub(sk[i].degree).ok_or_else(|| {
                    DecodeError::Inconsistent(format!(
                        "vertex {} claims degree {} with only {} live peers",
                        i + 1,
                        sk[i].degree,
                        live_count - 1
                    ))
                })?;
                if co_deg <= self.k {
                    choice = Some((i, true));
                    break;
                }
            }
            let Some((xi, via_complement)) = choice else {
                return Ok(Reconstruction::NotInClass);
            };
            let x = (xi + 1) as VertexId;

            // Decode x's live neighbour set (directly, or via complement).
            let nbrs: Vec<VertexId> = if !via_complement {
                decoder.decode(n, sk[xi].degree, &sk[xi].sums)?
            } else {
                // co-sums over live set: totals − x^p − b_p(x)
                let co_sums: Vec<UBig> = (0..self.k)
                    .map(|pi| {
                        totals[pi]
                            .checked_sub(&UBig::pow_of(x as u64, (pi + 1) as u32))
                            .and_then(|t| t.checked_sub(&sk[xi].sums[pi]))
                            .ok_or_else(|| {
                                DecodeError::Inconsistent(format!(
                                    "co-sum p={} of vertex {x} is negative",
                                    pi + 1
                                ))
                            })
                    })
                    .collect::<Result<_, _>>()?;
                let co_deg = live_count - 1 - sk[xi].degree;
                let co_nbrs = decoder.decode(n, co_deg, &co_sums)?;
                // neighbours = live \ {x} \ co_nbrs
                let mut is_co = vec![false; n + 1];
                for &c in &co_nbrs {
                    if !alive[(c - 1) as usize] {
                        return Err(DecodeError::Inconsistent(format!(
                            "decoded co-neighbour {c} of {x} is not live"
                        )));
                    }
                    is_co[c as usize] = true;
                }
                (1..=n as VertexId)
                    .filter(|&v| v != x && alive[(v - 1) as usize] && !is_co[v as usize])
                    .collect()
            };

            if nbrs.len() != sk[xi].degree {
                return Err(DecodeError::Inconsistent(format!(
                    "vertex {x}: decoded {} neighbours, degree field says {}",
                    nbrs.len(),
                    sk[xi].degree
                )));
            }

            // Commit: record edges, subtract x from neighbours' sketches
            // and from the live totals.
            alive[xi] = false;
            live_count -= 1;
            for (pi, t) in totals.iter_mut().enumerate() {
                *t = t
                    .checked_sub(&UBig::pow_of(x as u64, (pi + 1) as u32))
                    .expect("totals cover all live ids");
            }
            for &w in &nbrs {
                if w == x || !alive[(w - 1) as usize] {
                    return Err(DecodeError::Inconsistent(format!(
                        "decoded neighbour {w} of {x} is not a live distinct vertex"
                    )));
                }
                g.add_edge(x, w).map_err(|_| {
                    DecodeError::Inconsistent(format!("duplicate edge {{{x},{w}}}"))
                })?;
                sk[(w - 1) as usize].prune_neighbour(x)?;
            }
        }

        // Soundness: reconstruction must regenerate every original message.
        for v in 1..=n as VertexId {
            let re = PowerSumSketch::compute(n, v, g.neighbourhood(v), self.k);
            let orig = &originals[(v - 1) as usize];
            if re.degree != orig.degree || re.sums != orig.sums {
                return Err(DecodeError::Inconsistent(format!(
                    "reconstruction does not reproduce the message of vertex {v}"
                )));
            }
        }
        Ok(Reconstruction::Graph(g))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use referee_graph::generators;
    use referee_protocol::run_protocol;

    fn reconstruct(k: usize, g: &LabelledGraph) -> Reconstruction {
        run_protocol(&GeneralizedDegeneracyProtocol::new(k), g).output.expect("decode ok")
    }

    #[test]
    fn handles_plain_degenerate_graphs() {
        let mut rng = StdRng::seed_from_u64(20);
        let g = generators::random_k_degenerate(40, 3, 1.0, &mut rng);
        assert_eq!(reconstruct(3, &g), Reconstruction::Graph(g));
    }

    #[test]
    fn handles_dense_complements() {
        // Complement of a 2-degenerate graph: plain protocol rejects
        // (degeneracy ≈ n), generalized reconstructs.
        let mut rng = StdRng::seed_from_u64(21);
        let sparse = generators::random_k_degenerate(30, 2, 1.0, &mut rng);
        let dense = sparse.complement();
        assert_eq!(reconstruct(2, &dense), Reconstruction::Graph(dense.clone()));
        // sanity: the plain protocol really cannot handle it
        use crate::DegeneracyProtocol;
        let plain = run_protocol(&DegeneracyProtocol::new(2), &dense).output.unwrap();
        assert_eq!(plain, Reconstruction::NotInClass);
    }

    #[test]
    fn handles_complete_graphs_at_k1() {
        // K_n has co-degeneracy 0: every vertex has co-degree 0.
        let g = generators::complete(25);
        assert_eq!(reconstruct(1, &g), Reconstruction::Graph(g));
    }

    #[test]
    fn handles_mixed_sparse_dense_layers() {
        // A clique on half the vertices plus a pendant forest: needs both
        // prune rules in one run.
        let mut g = generators::complete(10).grow(16);
        for v in 11..=16u32 {
            g.add_edge(v - 10, v).unwrap();
        }
        assert_eq!(reconstruct(2, &g), Reconstruction::Graph(g));
    }

    #[test]
    fn rejects_out_of_class() {
        // A Paley-like middling graph: random G(n, 1/2) has both degeneracy
        // and co-degeneracy ≈ n/4 ≫ k almost surely.
        let mut rng = StdRng::seed_from_u64(22);
        let g = generators::gnp(24, 0.5, &mut rng);
        assert_eq!(reconstruct(2, &g), Reconstruction::NotInClass);
    }

    #[test]
    fn message_identical_to_plain_protocol() {
        use crate::DegeneracyProtocol;
        let g = generators::grid(4, 4);
        let gen = GeneralizedDegeneracyProtocol::new(2);
        let plain = DegeneracyProtocol::new(2);
        for v in g.vertices() {
            let view = NodeView::new(16, v, g.neighbourhood(v));
            assert_eq!(gen.local(view), plain.local(view));
        }
    }

    #[test]
    fn empty_graph() {
        let g = LabelledGraph::new(6);
        assert_eq!(reconstruct(2, &g), Reconstruction::Graph(g));
    }

    #[test]
    fn corrupted_messages_never_misdecode() {
        // Same failure-injection discipline as the plain protocol: bit
        // flips in one message must never silently change the output —
        // including flips that push the claimed degree past the live-peer
        // count (the co-degree underflow path).
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let dense =
            referee_graph::generators::random_k_degenerate(8, 2, 1.0, &mut rng).complement();
        let p = GeneralizedDegeneracyProtocol::new(2);
        let n = dense.n();
        let msgs: Vec<Message> = dense
            .vertices()
            .map(|v| p.local(NodeView::new(n, v, dense.neighbourhood(v))))
            .collect();
        assert_eq!(p.global(n, &msgs).unwrap(), Reconstruction::Graph(dense.clone()));
        let original = msgs[2].clone();
        let mut msgs = msgs;
        for bit in 0..original.len_bits() {
            msgs[2] = original.with_bit_flipped(bit);
            match p.global(n, &msgs) {
                Err(_) | Ok(Reconstruction::NotInClass) => {}
                Ok(Reconstruction::Graph(decoded)) => {
                    assert_eq!(decoded, dense, "bit {bit} silently changed the graph");
                }
            }
        }
    }

    #[test]
    fn tiny_n_and_large_k() {
        // k ≥ n − 1 makes everything prunable by degree; must still work.
        let g = LabelledGraph::from_edges(3, [(1, 2), (2, 3)]).unwrap();
        assert_eq!(reconstruct(5, &g), Reconstruction::Graph(g));
        let g1 = LabelledGraph::new(1);
        assert_eq!(reconstruct(3, &g1), Reconstruction::Graph(g1));
    }
}
