//! Bit-exact serialization.
//!
//! The paper's bounds are stated in *bits* ("each vertex is allowed to send
//! only O(log n) bits"), so message sizes here are tracked to the bit, not
//! the byte. [`BitWriter`] appends MSB-first into a byte buffer;
//! [`BitReader`] consumes the same layout and fails loudly on truncation.
//!
//! Besides fixed-width fields the writer offers Elias gamma coding for
//! length prefixes whose magnitude is data-dependent (used by the
//! variable-size power-sum sketches).

use crate::DecodeError;

/// MSB-first bit appender.
#[derive(Debug, Clone, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Number of valid bits in `bytes` (the last byte may be partial).
    len_bits: usize,
}

impl BitWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits written so far.
    pub fn len_bits(&self) -> usize {
        self.len_bits
    }

    /// Append the low `width` bits of `value`, MSB first. `width ≤ 64`;
    /// panics if `value` does not fit (a protocol bug, not a data error).
    pub fn write_bits(&mut self, value: u64, width: u32) {
        assert!(width <= 64, "width {width} > 64");
        assert!(
            width == 64 || value < (1u64 << width),
            "value {value} does not fit in {width} bits"
        );
        for i in (0..width).rev() {
            self.push_bit((value >> i) & 1 == 1);
        }
    }

    /// Append a single bit.
    pub fn push_bit(&mut self, bit: bool) {
        let off = self.len_bits % 8;
        if off == 0 {
            self.bytes.push(0);
        }
        if bit {
            *self.bytes.last_mut().unwrap() |= 1 << (7 - off);
        }
        self.len_bits += 1;
    }

    /// Elias gamma code for `value ≥ 1`: `⌊log₂ v⌋` zeros, then the binary
    /// representation of `v`. Encodes `v` in `2⌊log₂ v⌋ + 1` bits.
    pub fn write_gamma(&mut self, value: u64) {
        assert!(value >= 1, "gamma code requires value ≥ 1");
        let bits = 64 - value.leading_zeros();
        for _ in 0..bits - 1 {
            self.push_bit(false);
        }
        self.write_bits(value, bits);
    }

    /// Finish, returning the byte buffer and exact bit length.
    pub fn finish(self) -> (Vec<u8>, usize) {
        (self.bytes, self.len_bits)
    }
}

/// MSB-first bit consumer over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    len_bits: usize,
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Read from `bytes`, of which only the first `len_bits` bits are valid.
    pub fn new(bytes: &'a [u8], len_bits: usize) -> Self {
        debug_assert!(len_bits <= bytes.len() * 8);
        BitReader { bytes, len_bits, pos: 0 }
    }

    /// Bits not yet consumed.
    pub fn remaining(&self) -> usize {
        self.len_bits - self.pos
    }

    /// Whether every valid bit has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Read one bit.
    pub fn read_bit(&mut self) -> Result<bool, DecodeError> {
        if self.pos >= self.len_bits {
            return Err(DecodeError::Truncated);
        }
        let byte = self.bytes[self.pos / 8];
        let bit = (byte >> (7 - self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Read `width ≤ 64` bits as an MSB-first unsigned value.
    pub fn read_bits(&mut self, width: u32) -> Result<u64, DecodeError> {
        assert!(width <= 64, "width {width} > 64");
        if self.remaining() < width as usize {
            return Err(DecodeError::Truncated);
        }
        let mut v = 0u64;
        for _ in 0..width {
            v = (v << 1) | u64::from(self.read_bit()?);
        }
        Ok(v)
    }

    /// Copy the next `len_bits` bits verbatim into `w` (64-bit chunks;
    /// `Err(Truncated)` if fewer remain). The shared primitive behind
    /// every "embed a bit string inside another" codec — partial-state
    /// payloads, verdict payloads — so the chunking exists in one place.
    pub fn copy_bits_into(
        &mut self,
        w: &mut BitWriter,
        len_bits: usize,
    ) -> Result<(), DecodeError> {
        let mut left = len_bits;
        while left > 0 {
            let chunk = left.min(64) as u32;
            w.write_bits(self.read_bits(chunk)?, chunk);
            left -= chunk as usize;
        }
        Ok(())
    }

    /// Read an Elias gamma code (inverse of [`BitWriter::write_gamma`]).
    pub fn read_gamma(&mut self) -> Result<u64, DecodeError> {
        let mut zeros = 0u32;
        while !self.read_bit()? {
            zeros += 1;
            if zeros >= 64 {
                return Err(DecodeError::OutOfRange("gamma prefix too long".into()));
            }
        }
        // We consumed the leading 1 of the binary part already.
        let rest = self.read_bits(zeros)?;
        Ok((1u64 << zeros) | rest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_field_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        let (bytes, len) = w.finish();
        assert_eq!(len, 4);
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.read_bits(4).unwrap(), 0b1011);
        assert!(r.is_exhausted());
    }

    #[test]
    fn multi_field_round_trip() {
        let mut w = BitWriter::new();
        w.write_bits(5, 3);
        w.write_bits(0, 1);
        w.write_bits(u64::MAX, 64);
        w.write_bits(1234567, 21);
        let (bytes, len) = w.finish();
        assert_eq!(len, 3 + 1 + 64 + 21);
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.read_bits(3).unwrap(), 5);
        assert_eq!(r.read_bits(1).unwrap(), 0);
        assert_eq!(r.read_bits(64).unwrap(), u64::MAX);
        assert_eq!(r.read_bits(21).unwrap(), 1234567);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncation_detected() {
        let mut w = BitWriter::new();
        w.write_bits(7, 3);
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.read_bits(2).unwrap(), 3);
        assert_eq!(r.read_bits(2), Err(DecodeError::Truncated));
    }

    #[test]
    fn partial_final_byte_is_bounded() {
        // The writer emits 3 bits; the reader must not see phantom bits
        // from the rest of the final byte.
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let (bytes, len) = w.finish();
        assert_eq!(bytes.len(), 1);
        let mut r = BitReader::new(&bytes, len);
        assert_eq!(r.read_bits(3).unwrap(), 0b101);
        assert_eq!(r.read_bit(), Err(DecodeError::Truncated));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_value_is_a_bug() {
        BitWriter::new().write_bits(8, 3);
    }

    #[test]
    fn gamma_round_trip() {
        let mut w = BitWriter::new();
        let values = [1u64, 2, 3, 4, 7, 8, 1000, u32::MAX as u64];
        for &v in &values {
            w.write_gamma(v);
        }
        let (bytes, len) = w.finish();
        let mut r = BitReader::new(&bytes, len);
        for &v in &values {
            assert_eq!(r.read_gamma().unwrap(), v);
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn gamma_length_formula() {
        for v in [1u64, 2, 4, 9, 100] {
            let mut w = BitWriter::new();
            w.write_gamma(v);
            let bits = 64 - v.leading_zeros();
            assert_eq!(w.len_bits() as u32, 2 * bits - 1, "gamma({v})");
        }
    }

    #[test]
    fn gamma_truncation() {
        let (bytes, _) = {
            let mut w = BitWriter::new();
            w.write_gamma(100);
            w.finish()
        };
        // chop the stream mid-prefix
        let mut r = BitReader::new(&bytes, 3);
        assert_eq!(r.read_gamma(), Err(DecodeError::Truncated));
    }

    #[test]
    fn empty_reader() {
        let mut r = BitReader::new(&[], 0);
        assert!(r.is_exhausted());
        assert_eq!(r.read_bit(), Err(DecodeError::Truncated));
        assert_eq!(r.read_bits(0).unwrap(), 0);
    }
}
