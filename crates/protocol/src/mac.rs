//! Keyed message authentication: a hand-rolled SipHash-2-4.
//!
//! The offline build cannot pull a crypto crate, so the workspace carries
//! its own implementation of SipHash-2-4 (Aumasson & Bernstein, 2012) —
//! a 128-bit-keyed pseudorandom function with a 64-bit output, designed
//! precisely for short-input authentication. It is the *one* MAC
//! primitive in the workspace:
//!
//! * `wirenet` appends the full 64-bit tag to every wire frame
//!   (`wirenet::auth` builds the frame layer on top of this module);
//! * the Borůvka proposal uplinks
//!   ([`multiround`](crate::multiround)) truncate the tag to the 4-bit
//!   budget the frugality bound leaves them.
//!
//! Truncation trades detection probability for bits: a `t`-bit truncated
//! tag misses a corruption with probability `2⁻ᵗ` per attempt — `2⁻⁶⁴`
//! on wire frames, `2⁻⁴` on proposal uplinks — *independent of how many
//! bits were flipped*. That is the difference from the XOR-fold checksum
//! this replaced, which guaranteed single-bit detection but was blind to
//! a quarter of all 2-bit patterns (any pair of id bits four apart).
//!
//! Reference vectors from the SipHash paper are pinned in the tests.

/// A 128-bit SipHash key.
///
/// Key distribution is out of scope for the protocol layer: callers
/// either derive keys per connection (`wirenet`) or use a fixed,
/// domain-separated constant where both endpoints live in one process
/// (the in-memory Borůvka runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacKey(pub [u8; 16]);

impl MacKey {
    /// The two 64-bit key halves, little-endian (the SipHash convention).
    fn halves(&self) -> (u64, u64) {
        let k0 = u64::from_le_bytes(self.0[..8].try_into().expect("8 bytes"));
        let k1 = u64::from_le_bytes(self.0[8..].try_into().expect("8 bytes"));
        (k0, k1)
    }

    /// Derive a related key by mixing `tweak` into this key — cheap
    /// domain separation (per-connection keys from one master key).
    pub fn derive(&self, tweak: u64) -> MacKey {
        let tag = siphash24(self, &tweak.to_le_bytes());
        let mut out = self.0;
        for (i, b) in tag.to_le_bytes().iter().enumerate() {
            out[i + 8] ^= b;
            out[i] = out[i].rotate_left(3) ^ b.wrapping_mul(0x9d);
        }
        MacKey(out)
    }
}

#[inline]
fn sipround(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// SipHash-2-4 of `data` under `key`: 2 compression rounds per 8-byte
/// block, 4 finalization rounds, 64-bit tag.
pub fn siphash24(key: &MacKey, data: &[u8]) -> u64 {
    let (k0, k1) = key.halves();
    let mut v = [
        k0 ^ 0x736f6d6570736575,
        k1 ^ 0x646f72616e646f6d,
        k0 ^ 0x6c7967656e657261,
        k1 ^ 0x7465646279746573,
    ];

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        v[3] ^= m;
        sipround(&mut v);
        sipround(&mut v);
        v[0] ^= m;
    }

    // Final block: remaining bytes little-endian, length in the top byte.
    let rest = chunks.remainder();
    let mut last = (data.len() as u64 & 0xff) << 56;
    for (i, &b) in rest.iter().enumerate() {
        last |= (b as u64) << (8 * i);
    }
    v[3] ^= last;
    sipround(&mut v);
    sipround(&mut v);
    v[0] ^= last;

    v[2] ^= 0xff;
    for _ in 0..4 {
        sipround(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

/// The low `bits` bits of the SipHash-2-4 tag (`1 ≤ bits ≤ 64`) — the
/// truncated-tag form used where the message budget is smaller than a
/// full tag. Detection probability degrades to `1 − 2⁻ᵇⁱᵗˢ`.
pub fn siphash24_truncated(key: &MacKey, data: &[u8], bits: u32) -> u64 {
    assert!((1..=64).contains(&bits), "tag width {bits} out of range");
    let tag = siphash24(key, data);
    if bits == 64 {
        tag
    } else {
        tag & ((1u64 << bits) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The key from Appendix A of the SipHash paper:
    /// `00 01 02 ... 0f`.
    fn paper_key() -> MacKey {
        let mut k = [0u8; 16];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        MacKey(k)
    }

    #[test]
    fn paper_test_vector() {
        // Appendix A of the SipHash paper: the 15-byte message
        // 00 01 ... 0e under the paper key hashes to a129ca6149be45e5.
        let msg: Vec<u8> = (0u8..15).collect();
        assert_eq!(siphash24(&paper_key(), &msg), 0xa129ca6149be45e5);
    }

    #[test]
    fn reference_vectors_first_eight() {
        // First entries of the reference `vectors` table in the SipHash
        // distribution (siphash24.c): tag of the i-byte prefix of
        // 00 01 02 ... under the paper key.
        let expect: [u64; 8] = [
            0x726fdb47dd0e0e31,
            0x74f839c593dc67fd,
            0x0d6c8009d9a94f5a,
            0x85676696d7fb7e2d,
            0xcf2794e0277187b7,
            0x18765564cd99a68d,
            0xcbc9466e58fee3ce,
            0xab0200f58b01d137,
        ];
        let key = paper_key();
        for (len, want) in expect.iter().enumerate() {
            let msg: Vec<u8> = (0..len as u8).collect();
            assert_eq!(siphash24(&key, &msg), *want, "prefix length {len}");
        }
    }

    #[test]
    fn keys_matter() {
        let a = MacKey([0; 16]);
        let b = MacKey([1; 16]);
        assert_ne!(siphash24(&a, b"hello"), siphash24(&b, b"hello"));
    }

    #[test]
    fn truncation_is_low_bits() {
        let key = paper_key();
        let full = siphash24(&key, b"frame");
        assert_eq!(siphash24_truncated(&key, b"frame", 64), full);
        assert_eq!(siphash24_truncated(&key, b"frame", 4), full & 0xF);
        assert_eq!(siphash24_truncated(&key, b"frame", 1), full & 1);
    }

    #[test]
    fn derive_changes_key() {
        let k = paper_key();
        let d0 = k.derive(0);
        let d1 = k.derive(1);
        assert_ne!(d0, k);
        assert_ne!(d0, d1);
        assert_eq!(d0, k.derive(0), "derivation is deterministic");
    }
}
