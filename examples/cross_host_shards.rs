//! Cross-host shard placement over **real child processes** — the PR 5
//! acceptance demo and CI soak.
//!
//! The parent process re-executes itself twice in the `shard-host`
//! role: each child binds a loopback listener, prints its address, and
//! serves shard state until it is killed. The parent then runs a
//! `FleetServer` in **remote placement** mode (4 shards placed on the
//! 2 child hosts), drives a fleet of multi-round Borůvka sessions
//! against it, and — mid-run, on a seeded schedule — SIGKILLs a child
//! and respawns it on a fresh port, re-pointing the placement's address
//! book. The coordinator's journal replay must make every kill
//! invisible: **all** verdicts are asserted bit-for-bit equal to
//! in-process `run_multiround_sharded` and to the centralized truth.
//!
//! Phase 2 repeats the wire-tamper adversary against the remote-shard
//! topology: every third client frame is corrupted after MAC
//! computation; every tampered frame must die at the router, and zero
//! corrupted sessions may be accepted.
//!
//! Run: `cargo run --release --example cross_host_shards`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use referee_bench::{Percentiles, SloCheck};
use referee_one_round::prelude::*;
use referee_one_round::protocol::multiround::BoruvkaConnectivity;
use referee_one_round::protocol::shard::multiround::run_multiround_sharded;
use referee_one_round::protocol::trace::{
    dump_if_armed, wall_clock_us, FlightRecorder, TraceKind, TraceSnapshot,
};
use referee_simnet::{ManualClock, PlacementSim, Scheduler, SessionId};
use referee_wirenet::{
    boruvka_connectivity_service, decode_bool_output, trace_endpoint, AuthKey, FleetClient,
    FleetServer, PlacementPolicy, RemotePlacement, ShardHost, Stage, TamperConfig,
};
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const KEY_SEED: u64 = 2031;
const SHARDS: usize = 4;
const SESSIONS: usize = 300;
const CAP: usize = 64;

/// Child role: serve shard state until killed, announcing the bound
/// address on stdout so the parent can place shards on us.
fn shard_host_role() -> ! {
    let host = ShardHost::spawn_env(AuthKey::from_seed(KEY_SEED)).expect("bind shard host");
    println!("SHARD_HOST_LISTENING {}", host.addr());
    // An unkillable flush: the parent blocks on this line.
    use std::io::Write;
    std::io::stdout().flush().expect("flush address line");
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Spawn one shard-host child process and read back its address.
fn spawn_host() -> (Child, SocketAddr) {
    let exe = std::env::current_exe().expect("own executable path");
    let mut child = Command::new(exe)
        .arg("shard-host")
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn shard-host child");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("child announces its address");
    let addr = line
        .trim()
        .strip_prefix("SHARD_HOST_LISTENING ")
        .expect("address line format")
        .parse()
        .expect("child printed a socket address");
    (child, addr)
}

fn fleet_graphs(count: usize, seed: u64) -> Vec<LabelledGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|i| generators::gnp(5 + i % 18, 0.22, &mut rng)).collect()
}

/// Kill every child on exit, success or panic.
struct Reaper(Arc<Mutex<Vec<Child>>>);
impl Drop for Reaper {
    fn drop(&mut self) {
        for child in self.0.lock().unwrap().iter_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

fn main() {
    if std::env::args().nth(1).as_deref() == Some("shard-host") {
        shard_host_role();
    }
    let key = AuthKey::from_seed(KEY_SEED);
    let children = Arc::new(Mutex::new(Vec::new()));
    let _reaper = Reaper(Arc::clone(&children));

    // ---- Phase 1: seeded kill/restart chaos over real processes -------
    let (c0, a0) = spawn_host();
    let (c1, a1) = spawn_host();
    {
        let mut kids = children.lock().unwrap();
        kids.push(c0);
        kids.push(c1);
    }
    let policy = PlacementPolicy::balanced(SHARDS, &[0, 1]);
    let placement = RemotePlacement::new(policy, [(0, a0), (1, a1)]).expect("addresses cover");
    let server = FleetServer::builder(key)
        .placement(placement.clone())
        .multiround(boruvka_connectivity_service())
        .spawn()
        .expect("bind coordinator");
    let client = FleetClient::connect(server.addr(), 4, key).expect("connect");
    println!(
        "phase 1: {SESSIONS} multi-round Borůvka sessions, {SHARDS} shards remotely placed \
         on 2 child processes ({a0}, {a1}), seeded SIGKILL/restart mid-run"
    );

    let graphs = fleet_graphs(SESSIONS, 2031);
    let stop = Arc::new(AtomicBool::new(false));
    let kill_count = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    // The fault injector keeps its own flight recorder, so the injected
    // kills land on the same post-mortem timeline as their fallout.
    let chaos_recorder = Arc::new(FlightRecorder::default());
    let chaos = {
        let stop = Arc::clone(&stop);
        let kill_count = Arc::clone(&kill_count);
        let placement = placement.clone();
        let children = Arc::clone(&children);
        let recorder = Arc::clone(&chaos_recorder);
        std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(77);
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(40));
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                // Kill one child (seeded pick), respawn it on a fresh
                // port, re-point the address book — the proxies redial,
                // re-register a new generation and replay.
                let victim = rng.gen_range(0..2usize);
                {
                    let mut kids = children.lock().unwrap();
                    let _ = kids[victim].kill();
                    let _ = kids[victim].wait();
                }
                recorder.record(
                    wall_clock_us(),
                    0,
                    trace_endpoint::CHAOS,
                    TraceKind::Kill,
                    victim as u64,
                );
                let (child, addr) = spawn_host();
                assert!(placement.update_host(victim as u32, addr), "host in the book");
                children.lock().unwrap()[victim] = child;
                kill_count.fetch_add(1, Ordering::SeqCst);
            }
        })
    };

    let run_one = |id: usize, g: &LabelledGraph| -> bool {
        let out = client
            .run_multiround_session(SessionId(id as u64), &BoruvkaConnectivity, g, CAP)
            .expect("honest session completes despite shard-host kills");
        decode_bool_output(&out).expect("honest uplinks decode")
    };
    let t0 = std::time::Instant::now();
    let scheduler = Scheduler::new(4, 8);
    let verdicts: Vec<bool> = scheduler.run_indexed(SESSIONS, |i| run_one(i, &graphs[i]));
    // A fast machine can drain the fleet before the first chaos tick:
    // keep sessions flowing until at least one kill landed, plus a
    // post-kill tail that exercises reconnect + replay — so the chaos
    // assertions below never race the scheduler.
    let mut extra = 0usize;
    loop {
        let killed = kill_count.load(Ordering::SeqCst) > 0;
        if killed && extra >= 16 {
            break;
        }
        let g = &graphs[extra % SESSIONS];
        let verdict = run_one(SESSIONS + extra, g);
        assert_eq!(verdict, algo::is_connected(g), "extra session {extra}");
        extra += 1;
    }
    let wall = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::SeqCst);
    chaos.join().expect("chaos thread");
    let kills = kill_count.load(Ordering::SeqCst);

    for (i, (wire, g)) in verdicts.iter().zip(&graphs).enumerate() {
        let (local, _) = run_multiround_sharded(&BoruvkaConnectivity, g, SHARDS, CAP);
        let local = local.expect("terminates").expect("honest run decodes");
        assert_eq!(*wire, local, "session {i} diverged from in-process sharded run");
        assert_eq!(*wire, algo::is_connected(g), "session {i} diverged from centralized truth");
    }
    let client_stats = client.metrics();
    // Stitch one causally-ordered timeline: server ring + segments
    // shipped by the shard hosts + client lifecycle + injected kills.
    let mut stitched = server.stitched_trace();
    stitched.merge(&client.stitched_trace());
    stitched.merge(&chaos_recorder.snapshot());
    let stats = server.stop();
    let total = SESSIONS + extra;
    println!(
        "  {SESSIONS}/{SESSIONS} verdicts bit-for-bit vs run_multiround_sharded \
         (+{extra} post-kill sessions, {:.0} sess/s) under {kills} kill/restarts",
        total as f64 / wall
    );
    println!(
        "  reconnects {} | replayed frames {} | partials {} | mac-rejects {}",
        stats.shard_reconnects, stats.replayed_frames, stats.partial_frames, stats.mac_rejects
    );
    assert!(kills > 0, "the chaos schedule must actually kill");
    assert!(
        stats.shard_reconnects as usize > SHARDS,
        "kills must force redials beyond the initial {SHARDS}"
    );
    assert_eq!(stats.verdict_frames as usize, total);

    // The stitched timeline must be causally coherent: the injected
    // kills are on it, the hosts' shipped segments are on it, and every
    // endpoint's lane is seq- and time-ordered after stitching.
    let chaos_kills =
        stitched.events().iter().filter(|e| e.endpoint == trace_endpoint::CHAOS).count();
    assert_eq!(chaos_kills, kills, "every injected kill is on the timeline");
    assert!(
        stitched.events().iter().any(|e| (0x200..0x300).contains(&e.endpoint)),
        "shard hosts shipped trace segments cross-process"
    );
    let mut lanes_checked = 0usize;
    for w in stitched.events().windows(2) {
        if w[0].session == w[1].session && w[0].endpoint == w[1].endpoint {
            assert!(w[0].seq < w[1].seq, "lane seq strictly increases");
            assert!(w[0].ts_us <= w[1].ts_us, "lane time never runs backwards");
            lanes_checked += 1;
        }
    }
    assert!(lanes_checked > 0, "the stitched trace has real per-lane history");
    let traced_sessions =
        stitched.events().iter().map(|e| e.session).filter(|&s| s != 0).count();
    println!(
        "  stitched trace: {} events, {} session-scoped, {} injected kills on-timeline",
        stitched.len(),
        traced_sessions,
        chaos_kills
    );
    // Chaos kills fired, so this run qualifies for a post-mortem: with
    // REFEREE_TRACE_DUMP armed the timeline lands in TRACE_*.json.
    if let Some(path) = dump_if_armed("cross_host_shards", &stitched) {
        println!("  post-mortem trace dumped to {}", path.display());
    }

    // Announce→verdict latency per session, *including* sessions that
    // lived through a shard-host kill and replay — the tail the SLO
    // gate (REFEREE_SLO_P99_US / REFEREE_SLO_P999_US) watches in CI.
    let verdict_hist = client_stats.stage(Stage::Verdict);
    let p = Percentiles::from_hist(verdict_hist).expect("sessions ran");
    println!("  latency under chaos: {verdict_hist}");
    let slo = SloCheck::from_env();
    if let Err(e) = slo.check("cross_host_shards phase 1", &p) {
        // SLO violation: dump the timeline before dying, so the failure
        // ships its own diagnosis.
        dump_if_armed("cross_host_shards_slo", &stitched);
        panic!("{e}");
    }
    slo.enforce("cross_host_shards phase 1", &p);

    // ---- Deterministic companion: the simnet twin of this chaos run ---
    // The same kill/replay state machine under a seeded schedule and a
    // manual clock: two runs of the same seed must produce *byte
    // identical* traces — the reproducibility contract that makes a
    // post-mortem from CI replayable at a desk.
    let sim_policy = PlacementPolicy::balanced(SHARDS, &[0, 1]);
    let sim_arrivals: Vec<(u32, _)> = {
        let g = &graphs[0];
        let msgs = referee_one_round::protocol::referee::local_phase(
            &referee_one_round::protocol::easy::EdgeCountProtocol,
            g,
        );
        msgs.into_iter().enumerate().map(|(i, m)| (i as u32 + 1, m)).collect()
    };
    let sim_n = graphs[0].n();
    let sim_trace = |seed: u64| {
        let recorder = FlightRecorder::default();
        let clock = ManualClock::default();
        let report = PlacementSim::new(seed, 0.35).run_traced(
            sim_n,
            &sim_policy,
            &sim_arrivals,
            &recorder,
            &clock,
        );
        assert!(report.verdict.is_ok(), "honest sim assembly verifies");
        recorder.snapshot()
    };
    let (sim_a, sim_b) = (sim_trace(2031), sim_trace(2031));
    assert_eq!(
        sim_a.encode().as_bytes(),
        sim_b.encode().as_bytes(),
        "same seed, byte-identical sim trace"
    );
    assert_eq!(
        TraceSnapshot::decode(&sim_a.encode()).expect("canonical encoding decodes"),
        sim_a
    );
    println!("  sim twin: seed 2031 reproduces a {}-event trace bit-for-bit", sim_a.len());
    dump_if_armed("cross_host_shards_sim", &sim_a);

    // ---- Phase 2: wire tampering fails closed, zero undetected --------
    let policy = PlacementPolicy::balanced(2, &[0, 1]);
    let placement2 = RemotePlacement::new(
        policy,
        [(0, placement.addr_of_host(0)), (1, placement.addr_of_host(1))],
    )
    .expect("addresses cover");
    let server = FleetServer::builder(key)
        .placement(placement2)
        .multiround(boruvka_connectivity_service())
        .spawn()
        .expect("bind coordinator");
    let tampered_sessions = 48usize;
    let client = FleetClient::connect(server.addr(), tampered_sessions, key)
        .expect("connect")
        .with_tamper(TamperConfig { flip_every: 3 });
    println!("phase 2: {tampered_sessions} sessions, every 3rd frame corrupted post-MAC");
    let mut failed_closed = 0usize;
    let mut undetected = 0usize;
    for (i, g) in graphs.iter().take(tampered_sessions).enumerate() {
        match client.run_multiround_session(SessionId(i as u64), &BoruvkaConnectivity, g, CAP) {
            Err(_) => failed_closed += 1,
            Ok(out) => {
                if decode_bool_output(&out) != Ok(algo::is_connected(g)) {
                    undetected += 1;
                }
            }
        }
    }
    let server_stats = server.stop();
    println!(
        "  failed closed {failed_closed}/{tampered_sessions} | undetected {undetected} | \
         router mac-rejects {}",
        server_stats.mac_rejects
    );
    assert_eq!(undetected, 0, "a corrupted session was accepted");
    assert!(failed_closed > 0, "tampering every 3rd frame must hit most sessions");
    assert!(server_stats.mac_rejects > 0, "corruption must die at the router MAC check");

    println!("\ncross-host shard placement survives process kills, tamper fails closed ✓");
}
