//! Theorem 5: the one-round frugal protocol reconstructing graphs of
//! degeneracy ≤ k (local = Algorithm 3, global = Algorithm 4).
//!
//! The referee's global function maintains the multiset
//! `B = {(ID(x), deg(x), b(x))}` and repeatedly prunes a vertex of current
//! degree ≤ k: it decodes that vertex's remaining neighbourhood (unique by
//! Corollary 1), records the edges, and subtracts the pruned vertex from
//! each neighbour's tuple. If pruning ever stalls with vertices left, the
//! graph has degeneracy > k — which is exactly the *recognition protocol*
//! the paper derives ("we just have to add one test in Algorithm 4, which
//! rejects the graph if, during the pruning process, we find no vertex of
//! degree at most k").
//!
//! Soundness hardening beyond the paper (which assumes honest messages):
//! after pruning completes, the referee re-encodes every vertex of the
//! reconstructed graph and compares against the received messages, so any
//! corrupted-but-decodable message vector is rejected rather than silently
//! mis-reconstructed.

use crate::decode::{DecoderKind, NeighbourhoodDecoder, NewtonDecoder, TableDecoder};
use crate::encode::PowerSumSketch;
use referee_graph::{LabelledGraph, VertexId};
use referee_protocol::{DecodeError, Message, NodeView, OneRoundProtocol};

/// Referee verdict for reconstruction-with-recognition protocols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reconstruction {
    /// The graph was in the promised class; here it is, exactly.
    Graph(LabelledGraph),
    /// The recognition test rejected: the graph is not in the class
    /// (degeneracy > k for this protocol; a cycle for the forest one).
    NotInClass,
}

impl Reconstruction {
    /// The reconstructed graph, if accepted.
    pub fn graph(self) -> Option<LabelledGraph> {
        match self {
            Reconstruction::Graph(g) => Some(g),
            Reconstruction::NotInClass => None,
        }
    }
}

/// Parse and channel-validate all n sketch messages. Parsing is pure and
/// per-message, so large batches fan out across threads (the referee-side
/// mirror of the parallel local phase).
pub(crate) fn parse_sketches(
    messages: &[Message],
    n: usize,
    k: usize,
) -> Result<Vec<PowerSumSketch>, DecodeError> {
    // Twice the simulator threshold: referee-side parsing is cheaper per
    // message than local-phase encoding. The shared knob lets batch
    // drivers (simnet) disable nested fan-out entirely.
    let parallel_threshold = referee_protocol::referee::parallel_threshold().saturating_mul(2);
    let parse_one = |i: usize, m: &Message| -> Result<PowerSumSketch, DecodeError> {
        let s = PowerSumSketch::from_message(m, n, k)?;
        if s.id as usize != i + 1 {
            return Err(DecodeError::Inconsistent(format!(
                "message {} carries id {} (channel mismatch)",
                i + 1,
                s.id
            )));
        }
        Ok(s)
    };
    if messages.len() < parallel_threshold {
        return messages.iter().enumerate().map(|(i, m)| parse_one(i, m)).collect();
    }
    let threads = std::thread::available_parallelism().map_or(4, |p| p.get()).min(32);
    let chunk = messages.len().div_ceil(threads);
    let results: Vec<Result<Vec<PowerSumSketch>, DecodeError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = messages
            .chunks(chunk)
            .enumerate()
            .map(|(t, slice)| {
                scope.spawn(move || {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(off, m)| parse_one(t * chunk + off, m))
                        .collect::<Result<Vec<_>, _>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("parse worker")).collect()
    });
    let mut out = Vec::with_capacity(messages.len());
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

/// The Theorem 5 protocol with parameter `k` ("each vertex needs to know
/// the value of k").
#[derive(Debug, Clone, Copy)]
pub struct DegeneracyProtocol {
    k: usize,
    decoder: DecoderKind,
}

impl DegeneracyProtocol {
    /// Protocol for graphs of degeneracy ≤ `k`, using the scalable
    /// algebraic decoder.
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "degeneracy parameter must be ≥ 1");
        DegeneracyProtocol { k, decoder: DecoderKind::Newton }
    }

    /// Same protocol, explicit decoder choice (for the E9 ablation).
    pub fn with_decoder(k: usize, decoder: DecoderKind) -> Self {
        assert!(k >= 1, "degeneracy parameter must be ≥ 1");
        DegeneracyProtocol { k, decoder }
    }

    /// The class parameter `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Run Algorithm 4 on already-parsed sketches (entry point shared with
    /// the generalized protocol's tests and the benches).
    pub fn prune_and_rebuild(
        &self,
        n: usize,
        mut sketches: Vec<PowerSumSketch>,
    ) -> Result<Reconstruction, DecodeError> {
        let table; // keep alive across the borrow below
        let decoder: &dyn NeighbourhoodDecoder = match self.decoder {
            DecoderKind::Newton => &NewtonDecoder,
            DecoderKind::Table => {
                table = TableDecoder::new(n, self.k)?;
                &table
            }
        };

        // Handshake lemma sanity check before any work.
        let degree_sum: usize = sketches.iter().map(|s| s.degree).sum();
        if !degree_sum.is_multiple_of(2) {
            return Err(DecodeError::Inconsistent(
                "degree sum is odd (handshake lemma violated)".into(),
            ));
        }

        let mut g = LabelledGraph::new(n);
        let mut alive = vec![true; n];
        // Worklist of candidate vertices with current degree ≤ k. Entries
        // may be stale; revalidated at pop.
        let mut stack: Vec<u32> =
            (0..n as u32).filter(|&i| sketches[i as usize].degree <= self.k).collect();
        let mut processed = 0usize;

        while processed < n {
            let x0 = loop {
                match stack.pop() {
                    Some(i) => {
                        if alive[i as usize] && sketches[i as usize].degree <= self.k {
                            break Some(i);
                        }
                    }
                    None => break None,
                }
            };
            let Some(xi) = x0 else {
                // No vertex of degree ≤ k remains: recognition rejects.
                return Ok(Reconstruction::NotInClass);
            };
            let x = (xi + 1) as VertexId;
            let sk = &sketches[xi as usize];
            let nbrs = decoder.decode(n, sk.degree, &sk.sums)?;
            alive[xi as usize] = false;
            processed += 1;
            for &w in &nbrs {
                if w == x || !alive[(w - 1) as usize] {
                    return Err(DecodeError::Inconsistent(format!(
                        "decoded neighbour {w} of {x} is not a live distinct vertex"
                    )));
                }
                g.add_edge(x, w).map_err(|_| {
                    DecodeError::Inconsistent(format!("duplicate edge {{{x},{w}}} decoded"))
                })?;
                let ws = &mut sketches[(w - 1) as usize];
                ws.prune_neighbour(x)?;
                if ws.degree <= self.k {
                    stack.push(w - 1);
                }
            }
        }

        Ok(Reconstruction::Graph(g))
    }
}

impl OneRoundProtocol for DegeneracyProtocol {
    type Output = Result<Reconstruction, DecodeError>;

    fn name(&self) -> String {
        format!("degeneracy-{} reconstruction (Thm 5, {:?} decoder)", self.k, self.decoder)
    }

    /// Algorithm 3.
    fn local(&self, view: NodeView<'_>) -> Message {
        PowerSumSketch::compute(view.n, view.id, view.neighbours, self.k)
            .to_message(view.n, self.k)
    }

    /// Algorithm 4 (+ recognition test + soundness validation).
    fn global(&self, n: usize, messages: &[Message]) -> Self::Output {
        if messages.len() != n {
            return Err(DecodeError::Inconsistent(format!(
                "expected {n} messages, got {}",
                messages.len()
            )));
        }
        let sketches = parse_sketches(messages, n, self.k)?;
        let originals = sketches.clone();
        let result = self.prune_and_rebuild(n, sketches)?;
        if let Reconstruction::Graph(ref g) = result {
            for v in 1..=n as VertexId {
                let re = PowerSumSketch::compute(n, v, g.neighbourhood(v), self.k);
                let orig = &originals[(v - 1) as usize];
                if re.degree != orig.degree || re.sums != orig.sums {
                    return Err(DecodeError::Inconsistent(format!(
                        "reconstruction does not reproduce the message of vertex {v}"
                    )));
                }
            }
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use referee_graph::generators;
    use referee_protocol::run_protocol;

    fn reconstruct(k: usize, g: &LabelledGraph) -> Reconstruction {
        run_protocol(&DegeneracyProtocol::new(k), g).output.expect("decode ok")
    }

    #[test]
    fn reconstructs_forests_k1() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = generators::random_forest(60, 0.8, &mut rng);
        assert_eq!(reconstruct(1, &g), Reconstruction::Graph(g));
    }

    #[test]
    fn reconstructs_grids_k2() {
        let g = generators::grid(7, 9);
        assert_eq!(reconstruct(2, &g), Reconstruction::Graph(g));
    }

    #[test]
    fn reconstructs_k_trees() {
        let mut rng = StdRng::seed_from_u64(2);
        for k in 1..=4 {
            let g = generators::k_tree(40, k, &mut rng);
            assert_eq!(reconstruct(k, &g), Reconstruction::Graph(g.clone()), "k={k}");
            // a larger k also works (the class is monotone in k)
            assert_eq!(reconstruct(k + 2, &g), Reconstruction::Graph(g), "k+2");
        }
    }

    #[test]
    fn reconstructs_random_k_degenerate() {
        let mut rng = StdRng::seed_from_u64(3);
        for k in [1usize, 2, 3, 5] {
            let g = generators::random_k_degenerate(50, k, 0.9, &mut rng);
            assert_eq!(reconstruct(k, &g), Reconstruction::Graph(g), "k={k}");
        }
    }

    #[test]
    fn recognition_rejects_higher_degeneracy() {
        // K6 has degeneracy 5; the k=4 protocol must reject, not guess.
        let g = generators::complete(6);
        assert_eq!(reconstruct(4, &g), Reconstruction::NotInClass);
        // and accept with k = 5
        assert_eq!(reconstruct(5, &g), Reconstruction::Graph(g));
    }

    #[test]
    fn table_decoder_agrees_with_newton() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = generators::random_k_degenerate(12, 2, 1.0, &mut rng);
        let newton = run_protocol(&DegeneracyProtocol::new(2), &g).output.unwrap();
        let table = run_protocol(&DegeneracyProtocol::with_decoder(2, DecoderKind::Table), &g)
            .output
            .unwrap();
        assert_eq!(newton, table);
        assert_eq!(newton, Reconstruction::Graph(g));
    }

    #[test]
    fn message_sizes_match_lemma2() {
        let g = generators::grid(10, 10);
        let out = run_protocol(&DegeneracyProtocol::new(2), &g);
        assert_eq!(out.stats.max_message_bits, crate::encode::lemma2_bound_bits(100, 2));
    }

    #[test]
    fn corrupted_messages_never_misdecode() {
        // Flip each bit of one message; referee must reject or be a no-op,
        // never return a different graph.
        let g = generators::grid(3, 3);
        let p = DegeneracyProtocol::new(2);
        let msgs: Vec<Message> =
            g.vertices().map(|v| p.local(NodeView::new(9, v, g.neighbourhood(v)))).collect();
        assert_eq!(p.global(9, &msgs).unwrap(), Reconstruction::Graph(g.clone()));
        let original = msgs[4].clone();
        let mut msgs = msgs;
        for bit in 0..original.len_bits() {
            msgs[4] = original.with_bit_flipped(bit);
            match p.global(9, &msgs) {
                Err(_) | Ok(Reconstruction::NotInClass) => {}
                Ok(Reconstruction::Graph(decoded)) => {
                    assert_eq!(decoded, g, "bit {bit} silently changed the graph");
                }
            }
        }
    }

    #[test]
    fn wrong_message_count_rejected() {
        let p = DegeneracyProtocol::new(2);
        assert!(p.global(5, &[Message::empty()]).is_err());
    }

    #[test]
    fn empty_and_edgeless_graphs() {
        let g = LabelledGraph::new(7);
        assert_eq!(reconstruct(3, &g), Reconstruction::Graph(g));
        let g0 = LabelledGraph::new(0);
        assert_eq!(reconstruct(1, &g0), Reconstruction::Graph(g0));
    }

    #[test]
    fn large_scale_parallel_parse_path() {
        // n above the referee's parallel-parse threshold: a 6000-vertex
        // forest round-trips exactly (exercises the crossbeam fan-out in
        // both the local phase and the referee's message parsing).
        let mut rng = StdRng::seed_from_u64(6);
        let g = generators::random_forest(6000, 0.9, &mut rng);
        assert_eq!(reconstruct(1, &g), Reconstruction::Graph(g));
    }

    #[test]
    fn planar_like_families_under_k5() {
        // The paper: "planar graphs are of degeneracy at most 5". Grids and
        // their toroidal closures are the planar-ish families we generate.
        let g = generators::torus(5, 6); // degeneracy 4 ≤ 5 (toroidal, still sparse)
        assert_eq!(reconstruct(5, &g), Reconstruction::Graph(g));
    }
}
