//! Graph algorithms used throughout the reproduction.
//!
//! Each submodule implements one property the paper reasons about:
//!
//! * [`bfs`](mod@bfs) — single-source shortest paths (unit weights), the primitive
//!   under diameter and component computations.
//! * [`components`](mod@components) — connected components and spanning forests (the §IV
//!   connectivity open question, and its multi-round/partition protocols).
//! * [`diameter`](mod@diameter) — exact diameter via all-pairs BFS (Theorem 2 decides
//!   "diameter ≤ 3").
//! * [`bipartite`](mod@bipartite) — 2-colouring (Theorem 3 reconstructs bipartite graphs;
//!   §IV's bipartiteness discussion).
//! * [`degeneracy`](mod@degeneracy) — Matula–Beck smallest-last ordering, k-cores, and a
//!   brute-force reference (Definition 2, the heart of Theorem 5).
//! * [`triangles`](mod@triangles) — triangle detection/counting (Theorem 3).
//! * [`squares`](mod@squares) — C4 detection/counting (Theorem 1, Kleitman–Winston
//!   counting).
//! * [`cycles`](mod@cycles) — girth and acyclicity (forests = degeneracy 1, §III.A).
//! * [`treewidth`](mod@treewidth) — exact/heuristic treewidth and tree
//!   decompositions (§I.A: degeneracy ≤ treewidth, so Theorem 5 covers
//!   bounded-treewidth graphs).
//! * [`biconnectivity`](mod@biconnectivity) — articulation points, bridges and
//!   2-edge-connected components (robustness side of the §IV connectivity
//!   question).
//! * [`subgraph`](mod@subgraph) — generic small-pattern subgraph isomorphism
//!   (the "does G admit S as a subgraph?" question §II opens with).
//! * [`mincut`](mod@mincut) / [`vertex_connectivity`](mod@vertex_connectivity) —
//!   λ(G) (Stoer–Wagner) and κ(G) (Menger/max-flow), the quantitative
//!   refinements of the §IV connectivity question, with Whitney's
//!   κ ≤ λ ≤ δ property-tested.
//! * [`chordal`](mod@chordal) — Lex-BFS recognition and exact ω/treewidth on
//!   perfect-elimination graphs (the k-trees of the Theorem 5 experiments).
//! * [`clique`](mod@clique) / [`coloring`](mod@coloring) — ω(G)
//!   (Bron–Kerbosch) and (d+1)-colouring along the recovered elimination
//!   order: the referee's first payoff after reconstruction.

pub mod bfs;
pub mod biconnectivity;
pub mod bipartite;
pub mod chordal;
pub mod clique;
pub mod coloring;
pub mod components;
pub mod cycles;
pub mod degeneracy;
pub mod diameter;
pub mod mincut;
pub mod squares;
pub mod subgraph;
pub mod treewidth;
pub mod triangles;
pub mod vertex_connectivity;

pub use bfs::{bfs_distances, eccentricity};
pub use biconnectivity::{
    articulation_points, biconnectivity, bridges, is_two_edge_connected, Biconnectivity,
};
pub use bipartite::{bipartition, is_bipartite, Bipartition};
pub use chordal::{
    chordal_max_clique, chordal_treewidth, is_chordal, lex_bfs, perfect_elimination_order,
};
pub use clique::{clique_number, max_clique};
pub use coloring::{chromatic_number_exact, degeneracy_coloring, greedy_coloring, Coloring};
pub use components::{component_count, components, is_connected, spanning_forest};
pub use cycles::{girth, has_cycle, is_forest};
pub use degeneracy::{
    degeneracy_brute_force, degeneracy_ordering, k_cores, DegeneracyOrdering,
};
pub use diameter::{center, diameter, diameter_at_most, eccentricities, radius, Diameter};
pub use mincut::{edge_connectivity, global_min_cut, is_k_edge_connected, MinCut};
pub use squares::{
    count_induced_squares, count_squares, has_induced_square, has_square, is_square_free,
};
pub use subgraph::{
    automorphism_count, count_embeddings, find_subgraph, has_induced_subgraph, has_subgraph,
};
pub use treewidth::{
    decomposition_from_order, min_degree_order, min_fill_order, treewidth_exact,
    width_of_order, EliminationOrder, TreeDecomposition,
};
pub use triangles::{count_triangles, has_triangle};
pub use vertex_connectivity::{
    is_k_vertex_connected, vertex_connectivity, vertex_disjoint_paths,
};
