#![warn(missing_docs)]
//! Labelled-graph substrate for the `referee-one-round` workspace
//! (reproduction of Becker et al., *Adding a referee to an interconnection
//! network*, IPDPS 2011).
//!
//! The paper's model works on simple undirected **labelled** graphs: the
//! vertex set is `{1, …, n}` and identities matter (protocols depend on the
//! actual IDs, and "graph" always means "labelled graph" in the paper). This
//! crate provides:
//!
//! * [`LabelledGraph`] — sorted-adjacency storage with 1-based [`VertexId`]s,
//! * [`BitSet`] — dense neighbourhood/incidence vectors (the `x` of
//!   Algorithm 3),
//! * [`csr::Csr`] — an immutable compressed-sparse-row view for traversals,
//! * [`dsu::Dsu`] — union–find, used by spanning-forest and multi-round
//!   connectivity code,
//! * [`generators`] — every graph family the paper names (forests, planar
//!   grids, bounded treewidth/degeneracy, bipartite, …) plus random models,
//! * [`algo`] — BFS, components, diameter, bipartiteness, degeneracy
//!   orderings/cores, triangle/square detection and counting, girth,
//! * [`enumerate`] — exhaustive labelled-graph enumeration at small `n`
//!   (the engine of the Lemma 1 counting experiments),
//! * [`graph6`] — the standard graph6 interchange codec.
//!
//! Vertex IDs are **1-based** (`1..=n`), matching the paper; internal
//! storage is 0-based and the conversion happens at the API boundary.

pub mod algo;
mod bitset;
mod builder;
pub mod csr;
pub mod dsu;
pub mod enumerate;
pub mod generators;
pub mod graph6;
mod labelled;

pub use bitset::BitSet;
pub use builder::GraphBuilder;
pub use labelled::{Edge, LabelledGraph};

/// A vertex identifier. **1-based**: valid IDs on an `n`-vertex graph are
/// `1..=n`, exactly as in the paper ("each node has a unique identifier
/// between 1 and n").
pub type VertexId = u32;

/// Errors from graph construction and mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex ID outside `1..=n`.
    VertexOutOfRange {
        /// The offending ID.
        id: VertexId,
        /// The graph size it was checked against.
        n: usize,
    },
    /// A self-loop was requested (the model uses simple graphs).
    SelfLoop(VertexId),
    /// An edge that already exists was added via the strict API.
    DuplicateEdge(VertexId, VertexId),
    /// Input string was not valid graph6 (or similar parse failure).
    Parse(String),
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::VertexOutOfRange { id, n } => {
                write!(f, "vertex {id} out of range 1..={n}")
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at vertex {v} not allowed"),
            GraphError::DuplicateEdge(u, v) => write!(f, "edge {{{u},{v}}} already present"),
            GraphError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_are_actionable() {
        // These strings are user-facing API; pin the load-bearing parts.
        let e = GraphError::VertexOutOfRange { id: 9, n: 4 };
        assert!(e.to_string().contains("9") && e.to_string().contains("4"));
        assert!(GraphError::SelfLoop(3).to_string().contains("3"));
        assert!(GraphError::DuplicateEdge(1, 2).to_string().contains("{1,2}"));
        assert!(GraphError::Parse("bad".into()).to_string().contains("bad"));
    }
}
