//! Acyclicity and girth.
//!
//! Forests are exactly the graphs of degeneracy 1 (§III.A), and the forest
//! protocol must *detect* cycles rather than mis-reconstruct, so the
//! substrate provides a trusted acyclicity predicate. Girth doubles as a
//! cross-check for the triangle/square detectors (girth 3 ⟺ triangle,
//! girth 4 ⟸ square in triangle-free graphs).

use crate::csr::Csr;
use crate::dsu::Dsu;
use crate::LabelledGraph;

/// Does `G` contain any cycle?
pub fn has_cycle(g: &LabelledGraph) -> bool {
    let mut dsu = Dsu::new(g.n());
    for e in g.edges() {
        if !dsu.union((e.0 - 1) as usize, (e.1 - 1) as usize) {
            return true;
        }
    }
    false
}

/// Is `G` a forest (acyclic)? Equivalent to degeneracy ≤ 1.
pub fn is_forest(g: &LabelledGraph) -> bool {
    !has_cycle(g)
}

/// Length of the shortest cycle, or `None` for forests.
///
/// BFS from every vertex; a non-tree edge at BFS levels `d(u)`, `d(v)`
/// closes a cycle of length `d(u) + d(v) + 1` through the root. The
/// minimum over all roots is the girth (standard O(n·m) method).
pub fn girth(g: &LabelledGraph) -> Option<u32> {
    let csr = Csr::from_graph(g);
    let n = csr.n();
    let mut best: Option<u32> = None;
    let mut dist = vec![u32::MAX; n];
    let mut parent = vec![u32::MAX; n];
    let mut queue: Vec<u32> = Vec::with_capacity(n);
    for s in 0..n {
        dist.fill(u32::MAX);
        parent.fill(u32::MAX);
        queue.clear();
        dist[s] = 0;
        queue.push(s as u32);
        let mut head = 0;
        while head < queue.len() {
            let u = queue[head] as usize;
            head += 1;
            if let Some(b) = best {
                // levels beyond b/2 cannot improve the bound from this root
                if dist[u] * 2 >= b {
                    break;
                }
            }
            for &v in csr.neighbours(u) {
                let vi = v as usize;
                if dist[vi] == u32::MAX {
                    dist[vi] = dist[u] + 1;
                    parent[vi] = u as u32;
                    queue.push(v);
                } else if parent[u] != v && parent[vi] != u as u32 {
                    let cyc = dist[u] + dist[vi] + 1;
                    best = Some(best.map_or(cyc, |b| b.min(cyc)));
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn forests_are_acyclic() {
        let g = LabelledGraph::from_edges(5, [(1, 2), (2, 3), (1, 4), (4, 5)]).unwrap();
        assert!(is_forest(&g));
        assert_eq!(girth(&g), None);
    }

    #[test]
    fn cycle_lengths() {
        for len in 3..=9u32 {
            let g = generators::cycle(len as usize).unwrap();
            assert!(has_cycle(&g));
            assert_eq!(girth(&g), Some(len), "C{len}");
        }
    }

    #[test]
    fn girth_of_named_graphs() {
        assert_eq!(girth(&generators::complete(4)), Some(3));
        assert_eq!(girth(&generators::complete_bipartite(2, 2)), Some(4));
        assert_eq!(girth(&generators::petersen()), Some(5));
        assert_eq!(girth(&generators::grid(3, 3)), Some(4));
        assert_eq!(girth(&generators::hypercube(3)), Some(4));
    }

    #[test]
    fn girth_consistent_with_detectors() {
        use crate::algo::{has_square, has_triangle};
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let g = generators::gnp(15, 0.2, &mut rng);
            match girth(&g) {
                Some(3) => assert!(has_triangle(&g)),
                Some(4) => {
                    assert!(!has_triangle(&g));
                    assert!(has_square(&g));
                }
                Some(_) => {
                    assert!(!has_triangle(&g));
                    assert!(!has_square(&g));
                }
                None => assert!(is_forest(&g)),
            }
        }
    }

    #[test]
    fn empty_and_trivial() {
        assert!(is_forest(&LabelledGraph::new(0)));
        assert!(is_forest(&LabelledGraph::new(3)));
        assert_eq!(girth(&LabelledGraph::new(3)), None);
    }
}
