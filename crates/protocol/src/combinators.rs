//! Protocol **combinators**: build new [`MultiRoundProtocol`]s out of
//! existing ones without touching the referee runner.
//!
//! Three shapes cover the compositions the workspace needs:
//!
//! * [`Chain<P, Q>`] — run `P` to completion, then `Q`, in one session:
//!   round counters concatenate (`rounds = rounds(P) + rounds(Q)`), the
//!   output is the pair of both outputs, and `P`'s output can seed `Q`'s
//!   referee state ([`Chain::with_bridge`] — "output of `P` becomes
//!   setup input of `Q`").
//! * [`Extend<P, X>`] — piggyback an extra per-round uplink payload (an
//!   [`UplinkExtension`]) onto `P`'s messages. The base protocol's
//!   verdict is untouched: honest runs produce a `.0` bit-for-bit equal
//!   to running `P` alone (pinned by property tests).
//! * [`OneRoundAsMultiRound<P>`] — any [`OneRoundProtocol`] as a
//!   1-round [`MultiRoundProtocol`]: `local` becomes the round-1 uplink
//!   and `global` the round-1 referee step, so every one-round protocol
//!   in the workspace can ride the multi-round wire service unchanged.
//!
//! # Wire discipline
//!
//! `Chain` adds **one bit** to every phase-1 downlink (the phase tag:
//! `0` = `P`'s downlink follows, `1` = switch to `Q`), so both sides
//! change phase in lockstep without any out-of-band signal; phase-2
//! downlinks are raw `Q` downlinks. Uplinks and node→node links are
//! never modified, and `P`'s final-round link messages are discarded
//! exactly as a sequential run discards them (the runner never calls
//! `node_receive` for the round the referee finished on).
//!
//! `Extend` frames every uplink as `[extra_len:16][extra][base]`, so
//! the referee can split without knowing the base protocol's message
//! layout. Extras are capped at [`MAX_EXTENSION_BITS`]; a malformed
//! split records the failure in the extension slot of the output and
//! feeds the *raw* uplink to the base protocol, whose own validation
//! fails closed — corruption can suppress the census, never forge a
//! base verdict.

use crate::model::{NodeView, OneRoundProtocol};
use crate::multiround::{MultiRoundProtocol, RefereeStep};
use crate::{BitWriter, DecodeError, Message};
use referee_graph::VertexId;

// ---------------------------------------------------------------------------
// Chain
// ---------------------------------------------------------------------------

/// Referee-side bridge for [`Chain::with_bridge`]: called at the switch
/// with `P`'s output, the session size `n`, and `Q`'s freshly
/// initialized referee state.
pub type ChainBridge<P, Q> =
    fn(&<P as MultiRoundProtocol>::Output, usize, &mut <Q as MultiRoundProtocol>::RefereeState);

/// Sequential composition: run `P` to its verdict, then `Q`, inside one
/// multi-round session. See the module docs for the wire discipline.
pub struct Chain<P: MultiRoundProtocol, Q: MultiRoundProtocol> {
    first: P,
    second: Q,
    /// Seeds `Q`'s referee state from `P`'s output at the switch.
    bridge: Option<ChainBridge<P, Q>>,
}

impl<P: MultiRoundProtocol + Clone, Q: MultiRoundProtocol + Clone> Clone for Chain<P, Q> {
    fn clone(&self) -> Self {
        Chain { first: self.first.clone(), second: self.second.clone(), bridge: self.bridge }
    }
}

impl<P: MultiRoundProtocol, Q: MultiRoundProtocol> Chain<P, Q> {
    /// Chain `first` then `second`; `second` starts from its own
    /// `referee_init`, independent of `first`'s output.
    pub fn new(first: P, second: Q) -> Chain<P, Q> {
        Chain { first, second, bridge: None }
    }

    /// Chain with a referee-side **bridge**: at the switch, `bridge` is
    /// called on `P`'s output and `Q`'s freshly initialized referee
    /// state, letting the first phase's result parameterize the second
    /// (the "output of `P` becomes setup input of `Q`" contract).
    pub fn with_bridge(first: P, second: Q, bridge: ChainBridge<P, Q>) -> Chain<P, Q> {
        Chain { first, second, bridge: Some(bridge) }
    }
}

/// Node state for [`Chain`]: which phase this node is in.
pub enum ChainNodeState<A, B> {
    /// Still running `P`.
    First(A),
    /// Running `Q`; `base` is the global round `Q`'s round 1 is offset
    /// from (the switch round).
    Second {
        /// `Q`'s node state.
        inner: B,
        /// The global round at which the switch downlink arrived.
        base: usize,
    },
}

/// Referee state for [`Chain`].
pub struct ChainRefereeState<P: MultiRoundProtocol, Q: MultiRoundProtocol> {
    first: P::RefereeState,
    second: Option<Q::RefereeState>,
    first_out: Option<P::Output>,
    /// 0 while `P` runs; the global round of `P`'s verdict afterwards.
    switch_round: usize,
}

/// Prepend the 1-bit phase tag to a phase-1 downlink.
fn tag_downlink(tag: bool, inner: &Message) -> Message {
    let mut w = BitWriter::new();
    w.push_bit(tag);
    inner.append_to(&mut w);
    Message::from_writer(w)
}

impl<P, Q> MultiRoundProtocol for Chain<P, Q>
where
    P: MultiRoundProtocol,
    Q: MultiRoundProtocol,
{
    type Output = (P::Output, Q::Output);
    type NodeState = ChainNodeState<P::NodeState, Q::NodeState>;
    type RefereeState = ChainRefereeState<P, Q>;

    fn name(&self) -> String {
        format!("chain({} → {})", self.first.name(), self.second.name())
    }

    fn node_init(&self, view: NodeView<'_>) -> Self::NodeState {
        ChainNodeState::First(self.first.node_init(view))
    }

    fn referee_init(&self, n: usize) -> Self::RefereeState {
        ChainRefereeState {
            first: self.first.referee_init(n),
            second: None,
            first_out: None,
            switch_round: 0,
        }
    }

    fn node_send(
        &self,
        state: &Self::NodeState,
        view: NodeView<'_>,
        round: usize,
    ) -> (Vec<(VertexId, Message)>, Message) {
        match state {
            ChainNodeState::First(s) => self.first.node_send(s, view, round),
            ChainNodeState::Second { inner, base } => {
                self.second.node_send(inner, view, round - base)
            }
        }
    }

    fn referee_step(
        &self,
        state: &mut Self::RefereeState,
        n: usize,
        round: usize,
        uplinks: &[Message],
    ) -> RefereeStep<Self::Output> {
        if state.switch_round == 0 {
            match self.first.referee_step(&mut state.first, n, round, uplinks) {
                RefereeStep::Continue(downs) => RefereeStep::Continue(
                    downs.iter().map(|d| tag_downlink(false, d)).collect(),
                ),
                RefereeStep::Done(out) => {
                    // Switch: init Q's referee (optionally seeded from
                    // P's output) and tell every node via the 1-bit
                    // switch downlink. P's final-round neighbour
                    // messages die here, matching a sequential run.
                    let mut q_state = self.second.referee_init(n);
                    if let Some(bridge) = self.bridge {
                        bridge(&out, n, &mut q_state);
                    }
                    state.second = Some(q_state);
                    state.first_out = Some(out);
                    state.switch_round = round;
                    RefereeStep::Continue(vec![tag_downlink(true, &Message::empty()); n])
                }
            }
        } else {
            let q_round = round - state.switch_round;
            let q_state = state.second.as_mut().expect("phase 2 has a Q referee state");
            match self.second.referee_step(q_state, n, q_round, uplinks) {
                RefereeStep::Continue(downs) => RefereeStep::Continue(downs),
                RefereeStep::Done(q_out) => {
                    let p_out =
                        state.first_out.take().expect("phase 2 holds P's output exactly once");
                    RefereeStep::Done((p_out, q_out))
                }
            }
        }
    }

    fn node_receive(
        &self,
        state: &mut Self::NodeState,
        view: NodeView<'_>,
        round: usize,
        from_neighbours: &[(VertexId, Message)],
        from_referee: &Message,
    ) {
        let next = match state {
            ChainNodeState::First(s) => {
                let mut r = from_referee.reader();
                let switch = r.read_bit().expect("chain downlink carries its phase tag");
                if switch {
                    Some(ChainNodeState::Second {
                        inner: self.second.node_init(view),
                        base: round,
                    })
                } else {
                    let mut w = BitWriter::new();
                    r.copy_bits_into(&mut w, r.remaining())
                        .expect("remaining bits always copy");
                    let inner_down = Message::from_writer(w);
                    self.first.node_receive(s, view, round, from_neighbours, &inner_down);
                    None
                }
            }
            ChainNodeState::Second { inner, base } => {
                self.second.node_receive(
                    inner,
                    view,
                    round - *base,
                    from_neighbours,
                    from_referee,
                );
                None
            }
        };
        if let Some(next) = next {
            *state = next;
        }
    }
}

// ---------------------------------------------------------------------------
// Extend
// ---------------------------------------------------------------------------

/// Bit width of the extra-payload length prefix every [`Extend`] uplink
/// carries.
pub const EXTENSION_LEN_BITS: u32 = 16;

/// The largest extra payload an [`Extend`] uplink can carry, in bits
/// (everything the [`EXTENSION_LEN_BITS`]-bit prefix can count).
pub const MAX_EXTENSION_BITS: usize = (1 << EXTENSION_LEN_BITS) - 1;

/// An extra per-round uplink payload piggybacked by [`Extend`]: each
/// node contributes [`extra`](UplinkExtension::extra) bits per round
/// and the referee folds them into a running
/// [`Summary`](UplinkExtension::Summary), entirely outside the base
/// protocol's view.
pub trait UplinkExtension {
    /// What the referee accumulates across rounds and senders.
    type Summary;

    /// Extension name for reports.
    fn name(&self) -> String;

    /// Fresh summary for a size-`n` session.
    fn init(&self, n: usize) -> Self::Summary;

    /// The extra bits node `view.id` contributes in `round`. Must stay
    /// within [`MAX_EXTENSION_BITS`].
    fn extra(&self, view: NodeView<'_>, round: usize) -> Message;

    /// Fold one node's round-`round` extra into the summary. Reject
    /// malformed extras — the error is reported in the extension slot
    /// of the session output (the base verdict is unaffected).
    fn absorb(
        &self,
        summary: &mut Self::Summary,
        n: usize,
        round: usize,
        sender: VertexId,
        extra: &Message,
    ) -> Result<(), DecodeError>;
}

/// Piggyback extension `X` onto base protocol `P`. The output pairs
/// `P`'s untouched verdict with the extension summary (or the first
/// decode failure the extension hit).
#[derive(Debug, Clone)]
pub struct Extend<P, X> {
    base: P,
    extension: X,
}

impl<P: MultiRoundProtocol, X: UplinkExtension> Extend<P, X> {
    /// Extend `base`'s uplinks with `extension`'s per-round payloads.
    pub fn new(base: P, extension: X) -> Extend<P, X> {
        Extend { base, extension }
    }
}

/// Referee state for [`Extend`].
pub struct ExtendRefereeState<R, S> {
    base: R,
    summary: Option<Result<S, DecodeError>>,
}

/// Split one extended uplink into `(extra, base)` parts.
fn split_extended(up: &Message) -> Result<(Message, Message), DecodeError> {
    let mut r = up.reader();
    let extra_len = r.read_bits(EXTENSION_LEN_BITS)? as usize;
    if r.remaining() < extra_len {
        return Err(DecodeError::Truncated);
    }
    let mut we = BitWriter::new();
    r.copy_bits_into(&mut we, extra_len)?;
    let mut wb = BitWriter::new();
    r.copy_bits_into(&mut wb, r.remaining())?;
    Ok((Message::from_writer(we), Message::from_writer(wb)))
}

impl<P, X> MultiRoundProtocol for Extend<P, X>
where
    P: MultiRoundProtocol,
    X: UplinkExtension,
{
    type Output = (P::Output, Result<X::Summary, DecodeError>);
    type NodeState = P::NodeState;
    type RefereeState = ExtendRefereeState<P::RefereeState, X::Summary>;

    fn name(&self) -> String {
        format!("{} + {}", self.base.name(), self.extension.name())
    }

    fn node_init(&self, view: NodeView<'_>) -> Self::NodeState {
        self.base.node_init(view)
    }

    fn referee_init(&self, n: usize) -> Self::RefereeState {
        ExtendRefereeState {
            base: self.base.referee_init(n),
            summary: Some(Ok(self.extension.init(n))),
        }
    }

    fn node_send(
        &self,
        state: &Self::NodeState,
        view: NodeView<'_>,
        round: usize,
    ) -> (Vec<(VertexId, Message)>, Message) {
        let (links, base_up) = self.base.node_send(state, view, round);
        let extra = self.extension.extra(view, round);
        assert!(
            extra.len_bits() <= MAX_EXTENSION_BITS,
            "extension payload of {} bits exceeds the {MAX_EXTENSION_BITS}-bit cap",
            extra.len_bits()
        );
        let mut w = BitWriter::new();
        w.write_bits(extra.len_bits() as u64, EXTENSION_LEN_BITS);
        extra.append_to(&mut w);
        base_up.append_to(&mut w);
        (links, Message::from_writer(w))
    }

    fn referee_step(
        &self,
        state: &mut Self::RefereeState,
        n: usize,
        round: usize,
        uplinks: &[Message],
    ) -> RefereeStep<Self::Output> {
        let mut base_uplinks = Vec::with_capacity(uplinks.len());
        for (i, up) in uplinks.iter().enumerate() {
            match split_extended(up) {
                Ok((extra, base_up)) => {
                    if let Some(Ok(summary)) = state.summary.as_mut() {
                        if let Err(e) = self.extension.absorb(
                            summary,
                            n,
                            round,
                            (i + 1) as VertexId,
                            &extra,
                        ) {
                            state.summary = Some(Err(e));
                        }
                    }
                    base_uplinks.push(base_up);
                }
                Err(e) => {
                    // Unsplittable uplink: record the failure in the
                    // extension slot and hand the raw bits to the base
                    // protocol, whose own validation fails closed.
                    if matches!(state.summary, Some(Ok(_))) {
                        state.summary = Some(Err(e));
                    }
                    base_uplinks.push(up.clone());
                }
            }
        }
        match self.base.referee_step(&mut state.base, n, round, &base_uplinks) {
            RefereeStep::Continue(downs) => RefereeStep::Continue(downs),
            RefereeStep::Done(out) => {
                let summary = state.summary.take().expect("summary delivered exactly once");
                RefereeStep::Done((out, summary))
            }
        }
    }

    fn node_receive(
        &self,
        state: &mut Self::NodeState,
        view: NodeView<'_>,
        round: usize,
        from_neighbours: &[(VertexId, Message)],
        from_referee: &Message,
    ) {
        self.base.node_receive(state, view, round, from_neighbours, from_referee);
    }
}

/// The canonical example extension: every node reports its degree in
/// round 1 (width `bits_for(n)`); the summary is the degree total,
/// which the handshake lemma makes `2·|E|` — a free edge census on any
/// base protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct DegreeCensus;

impl UplinkExtension for DegreeCensus {
    type Summary = u64;

    fn name(&self) -> String {
        "degree census".into()
    }

    fn init(&self, _n: usize) -> u64 {
        0
    }

    fn extra(&self, view: NodeView<'_>, round: usize) -> Message {
        if round != 1 {
            return Message::empty();
        }
        let mut w = BitWriter::new();
        w.write_bits(view.degree() as u64, crate::bits_for(view.n));
        Message::from_writer(w)
    }

    fn absorb(
        &self,
        summary: &mut u64,
        n: usize,
        round: usize,
        sender: VertexId,
        extra: &Message,
    ) -> Result<(), DecodeError> {
        if round != 1 {
            if extra.len_bits() != 0 {
                return Err(DecodeError::Invalid(format!(
                    "node {sender} sent census bits after round 1"
                )));
            }
            return Ok(());
        }
        let mut r = extra.reader();
        let degree = r.read_bits(crate::bits_for(n))?;
        if !r.is_exhausted() {
            return Err(DecodeError::Invalid(format!(
                "node {sender} sent trailing census bits"
            )));
        }
        if degree as usize >= n.max(1) {
            return Err(DecodeError::OutOfRange(format!(
                "node {sender} reported degree {degree} on {n} nodes"
            )));
        }
        *summary += degree;
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// OneRoundAsMultiRound
// ---------------------------------------------------------------------------

/// Any [`OneRoundProtocol`] as a 1-round [`MultiRoundProtocol`]: the
/// round-1 uplink is `Γ^l(view)` and the round-1 referee step is
/// `Γ^g(n, uplinks)` — always `Done` after one step, so the adapter's
/// output equals the native one-round path bit for bit (pinned by
/// equivalence tests in every protocol crate).
#[derive(Debug, Clone, Copy, Default)]
pub struct OneRoundAsMultiRound<P>(pub P);

impl<P: OneRoundProtocol> MultiRoundProtocol for OneRoundAsMultiRound<P> {
    type Output = P::Output;
    type NodeState = ();
    type RefereeState = ();

    fn name(&self) -> String {
        format!("{} (as multi-round)", self.0.name())
    }

    fn node_init(&self, _view: NodeView<'_>) {}

    fn referee_init(&self, _n: usize) {}

    fn node_send(
        &self,
        _state: &(),
        view: NodeView<'_>,
        round: usize,
    ) -> (Vec<(VertexId, Message)>, Message) {
        // The referee finishes at round 1; later sends are unreachable
        // in a conforming runner but defensively harmless.
        let uplink = if round == 1 { self.0.local(view) } else { Message::empty() };
        (Vec::new(), uplink)
    }

    fn referee_step(
        &self,
        _state: &mut (),
        n: usize,
        _round: usize,
        uplinks: &[Message],
    ) -> RefereeStep<P::Output> {
        RefereeStep::Done(self.0.global(n, uplinks))
    }

    fn node_receive(
        &self,
        _state: &mut (),
        _view: NodeView<'_>,
        _round: usize,
        _from_neighbours: &[(VertexId, Message)],
        _from_referee: &Message,
    ) {
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::easy::EdgeCountProtocol;
    use crate::multiround::{run_multiround, BoruvkaConnectivity, MultiRoundStats};
    use referee_graph::{generators, LabelledGraph};

    /// A protocol whose referee finishes on its **first** step (the
    /// "P finishes in round 0" edge case): output is the number of
    /// non-empty round-1 uplinks.
    #[derive(Debug, Clone, Copy, Default)]
    struct Immediate;

    impl MultiRoundProtocol for Immediate {
        type Output = usize;
        type NodeState = ();
        type RefereeState = ();

        fn name(&self) -> String {
            "immediate".into()
        }

        fn node_init(&self, _view: NodeView<'_>) {}

        fn referee_init(&self, _n: usize) {}

        fn node_send(
            &self,
            _state: &(),
            _view: NodeView<'_>,
            _round: usize,
        ) -> (Vec<(VertexId, Message)>, Message) {
            let mut w = BitWriter::new();
            w.push_bit(true);
            (Vec::new(), Message::from_writer(w))
        }

        fn referee_step(
            &self,
            _state: &mut (),
            _n: usize,
            _round: usize,
            uplinks: &[Message],
        ) -> RefereeStep<usize> {
            RefereeStep::Done(uplinks.iter().filter(|u| u.len_bits() > 0).count())
        }

        fn node_receive(
            &self,
            _state: &mut (),
            _view: NodeView<'_>,
            _round: usize,
            _from_neighbours: &[(VertexId, Message)],
            _from_referee: &Message,
        ) {
        }
    }

    fn cap(n: usize) -> usize {
        4 * (usize::BITS - n.leading_zeros()) as usize + 16
    }

    fn run_chain_vs_sequential(g: &LabelledGraph) {
        let chain = Chain::new(BoruvkaConnectivity, BoruvkaConnectivity);
        let (out, stats) = run_multiround(&chain, g, 2 * cap(g.n()));
        let (p_out, p_stats) = run_multiround(&BoruvkaConnectivity, g, cap(g.n()));
        let (q_out, q_stats) = run_multiround(&BoruvkaConnectivity, g, cap(g.n()));
        let (a, b) = out.expect("chain terminates");
        assert_eq!(a, p_out.expect("P terminates"));
        assert_eq!(b, q_out.expect("Q terminates"));
        assert_eq!(stats.rounds, p_stats.rounds + q_stats.rounds, "rounds concatenate");
    }

    #[test]
    fn chain_equals_sequential_on_families() {
        for g in [
            generators::path(17),
            generators::petersen(),
            generators::path(5).disjoint_union(&generators::cycle(4).unwrap()),
            LabelledGraph::new(1),
        ] {
            run_chain_vs_sequential(&g);
        }
    }

    #[test]
    fn chain_on_empty_graph() {
        run_chain_vs_sequential(&LabelledGraph::new(0));
    }

    #[test]
    fn chain_where_first_finishes_immediately() {
        // P done at its very first referee step: the switch downlink is
        // the round-1 downlink, Q starts at global round 2.
        let g = generators::path(9);
        let chain = Chain::new(Immediate, BoruvkaConnectivity);
        let (out, stats) = run_multiround(&chain, &g, cap(g.n()) + 1);
        let (count, conn) = out.expect("chain terminates");
        assert_eq!(count, 9);
        assert_eq!(conn, Ok(true));
        let (_, p_stats) = run_multiround(&Immediate, &g, 4);
        let (_, q_stats) = run_multiround(&BoruvkaConnectivity, &g, cap(g.n()));
        assert_eq!(p_stats.rounds, 1);
        assert_eq!(stats.rounds, p_stats.rounds + q_stats.rounds);
    }

    #[test]
    fn chain_where_second_finishes_immediately() {
        let g = generators::petersen();
        let chain = Chain::new(BoruvkaConnectivity, Immediate);
        let (out, stats) = run_multiround(&chain, &g, cap(g.n()) + 1);
        let (conn, count) = out.expect("chain terminates");
        assert_eq!(conn, Ok(true));
        assert_eq!(count, g.n());
        let (_, p_stats) = run_multiround(&BoruvkaConnectivity, &g, cap(g.n()));
        assert_eq!(stats.rounds, p_stats.rounds + 1);
    }

    #[test]
    fn chain_bridge_sees_first_output() {
        // The bridge seeds Q's referee state from P's output: Q here
        // reports its seeded state back, proving the plumbing.
        #[derive(Debug, Clone, Copy, Default)]
        struct EchoSeed;

        impl MultiRoundProtocol for EchoSeed {
            type Output = usize;
            type NodeState = ();
            type RefereeState = usize;

            fn name(&self) -> String {
                "echo-seed".into()
            }

            fn node_init(&self, _view: NodeView<'_>) {}

            fn referee_init(&self, _n: usize) -> usize {
                0
            }

            fn node_send(
                &self,
                _state: &(),
                _view: NodeView<'_>,
                _round: usize,
            ) -> (Vec<(VertexId, Message)>, Message) {
                (Vec::new(), Message::empty())
            }

            fn referee_step(
                &self,
                state: &mut usize,
                _n: usize,
                _round: usize,
                _uplinks: &[Message],
            ) -> RefereeStep<usize> {
                RefereeStep::Done(*state)
            }

            fn node_receive(
                &self,
                _state: &mut (),
                _view: NodeView<'_>,
                _round: usize,
                _from_neighbours: &[(VertexId, Message)],
                _from_referee: &Message,
            ) {
            }
        }

        let g = generators::path(6);
        let chain = Chain::with_bridge(Immediate, EchoSeed, |p_out, n, q_state| {
            *q_state = p_out * 100 + n;
        });
        let (out, _) = run_multiround(&chain, &g, 8);
        let (count, echoed) = out.expect("terminates");
        assert_eq!(count, 6);
        assert_eq!(echoed, 606);
    }

    #[test]
    fn extend_leaves_base_output_untouched() {
        for g in [
            generators::path(12),
            generators::petersen(),
            generators::path(4).disjoint_union(&generators::path(3)),
            LabelledGraph::new(0),
            LabelledGraph::new(1),
        ] {
            let ext = Extend::new(BoruvkaConnectivity, DegreeCensus);
            let (out, _) = run_multiround(&ext, &g, cap(g.n()));
            let (base_out, base_stats) = run_multiround(&BoruvkaConnectivity, &g, cap(g.n()));
            let (verdict, census) = out.expect("extended run terminates");
            assert_eq!(verdict, base_out.expect("base run terminates"));
            assert_eq!(census.expect("honest census decodes"), 2 * g.m() as u64);
            let _ = base_stats;
        }
    }

    #[test]
    fn extend_rounds_match_base() {
        let g = generators::path(20);
        let ext = Extend::new(BoruvkaConnectivity, DegreeCensus);
        let (_, stats) = run_multiround(&ext, &g, cap(g.n()));
        let (_, base_stats) = run_multiround(&BoruvkaConnectivity, &g, cap(g.n()));
        assert_eq!(stats.rounds, base_stats.rounds);
    }

    /// An extension shipping exactly `bits` extra bits in round 1.
    #[derive(Debug, Clone, Copy)]
    struct Padding {
        bits: usize,
    }

    impl UplinkExtension for Padding {
        type Summary = usize;

        fn name(&self) -> String {
            format!("padding({})", self.bits)
        }

        fn init(&self, _n: usize) -> usize {
            0
        }

        fn extra(&self, _view: NodeView<'_>, round: usize) -> Message {
            if round != 1 {
                return Message::empty();
            }
            let mut w = BitWriter::new();
            for i in 0..self.bits {
                w.push_bit(i % 2 == 0);
            }
            Message::from_writer(w)
        }

        fn absorb(
            &self,
            summary: &mut usize,
            _n: usize,
            round: usize,
            _sender: VertexId,
            extra: &Message,
        ) -> Result<(), DecodeError> {
            if round == 1 && extra.len_bits() != self.bits {
                return Err(DecodeError::Truncated);
            }
            *summary += extra.len_bits();
            Ok(())
        }
    }

    #[test]
    fn extension_payload_at_the_bit_cap() {
        // Exactly MAX_EXTENSION_BITS round-trips through the 16-bit
        // length prefix.
        let g = generators::path(3);
        let ext = Extend::new(BoruvkaConnectivity, Padding { bits: MAX_EXTENSION_BITS });
        let (out, stats) = run_multiround(&ext, &g, cap(g.n()));
        let (verdict, padding) = out.expect("terminates");
        assert_eq!(verdict, Ok(true));
        assert_eq!(padding.expect("padding absorbs"), 3 * MAX_EXTENSION_BITS);
        assert!(stats.max_uplink_bits >= MAX_EXTENSION_BITS + EXTENSION_LEN_BITS as usize);
    }

    #[test]
    #[should_panic(expected = "exceeds the")]
    fn extension_payload_over_the_cap_panics() {
        let g = generators::path(2);
        let ext = Extend::new(BoruvkaConnectivity, Padding { bits: MAX_EXTENSION_BITS + 1 });
        let _ = run_multiround(&ext, &g, 8);
    }

    #[test]
    fn extend_survives_unsplittable_uplink() {
        // Feed the referee a raw (unframed) uplink directly: the split
        // fails, the census slot records the error, and the base
        // protocol sees the raw bits (failing closed by its own rules).
        let ext = Extend::new(BoruvkaConnectivity, DegreeCensus);
        let mut state = ext.referee_init(2);
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3); // too short for even the length prefix
        let bad = Message::from_writer(w);
        let step = ext.referee_step(&mut state, 2, 1, &[bad.clone(), bad]);
        match step {
            RefereeStep::Done((base, summary)) => {
                assert!(base.is_err(), "base must fail closed on raw bits");
                assert!(summary.is_err(), "census must record the split failure");
            }
            RefereeStep::Continue(_) => panic!("malformed uplinks must not continue"),
        }
    }

    #[test]
    fn one_round_adapter_equals_native_path() {
        let g = generators::petersen();
        let n = g.n();
        let p = EdgeCountProtocol;
        let msgs: Vec<Message> =
            g.vertices().map(|v| p.local(NodeView::new(n, v, g.neighbourhood(v)))).collect();
        let native = p.global(n, &msgs);
        let (adapted, stats) = run_multiround(&OneRoundAsMultiRound(p), &g, 4);
        assert_eq!(adapted.expect("one step"), native);
        assert_eq!(stats.rounds, 1);
        assert_eq!(stats.max_link_bits, 0);
    }

    #[test]
    fn one_round_adapter_on_empty_graph() {
        let g = LabelledGraph::new(0);
        let (out, stats) = run_multiround(&OneRoundAsMultiRound(EdgeCountProtocol), &g, 4);
        assert_eq!(out.expect("one step"), EdgeCountProtocol.global(0, &[]));
        assert_eq!(stats.rounds, 1);
    }

    #[test]
    fn chain_stats_are_the_max_over_phases() {
        let g = generators::path(10);
        let chain = Chain::new(BoruvkaConnectivity, Immediate);
        let (_, stats) = run_multiround(&chain, &g, cap(g.n()) + 1);
        let (_, base) = run_multiround(&BoruvkaConnectivity, &g, cap(g.n()));
        // Phase-1 downlinks carry the 1-bit phase tag.
        assert_eq!(stats.max_downlink_bits, base.max_downlink_bits + 1);
        assert_eq!(stats.max_uplink_bits, base.max_uplink_bits);
        assert_eq!(stats.max_link_bits, base.max_link_bits);
        let _: MultiRoundStats = stats;
    }
}
