//! Exponentiation for [`UBig`].

use crate::UBig;

impl UBig {
    /// `self^exp` by binary exponentiation. `0^0 == 1` by convention.
    pub fn pow(&self, mut exp: u32) -> UBig {
        let mut base = self.clone();
        let mut acc = UBig::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul_ref(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul_ref(&base);
            }
        }
        acc
    }

    /// `b^p` for limb-sized base: the encoder's `ID(w)^p` (Algorithm 3).
    ///
    /// Stays in `u128` while it fits and only spills into multi-limb
    /// arithmetic beyond that, which keeps the common parameter ranges of
    /// the paper (`k ≤ 5`, `n ≤ 10^5`) allocation-free per step.
    pub fn pow_of(base: u64, p: u32) -> UBig {
        // Fits in u128 iff p * bit_len(base) <= 127.
        let bits = 64 - base.leading_zeros();
        if bits == 0 {
            return if p == 0 { UBig::one() } else { UBig::zero() };
        }
        if (bits as u64) * (p as u64) <= 127 {
            let mut acc: u128 = 1;
            for _ in 0..p {
                acc *= base as u128;
            }
            UBig::from(acc)
        } else {
            UBig::from(base).pow(p)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow_small() {
        assert_eq!(UBig::from(2u64).pow(10), UBig::from(1024u64));
        assert_eq!(UBig::from(3u64).pow(0), UBig::one());
        assert_eq!(UBig::zero().pow(0), UBig::one());
        assert_eq!(UBig::zero().pow(5), UBig::zero());
        assert_eq!(UBig::one().pow(1_000_000), UBig::one());
    }

    #[test]
    fn pow_large_bitlen() {
        assert_eq!(UBig::from(2u64).pow(200).bit_len(), 201);
        assert_eq!(UBig::from(2u64).pow(200).shr(200), UBig::one());
    }

    #[test]
    fn pow_of_matches_pow() {
        for base in [0u64, 1, 2, 3, 10, 65535, u32::MAX as u64, u64::MAX] {
            for p in [0u32, 1, 2, 3, 7, 20] {
                assert_eq!(UBig::pow_of(base, p), UBig::from(base).pow(p), "{base}^{p}");
            }
        }
    }

    #[test]
    fn pow_of_spills_correctly() {
        // 3^100 needs ~159 bits — exercises the multi-limb branch.
        let v = UBig::pow_of(3, 100);
        assert_eq!(v, UBig::from(3u64).pow(100));
        assert!(v.bit_len() > 128);
    }
}
