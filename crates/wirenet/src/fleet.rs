//! The fleet layer: a referee-side acceptor ([`FleetServer`]) and a
//! node-side connection pool ([`FleetClient`]) whose [`SocketTransport`]
//! drives unchanged `simnet` sessions over real TCP.
//!
//! # Architecture
//!
//! A `simnet` session owns *both* sides of the referee model and treats
//! its [`Transport`] as the network between them. `wirenet` makes that
//! network real: every envelope a session sends is framed, MAC-tagged
//! and written to a TCP connection; the server authenticates, decodes,
//! re-encodes and sends it back; the client demultiplexes returning
//! frames into per-session queues where `recv` picks them up. The
//! server is therefore the *wire mailbox* of the fleet — every message
//! of every session crosses OS sockets twice — while protocol logic
//! runs unchanged on the session state machines.
//!
//! Multiplexing: each session is bound round-robin to one of a handful
//! of connections and tagged with its [`SessionId`]; a thousand sessions
//! share ≤ 8 sockets. Per-connection TCP ordering plus per-session
//! queues preserve FIFO delivery per session, which is exactly
//! [`PerfectTransport`](referee_simnet::PerfectTransport) semantics —
//! so outcomes are bit-for-bit identical to in-memory runs (pinned by
//! the loopback tests).
//!
//! Failure model: any MAC or decode failure poisons its connection on
//! the spot (a length-prefixed stream cannot resynchronize, and a
//! tampering peer must not keep talking). Sessions bound to a poisoned
//! connection starve, observe an empty transport, and reject with the
//! *existing* `DecodeError` delivery-failure paths — no new failure
//! oracle is introduced.
//!
//! Backpressure: client senders stall (and count the stall) whenever a
//! connection's write buffer exceeds the reactor's high-water mark, and
//! pump the reactor until it drains; the server stops *reading* from any
//! connection whose echo buffer is over the mark, letting TCP push back
//! on the peer — so memory stays bounded on both ends no matter how
//! bursty (or slow-reading) the fleet is.
//!
//! Lifecycle: dropping a [`SocketTransport`] retires its session's
//! demux lane; echoes still in flight are counted as `orphan_frames`
//! and discarded, and the session id becomes reusable.

use crate::auth::AuthKey;
use crate::frame::{encode_frame, WireError};
use crate::metrics::{WireMetrics, WireSnapshot};
use crate::reactor::{Conn, SCRATCH_BYTES, WRITE_BACKPRESSURE_BYTES};
use referee_simnet::{Envelope, SessionId, Transport, TransportCounters};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// Sleep between pump sweeps that made no progress.
const IDLE_SLEEP: Duration = Duration::from_micros(50);

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/// The referee-side acceptor: authenticates, validates and echoes every
/// frame back to its connection, serving as the fleet's wire mailbox.
///
/// Runs on its own thread over nonblocking accept + connection pumps;
/// [`FleetServer::stop`] (or drop) shuts it down and joins.
#[derive(Debug)]
pub struct FleetServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<WireMetrics>,
    thread: Option<JoinHandle<()>>,
}

impl FleetServer {
    /// Bind a loopback listener on an ephemeral port and start serving.
    pub fn spawn(key: AuthKey) -> io::Result<FleetServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(WireMetrics::default());
        let thread = {
            let shutdown = Arc::clone(&shutdown);
            let metrics = Arc::clone(&metrics);
            thread::Builder::new()
                .name("wirenet-server".into())
                .spawn(move || run_server(listener, key, &shutdown, &metrics))?
        };
        Ok(FleetServer { addr, shutdown, metrics, thread: Some(thread) })
    }

    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live server-side wire metrics.
    pub fn metrics(&self) -> WireSnapshot {
        self.metrics.snapshot()
    }

    /// Shut down, join the server thread, and return its final metrics.
    pub fn stop(mut self) -> WireSnapshot {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
        self.metrics.snapshot()
    }
}

impl Drop for FleetServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn run_server(
    listener: TcpListener,
    key: AuthKey,
    shutdown: &AtomicBool,
    metrics: &WireMetrics,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut scratch = vec![0u8; SCRATCH_BYTES];
    while !shutdown.load(Ordering::Relaxed) {
        let mut progress = false;
        // Accept whatever is waiting (an Err is WouldBlock or a
        // transient failure: try again next sweep).
        while let Ok((stream, _)) = listener.accept() {
            if let Ok(conn) = Conn::new(stream) {
                metrics.connections(1);
                conns.push(conn);
                progress = true;
            }
        }
        // Pump every connection: flush echoes, read frames, validate,
        // echo back.
        for conn in &mut conns {
            progress |= conn.flush() > 0;
            // Backpressure: a peer that writes but never reads would
            // otherwise grow our echo buffer without bound. Stop
            // reading until the buffer drains — TCP then pushes back on
            // the peer's sends. Counted once per episode (latched), not
            // once per 50 µs sweep.
            if conn.pending_write() > WRITE_BACKPRESSURE_BYTES {
                if !conn.stalled {
                    conn.stalled = true;
                    metrics.backpressure_stalls(1);
                }
                continue;
            }
            conn.stalled = false;
            let got = conn.fill(&mut scratch);
            metrics.bytes_received(got as u64);
            progress |= got > 0;
            loop {
                match conn.next_frame_raw(&key) {
                    Ok(None) => break,
                    Ok(Some((_env, raw))) => {
                        metrics.frames_received(1);
                        // Echo the authenticated bytes verbatim: the
                        // codec is canonical, so this is the re-encoding
                        // without paying the MAC twice.
                        metrics.frames_sent(1);
                        metrics.bytes_sent(raw.len() as u64);
                        conn.queue(&raw);
                        progress = true;
                    }
                    Err(WireError::BadMac) => {
                        // Tamper-evident fail-fast: a connection that
                        // carried one corrupted frame is dead to us.
                        metrics.mac_rejects(1);
                        conn.close();
                        break;
                    }
                    Err(_) => {
                        metrics.decode_rejects(1);
                        conn.close();
                        break;
                    }
                }
            }
        }
        conns.retain(Conn::is_open);
        if !progress {
            thread::sleep(IDLE_SLEEP);
        }
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

/// Deliberate wire-level fault injection: flip one deterministic bit in
/// the MAC-covered region of every `flip_every`-th outbound frame.
///
/// This is the adversary the acceptance criterion aims at: since the
/// flip lands *after* the MAC was computed, every tampered frame must be
/// rejected by the receiver's MAC verification — zero undetected.
#[derive(Debug, Clone, Copy)]
pub struct TamperConfig {
    /// Corrupt every n-th frame (`1` = every frame).
    pub flip_every: u64,
}

/// One session's demultiplexing lane on the client.
#[derive(Debug, Default)]
struct Lane {
    conn: usize,
    inbound: VecDeque<Envelope>,
    in_flight: u64,
}

#[derive(Debug)]
struct CoreState {
    conns: Vec<Conn>,
    lanes: HashMap<u64, Lane>,
    next_conn: usize,
    tamper: Option<TamperConfig>,
    tamper_counter: u64,
    scratch: Vec<u8>,
}

/// Shared connection-pool state behind every [`SocketTransport`].
#[derive(Debug)]
pub(crate) struct FleetCore {
    key: AuthKey,
    state: Mutex<CoreState>,
    metrics: Arc<WireMetrics>,
}

impl FleetCore {
    fn lock(&self) -> MutexGuard<'_, CoreState> {
        // A panicked holder leaves consistent state (buffers are either
        // queued or not); ride through poisoning.
        self.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// One nonblocking sweep over every connection: flush writes, read
    /// sockets, demultiplex complete frames into lanes. Returns whether
    /// anything moved.
    fn pump(&self, st: &mut CoreState) -> bool {
        let CoreState { conns, lanes, scratch, .. } = st;
        let mut progress = false;
        for conn in conns.iter_mut() {
            if !conn.is_open() {
                continue;
            }
            progress |= conn.flush() > 0;
            let got = conn.fill(scratch);
            self.metrics.bytes_received(got as u64);
            progress |= got > 0;
            loop {
                match conn.next_frame(&self.key) {
                    Ok(None) => break,
                    Ok(Some(env)) => {
                        self.metrics.frames_received(1);
                        match lanes.get_mut(&env.session.0) {
                            Some(lane) => {
                                lane.in_flight = lane.in_flight.saturating_sub(1);
                                lane.inbound.push_back(env);
                            }
                            None => {
                                // A late echo for a lane already retired
                                // (the transport was dropped with frames
                                // still in flight) — count and discard.
                                self.metrics.orphan_frames(1);
                            }
                        }
                        progress = true;
                    }
                    Err(WireError::BadMac) => {
                        self.metrics.mac_rejects(1);
                        conn.close();
                        break;
                    }
                    Err(_) => {
                        self.metrics.decode_rejects(1);
                        conn.close();
                        break;
                    }
                }
            }
        }
        progress
    }

    /// Frame and queue one envelope. `false` means the session's
    /// connection is dead and the envelope was destroyed.
    fn send(&self, env: &Envelope) -> bool {
        let mut st = self.lock();
        let ci = st.lanes.get(&env.session.0).expect("session registered").conn;
        // Backpressure: never let a write buffer grow unboundedly.
        if st.conns[ci].pending_write() > WRITE_BACKPRESSURE_BYTES {
            self.metrics.backpressure_stalls(1);
            loop {
                self.pump(&mut st);
                if st.conns[ci].pending_write() <= WRITE_BACKPRESSURE_BYTES
                    || !st.conns[ci].is_open()
                {
                    break;
                }
                drop(st);
                thread::sleep(IDLE_SLEEP);
                st = self.lock();
            }
        }
        if !st.conns[ci].is_open() {
            return false;
        }
        let mut bytes = encode_frame(&self.key, env);
        if let Some(tamper) = st.tamper {
            st.tamper_counter += 1;
            if st.tamper_counter.is_multiple_of(tamper.flip_every.max(1)) {
                // Deterministic bit position inside the MAC-covered
                // body — never the length prefix, so the stream stays
                // framed and the corruption reaches MAC verification.
                let body_bits = (bytes.len() - 4) * 8;
                let bit = (st.tamper_counter.wrapping_mul(0x9e3779b97f4a7c15)
                    % body_bits as u64) as usize;
                bytes[4 + bit / 8] ^= 1 << (7 - bit % 8);
                self.metrics.tampered(1);
            }
        }
        self.metrics.frames_sent(1);
        self.metrics.bytes_sent(bytes.len() as u64);
        st.lanes.get_mut(&env.session.0).expect("session registered").in_flight += 1;
        let conn = &mut st.conns[ci];
        conn.queue(&bytes);
        conn.flush();
        true
    }

    /// Deliver the next envelope for `session`, pumping the reactor
    /// while frames are still in flight. `None` means the lane is truly
    /// drained: nothing queued, nothing in flight (or the connection
    /// died, destroying whatever was in flight).
    fn recv(&self, session: SessionId) -> Option<Envelope> {
        loop {
            let mut st = self.lock();
            // Fast path: deliver already-demultiplexed traffic without
            // touching any socket (send() flushes eagerly, so skipping
            // the pump here delays nothing).
            let lane = st.lanes.get_mut(&session.0).expect("session registered");
            if let Some(env) = lane.inbound.pop_front() {
                return Some(env);
            }
            self.pump(&mut st);
            let lane = st.lanes.get_mut(&session.0).expect("session registered");
            if let Some(env) = lane.inbound.pop_front() {
                return Some(env);
            }
            if lane.in_flight == 0 {
                return None;
            }
            let ci = lane.conn;
            if !st.conns[ci].is_open() {
                return None; // in-flight frames died with the connection
            }
            drop(st);
            thread::sleep(IDLE_SLEEP);
        }
    }

    /// Retire a session's lane (called when its transport is dropped).
    /// Echoes still in flight surface later as `orphan_frames`.
    fn release(&self, session: SessionId) {
        self.lock().lanes.remove(&session.0);
    }
}

/// A node-side pool of ≤ a-handful of TCP connections multiplexing a
/// whole fleet of sessions.
#[derive(Debug)]
pub struct FleetClient {
    core: Arc<FleetCore>,
}

impl FleetClient {
    /// Open `conns` connections to a [`FleetServer`] at `addr`. Both
    /// ends must hold the same `key`.
    pub fn connect(addr: SocketAddr, conns: usize, key: AuthKey) -> io::Result<FleetClient> {
        assert!(conns >= 1, "a fleet needs at least one connection");
        let metrics = Arc::new(WireMetrics::default());
        let mut pool = Vec::with_capacity(conns);
        for _ in 0..conns {
            pool.push(Conn::new(TcpStream::connect(addr)?)?);
            metrics.connections(1);
        }
        Ok(FleetClient {
            core: Arc::new(FleetCore {
                key,
                state: Mutex::new(CoreState {
                    conns: pool,
                    lanes: HashMap::new(),
                    next_conn: 0,
                    tamper: None,
                    tamper_counter: 0,
                    scratch: vec![0u8; SCRATCH_BYTES],
                }),
                metrics,
            }),
        })
    }

    /// Enable wire-level fault injection on every outbound frame.
    pub fn with_tamper(self, tamper: TamperConfig) -> FleetClient {
        self.core.lock().tamper = Some(tamper);
        self
    }

    /// Register `session` (round-robin across the pool) and return the
    /// transport that carries it. Drive it with a session built with
    /// [`with_session`](referee_simnet::OneRoundSession::with_session)
    /// on the same id — inbound envelopes are demultiplexed by that tag.
    ///
    /// Panics if the session id is already held by a *live* transport
    /// (ids must be unique among concurrent sessions). Dropping the
    /// transport retires the id; late echoes of a retired session are
    /// counted as `orphan_frames` and discarded, so reuse an id only
    /// once its traffic has drained.
    pub fn transport(&self, session: SessionId) -> SocketTransport {
        let mut st = self.core.lock();
        let conn = st.next_conn % st.conns.len();
        st.next_conn += 1;
        let prev = st.lanes.insert(session.0, Lane { conn, ..Lane::default() });
        assert!(prev.is_none(), "session {session} registered twice");
        SocketTransport {
            core: Arc::clone(&self.core),
            session,
            counters: TransportCounters::default(),
        }
    }

    /// Live client-side wire metrics.
    pub fn metrics(&self) -> WireSnapshot {
        self.core.metrics.snapshot()
    }
}

/// A [`Transport`] handle binding one session to the shared pool: sends
/// stamp the session id and frame the envelope onto the session's
/// connection; receives pump the reactor and deliver only this
/// session's traffic.
///
/// `recv` honours the `Transport` contract exactly: it returns `None`
/// only when every envelope ever sent has been delivered or destroyed —
/// while frames are in flight it pumps the reactor until they return,
/// so sessions never mistake wire latency for loss.
#[derive(Debug)]
pub struct SocketTransport {
    core: Arc<FleetCore>,
    session: SessionId,
    counters: TransportCounters,
}

impl SocketTransport {
    /// The session this transport is bound to.
    pub fn session(&self) -> SessionId {
        self.session
    }
}

impl Drop for SocketTransport {
    fn drop(&mut self) {
        // Retire the lane so long-lived clients neither leak one lane
        // per finished session nor forbid id reuse.
        self.core.release(self.session);
    }
}

impl Transport for SocketTransport {
    fn send(&mut self, mut env: Envelope) {
        env.session = self.session;
        self.counters.sent += 1;
        if !self.core.send(&env) {
            // Connection dead: the envelope was destroyed in transit.
            self.counters.dropped += 1;
        }
    }

    fn recv(&mut self) -> Option<Envelope> {
        let env = self.core.recv(self.session)?;
        self.counters.delivered += 1;
        Some(env)
    }

    fn counters(&self) -> TransportCounters {
        self.counters
    }
}
