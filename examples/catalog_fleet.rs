//! One `FleetServer`, **five concurrent catalog services** — the
//! protocol-agnostic referee stack end to end.
//!
//! Phase 1: a catalog-mode server (2 shard workers) serves the whole
//! [`standard_catalog`] — Borůvka connectivity, adaptive degeneracy
//! reconstruction, sketch connectivity, the chained
//! sketch-then-reconstruct composite and degree-census-extended Borůvka
//! — while 500 sessions, interleaved across services and 6 multiplexed
//! TCP connections, announce their service by name. Every wire verdict
//! is bit-compared against the catalog's local replay
//! (`CatalogEntry::run_local`, i.e. a direct `run_multiround`).
//!
//! Phase 2: an unknown service name fails closed with a typed error
//! verdict (no hang, no silent drop), and the connection keeps serving.
//!
//! Phase 3: deliberate wire corruption against the full catalog — every
//! accepted verdict must still be exactly honest (zero undetected).
//!
//! Phase 4: the same mixed workload under the sweep poller backend —
//! kernel readiness sets must cut the server's `read(2)` syscall count.
//!
//! Run: `cargo run --release --example catalog_fleet`

use referee_bench::{Percentiles, SloCheck};
use referee_one_round::prelude::*;
use referee_one_round::protocol::combinators::{
    Chain, DegreeCensus, Extend, OneRoundAsMultiRound,
};
use referee_one_round::protocol::multiround::BoruvkaConnectivity;
use referee_simnet::SessionId;
use referee_wirenet::{AuthKey, FleetClient, FleetServer, PollerBackend, Stage, TamperConfig};

const CAP: usize = 64;
const SEED: u64 = 77;

fn fleet_graphs(count: usize) -> Vec<LabelledGraph> {
    (0..count)
        .map(|i| {
            let fam = &generators::GraphFamily::standard()[i % 6];
            fam.generate(10 + i % 10, SEED ^ (i as u64).rotate_left(9))
        })
        .collect()
}

/// Drive session `i` against the named service with the matching node
/// half; returns the wire verdict.
fn run_one(
    client: &FleetClient,
    session: SessionId,
    g: &LabelledGraph,
    service: &str,
) -> Result<Message, DecodeError> {
    match service {
        "boruvka" => {
            client.run_multiround_session_as(session, service, &BoruvkaConnectivity, g, CAP)
        }
        "adaptive-degeneracy" => client.run_multiround_session_as(
            session,
            service,
            &AdaptiveDegeneracyProtocol,
            g,
            CAP,
        ),
        "sketch-connectivity" => client.run_multiround_session_as(
            session,
            service,
            &OneRoundAsMultiRound(SketchConnectivityProtocol::new(SEED)),
            g,
            CAP,
        ),
        "sketch-then-reconstruct" => client.run_multiround_session_as(
            session,
            service,
            &Chain::new(
                OneRoundAsMultiRound(SketchConnectivityProtocol::new(SEED)),
                AdaptiveDegeneracyProtocol,
            ),
            g,
            CAP,
        ),
        "boruvka-degrees" => client.run_multiround_session_as(
            session,
            service,
            &Extend::new(BoruvkaConnectivity, DegreeCensus),
            g,
            CAP,
        ),
        other => panic!("unknown catalog service {other}"),
    }
}

fn main() {
    let sessions = 500usize;
    let conns = 6usize;
    let key = AuthKey::from_seed(2027);
    let graphs = fleet_graphs(sessions);
    let catalog = standard_catalog(SEED);
    let names: Vec<String> = catalog.names().map(String::from).collect();
    let scheduler = Scheduler::new(8, 8);

    // ---- Phase 1: honest mixed-catalog soak ---------------------------
    let server = FleetServer::builder(key)
        .shards(2)
        .catalog(standard_catalog(SEED))
        .spawn()
        .expect("bind loopback");
    let client = FleetClient::connect(server.addr(), conns, key).expect("connect");
    println!(
        "phase 1: {sessions} sessions interleaving {} catalog services over {conns} \
         connections at {}",
        names.len(),
        server.addr()
    );

    let t0 = std::time::Instant::now();
    let verdicts: Vec<Message> = scheduler.run_indexed(sessions, |i| {
        let service = &names[i % names.len()];
        run_one(&client, SessionId(i as u64), &graphs[i], service)
            .unwrap_or_else(|e| panic!("session {i} ({service}): {e:?}"))
    });
    let wall = t0.elapsed().as_secs_f64();

    for (i, wire) in verdicts.iter().enumerate() {
        let entry = catalog.get(&names[i % names.len()]).expect("registered");
        let (truth, _) = entry.run_local(&graphs[i], CAP).expect("local half");
        let truth = truth.expect("within round cap");
        assert_eq!(
            (wire.len_bits(), wire.as_bytes()),
            (truth.len_bits(), truth.as_bytes()),
            "session {i} ({}): wire verdict diverged from local replay",
            entry.name()
        );
    }

    let client_stats = client.metrics();
    let server_stats = server.stop();
    assert_eq!(server_stats.verdict_frames as usize, sessions);
    assert_eq!(server_stats.mac_rejects, 0);
    assert_eq!(server_stats.decode_rejects, 0);
    let epoll_reads = server_stats.read_syscalls;
    println!("  all {sessions} verdicts bit-equal to the catalog's local replay ✓");
    println!("  client: {client_stats}");
    println!("  server: {server_stats}");
    println!("  wall {wall:.3}s ≈ {:.0} mixed-catalog sessions/s", sessions as f64 / wall);

    let p = Percentiles::from_hist(client_stats.stage(Stage::Verdict)).expect("sessions ran");
    SloCheck::from_env().enforce("catalog_fleet phase 1", &p);

    // ---- Phase 2: unknown service fails closed ------------------------
    let server = FleetServer::builder(key)
        .catalog(standard_catalog(SEED))
        .spawn()
        .expect("bind loopback");
    let client = FleetClient::connect(server.addr(), 1, key).expect("connect");
    println!("\nphase 2: announcing an unknown service");
    let err = client
        .run_multiround_session_as(
            SessionId(1),
            "no-such-service",
            &BoruvkaConnectivity,
            &graphs[0],
            CAP,
        )
        .expect_err("unknown service must fail closed");
    assert!(matches!(err, DecodeError::Invalid(_)), "typed error expected, got {err:?}");
    let wire = run_one(&client, SessionId(2), &graphs[0], "boruvka")
        .expect("connection still serves after the rejection");
    let entry = catalog.get("boruvka").expect("registered");
    let (truth, _) = entry.run_local(&graphs[0], CAP).expect("local half");
    assert_eq!(wire.as_bytes(), truth.expect("verdict").as_bytes());
    let stats = server.stop();
    assert!(stats.decode_rejects > 0);
    println!("  typed error verdict received, connection kept serving ✓");

    // ---- Phase 3: tamper, zero undetected -----------------------------
    let corrupt = 60usize;
    let server = FleetServer::builder(key)
        .shards(2)
        .catalog(standard_catalog(SEED))
        .spawn()
        .expect("bind loopback");
    let client = FleetClient::connect(server.addr(), corrupt.min(8), key)
        .expect("connect")
        .with_tamper(TamperConfig { flip_every: 3 });
    println!("\nphase 3: {corrupt} sessions across all services, every 3rd frame corrupted");

    let mut undetected = 0usize;
    for (i, g) in graphs.iter().take(corrupt).enumerate() {
        let service = &names[i % names.len()];
        if let Ok(wire) = run_one(&client, SessionId(i as u64), g, service) {
            let entry = catalog.get(service).expect("registered");
            let (truth, _) = entry.run_local(g, CAP).expect("local half");
            if wire.as_bytes() != truth.expect("verdict").as_bytes() {
                undetected += 1;
            }
        }
    }
    let client_stats = client.metrics();
    let server_stats = server.stop();
    assert!(client_stats.tampered > 0, "tamper hook never fired");
    assert!(server_stats.mac_rejects > 0, "no corruption reached MAC verification");
    assert_eq!(undetected, 0, "a corrupted catalog session was accepted");
    println!(
        "  {} frames tampered, {} MAC rejections, zero undetected ✓",
        client_stats.tampered, server_stats.mac_rejects
    );

    // ---- Phase 4: readiness sets cut read(2) syscalls -----------------
    println!("\nphase 4: same workload on the sweep backend (readiness-set control)");
    let server = FleetServer::builder(key)
        .shards(2)
        .catalog(standard_catalog(SEED))
        .poller(PollerBackend::Sweep)
        .spawn()
        .expect("bind loopback");
    let client = FleetClient::connect(server.addr(), conns, key).expect("connect");
    let _sweep_verdicts: Vec<Message> = scheduler.run_indexed(sessions, |i| {
        let service = &names[i % names.len()];
        run_one(&client, SessionId(i as u64), &graphs[i], service)
            .unwrap_or_else(|e| panic!("session {i} ({service}): {e:?}"))
    });
    let sweep_stats = server.stop();
    let sweep_reads = sweep_stats.read_syscalls;
    println!("  epoll read(2): {epoll_reads}, sweep read(2): {sweep_reads}");
    if cfg!(target_os = "linux") {
        assert!(
            epoll_reads < sweep_reads,
            "readiness sets must cut server read(2) syscalls (epoll {epoll_reads} vs \
             sweep {sweep_reads})"
        );
        println!(
            "  readiness sets cut server read(2) syscalls by {:.1}× ✓",
            sweep_reads as f64 / epoll_reads.max(1) as f64
        );
    }

    println!("\nmixed-catalog fleet demo completed ✓");
}
