//! E7/E8 (runtime side): full one-round reconstruction — local phase plus
//! the referee's Algorithm 4 pruning ("reconstructs graph G in O(n²)
//! time") — across the paper's graph classes, against the adjacency
//! baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::{rngs::StdRng, SeedableRng};
use referee_degeneracy::{DegeneracyProtocol, ForestProtocol, GeneralizedDegeneracyProtocol};
use referee_graph::generators;
use referee_protocol::baseline::AdjacencyListProtocol;
use referee_protocol::run_protocol;

fn bench_forest_protocols(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconstruct/forest");
    group.sample_size(10);
    for n in [1024usize, 8192] {
        let mut rng = StdRng::seed_from_u64(10);
        let g = generators::random_forest(n, 0.9, &mut rng);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("triple_sIIIA", n), &g, |b, g| {
            b.iter(|| run_protocol(&ForestProtocol, g).output.unwrap())
        });
        group.bench_with_input(BenchmarkId::new("powersum_k1", n), &g, |b, g| {
            b.iter(|| run_protocol(&DegeneracyProtocol::new(1), g).output.unwrap())
        });
        group.bench_with_input(BenchmarkId::new("adjacency_baseline", n), &g, |b, g| {
            b.iter(|| run_protocol(&AdjacencyListProtocol, g).output.unwrap())
        });
    }
    group.finish();
}

fn bench_degeneracy_by_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconstruct/vs_k_n1000");
    group.sample_size(10);
    let n = 1000usize;
    for k in [1usize, 2, 4, 6] {
        let mut rng = StdRng::seed_from_u64(11);
        let g = generators::random_k_degenerate(n, k, 0.9, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(k), &g, |b, g| {
            b.iter(|| run_protocol(&DegeneracyProtocol::new(k), g).output.unwrap())
        });
    }
    group.finish();
}

fn bench_degeneracy_by_n(c: &mut Criterion) {
    // Algorithm 4's O(n²) claim: time per run across doubling n.
    let mut group = c.benchmark_group("reconstruct/vs_n_k2_grid");
    group.sample_size(10);
    for n in [256usize, 1024, 4096] {
        let side = (n as f64).sqrt() as usize;
        let g = generators::grid(side, side);
        group.bench_with_input(BenchmarkId::from_parameter(g.n()), &g, |b, g| {
            b.iter(|| run_protocol(&DegeneracyProtocol::new(2), g).output.unwrap())
        });
    }
    group.finish();
}

fn bench_generalized(c: &mut Criterion) {
    let mut group = c.benchmark_group("reconstruct/generalized_complement");
    group.sample_size(10);
    for n in [100usize, 300] {
        let mut rng = StdRng::seed_from_u64(12);
        let dense = generators::random_k_degenerate(n, 2, 1.0, &mut rng).complement();
        group.bench_with_input(BenchmarkId::from_parameter(n), &dense, |b, g| {
            b.iter(|| run_protocol(&GeneralizedDegeneracyProtocol::new(2), g).output.unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_forest_protocols,
    bench_degeneracy_by_k,
    bench_degeneracy_by_n,
    bench_generalized
);
criterion_main!(benches);
