//! Breadth-first search primitives.

use crate::csr::Csr;
use crate::{LabelledGraph, VertexId};

/// Distance value for unreachable vertices.
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS distances from `source` (1-based ID) to every vertex.
///
/// `result[i]` is the distance to vertex `i + 1`, or [`UNREACHABLE`].
pub fn bfs_distances(g: &LabelledGraph, source: VertexId) -> Vec<u32> {
    let csr = Csr::from_graph(g);
    bfs_distances_csr(&csr, (source - 1) as usize)
}

/// BFS on a prebuilt CSR from a 0-based source index. The workhorse of the
/// all-pairs diameter computation — no allocation beyond the two vectors.
pub fn bfs_distances_csr(csr: &Csr, source: usize) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; csr.n()];
    let mut queue = Vec::with_capacity(csr.n());
    dist[source] = 0;
    queue.push(source as u32);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head] as usize;
        head += 1;
        let du = dist[u];
        for &v in csr.neighbours(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push(v);
            }
        }
    }
    dist
}

/// BFS into caller-provided scratch buffers (for hot loops).
/// `dist` must have length `csr.n()`; it is fully reinitialized.
pub fn bfs_into(csr: &Csr, source: usize, dist: &mut [u32], queue: &mut Vec<u32>) {
    dist.fill(UNREACHABLE);
    queue.clear();
    dist[source] = 0;
    queue.push(source as u32);
    let mut head = 0;
    while head < queue.len() {
        let u = queue[head] as usize;
        head += 1;
        let du = dist[u];
        for &v in csr.neighbours(u) {
            if dist[v as usize] == UNREACHABLE {
                dist[v as usize] = du + 1;
                queue.push(v);
            }
        }
    }
}

/// Eccentricity of `source`: max distance to any reachable vertex, or
/// `None` if some vertex is unreachable (infinite eccentricity).
pub fn eccentricity(g: &LabelledGraph, source: VertexId) -> Option<u32> {
    let dist = bfs_distances(g, source);
    let mut max = 0;
    for &d in &dist {
        if d == UNREACHABLE {
            return None;
        }
        max = max.max(d);
    }
    Some(max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_distances() {
        let g = LabelledGraph::from_edges(4, [(1, 2), (2, 3), (3, 4)]).unwrap();
        assert_eq!(bfs_distances(&g, 1), vec![0, 1, 2, 3]);
        assert_eq!(bfs_distances(&g, 3), vec![2, 1, 0, 1]);
        assert_eq!(eccentricity(&g, 2), Some(2));
    }

    #[test]
    fn disconnected_unreachable() {
        let g = LabelledGraph::from_edges(4, [(1, 2)]).unwrap();
        let d = bfs_distances(&g, 1);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(eccentricity(&g, 1), None);
    }

    #[test]
    fn single_vertex() {
        let g = LabelledGraph::new(1);
        assert_eq!(bfs_distances(&g, 1), vec![0]);
        assert_eq!(eccentricity(&g, 1), Some(0));
    }

    #[test]
    fn bfs_into_reuses_buffers() {
        let g = LabelledGraph::from_edges(3, [(1, 2), (2, 3)]).unwrap();
        let csr = Csr::from_graph(&g);
        let mut dist = vec![0u32; 3];
        let mut queue = Vec::new();
        bfs_into(&csr, 0, &mut dist, &mut queue);
        assert_eq!(dist, vec![0, 1, 2]);
        bfs_into(&csr, 2, &mut dist, &mut queue);
        assert_eq!(dist, vec![2, 1, 0]);
    }
}
