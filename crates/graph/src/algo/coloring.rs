//! Greedy colouring along a degeneracy order — the textbook dividend of
//! the elimination structure the paper's referee recovers.
//!
//! A graph of degeneracy `d` is `(d + 1)`-colourable: colour vertices in
//! the *reverse* of the removal order; each vertex sees at most `d`
//! already-coloured neighbours. After Algorithm 4 reconstructs the
//! topology, the referee holds exactly such an order, so a valid
//! `(d + 1)`-colouring (frequency plan, conflict-free schedule, …) costs
//! one linear pass — a concrete systems payoff of Theorem 5 beyond
//! "knowing the graph". The exact chromatic number (small-n
//! backtracking) pins the bound's slack in tests.

use crate::{LabelledGraph, VertexId};

/// A proper colouring: `colour[i]` ∈ `0..num_colours` for vertex `i+1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    /// Per-vertex colour, 0-based.
    pub colour: Vec<u32>,
    /// Number of distinct colours used.
    pub num_colours: usize,
}

impl Coloring {
    /// Check properness against `g`.
    pub fn is_proper(&self, g: &LabelledGraph) -> bool {
        self.colour.len() == g.n()
            && g.edges()
                .all(|e| self.colour[(e.0 - 1) as usize] != self.colour[(e.1 - 1) as usize])
    }
}

/// Greedy colouring in the given order: each vertex takes the smallest
/// colour unused by already-coloured neighbours.
pub fn greedy_coloring(g: &LabelledGraph, order: &[VertexId]) -> Coloring {
    let n = g.n();
    assert_eq!(order.len(), n, "order must list every vertex exactly once");
    let mut colour = vec![u32::MAX; n];
    let mut max_used = 0u32;
    let mut taken = Vec::new();
    for &v in order {
        taken.clear();
        for &w in g.neighbourhood(v) {
            let c = colour[(w - 1) as usize];
            if c != u32::MAX {
                taken.push(c);
            }
        }
        taken.sort_unstable();
        taken.dedup();
        let mut pick = 0u32;
        for &c in &taken {
            if c == pick {
                pick += 1;
            } else if c > pick {
                break;
            }
        }
        colour[(v - 1) as usize] = pick;
        max_used = max_used.max(pick + 1);
    }
    Coloring { colour, num_colours: max_used as usize }
}

/// Colour along the reversed degeneracy order: **at most `d + 1`
/// colours**, where `d` is the degeneracy.
pub fn degeneracy_coloring(g: &LabelledGraph) -> Coloring {
    let mut order = crate::algo::degeneracy_ordering(g).order;
    order.reverse(); // colour the last-removed first
    greedy_coloring(g, &order)
}

/// Exact chromatic number by branch-and-bound (try k = ω, ω+1, …).
/// Exponential; intended for n ≲ 16 cross-checks.
pub fn chromatic_number_exact(g: &LabelledGraph) -> usize {
    let n = g.n();
    if n == 0 {
        return 0;
    }
    if g.m() == 0 {
        return 1;
    }
    let lower = crate::algo::clique_number(g);
    let upper = degeneracy_coloring(g).num_colours;
    for k in lower..=upper {
        if colourable_with(g, k) {
            return k;
        }
    }
    upper
}

fn colourable_with(g: &LabelledGraph, k: usize) -> bool {
    let n = g.n();
    let mut colour = vec![usize::MAX; n];
    // Order vertices by descending degree for earlier pruning.
    let mut order: Vec<VertexId> = (1..=n as VertexId).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    fn rec(
        g: &LabelledGraph,
        order: &[VertexId],
        colour: &mut [usize],
        depth: usize,
        k: usize,
        used_so_far: usize,
    ) -> bool {
        if depth == order.len() {
            return true;
        }
        let v = order[depth];
        // Symmetry breaking: allow at most one brand-new colour.
        let limit = (used_so_far + 1).min(k);
        'colours: for c in 0..limit {
            for &w in g.neighbourhood(v) {
                if colour[(w - 1) as usize] == c {
                    continue 'colours;
                }
            }
            colour[(v - 1) as usize] = c;
            let next_used = used_so_far.max(c + 1);
            if rec(g, order, colour, depth + 1, k, next_used) {
                return true;
            }
            colour[(v - 1) as usize] = usize::MAX;
        }
        false
    }
    rec(g, &order, &mut colour, 0, k, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{degeneracy_ordering, is_bipartite};
    use crate::generators;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn degeneracy_bound_holds_across_families() {
        let mut rng = StdRng::seed_from_u64(1);
        let graphs = vec![
            generators::random_tree(50, &mut rng),
            generators::grid(6, 7),
            generators::random_apollonian(40, &mut rng).unwrap(),
            generators::petersen(),
            generators::barabasi_albert(80, 3, &mut rng).unwrap(),
            generators::complete(9),
        ];
        for g in graphs {
            let d = degeneracy_ordering(&g).degeneracy;
            let c = degeneracy_coloring(&g);
            assert!(c.is_proper(&g), "{g:?}");
            assert!(c.num_colours <= d + 1, "{g:?}: {} > {}", c.num_colours, d + 1);
        }
    }

    #[test]
    fn exact_chromatic_on_named_graphs() {
        assert_eq!(chromatic_number_exact(&generators::complete(6)), 6);
        assert_eq!(chromatic_number_exact(&generators::cycle(6).unwrap()), 2);
        assert_eq!(chromatic_number_exact(&generators::cycle(7).unwrap()), 3);
        assert_eq!(chromatic_number_exact(&generators::petersen()), 3);
        assert_eq!(chromatic_number_exact(&generators::wheel(8).unwrap()), 4); // odd rim
        assert_eq!(chromatic_number_exact(&generators::wheel(7).unwrap()), 3); // even rim
        assert_eq!(chromatic_number_exact(&LabelledGraph::new(4)), 1);
        assert_eq!(chromatic_number_exact(&LabelledGraph::new(0)), 0);
    }

    #[test]
    fn exact_is_sandwiched() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let g = generators::gnp(11, 0.35, &mut rng);
            if g.m() == 0 {
                continue;
            }
            let chi = chromatic_number_exact(&g);
            let omega = crate::algo::clique_number(&g);
            let greedy = degeneracy_coloring(&g).num_colours;
            assert!(
                omega <= chi && chi <= greedy,
                "{g:?}: ω={omega}, χ={chi}, greedy={greedy}"
            );
            // bipartite ⟺ χ ≤ 2
            assert_eq!(chi <= 2, is_bipartite(&g), "{g:?}");
        }
    }

    #[test]
    fn greedy_respects_custom_orders() {
        let g = generators::path(5);
        // Worst-case order on a path can use 2 colours anyway.
        let c = greedy_coloring(&g, &[1, 3, 5, 2, 4]);
        assert!(c.is_proper(&g));
        assert!(c.num_colours <= 2);
        // Crown-graph style example where a bad order wastes colours is
        // classic; here we just pin validity on a shuffled order.
        let mut rng = StdRng::seed_from_u64(3);
        let g = generators::gnp(20, 0.3, &mut rng);
        use rand::seq::SliceRandom;
        let mut order: Vec<u32> = (1..=20).collect();
        order.shuffle(&mut rng);
        assert!(greedy_coloring(&g, &order).is_proper(&g));
    }

    #[test]
    #[should_panic(expected = "every vertex")]
    fn rejects_partial_orders() {
        greedy_coloring(&generators::path(4), &[1, 2]);
    }
}
