//! End-to-end accountability: misbehaving wire clients yield
//! self-contained [`EvidenceBundle`]s that any third party can verify
//! against nothing but the base key and the public session parameters —
//! and honest traffic never produces an accusation.
//!
//! The load-bearing identity pinned here: an evidence record's MAC'd
//! body is the wire frame's MAC-covered body **byte for byte**, signed
//! under the same per-connection derived key — so the tag inside a
//! bundle is literally the tag the client's own frame carried, and
//! "the referee made it up" is not a defense.

use referee_protocol::easy::EdgeCountProtocol;
use referee_protocol::evidence::{
    encode_record_body, verify_bundle, EvidenceBundle, EvidenceRecord, ProvableError,
    SessionParams,
};
use referee_protocol::referee::local_phase;
use referee_protocol::{BitWriter, Message};
use referee_simnet::{Envelope, SessionId};
use referee_wirenet::{
    boruvka_connectivity_service, decode_frame, encode_frame, encode_wire_frame, link_key,
    link_key_path, AuthKey, FleetClient, FleetServer, FrameKind, TAG_BYTES, WIRE_VERSION,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Blocking raw-socket helper: accumulate bytes until one frame decodes
/// under `key`.
fn read_raw_frame(
    stream: &mut TcpStream,
    key: &AuthKey,
    buf: &mut Vec<u8>,
) -> (FrameKind, Envelope) {
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut chunk = [0u8; 4096];
    loop {
        if let Ok(Some(d)) = decode_frame(key, buf) {
            buf.drain(..d.consumed);
            return (d.kind, d.envelope);
        }
        let k = stream.read(&mut chunk).expect("read from server");
        assert!(k > 0, "server closed the connection");
        buf.extend_from_slice(&chunk[..k]);
    }
}

/// Complete the per-connection handshake on a raw socket: returns the
/// stream, the connection id the server assigned, and the derived
/// per-connection key everything else is MAC'd under.
fn raw_connect(server: &FleetServer, base: &AuthKey) -> (TcpStream, u32, AuthKey, Vec<u8>) {
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut buf = Vec::new();
    let (kind, hello) = read_raw_frame(&mut stream, base, &mut buf);
    assert_eq!(kind, FrameKind::Hello);
    let conn = hello.from;
    let key = base.derive(u64::from(conn));
    (stream, conn, key, buf)
}

/// The full client-API loop: equivocation, identical duplicate and
/// out-of-range sender each produce exactly one bundle that verifies
/// standalone against the base key; the identical duplicate accuses
/// nobody (an at-least-once network does that too); and a subsequent
/// honest session adds nothing — no framing.
#[test]
fn sharded_service_ships_verifiable_evidence() {
    let key = AuthKey::from_seed(90);
    let server = FleetServer::spawn_sharded(key, 2).unwrap();
    let client = FleetClient::connect(server.addr(), 1, key).unwrap();
    let g = referee_graph::generators::grid(2, 3);
    let n = g.n();
    let messages = local_phase(&EdgeCountProtocol, &g);
    let honest = || {
        messages.iter().cloned().enumerate().map(|(j, m)| (j as u32 + 1, m)).collect::<Vec<_>>()
    };

    // Session 10: node 1 speaks twice with *different* payloads.
    let mut equiv = honest();
    let mut w = BitWriter::new();
    w.write_bits(0x2a, 7);
    equiv[1] = (1, Message::from_writer(w));
    assert!(client.verify_session(SessionId(10), n, equiv).is_err());

    // Session 11: node 1's frame arrives twice, bit-identical.
    let mut dup = honest();
    dup[1] = dup[0].clone();
    assert!(client.verify_session(SessionId(11), n, dup).is_err());

    // Session 12: node 1's slot taken by an out-of-range stray.
    let mut oor = honest();
    oor[0] = (n as u32 + 7, messages[0].clone());
    assert!(client.verify_session(SessionId(12), n, oor).is_err());

    // Session 13: honest — must verify and must not grow the log.
    client.verify_session(SessionId(13), n, honest()).expect("honest session");

    let bundles = server.evidence();
    assert_eq!(bundles.len(), 3, "one bundle per misbehaving session");
    let find = |session: u64| {
        bundles
            .iter()
            .find(|b| b.records[0].parse().unwrap().session == session)
            .unwrap_or_else(|| panic!("no bundle for session {session}"))
    };
    let params = |session: u64| SessionParams { session, n: n as u32, round_cap: 1 };

    let equiv = find(10);
    assert_eq!(equiv.error, ProvableError::Equivocation);
    let att =
        verify_bundle(key.mac_key(), &params(10), equiv).expect("standalone verification");
    assert_eq!(att.culprit, equiv.accused);
    let culprit = att.culprit.expect("equivocation is attributable");

    let dup = find(11);
    assert_eq!(dup.error, ProvableError::DuplicateSender);
    let att = verify_bundle(key.mac_key(), &params(11), dup).expect("standalone verification");
    assert_eq!(att.culprit, None, "an identical duplicate must accuse nobody");
    assert_eq!(dup.accused, None);

    let oor = find(12);
    assert_eq!(oor.error, ProvableError::OutOfRangeSender);
    let att = verify_bundle(key.mac_key(), &params(12), oor).expect("standalone verification");
    assert_eq!(att.culprit, Some(culprit), "same connection, same proven principal");

    // A mutated bundle must not verify: flip one payload byte and the
    // MAC check kills it.
    let mut forged = equiv.clone();
    let last = forged.records[1].body.len() - 1;
    forged.records[1].body[last] ^= 1;
    assert!(verify_bundle(key.mac_key(), &params(10), &forged).is_err(), "forgery verified");

    // The bundles crossed the wire coordinator-ward too: the client
    // decoded the same three off its connection.
    let client_bundles = client.evidence();
    assert_eq!(client_bundles.len(), 3);
    for b in &client_bundles {
        let session = b.records[0].parse().unwrap().session;
        verify_bundle(key.mac_key(), &params(session), b).expect("client-side bundle verifies");
    }

    let stats = server.stop();
    assert_eq!(stats.evidence_bundles, 3);
}

/// The identity at the heart of attributability, pinned bit-for-bit on
/// a real socket: the MAC-covered body of the uplink frame a client
/// sends IS the evidence record's body, and the record's tag (signed
/// via the derived-key path `[conn]`) IS the frame's trailing tag. A
/// wrong-round uplink then comes back as a bundle carrying exactly that
/// record.
#[test]
fn evidence_record_is_the_wire_frame_bit_for_bit() {
    let base = AuthKey::from_seed(91);
    let server = FleetServer::spawn_sharded(base, 2).unwrap();
    let (mut stream, conn, key, mut buf) = raw_connect(&server, &base);

    // Announce a size-4 one-round session.
    let mut w = BitWriter::new();
    w.write_bits(4, 32);
    let announce = Envelope {
        session: SessionId(7),
        round: 0,
        from: 0,
        to: 0,
        payload: Message::from_writer(w),
    };
    stream.write_all(&encode_wire_frame(&key, FrameKind::Announce, &announce)).unwrap();

    // An uplink stamped round 3 — impossible in a one-round service.
    let mut w = BitWriter::new();
    w.write_bits(5, 6);
    let env = Envelope {
        session: SessionId(7),
        round: 3,
        from: 2,
        to: 0,
        payload: Message::from_writer(w),
    };
    let frame = encode_frame(&key, &env);

    // Frame body ≡ record body, byte for byte.
    let body =
        encode_record_body(WIRE_VERSION, FrameKind::Data as u8, 7, 3, 2, 0, &env.payload);
    assert_eq!(&frame[4..frame.len() - TAG_BYTES], &body[..], "frame body != record body");
    // Frame tag ≡ record tag under the derived-key path [conn].
    let rec = EvidenceRecord::sign(base.mac_key(), vec![u64::from(conn)], body);
    assert_eq!(frame[frame.len() - TAG_BYTES..], rec.tag.to_be_bytes(), "tags disagree");
    assert!(rec.verify(base.mac_key()));

    stream.write_all(&frame).unwrap();
    let bundle = loop {
        let (kind, env) = read_raw_frame(&mut stream, &key, &mut buf);
        if kind == FrameKind::Evidence {
            assert_eq!(env.from, conn, "evidence frame names the accused");
            break EvidenceBundle::decode(&env.payload).expect("bundle decodes");
        }
    };
    assert_eq!(bundle.error, ProvableError::WrongRound);
    assert_eq!(bundle.accused, Some(conn));
    assert_eq!(bundle.records.len(), 1);
    assert_eq!(bundle.records[0], rec, "the bundle carries the client's own frame");

    let params = SessionParams { session: 7, n: 4, round_cap: 1 };
    let att = verify_bundle(base.mac_key(), &params, &bundle).expect("standalone verification");
    assert_eq!(att.culprit, Some(conn));

    drop(stream);
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.metrics().evidence_bundles == 0 {
        assert!(Instant::now() < deadline, "server never logged the bundle");
        std::thread::sleep(Duration::from_millis(1));
    }
    server.stop();
}

/// The placement key schedule composes with the evidence layer: a
/// frame captured under a superseded registration generation, paired
/// with a context record from the live generation, is a verifiable
/// [`ProvableError::StaleReplay`] — unattributable by design (anyone
/// who captured the old frame can replay it) — and the shape rules
/// refuse same-generation pairs, sibling-shard pairs, and swapped
/// order, so the fence cannot be abused to manufacture accusations.
#[test]
fn stale_generation_replay_is_provable_under_the_placement_schedule() {
    let base = AuthKey::from_seed(93);
    let (session, shard) = (21u64, 1usize);
    let uplink_body = |round: u32, from: u32, bits: u64| {
        let mut w = BitWriter::new();
        w.write_bits(bits, 9);
        encode_record_body(
            WIRE_VERSION,
            FrameKind::Data as u8,
            session,
            round,
            from,
            0,
            &Message::from_writer(w),
        )
    };

    // Pin the path ≡ key identity first: signing under the evidence
    // path is signing under `link_key` itself.
    let stale =
        EvidenceRecord::sign(base.mac_key(), link_key_path(shard, 1), uplink_body(1, 3, 5));
    assert_eq!(
        stale.tag,
        referee_protocol::mac::siphash24(link_key(&base, shard, 1).mac_key(), &stale.body),
        "link_key_path does not reproduce link_key's MAC"
    );

    let context =
        EvidenceRecord::sign(base.mac_key(), link_key_path(shard, 2), uplink_body(1, 4, 6));
    let bundle = EvidenceBundle {
        error: ProvableError::StaleReplay,
        accused: None,
        records: vec![stale.clone(), context.clone()],
    };
    let params = SessionParams { session, n: 6, round_cap: 4 };
    let att = verify_bundle(base.mac_key(), &params, &bundle).expect("stale replay verifies");
    assert_eq!(att.culprit, None, "a replay must accuse nobody");

    // Round-trip through the self-contained byte form.
    let reloaded = EvidenceBundle::from_bytes(&bundle.to_bytes()).expect("bytes round-trip");
    assert_eq!(reloaded, bundle);
    verify_bundle(base.mac_key(), &params, &reloaded).expect("reloaded bundle verifies");

    // Same generation on both records: nothing is stale.
    let peer =
        EvidenceRecord::sign(base.mac_key(), link_key_path(shard, 1), uplink_body(1, 4, 6));
    let same = EvidenceBundle {
        error: ProvableError::StaleReplay,
        accused: None,
        records: vec![stale.clone(), peer],
    };
    assert!(verify_bundle(base.mac_key(), &params, &same).is_err());

    // Context from a *sibling shard's* schedule: paths diverge before
    // the generation element, so the pair proves nothing.
    let sibling =
        EvidenceRecord::sign(base.mac_key(), link_key_path(shard + 1, 2), uplink_body(1, 4, 6));
    let cross = EvidenceBundle {
        error: ProvableError::StaleReplay,
        accused: None,
        records: vec![stale.clone(), sibling],
    };
    assert!(verify_bundle(base.mac_key(), &params, &cross).is_err());

    // Swapped order claims the *newer* record is the replay.
    let swapped = EvidenceBundle {
        error: ProvableError::StaleReplay,
        accused: None,
        records: vec![context, stale],
    };
    assert!(verify_bundle(base.mac_key(), &params, &swapped).is_err());
}

/// The multi-round service emits the same bundles: an out-of-range
/// uplink against a catalog server (announced with the legacy bare-`n`
/// payload, selecting entry 0) ships an `OutOfRangeSender` proof before
/// the session is judged.
#[test]
fn multiround_service_emits_out_of_range_evidence() {
    let base = AuthKey::from_seed(92);
    let server =
        FleetServer::spawn_multiround(base, 2, boruvka_connectivity_service()).unwrap();
    let (mut stream, conn, key, mut buf) = raw_connect(&server, &base);

    let mut w = BitWriter::new();
    w.write_bits(4, 32);
    let announce = Envelope {
        session: SessionId(5),
        round: 0,
        from: 0,
        to: 0,
        payload: Message::from_writer(w),
    };
    stream.write_all(&encode_wire_frame(&key, FrameKind::Announce, &announce)).unwrap();

    // Sender 9 of a 4-node session: provably out of range on its own.
    let env =
        Envelope { session: SessionId(5), round: 1, from: 9, to: 0, payload: Message::empty() };
    stream.write_all(&encode_frame(&key, &env)).unwrap();

    let bundle = loop {
        let (kind, env) = read_raw_frame(&mut stream, &key, &mut buf);
        if kind == FrameKind::Evidence {
            break EvidenceBundle::decode(&env.payload).expect("bundle decodes");
        }
    };
    assert_eq!(bundle.error, ProvableError::OutOfRangeSender);
    assert_eq!(bundle.accused, Some(conn));
    let params = SessionParams { session: 5, n: 4, round_cap: 20 };
    let att = verify_bundle(base.mac_key(), &params, &bundle).expect("standalone verification");
    assert_eq!(att.culprit, Some(conn));

    drop(stream);
    server.stop();
}
