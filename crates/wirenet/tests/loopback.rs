//! Real-socket integration: fleets of `simnet` sessions driven over
//! loopback TCP, pinned bit-for-bit against in-memory runs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use referee_graph::{algo, generators, LabelledGraph};
use referee_protocol::easy::EdgeCountProtocol;
use referee_protocol::multiround::BoruvkaConnectivity;
use referee_protocol::referee::local_phase;
use referee_protocol::{BitWriter, DecodeError, Message};
use referee_simnet::{
    Envelope, MultiRoundSession, OneRoundSession, PerfectTransport, Scheduler, SessionId,
};
use referee_wirenet::{
    decode_frame, encode_frame, vector_digest, AuthKey, FleetClient, FleetServer, FrameKind,
    TamperConfig,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

fn graphs(count: usize, seed: u64) -> Vec<LabelledGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|i| generators::gnp(8 + i % 20, 0.25, &mut rng)).collect()
}

/// One-round sessions multiplexed over 3 connections, driven from the
/// multi-threaded scheduler, must produce exactly the outcomes of
/// in-memory perfect-transport runs — and the server must have seen
/// every envelope, rejecting nothing.
#[test]
fn one_round_fleet_matches_in_memory() {
    let key = AuthKey::from_seed(11);
    let server = FleetServer::spawn(key).unwrap();
    let client = FleetClient::connect(server.addr(), 3, key).unwrap();
    let fleet = graphs(96, 42);

    let wire: Vec<_> = Scheduler::new(8, 4).run_indexed(fleet.len(), |i| {
        let id = SessionId(i as u64);
        let mut transport = client.transport(id);
        OneRoundSession::new(&EdgeCountProtocol, &fleet[i]).with_session(id).run(&mut transport)
    });

    let mut expected_frames = 0u64;
    for (i, (report, g)) in wire.iter().zip(&fleet).enumerate() {
        let mut perfect = PerfectTransport::new();
        let memory = OneRoundSession::new(&EdgeCountProtocol, g).run(&mut perfect);
        assert_eq!(
            report.outcome.as_ref().unwrap().as_ref().unwrap(),
            memory.outcome.as_ref().unwrap().as_ref().unwrap(),
            "session {i} disagrees with the in-memory run"
        );
        assert_eq!(
            report.metrics.stats.total_message_bits,
            memory.metrics.stats.total_message_bits
        );
        expected_frames += g.n() as u64;
    }

    let client_stats = client.metrics();
    let server_stats = server.stop();
    assert_eq!(server_stats.frames_received, expected_frames, "server missed envelopes");
    assert_eq!(server_stats.frames_sent, expected_frames, "server echoed short");
    assert_eq!(server_stats.mac_rejects, 0);
    assert_eq!(server_stats.decode_rejects, 0);
    assert_eq!(server_stats.connections, 3);
    assert_eq!(client_stats.frames_sent, expected_frames);
    assert_eq!(client_stats.frames_received, expected_frames);
    assert_eq!(client_stats.mac_rejects, 0);
}

/// Multi-round Borůvka over the wire: verdicts, round counts and
/// message-size stats all match the in-memory session, and match the
/// centralized truth.
#[test]
fn multi_round_fleet_matches_in_memory() {
    let key = AuthKey::from_seed(12);
    let server = FleetServer::spawn(key).unwrap();
    let client = FleetClient::connect(server.addr(), 2, key).unwrap();
    let fleet = graphs(24, 77);

    let wire: Vec<_> = Scheduler::new(4, 2).run_indexed(fleet.len(), |i| {
        let id = SessionId(i as u64);
        let mut transport = client.transport(id);
        MultiRoundSession::new(&BoruvkaConnectivity, &fleet[i], 64)
            .with_session(id)
            .run(&mut transport)
    });

    for (i, (report, g)) in wire.iter().zip(&fleet).enumerate() {
        let mut perfect = PerfectTransport::new();
        let memory = MultiRoundSession::new(&BoruvkaConnectivity, g, 64).run(&mut perfect);
        let wire_verdict = report.outcome.as_ref().unwrap().as_ref().unwrap().as_ref().unwrap();
        let memory_verdict =
            memory.outcome.as_ref().unwrap().as_ref().unwrap().as_ref().unwrap();
        assert_eq!(wire_verdict, memory_verdict, "session {i}");
        assert_eq!(*wire_verdict, algo::is_connected(g), "session {i} vs centralized");
        assert_eq!(report.stats, memory.stats, "session {i} stats");
    }

    let server_stats = server.stop();
    assert_eq!(server_stats.mac_rejects, 0);
    assert!(server_stats.frames_received > 0);
}

/// Deliberate wire corruption: with one session per connection and every
/// third frame tampered, every session's first tampered frame reaches
/// the server while its connection is alive and MUST be caught by MAC
/// verification (poisoning the connection); every session then fails
/// cleanly — no corrupted frame is ever accepted, nothing hangs.
#[test]
fn tampered_frames_are_all_mac_rejected() {
    let key = AuthKey::from_seed(13);
    let server = FleetServer::spawn(key).unwrap();
    let sessions = 8usize;
    let client = FleetClient::connect(server.addr(), sessions, key)
        .unwrap()
        .with_tamper(TamperConfig { flip_every: 3 });
    let fleet = graphs(sessions, 3);

    for (i, g) in fleet.iter().enumerate() {
        let id = SessionId(i as u64);
        let mut transport = client.transport(id);
        let report =
            OneRoundSession::new(&EdgeCountProtocol, g).with_session(id).run(&mut transport);
        assert!(
            report.outcome.is_err(),
            "session {i} survived a poisoned connection: {:?}",
            report.outcome
        );
    }

    let client_stats = client.metrics();
    let server_stats = server.stop();
    assert!(client_stats.tampered >= sessions as u64, "tamper hook never fired");
    // Exactly one MAC reject per connection: the first tampered frame is
    // caught, the connection is poisoned, nothing after it is read.
    assert_eq!(server_stats.mac_rejects, sessions as u64);
    assert_eq!(server_stats.decode_rejects, 0);
    // Every frame the server *did* accept was untampered and echoed.
    assert_eq!(server_stats.frames_received, server_stats.frames_sent);
}

/// A key mismatch between the two ends is total — and since the
/// per-connection handshake, it fails at `connect`: the server's Hello
/// does not authenticate under the wrong base key, so the client closes
/// before a single data frame crosses the wire.
#[test]
fn key_mismatch_fails_closed() {
    let server = FleetServer::spawn(AuthKey::from_seed(14)).unwrap();
    let err = FleetClient::connect(server.addr(), 1, AuthKey::from_seed(15)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
    let server_stats = server.stop();
    assert_eq!(server_stats.frames_received, 0, "no data may flow under mismatched keys");
    assert_eq!(server_stats.frames_sent, 0, "nothing may be echoed unauthenticated");
}

/// Dropping a transport retires its demux lane: the session id becomes
/// reusable, so a long-lived client neither leaks lanes nor panics on
/// reuse.
#[test]
fn session_ids_are_reusable_after_transport_drop() {
    let key = AuthKey::from_seed(17);
    let server = FleetServer::spawn(key).unwrap();
    let client = FleetClient::connect(server.addr(), 1, key).unwrap();
    let g = generators::grid(2, 4);
    for run in 0..3 {
        let id = SessionId(42);
        let mut transport = client.transport(id); // would panic if the lane leaked
        let report =
            OneRoundSession::new(&EdgeCountProtocol, &g).with_session(id).run(&mut transport);
        assert_eq!(report.outcome.unwrap().unwrap(), g.m(), "run {run}");
    }
    assert_eq!(server.stop().mac_rejects, 0);
}

/// A session driven over the wire with a mismatched session id on its
/// transport rejects as a demux fault (the session-id validation in the
/// runtime), rather than absorbing another session's traffic.
#[test]
fn cross_session_delivery_is_rejected() {
    let key = AuthKey::from_seed(16);
    let server = FleetServer::spawn(key).unwrap();
    let client = FleetClient::connect(server.addr(), 1, key).unwrap();
    let g = generators::grid(2, 3);
    // Session believes it is id 5; transport is bound to id 9, so every
    // envelope comes back stamped 9 and the session must reject it.
    let mut transport = client.transport(SessionId(9));
    let report = OneRoundSession::new(&EdgeCountProtocol, &g)
        .with_session(SessionId(5))
        .run(&mut transport);
    let err = report.outcome.unwrap_err();
    assert!(format!("{err}").contains("demux"), "unexpected error: {err}");
    server.stop();
}

// ---------------------------------------------------------------------------
// Per-connection key derivation
// ---------------------------------------------------------------------------

/// Blocking raw-socket helper: accumulate bytes until one frame decodes
/// under `key`.
fn read_raw_frame(
    stream: &mut TcpStream,
    key: &AuthKey,
    buf: &mut Vec<u8>,
) -> (FrameKind, Envelope) {
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut chunk = [0u8; 4096];
    loop {
        if let Ok(Some(d)) = decode_frame(key, buf) {
            buf.drain(..d.consumed);
            return (d.kind, d.envelope);
        }
        let k = stream.read(&mut chunk).expect("read from server");
        assert!(k > 0, "server closed the connection");
        buf.extend_from_slice(&chunk[..k]);
    }
}

/// The satellite guarantee for `AuthKey::derive`: every connection runs
/// on a key derived at accept time (tweak = connection id), so a frame
/// MAC'd with one connection's key is *rejected* on a sibling
/// connection — a leaked per-connection key forges nothing elsewhere.
#[test]
fn derived_key_cannot_cross_connections() {
    let base = AuthKey::from_seed(21);
    let server = FleetServer::spawn(base).unwrap();

    let mut c1 = TcpStream::connect(server.addr()).unwrap();
    let mut b1 = Vec::new();
    let (kind, hello1) = read_raw_frame(&mut c1, &base, &mut b1);
    assert_eq!(kind, FrameKind::Hello);
    let k1 = base.derive(hello1.from as u64);

    let mut c2 = TcpStream::connect(server.addr()).unwrap();
    let mut b2 = Vec::new();
    let (kind, hello2) = read_raw_frame(&mut c2, &base, &mut b2);
    assert_eq!(kind, FrameKind::Hello);
    assert_ne!(hello1.from, hello2.from, "connection ids must be distinct");

    let env =
        Envelope { session: SessionId(1), round: 1, from: 1, to: 0, payload: Message::empty() };
    // Forgery: connection 1's key on connection 2. Must be MAC-rejected.
    c2.write_all(&encode_frame(&k1, &env)).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while server.metrics().mac_rejects == 0 {
        assert!(Instant::now() < deadline, "forged frame never rejected");
        std::thread::sleep(Duration::from_millis(1));
    }
    // The same key on its own connection still authenticates and echoes.
    c1.write_all(&encode_frame(&k1, &env)).unwrap();
    let (kind, echo) = read_raw_frame(&mut c1, &k1, &mut b1);
    assert_eq!(kind, FrameKind::Data);
    assert_eq!(echo, env);

    let stats = server.stop();
    assert_eq!(stats.mac_rejects, 1);
    assert_eq!(stats.frames_received, 1, "only the honest frame may be accepted");
}

// ---------------------------------------------------------------------------
// Sharded referee service
// ---------------------------------------------------------------------------

/// The acceptance bar: a sharded `FleetServer` (2 shard workers)
/// verifies 1000 sessions streamed by a multiplexed client, every
/// verdict carrying the digest of exactly the message vector the client
/// sent.
#[test]
fn sharded_referee_verifies_thousand_sessions() {
    let key = AuthKey::from_seed(23);
    let server = FleetServer::spawn_sharded(key, 2).unwrap();
    let client = FleetClient::connect(server.addr(), 8, key).unwrap();
    let fleet = graphs(1000, 99);

    let digests: Vec<u64> = Scheduler::new(8, 8).run_indexed(fleet.len(), |i| {
        let g = &fleet[i];
        let messages = local_phase(&EdgeCountProtocol, g);
        let arrivals = messages.into_iter().enumerate().map(|(j, m)| (j as u32 + 1, m));
        client.verify_session(SessionId(i as u64), g.n(), arrivals).expect("honest session")
    });
    for (i, digest) in digests.iter().enumerate() {
        let messages = local_phase(&EdgeCountProtocol, &fleet[i]);
        assert_eq!(*digest, vector_digest(&key, &messages), "session {i} digest mismatch");
    }

    let stats = server.stop();
    assert_eq!(stats.verdict_frames, 1000);
    // With 2 shards exactly one partial crosses shards per session.
    assert_eq!(stats.partial_frames, 1000);
    assert_eq!(stats.mac_rejects, 0);
    assert_eq!(stats.decode_rejects, 0);
    assert_eq!(stats.connections, 8);
}

/// The sharded referee reproduces the canonical verdicts over the wire:
/// a duplicated sender and an out-of-range sender both reject (and the
/// connection stays healthy for later sessions — verdicts are not
/// poison).
#[test]
fn sharded_referee_rejects_bad_sessions() {
    let key = AuthKey::from_seed(24);
    let server = FleetServer::spawn_sharded(key, 4).unwrap();
    let client = FleetClient::connect(server.addr(), 1, key).unwrap();
    let g = generators::grid(3, 3);
    let n = g.n();
    let messages = local_phase(&EdgeCountProtocol, &g);
    let honest = || {
        messages.iter().cloned().enumerate().map(|(j, m)| (j as u32 + 1, m)).collect::<Vec<_>>()
    };

    // Node 2's slot replaced by a duplicate of node 1 (still exactly n
    // arrivals, so the fault is judged server-side).
    let mut dup = honest();
    dup[1] = dup[0].clone();
    match client.verify_session(SessionId(1), n, dup) {
        Err(DecodeError::Inconsistent(_)) => {}
        other => panic!("duplicate must reject, got {other:?}"),
    }

    // Node 1's slot replaced by an out-of-range sender, delivered first
    // so shard 0 records it before anything else.
    let mut oor = honest();
    let mut w = BitWriter::new();
    w.write_bits(9, 6);
    oor[0] = (n as u32 + 7, Message::from_writer(w));
    match client.verify_session(SessionId(2), n, oor) {
        Err(DecodeError::OutOfRange(_)) => {}
        other => panic!("out-of-range must reject, got {other:?}"),
    }

    // The connection survived both rejections: an honest session on the
    // same socket still verifies.
    let digest = client.verify_session(SessionId(3), n, honest()).unwrap();
    assert_eq!(digest, vector_digest(&key, &messages));

    let stats = server.stop();
    assert_eq!(stats.verdict_frames, 3);
    assert_eq!(stats.mac_rejects, 0);
}

/// Wire tampering against the sharded service: every corrupted frame is
/// MAC-rejected at the router (poisoning its connection), tampered
/// sessions fail closed awaiting their verdict, and — the acceptance
/// criterion — zero corrupted sessions are ever accepted.
#[test]
fn sharded_tampering_yields_zero_undetected_corruption() {
    let key = AuthKey::from_seed(25);
    let server = FleetServer::spawn_sharded(key, 2).unwrap();
    let sessions = 8usize;
    let client = FleetClient::connect(server.addr(), sessions, key)
        .unwrap()
        .with_tamper(TamperConfig { flip_every: 3 });
    let fleet = graphs(sessions, 31);

    let mut undetected = 0usize;
    for (i, g) in fleet.iter().enumerate() {
        let messages = local_phase(&EdgeCountProtocol, g);
        let arrivals = messages.iter().cloned().enumerate().map(|(j, m)| (j as u32 + 1, m));
        match client.verify_session(SessionId(i as u64), g.n(), arrivals) {
            Err(_) => {} // failed closed
            Ok(digest) => {
                // Only reachable if no tampered frame hit this session's
                // connection before the verdict — the digest must then
                // pin the untampered vector.
                if digest != vector_digest(&key, &messages) {
                    undetected += 1;
                }
            }
        }
    }
    assert_eq!(undetected, 0, "a corrupted session was accepted");

    let client_stats = client.metrics();
    let server_stats = server.stop();
    assert!(client_stats.tampered > 0, "tamper hook never fired");
    assert!(server_stats.mac_rejects > 0, "no corruption reached MAC verification");
}

// ---------------------------------------------------------------------------
// Bind configuration
// ---------------------------------------------------------------------------

/// The bind address is configurable per builder (cross-host readiness);
/// `127.0.0.1:0` stands in for a routable address so the test cannot
/// collide with anything. The env-var precedence (`REFEREE_WIRENET_BIND`)
/// is unit-tested in `fleet::tests::bind_resolution_precedence` with the
/// value passed as a parameter — tests run in parallel threads, so
/// mutating the process environment here would race other servers'
/// spawns.
#[test]
fn bind_address_is_configurable() {
    let key = AuthKey::from_seed(26);
    let server =
        FleetServer::builder(key).bind("127.0.0.1:0".parse().unwrap()).spawn().unwrap();
    assert!(server.addr().ip().is_loopback());
    // The handshake works on an explicitly bound server.
    let client = FleetClient::connect(server.addr(), 1, key).unwrap();
    drop(client);
    server.stop();
}

/// Post-review hardening, part 1: faulty sessions cannot wedge the
/// client. Under-delivery errors immediately client-side; a substituted
/// sender (full count, but one node replaced by an out-of-range stray)
/// is judged fast server-side even though a shard's range never fills.
#[test]
fn incomplete_or_substituted_sessions_never_hang() {
    let key = AuthKey::from_seed(33);
    let server = FleetServer::spawn_sharded(key, 3).unwrap();
    let client = FleetClient::connect(server.addr(), 1, key).unwrap();
    let g = generators::grid(3, 4);
    let n = g.n();
    let messages = local_phase(&EdgeCountProtocol, &g);

    // n − 1 arrivals: the referee would wait forever; the client must
    // reject before sending anything (no wedged session server-side).
    let short: Vec<_> = messages
        .iter()
        .cloned()
        .enumerate()
        .map(|(j, m)| (j as u32 + 1, m))
        .take(n - 1)
        .collect();
    match client.verify_session(SessionId(1), n, short) {
        Err(DecodeError::Inconsistent(msg)) => {
            assert!(msg.contains("needs exactly"), "{msg}")
        }
        other => panic!("under-delivery must error immediately, got {other:?}"),
    }
    assert_eq!(
        client.metrics().frames_sent,
        0,
        "a rejected call must not announce the session"
    );

    // n arrivals, but node 5's message replaced by a stray sender: the
    // stray poisons the session, so the verdict arrives although node
    // 5's shard never completes.
    let substituted: Vec<_> = messages
        .iter()
        .cloned()
        .enumerate()
        .map(|(j, m)| if j == 4 { (n as u32 + 9, m) } else { (j as u32 + 1, m) })
        .collect();
    match client.verify_session(SessionId(2), n, substituted) {
        Err(DecodeError::OutOfRange(_)) => {}
        other => panic!("substituted sender must reject fast, got {other:?}"),
    }
    server.stop();
}

/// Post-review hardening, part 2: sessions are keyed per connection, so
/// two clients (as cross-host fleets naturally do) may both use
/// SessionId(0) without colliding — and a judged id is reusable on its
/// own connection.
#[test]
fn session_ids_are_per_connection_and_reusable_after_verdict() {
    let key = AuthKey::from_seed(34);
    let server = FleetServer::spawn_sharded(key, 2).unwrap();
    let a = FleetClient::connect(server.addr(), 1, key).unwrap();
    let b = FleetClient::connect(server.addr(), 1, key).unwrap();
    let g = generators::grid(2, 5);
    let messages = local_phase(&EdgeCountProtocol, &g);
    let arrivals = || {
        messages.iter().cloned().enumerate().map(|(j, m)| (j as u32 + 1, m)).collect::<Vec<_>>()
    };
    let want = vector_digest(&key, &messages);

    // Same id on two different clients: both verify.
    assert_eq!(a.verify_session(SessionId(0), g.n(), arrivals()).unwrap(), want);
    assert_eq!(b.verify_session(SessionId(0), g.n(), arrivals()).unwrap(), want);
    // Reusing a judged id on the same client/connection: still fine.
    assert_eq!(a.verify_session(SessionId(0), g.n(), arrivals()).unwrap(), want);

    let stats = server.stop();
    assert_eq!(stats.verdict_frames, 3);
    assert_eq!(stats.decode_rejects, 0, "no honest announce may poison a connection");
}
