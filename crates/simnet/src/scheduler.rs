//! The concurrency layer: run thousands of independent sessions on a
//! fixed worker pool.
//!
//! Work distribution is claim-based batching over scoped threads: a
//! shared atomic cursor hands each idle worker the next contiguous batch
//! of session indices, so fast workers steal the tail from slow ones
//! without any channel or lock on the hot path. Within a batch, sessions
//! are *interleaved* — each gets one `step()` per sweep of the batch —
//! exercising the poll-style API exactly the way an async reactor would.
//!
//! While a sweep runs, the per-run nested parallelism of the legacy
//! simulator ([`referee_protocol::parallel_threshold`]) is disabled:
//! with every core already driving sessions, a per-session fan-out would
//! only oversubscribe the machine.

use crate::byzantine::{ByzantineConfig, InjectionCounts, Misbehaving};
use crate::fault::{FaultConfig, FaultyTransport};
use crate::metrics::AggregateMetrics;
use crate::session::{
    MultiRoundReport, MultiRoundSession, OneRoundReport, OneRoundSession, Step,
};
use crate::shard::multiround::{ShardedMultiRoundReport, ShardedMultiRoundSession};
use crate::shard::{ShardedOneRoundSession, ShardedReport};
use crate::transport::{PerfectTransport, SessionId};
use referee_graph::{LabelledGraph, VertexId};
use referee_protocol::evidence::{EvidenceBundle, SessionParams};
use referee_protocol::multiround::{MultiRoundProtocol, MultiRoundStats};
use referee_protocol::trace::{wall_clock_us, FlightRecorder, TraceKind};
use referee_protocol::MacKey;
use referee_protocol::{DecodeError, Message, OneRoundProtocol};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Runs batches of sessions across a scoped worker pool.
#[derive(Debug, Clone)]
pub struct Scheduler {
    /// Worker threads (defaults to available parallelism, capped at 64).
    pub workers: usize,
    /// Sessions claimed per cursor fetch.
    pub batch: usize,
    /// Optional flight recorder: when set, every claimed batch records a
    /// `TaskStart`/`TaskEnd` pair (endpoint `0x300 + worker`, payload =
    /// the batch's `lo` index), so a post-mortem shows how the claim
    /// cursor actually distributed work across the pool.
    recorder: Option<Arc<FlightRecorder>>,
}

impl Default for Scheduler {
    fn default() -> Self {
        let workers = std::thread::available_parallelism().map_or(4, |p| p.get()).min(64);
        Scheduler { workers, batch: 32, recorder: None }
    }
}

impl Scheduler {
    /// A scheduler with explicit worker and batch sizes (both clamped to
    /// at least 1).
    pub fn new(workers: usize, batch: usize) -> Self {
        Scheduler { workers: workers.max(1), batch: batch.max(1), recorder: None }
    }

    /// Attach a flight recorder; see the `recorder` field docs.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Generic claim-based parallel map: `run(i)` for every `i` in
    /// `0..jobs`, results in index order.
    pub fn run_indexed<R, F>(&self, jobs: usize, run: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        self.run_batched(jobs, |lo, hi| (lo..hi).map(&run).collect())
    }

    /// The one claim-based worker loop everything above builds on: idle
    /// workers fetch-add the next contiguous `[lo, hi)` batch off a
    /// shared cursor, run `drive_batch` on it, and results are
    /// reassembled in input order.
    fn run_batched<R, F>(&self, jobs: usize, drive_batch: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize, usize) -> Vec<R> + Sync,
    {
        // Clamp at the point of use: the fields are public, and
        // `batch = 0` would spin the cursor forever while `workers = 0`
        // would silently run nothing.
        let batch = self.batch.max(1);
        let workers = self.workers.clamp(1, jobs.max(1));
        let cursor = AtomicUsize::new(0);
        let mut tagged: Vec<(usize, Vec<R>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let cursor = &cursor;
                    let drive_batch = &drive_batch;
                    let recorder = self.recorder.as_deref();
                    scope.spawn(move || {
                        let endpoint = 0x300 + w as u32;
                        let mut mine = Vec::new();
                        loop {
                            let lo = cursor.fetch_add(batch, Ordering::Relaxed);
                            if lo >= jobs {
                                break;
                            }
                            let hi = (lo + batch).min(jobs);
                            if let Some(r) = recorder {
                                r.record(
                                    wall_clock_us(),
                                    0,
                                    endpoint,
                                    TraceKind::TaskStart,
                                    lo as u64,
                                );
                            }
                            mine.push((lo, drive_batch(lo, hi)));
                            if let Some(r) = recorder {
                                r.record(
                                    wall_clock_us(),
                                    0,
                                    endpoint,
                                    TraceKind::TaskEnd,
                                    lo as u64,
                                );
                            }
                        }
                        mine
                    })
                })
                .collect();
            handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
        });
        tagged.sort_by_key(|(lo, _)| *lo);
        tagged.into_iter().flat_map(|(_, rs)| rs).collect()
    }

    /// Run `protocol` once per graph, each session on its own transport
    /// (faulty when `faults` is given, perfect otherwise), interleaving
    /// sessions within each claimed batch.
    pub fn sweep_one_round<P>(
        &self,
        protocol: &P,
        graphs: &[LabelledGraph],
        faults: Option<FaultConfig>,
    ) -> SweepReport<OneRoundReport<P::Output>>
    where
        P: OneRoundProtocol + Sync,
        P::Output: Send,
    {
        self.sweep(graphs.len(), |lo, hi| {
            let mut lanes: Vec<Option<_>> = (lo..hi)
                .map(|i| {
                    let transport = session_transport(faults, i);
                    Some((OneRoundSession::new(protocol, &graphs[i]), transport))
                })
                .collect();
            drive_interleaved(&mut lanes, |s, t| s.step(t), |s, t| s.into_report(t))
        })
    }

    /// Like [`sweep_one_round`](Self::sweep_one_round), but every
    /// session's referee runs as `shards` mergeable shards with a
    /// cross-shard exchange phase. Exchange orders are scrambled with a
    /// per-lane seed (decorrelated the same way transport fault seeds
    /// are), so a sweep exercises many interleavings at once.
    pub fn sweep_one_round_sharded<P>(
        &self,
        protocol: &P,
        graphs: &[LabelledGraph],
        shards: usize,
        faults: Option<FaultConfig>,
    ) -> SweepReport<ShardedReport<P::Output>>
    where
        P: OneRoundProtocol + Sync,
        P::Output: Send,
    {
        self.sweep(graphs.len(), |lo, hi| {
            let mut lanes: Vec<Option<_>> = (lo..hi)
                .map(|i| {
                    let transport = session_transport(faults, i);
                    let session = ShardedOneRoundSession::new(protocol, &graphs[i], shards)
                        .with_exchange_seed(lane_seed(0x9aa2_d1b5, i));
                    Some((session, transport))
                })
                .collect();
            drive_interleaved(&mut lanes, |s, t| s.step(t), |s, t| s.into_report(t))
        })
    }

    /// Multi-round analogue of [`sweep_one_round`](Self::sweep_one_round).
    pub fn sweep_multi_round<P>(
        &self,
        protocol: &P,
        graphs: &[LabelledGraph],
        max_rounds: usize,
        faults: Option<FaultConfig>,
    ) -> SweepReport<MultiRoundReport<P::Output>>
    where
        P: MultiRoundProtocol + Sync,
        P::Output: Send,
        P::NodeState: Send,
        P::RefereeState: Send,
    {
        self.sweep(graphs.len(), |lo, hi| {
            let mut lanes: Vec<Option<_>> = (lo..hi)
                .map(|i| {
                    let transport = session_transport(faults, i);
                    Some((MultiRoundSession::new(protocol, &graphs[i], max_rounds), transport))
                })
                .collect();
            drive_interleaved(&mut lanes, |s, t| s.step(t), |s, t| s.into_report(t))
        })
    }

    /// Like [`sweep_multi_round`](Self::sweep_multi_round), but every
    /// session's per-round referee wait runs as `shards` mergeable
    /// shards with a cross-shard exchange phase before each
    /// `referee_step`. Exchange orders are scrambled with a per-lane
    /// seed, so a sweep exercises many interleavings at once; the
    /// aggregate can be reclassified with
    /// [`SweepReport::reclassify_ok`] exactly like every other sweep
    /// (the rollup is rebuilt from the reports, never patched).
    pub fn sweep_multi_round_sharded<P>(
        &self,
        protocol: &P,
        graphs: &[LabelledGraph],
        shards: usize,
        max_rounds: usize,
        faults: Option<FaultConfig>,
    ) -> SweepReport<ShardedMultiRoundReport<P::Output>>
    where
        P: MultiRoundProtocol + Sync,
        P::Output: Send,
        P::NodeState: Send,
        P::RefereeState: Send,
    {
        self.sweep(graphs.len(), |lo, hi| {
            let mut lanes: Vec<Option<_>> = (lo..hi)
                .map(|i| {
                    let transport = session_transport(faults, i);
                    let session =
                        ShardedMultiRoundSession::new(protocol, &graphs[i], shards, max_rounds)
                            .with_exchange_seed(lane_seed(0x51ab_77ed, i));
                    Some((session, transport))
                })
                .collect();
            drive_interleaved(&mut lanes, |s, t| s.step(t), |s, t| s.into_report(t))
        })
    }

    /// Sweep sharded one-round sessions over seeded byzantine
    /// [`Misbehaving`] transports: lane `i` runs on `graphs[i]` with a
    /// per-lane derived seed, byzantine mask, session id and base key,
    /// and after the session ends (however it ends) the independent
    /// prosecutor scans the MAC'd transcript into evidence bundles.
    /// Each [`ByzantineReport`] carries everything a third-party
    /// verifier needs (`base`, `params`) plus the injection ground
    /// truth, so harnesses can assert the accountability properties —
    /// completeness and no-framing — per lane.
    pub fn sweep_byzantine<P>(
        &self,
        protocol: &P,
        graphs: &[LabelledGraph],
        shards: usize,
        cfg: ByzantineConfig,
    ) -> SweepReport<ByzantineReport<P::Output>>
    where
        P: OneRoundProtocol + Sync,
        P::Output: Send,
    {
        self.sweep(graphs.len(), |lo, hi| {
            let mut lanes: Vec<Option<_>> = (lo..hi)
                .map(|i| {
                    let g = &graphs[i];
                    let lane_cfg = ByzantineConfig { seed: lane_seed(cfg.seed, i), ..cfg };
                    let params =
                        SessionParams { session: i as u64 + 1, n: g.n() as u32, round_cap: 1 };
                    let base = byzantine_base_key(lane_cfg.seed);
                    let mask = lane_cfg.sample_mask(g.n());
                    let transport =
                        Misbehaving::new(PerfectTransport::new(), lane_cfg, mask, base, params);
                    let session = ShardedOneRoundSession::new(protocol, g, shards)
                        .with_session(SessionId(params.session))
                        .with_exchange_seed(lane_seed(0x6b79_7a61, i));
                    Some((session, transport))
                })
                .collect();
            drive_interleaved(
                &mut lanes,
                |s, t| s.step(t),
                |s, t: &Misbehaving<PerfectTransport>| {
                    let report = s.into_report(t);
                    ByzantineReport {
                        outcome: report.outcome,
                        metrics: report.metrics,
                        shards: report.shards,
                        base: t.base_key(),
                        params: t.params(),
                        mask: t.mask().iter().copied().collect(),
                        injections: t.injections(),
                        bundles: t.prosecute(),
                    }
                },
            )
        })
    }

    /// Sweep a **heterogeneous mix** of protocols in one pool: session
    /// `i` runs `lanes[i % lanes.len()]`'s protocol on `graphs[i]`, so
    /// sessions of every service interleave within each claimed batch —
    /// the sans-I/O twin of a catalog-mode
    /// `FleetServer` refereeing several services concurrently. Outputs
    /// are type-erased through each lane's encoder (the same
    /// `fn(&Output) -> Message` a
    /// [`ServiceCatalog`](referee_protocol::service::ServiceCatalog)
    /// entry registers), so one [`SweepReport`] aggregates across
    /// protocols while staying bit-comparable to wire verdicts.
    ///
    /// Panics if `lanes` is empty.
    pub fn sweep_mixed<'a>(
        &self,
        lanes: &[MixedLane<'a>],
        graphs: &'a [LabelledGraph],
        max_rounds: usize,
        faults: Option<FaultConfig>,
    ) -> SweepReport<MixedReport> {
        assert!(!lanes.is_empty(), "sweep_mixed needs at least one lane");
        self.sweep(graphs.len(), |lo, hi| {
            let mut live: Vec<Option<_>> = (lo..hi)
                .map(|i| {
                    let transport = session_transport(faults, i);
                    let session = lanes[i % lanes.len()].open(&graphs[i], max_rounds);
                    Some((session, transport))
                })
                .collect();
            drive_interleaved(&mut live, |s, t| s.step(t), |s, t| s.finish(t))
        })
    }

    /// Shared sweep driver: claim batches, run them, aggregate.
    fn sweep<R: Report + Send>(
        &self,
        jobs: usize,
        drive_batch: impl Fn(usize, usize) -> Vec<R> + Sync,
    ) -> SweepReport<R> {
        // Sessions already saturate the pool; nested per-run parallelism
        // would oversubscribe it. The guard is reference-counted (nested
        // or concurrent sweeps restore only when the last one exits) and
        // restores on unwind if a worker panics.
        let _guard = NestedParallelismGuard::enter();

        let t0 = Instant::now();
        let reports = self.run_batched(jobs, drive_batch);
        let mut aggregate = AggregateMetrics::default();
        for r in &reports {
            aggregate.absorb(r.metrics(), r.is_ok());
        }
        aggregate.wall_seconds = t0.elapsed().as_secs_f64();
        SweepReport { reports, aggregate }
    }
}

/// Process-wide, reference-counted suspension of the legacy simulators'
/// nested parallelism. Save/suspend and restore both happen under one
/// mutex, so overlapping sweeps can never observe `usize::MAX` as the
/// "previous" value, the last sweep out restores, and a panicking sweep
/// still restores on unwind (poisoned locks are ridden through — the
/// state stays valid).
struct NestedParallelismGuard;

/// `(active_sweeps, saved_threshold)`.
static SWEEP_STATE: Mutex<(usize, usize)> = Mutex::new((0, 0));

fn sweep_state() -> std::sync::MutexGuard<'static, (usize, usize)> {
    SWEEP_STATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl NestedParallelismGuard {
    fn enter() -> Self {
        let mut state = sweep_state();
        if state.0 == 0 {
            state.1 = referee_protocol::parallel_threshold();
            referee_protocol::set_parallel_threshold(usize::MAX);
        }
        state.0 += 1;
        NestedParallelismGuard
    }
}

impl Drop for NestedParallelismGuard {
    fn drop(&mut self) {
        let mut state = sweep_state();
        state.0 -= 1;
        if state.0 == 0 {
            referee_protocol::set_parallel_threshold(state.1);
        }
    }
}

/// The transport every scheduler lane uses: fault-injecting when
/// configured, a transparent lossless decorator otherwise. Per-lane seeds
/// are derived by splitmix-style mixing so lanes are decorrelated.
fn session_transport(
    faults: Option<FaultConfig>,
    lane: usize,
) -> FaultyTransport<PerfectTransport> {
    let mut cfg = faults.unwrap_or(FaultConfig::lossless(0));
    cfg.seed = lane_seed(cfg.seed, lane);
    FaultyTransport::new(PerfectTransport::new(), cfg)
}

/// Splitmix-style per-lane seed derivation (decorrelates lanes).
fn lane_seed(base: u64, lane: usize) -> u64 {
    base.wrapping_add((lane as u64).wrapping_mul(0x9e3779b97f4a7c15))
        .wrapping_add(0xd1b54a32d192ed03)
}

/// Deterministic per-lane session base key for byzantine sweeps (a
/// fixture-quality derivation — real deployments provision keys out of
/// band).
fn byzantine_base_key(seed: u64) -> MacKey {
    let mut k = [0u8; 16];
    k[..8].copy_from_slice(&seed.to_le_bytes());
    k[8..]
        .copy_from_slice(&seed.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17).to_le_bytes());
    MacKey(k)
}

/// Round-robin step every live lane until all complete.
fn drive_interleaved<S, T, R>(
    lanes: &mut [Option<(S, T)>],
    mut step: impl FnMut(&mut S, &mut T) -> Step,
    mut finish: impl FnMut(S, &T) -> R,
) -> Vec<R> {
    let mut done: Vec<Option<R>> = (0..lanes.len()).map(|_| None).collect();
    let mut remaining = lanes.len();
    while remaining > 0 {
        for (i, lane) in lanes.iter_mut().enumerate() {
            if let Some((mut session, mut transport)) = lane.take() {
                if step(&mut session, &mut transport) == Step::Done {
                    done[i] = Some(finish(session, &transport));
                    remaining -= 1;
                } else {
                    *lane = Some((session, transport));
                }
            }
        }
    }
    done.into_iter().map(|r| r.expect("lane finished")).collect()
}

/// A whole sweep: per-session reports plus the fleet rollup.
#[derive(Debug)]
pub struct SweepReport<R> {
    /// One report per input graph, in input order.
    pub reports: Vec<R>,
    /// The rollup (including sweep wall time). `ok`/`rejected` here
    /// count *session-level* outcomes (did delivery complete?); see
    /// [`SweepReport::reclassify_ok`] for protocol-aware counting.
    pub aggregate: AggregateMetrics,
}

impl<R: Report> SweepReport<R> {
    /// Reclassify every session with a caller-supplied notion of
    /// "usable outcome" and **rebuild the whole fleet rollup** from the
    /// per-session reports under that classification.
    ///
    /// The generic runtime can only see whether a session *delivered*;
    /// protocols whose `Output` is itself a `Result` (the degeneracy
    /// family, checked Borůvka) report decoder-level rejections inside
    /// that output, invisible at this layer. Callers that know the
    /// concrete type pass a classifier to fold those in.
    ///
    /// Rebuilding (rather than patching `ok`/`rejected` in place)
    /// guarantees no counter can be left stale relative to the reports —
    /// every tally, including the session counts, message-bit totals and
    /// merged transport counters, is recomputed; only the measured
    /// `wall_seconds` of the sweep is preserved. The method is
    /// idempotent.
    pub fn reclassify_ok(&mut self, usable: impl Fn(&R) -> bool) {
        let wall_seconds = self.aggregate.wall_seconds;
        let mut fresh = AggregateMetrics::default();
        for r in &self.reports {
            fresh.absorb(r.metrics(), usable(r));
        }
        fresh.wall_seconds = wall_seconds;
        self.aggregate = fresh;
    }
}

/// Internal: lets the shared sweep driver aggregate either report type.
pub trait Report {
    /// Session metrics for aggregation.
    fn metrics(&self) -> &crate::metrics::SessionMetrics;
    /// Whether the session produced a usable outcome.
    fn is_ok(&self) -> bool;
}

impl<O> Report for OneRoundReport<O> {
    fn metrics(&self) -> &crate::metrics::SessionMetrics {
        &self.metrics
    }
    fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }
}

impl<O> Report for MultiRoundReport<O> {
    fn metrics(&self) -> &crate::metrics::SessionMetrics {
        &self.metrics
    }
    fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }
}

impl<O> Report for ShardedReport<O> {
    fn metrics(&self) -> &crate::metrics::SessionMetrics {
        &self.metrics
    }
    fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }
}

/// Outcome of one byzantine-sweep lane: the session result plus
/// everything needed to independently verify (or refute) the evidence
/// the prosecutor produced.
#[derive(Debug)]
pub struct ByzantineReport<O> {
    /// The referee's output, or the failure that ended the session.
    pub outcome: Result<O, DecodeError>,
    /// Per-session delivery metrics.
    pub metrics: crate::metrics::SessionMetrics,
    /// Shard count the session ran with.
    pub shards: usize,
    /// The session base key — the only secret a third-party verifier
    /// needs.
    pub base: MacKey,
    /// Public session facts ([`verify_bundle`](referee_protocol::evidence::verify_bundle)
    /// input).
    pub params: SessionParams,
    /// The byzantine nodes this lane actually ran with.
    pub mask: Vec<VertexId>,
    /// Injection ground truth from the [`Misbehaving`] wrapper.
    pub injections: InjectionCounts,
    /// Evidence bundles the prosecutor built from the transcript.
    pub bundles: Vec<EvidenceBundle>,
}

impl<O> Report for ByzantineReport<O> {
    fn metrics(&self) -> &crate::metrics::SessionMetrics {
        &self.metrics
    }
    fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }
}

impl<O> Report for ShardedMultiRoundReport<O> {
    fn metrics(&self) -> &crate::metrics::SessionMetrics {
        &self.metrics
    }
    fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }
}

/// One service in a heterogeneous [`Scheduler::sweep_mixed`] pool: a
/// protocol plus the verdict encoder a
/// [`ServiceCatalog`](referee_protocol::service::ServiceCatalog) entry
/// would register for it. The protocol's concrete `Output` is erased at
/// the lane boundary, so lanes of different protocols coexist in one
/// slice and one sweep.
pub struct MixedLane<'a> {
    name: String,
    open: Box<dyn Fn(&'a LabelledGraph, usize) -> Box<dyn ErasedMultiRound + 'a> + Sync + 'a>,
}

impl std::fmt::Debug for MixedLane<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MixedLane").field("name", &self.name).finish_non_exhaustive()
    }
}

impl<'a> MixedLane<'a> {
    /// A lane running `protocol` under `name`, erasing outputs through
    /// `encode` (use the same encoder the catalog entry registers so
    /// simnet outcomes stay bit-comparable to wire verdicts).
    pub fn new<P>(
        name: &str,
        protocol: &'a P,
        encode: fn(&P::Output) -> Message,
    ) -> MixedLane<'a>
    where
        P: MultiRoundProtocol + Sync,
        P::Output: Send,
        P::NodeState: Send,
        P::RefereeState: Send,
    {
        let service = name.to_string();
        MixedLane {
            name: service.clone(),
            open: Box::new(move |g, max_rounds| {
                Box::new(ErasedSession {
                    session: MultiRoundSession::new(protocol, g, max_rounds),
                    encode,
                    service: service.clone(),
                })
            }),
        }
    }

    /// The service name stamped on every report this lane produces.
    pub fn name(&self) -> &str {
        &self.name
    }

    fn open(&self, g: &'a LabelledGraph, max_rounds: usize) -> Box<dyn ErasedMultiRound + 'a> {
        (self.open)(g, max_rounds)
    }
}

/// Object-safe view of an in-flight multi-round session; the concrete
/// protocol (and its `Output`) hide behind this so [`MixedLane`]s of
/// different protocols share one sweep.
trait ErasedMultiRound {
    fn step(&mut self, transport: &mut FaultyTransport<PerfectTransport>) -> Step;
    fn finish(self: Box<Self>, transport: &FaultyTransport<PerfectTransport>) -> MixedReport;
}

struct ErasedSession<'a, P: MultiRoundProtocol> {
    session: MultiRoundSession<'a, P>,
    encode: fn(&P::Output) -> Message,
    service: String,
}

impl<P: MultiRoundProtocol> ErasedMultiRound for ErasedSession<'_, P> {
    fn step(&mut self, transport: &mut FaultyTransport<PerfectTransport>) -> Step {
        self.session.step(transport)
    }
    fn finish(self: Box<Self>, transport: &FaultyTransport<PerfectTransport>) -> MixedReport {
        let report = self.session.into_report(transport);
        MixedReport {
            service: self.service,
            outcome: report.outcome.map(|o| o.map(|out| (self.encode)(&out))),
            metrics: report.metrics,
            stats: report.stats,
        }
    }
}

/// A [`MultiRoundReport`] with the output already pushed through its
/// lane's verdict encoder, plus the lane name — the common shape every
/// protocol in a mixed sweep reduces to.
#[derive(Debug, Clone)]
pub struct MixedReport {
    /// Which [`MixedLane`] produced this report.
    pub service: String,
    /// `Ok(Some(encoded))` when the referee returned a verdict within
    /// the round budget; `Ok(None)` when the budget ran out; `Err` when
    /// the session-layer runtime rejected delivery.
    pub outcome: Result<Option<Message>, DecodeError>,
    /// Per-session delivery metrics.
    pub metrics: crate::metrics::SessionMetrics,
    /// Round/bit complexity as measured by the session runtime.
    pub stats: MultiRoundStats,
}

impl Report for MixedReport {
    fn metrics(&self) -> &crate::metrics::SessionMetrics {
        &self.metrics
    }
    fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_indexed_is_ordered_and_complete() {
        let s = Scheduler::new(8, 3);
        let out = s.run_indexed(100, |i| i * i);
        assert_eq!(out.len(), 100);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn run_indexed_zero_jobs() {
        let s = Scheduler::default();
        let out: Vec<u8> = s.run_indexed(0, |_| unreachable!("no jobs"));
        assert!(out.is_empty());
    }

    /// One pool, three services interleaved per batch: every mixed
    /// report must carry its lane's name and an encoded verdict
    /// bit-for-bit equal to running that lane's protocol directly.
    #[test]
    fn sweep_mixed_interleaves_services_and_matches_direct_runs() {
        use referee_protocol::combinators::OneRoundAsMultiRound;
        use referee_protocol::easy::{DegreeSequenceProtocol, EdgeCountProtocol};
        use referee_protocol::multiround::{run_multiround, BoruvkaConnectivity};
        use referee_protocol::service::encode_bool_output;
        use referee_protocol::BitWriter;

        fn encode_count(out: &Result<usize, DecodeError>) -> Message {
            let mut w = BitWriter::new();
            match out {
                Ok(v) => {
                    w.push_bit(true);
                    w.write_bits(*v as u64, 32);
                }
                Err(_) => w.push_bit(false),
            }
            Message::from_writer(w)
        }
        fn encode_degrees(out: &Result<Vec<usize>, DecodeError>) -> Message {
            let mut w = BitWriter::new();
            match out {
                Ok(ds) => {
                    w.push_bit(true);
                    for d in ds {
                        w.write_bits(*d as u64, 16);
                    }
                }
                Err(_) => w.push_bit(false),
            }
            Message::from_writer(w)
        }

        let graphs: Vec<LabelledGraph> = (0..9)
            .map(|i| match i % 3 {
                0 => referee_graph::generators::cycle(4 + i).expect("n >= 3"),
                1 => referee_graph::generators::grid(2, 2 + i),
                _ => referee_graph::generators::star(3 + i).expect("n >= 1"),
            })
            .collect();

        let edge_count = OneRoundAsMultiRound(EdgeCountProtocol);
        let degrees = OneRoundAsMultiRound(DegreeSequenceProtocol);
        let lanes = [
            MixedLane::new("boruvka", &BoruvkaConnectivity, encode_bool_output),
            MixedLane::new("edge-count", &edge_count, encode_count),
            MixedLane::new("degrees", &degrees, encode_degrees),
        ];
        let sweep = Scheduler::new(4, 2).sweep_mixed(&lanes, &graphs, 64, None);
        assert_eq!(sweep.reports.len(), graphs.len());
        assert_eq!(sweep.aggregate.ok, graphs.len());
        for (i, r) in sweep.reports.iter().enumerate() {
            assert_eq!(r.service, lanes[i % lanes.len()].name());
            let got =
                r.outcome.as_ref().expect("delivered").as_ref().expect("verdict within budget");
            let want = match i % lanes.len() {
                0 => encode_bool_output(
                    &run_multiround(&BoruvkaConnectivity, &graphs[i], 64).0.expect("verdict"),
                ),
                1 => encode_count(
                    &run_multiround(&edge_count, &graphs[i], 64).0.expect("verdict"),
                ),
                _ => encode_degrees(
                    &run_multiround(&degrees, &graphs[i], 64).0.expect("verdict"),
                ),
            };
            assert_eq!(got.len_bits(), want.len_bits(), "lane {i}");
            assert_eq!(got.as_bytes(), want.as_bytes(), "lane {i}");
            assert!(r.stats.rounds >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn sweep_mixed_rejects_empty_lane_set() {
        let graphs = [referee_graph::generators::grid(2, 2)];
        Scheduler::new(1, 1).sweep_mixed(&[], &graphs, 8, None);
    }

    #[test]
    fn reclassify_rebuilds_every_fleet_counter() {
        use referee_protocol::easy::EdgeCountProtocol;
        let graphs: Vec<_> =
            (0..12).map(|i| referee_graph::generators::grid(2, 2 + i % 3)).collect();
        let mut sweep = Scheduler::new(4, 3).sweep_one_round(&EdgeCountProtocol, &graphs, None);
        assert_eq!(sweep.aggregate.ok, 12);
        let wall = sweep.aggregate.wall_seconds;

        // Simulate the stale-tally bug: a caller (or a buggy merge) has
        // clobbered fleet counters. Reclassifying must restore every
        // field from the reports, not just patch ok/rejected.
        sweep.aggregate.ok = 999;
        sweep.aggregate.sessions = 0;
        sweep.aggregate.total_message_bits = 0;
        sweep.aggregate.total_rounds = 77;
        sweep.aggregate.transport = crate::metrics::TransportCounters::default();

        // Classify sessions on even-sized graphs as failures.
        sweep.reclassify_ok(|r| r.metrics.stats.n % 2 == 1);
        let expected_ok = graphs.iter().filter(|g| g.n() % 2 == 1).count();
        assert_eq!(sweep.aggregate.ok, expected_ok);
        assert_eq!(sweep.aggregate.rejected, 12 - expected_ok);
        assert_eq!(sweep.aggregate.sessions, 12);
        assert_eq!(sweep.aggregate.total_rounds, 12);
        let bits: u128 =
            sweep.reports.iter().map(|r| r.metrics.stats.total_message_bits as u128).sum();
        assert_eq!(sweep.aggregate.total_message_bits, bits);
        let sent: u64 = sweep.reports.iter().map(|r| r.metrics.transport.sent).sum();
        assert_eq!(sweep.aggregate.transport.sent, sent);
        assert_eq!(sweep.aggregate.wall_seconds, wall, "measured wall time preserved");

        // Idempotent: a second identical reclassification is a no-op.
        let before = format!("{:?}", sweep.aggregate);
        sweep.reclassify_ok(|r| r.metrics.stats.n % 2 == 1);
        assert_eq!(format!("{:?}", sweep.aggregate), before);
    }

    #[test]
    fn sharded_sweep_matches_unsharded() {
        use referee_protocol::easy::EdgeCountProtocol;
        let graphs: Vec<_> =
            (0..40).map(|i| referee_graph::generators::grid(2 + i % 3, 3 + i % 4)).collect();
        let s = Scheduler::new(4, 4);
        let mono = s.sweep_one_round(&EdgeCountProtocol, &graphs, None);
        for k in [1usize, 2, 5, 8] {
            let sharded = s.sweep_one_round_sharded(&EdgeCountProtocol, &graphs, k, None);
            assert_eq!(sharded.aggregate.ok, graphs.len());
            for (a, b) in sharded.reports.iter().zip(&mono.reports) {
                assert_eq!(a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap(), "k={k}");
                assert_eq!(
                    a.metrics.stats.total_message_bits,
                    b.metrics.stats.total_message_bits
                );
            }
        }
    }

    #[test]
    fn sharded_multi_round_sweep_matches_unsharded() {
        use referee_protocol::multiround::BoruvkaConnectivity;
        let graphs: Vec<_> =
            (0..24).map(|i| referee_graph::generators::grid(2 + i % 3, 2 + i % 5)).collect();
        let s = Scheduler::new(4, 4);
        let mono = s.sweep_multi_round(&BoruvkaConnectivity, &graphs, 64, None);
        for k in [1usize, 2, 4, 8] {
            let mut sharded =
                s.sweep_multi_round_sharded(&BoruvkaConnectivity, &graphs, k, 64, None);
            assert_eq!(sharded.aggregate.ok, graphs.len());
            for (a, b) in sharded.reports.iter().zip(&mono.reports) {
                assert_eq!(a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap(), "k={k}");
                assert_eq!(a.stats, b.stats, "k={k}");
            }
            // The protocol-aware reclassification path works unchanged:
            // every Borůvka verdict decodes in an honest sweep.
            sharded.reclassify_ok(|r| matches!(&r.outcome, Ok(Some(Ok(_)))));
            assert_eq!(sharded.aggregate.ok, graphs.len());
            assert_eq!(sharded.aggregate.sessions, graphs.len());
        }
    }

    #[test]
    fn degenerate_public_fields_are_clamped() {
        // The fields are public; zero values must neither hang (batch)
        // nor silently drop work (workers).
        let s = Scheduler { workers: 0, batch: 0, recorder: None };
        let out = s.run_indexed(10, |i| i + 1);
        assert_eq!(out, (1..=10).collect::<Vec<_>>());
    }

    #[test]
    fn recorder_sees_every_claimed_batch() {
        let recorder = Arc::new(FlightRecorder::with_capacity(1024));
        let s = Scheduler::new(4, 8).with_recorder(Arc::clone(&recorder));
        let out = s.run_indexed(50, |i| i);
        assert_eq!(out.len(), 50);
        let snap = recorder.snapshot();
        let starts: Vec<u64> = snap
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::TaskStart)
            .map(|e| e.payload)
            .collect();
        let ends: Vec<u64> = snap
            .events()
            .iter()
            .filter(|e| e.kind == TraceKind::TaskEnd)
            .map(|e| e.payload)
            .collect();
        // 50 jobs / batch 8 → 7 claims, each bracketed by a start/end
        // pair carrying the batch's lo index.
        let mut expect: Vec<u64> = (0..7).map(|b| b * 8).collect();
        let mut got_starts = starts.clone();
        got_starts.sort_unstable();
        let mut got_ends = ends;
        got_ends.sort_unstable();
        expect.sort_unstable();
        assert_eq!(got_starts, expect);
        assert_eq!(got_ends, expect);
        // Worker endpoints live in the 0x300 lane.
        assert!(snap.events().iter().all(|e| (0x300..0x340).contains(&e.endpoint)));
    }
}
