//! One-round public-coin **bipartiteness** via the bipartite double
//! cover (extension E18 — the other half of the paper's §IV discussion).
//!
//! §IV of the paper: *"Another natural question is whether one can find
//! a frugal one-round protocol deciding if a graph is bipartite. As
//! ongoing work, we have proved that the existence of a frugal one-round
//! protocol for bipartiteness implies the existence of a frugal one-round
//! protocol deciding if a bipartite graph is connected."* — i.e.
//! bipartiteness is at least as hard as (bipartite) connectivity in this
//! model. This module shows the public-coin counterpart: bipartiteness
//! reduces to connectivity *sketching* through the **bipartite double
//! cover** `B(G)`, so with shared randomness both problems sit at
//! `O(log³ n)` bits — reinforcing that the deterministic conjecture is
//! about determinism, not information.
//!
//! The double cover has vertices `v⁺ (= v)` and `v⁻ (= v + n)` and, for
//! every edge `{u, v}` of `G`, the two edges `{u⁺, v⁻}` and `{u⁻, v⁺}`.
//! A classical fact: a connected component `C` of `G` lifts to **two**
//! components of `B(G)` iff `C` is bipartite, and to **one** otherwise.
//! Hence `G` is bipartite ⟺ `cc(B(G)) = 2·cc(G)`.
//!
//! Crucially for the model, node `v` can compute the incidence vectors
//! of *both* of its cover copies from its local view alone (it knows its
//! neighbour IDs), so a single round suffices: each node ships
//! `phases × 3` sketches (its `G` vector plus its `v⁺` and `v⁻` cover
//! vectors) and the referee runs sketch-Borůvka on both graphs and
//! compares component counts. Error is Monte-Carlo two-sided (sampler
//! misses inflate either count), measured > 95% in the tests; every
//! *sampled* edge is genuine, so counts never undershoot.

use crate::boruvka::boruvka_components;
use crate::l0::{EdgeSlot, L0Sampler};
use referee_graph::{LabelledGraph, VertexId};
use referee_protocol::{BitWriter, DecodeError, Message, NodeView, OneRoundProtocol};

/// The public-coin one-round bipartiteness protocol.
#[derive(Debug, Clone, Copy)]
pub struct SketchBipartitenessProtocol {
    /// Shared seed (public coins); nodes and referee must agree.
    pub seed: u64,
}

/// Distinct key streams for the base-graph and cover sketches, so the
/// two Borůvka runs are independent.
const BASE_STREAM_SALT: u64 = 0x5eed_0000;
const COVER_STREAM_SALT: u64 = 0xc07e_0000;

impl SketchBipartitenessProtocol {
    /// Protocol with the given public coins.
    pub fn new(seed: u64) -> Self {
        SketchBipartitenessProtocol { seed }
    }

    /// Borůvka phase budget for the cover graph on `2n` vertices.
    ///
    /// `⌈log₂ 2n⌉` phases suffice when every sample lands; the equality
    /// test `cc(B) = 2·cc(G)` is sensitive to a *single* miss (it
    /// inflates one count), so four slack phases are budgeted — a miss
    /// only delays a merge, and each later phase retries with fresh
    /// keys, so the residual failure probability decays geometrically.
    pub fn phases_for(n: usize) -> u32 {
        (usize::BITS - (2 * n).max(1).leading_zeros()) + 4
    }

    /// Exact per-node message size in bits.
    pub fn message_bits(n: usize) -> usize {
        let phases = Self::phases_for(n) as usize;
        let base = L0Sampler::levels_for(n) as usize * 3 * 64;
        let cover = L0Sampler::levels_for(2 * n) as usize * 3 * 64;
        phases * (base + 2 * cover)
    }

    fn base_sketch(&self, view: NodeView<'_>, phase: u64) -> L0Sampler {
        let n = view.n;
        let mut sk = L0Sampler::new(n, self.seed, BASE_STREAM_SALT + phase);
        for &w in view.neighbours {
            let (a, b) = (view.id.min(w), view.id.max(w));
            let sign = if view.id == a { 1 } else { -1 };
            sk.update(EdgeSlot::encode(a, b), sign);
        }
        sk
    }

    /// Sketch of cover copy `v⁺` (`plus = true`) or `v⁻` of node `v`.
    /// Copy IDs: `v⁺ = v`, `v⁻ = v + n`, over a `2n` universe.
    fn cover_sketch(&self, view: NodeView<'_>, plus: bool, phase: u64) -> L0Sampler {
        let n = view.n;
        let mut sk = L0Sampler::new(2 * n, self.seed, COVER_STREAM_SALT + phase);
        let me = if plus { view.id } else { view.id + n as VertexId };
        for &w in view.neighbours {
            // v⁺ ~ w⁻ and v⁻ ~ w⁺.
            let other = if plus { w + n as VertexId } else { w };
            let (a, b) = (me.min(other), me.max(other));
            let sign = if me == a { 1 } else { -1 };
            sk.update(EdgeSlot::encode(a, b), sign);
        }
        sk
    }
}

impl OneRoundProtocol for SketchBipartitenessProtocol {
    /// `Ok(bipartite?)`, or a decode error on malformed messages.
    type Output = Result<bool, DecodeError>;

    fn name(&self) -> String {
        format!("public-coin double-cover bipartiteness (seed {})", self.seed)
    }

    fn local(&self, view: NodeView<'_>) -> Message {
        let mut w = BitWriter::new();
        for phase in 0..Self::phases_for(view.n) as u64 {
            self.base_sketch(view, phase).write(&mut w);
            self.cover_sketch(view, true, phase).write(&mut w);
            self.cover_sketch(view, false, phase).write(&mut w);
        }
        Message::from_writer(w)
    }

    fn global(&self, n: usize, messages: &[Message]) -> Self::Output {
        if messages.len() != n {
            return Err(DecodeError::Inconsistent(format!(
                "expected {n} messages, got {}",
                messages.len()
            )));
        }
        if n == 0 {
            return Ok(true); // vacuously bipartite
        }
        let phases = Self::phases_for(n) as usize;
        let mut base: Vec<Vec<L0Sampler>> = vec![Vec::with_capacity(phases); n];
        let mut cover: Vec<Vec<L0Sampler>> = vec![Vec::with_capacity(phases); 2 * n];
        for (i, msg) in messages.iter().enumerate() {
            let mut r = msg.reader();
            for phase in 0..phases as u64 {
                base[i].push(L0Sampler::read(&mut r, n, self.seed, BASE_STREAM_SALT + phase)?);
                cover[i].push(L0Sampler::read(
                    &mut r,
                    2 * n,
                    self.seed,
                    COVER_STREAM_SALT + phase,
                )?);
                cover[i + n].push(L0Sampler::read(
                    &mut r,
                    2 * n,
                    self.seed,
                    COVER_STREAM_SALT + phase,
                )?);
            }
            if !r.is_exhausted() {
                return Err(DecodeError::Invalid("trailing sketch bits".into()));
            }
        }
        let cc_g = boruvka_components(n, &base, phases).components;
        let cc_cover = boruvka_components(2 * n, &cover, phases).components;
        Ok(cc_cover == 2 * cc_g)
    }
}

/// Convenience: run the protocol on a graph with the given seed.
///
/// ```
/// use referee_graph::generators;
/// use referee_sketches::sketch_bipartiteness;
/// assert!(sketch_bipartiteness(&generators::grid(4, 5), 2011));
/// assert!(!sketch_bipartiteness(&generators::cycle(7).unwrap(), 2011));
/// ```
pub fn sketch_bipartiteness(g: &LabelledGraph, seed: u64) -> bool {
    referee_protocol::run_protocol(&SketchBipartitenessProtocol::new(seed), g)
        .output
        .expect("honest messages decode")
}

/// Build the bipartite double cover centrally (ground truth for tests
/// and the experiment tables): vertices `1..=2n`, with `v⁺ = v` and
/// `v⁻ = v + n`.
pub fn double_cover(g: &LabelledGraph) -> LabelledGraph {
    let n = g.n();
    let mut b = LabelledGraph::new(2 * n);
    for e in g.edges() {
        b.add_edge(e.0, e.1 + n as VertexId).expect("cover edge");
        b.add_edge(e.1, e.0 + n as VertexId).expect("cover edge");
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};
    use referee_graph::{algo, generators};

    #[test]
    fn double_cover_component_identity_exhaustive() {
        // cc(B(G)) = 2·cc(G) ⟺ bipartite, exhaustively at n = 5.
        for g in referee_graph::enumerate::all_graphs(5) {
            let b = double_cover(&g);
            let lifted = algo::component_count(&b);
            let baseline = algo::component_count(&g);
            assert_eq!(
                lifted == 2 * baseline,
                algo::is_bipartite(&g),
                "{g:?}: cc(B)={lifted}, cc(G)={baseline}"
            );
        }
    }

    #[test]
    fn bipartite_families_accepted() {
        let mut rng = StdRng::seed_from_u64(8);
        let graphs = vec![
            generators::path(30),
            generators::cycle(16).unwrap(),
            generators::complete_bipartite(5, 7),
            generators::grid(5, 6),
            generators::random_tree(40, &mut rng),
            generators::hypercube(4),
        ];
        for g in graphs {
            assert!(sketch_bipartiteness(&g, 2011), "{g:?}");
        }
    }

    #[test]
    fn non_bipartite_families_rejected() {
        let graphs = vec![
            generators::cycle(9).unwrap(),
            generators::complete(6),
            generators::petersen(),
            generators::wheel(8).unwrap(),
        ];
        for g in graphs {
            assert!(!sketch_bipartiteness(&g, 2011), "{g:?}");
        }
    }

    #[test]
    fn odd_cycle_planted_in_bipartite_bulk() {
        // A large bipartite graph with one odd cycle spliced in.
        let mut rng = StdRng::seed_from_u64(9);
        let mut g = generators::random_balanced_bipartite(40, 0.15, &mut rng);
        assert!(algo::is_bipartite(&g));
        // plant a triangle inside the left part
        g.add_edge_if_absent(1, 2).unwrap();
        g.add_edge_if_absent(2, 3).unwrap();
        g.add_edge_if_absent(1, 3).unwrap();
        assert!(!algo::is_bipartite(&g));
        assert!(!sketch_bipartiteness(&g, 77));
    }

    #[test]
    fn agreement_rate_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut total = 0;
        let mut agree = 0;
        for seed in 0..40u64 {
            let n = 24 + rng.gen_range(0..12);
            let p = [0.04, 0.08, 0.15][rng.gen_range(0..3)];
            let g = generators::gnp(n, p, &mut rng);
            total += 1;
            if sketch_bipartiteness(&g, 3000 + seed) == algo::is_bipartite(&g) {
                agree += 1;
            }
        }
        assert!(agree * 100 >= total * 95, "agreement {agree}/{total} below 95%");
    }

    #[test]
    fn disconnected_bipartite_and_mixed() {
        // Two bipartite components: still bipartite.
        let g = generators::path(8).disjoint_union(&generators::cycle(6).unwrap());
        assert!(sketch_bipartiteness(&g, 5));
        // Bipartite ⊎ odd cycle: not bipartite.
        let h = generators::path(8).disjoint_union(&generators::cycle(5).unwrap());
        assert!(!sketch_bipartiteness(&h, 5));
    }

    #[test]
    fn trivial_sizes() {
        assert!(sketch_bipartiteness(&LabelledGraph::new(0), 1));
        assert!(sketch_bipartiteness(&LabelledGraph::new(1), 1));
        assert!(sketch_bipartiteness(&LabelledGraph::new(4), 1)); // edgeless
    }

    #[test]
    fn message_size_polylog() {
        // Bits grow polylog in n: 64× more vertices < 4× more bits.
        let growth = SketchBipartitenessProtocol::message_bits(4096) as f64
            / SketchBipartitenessProtocol::message_bits(64) as f64;
        assert!(growth < 4.0, "growth {growth}");
        // and ~3× the plain connectivity message (base + two cover copies)
        let ratio = SketchBipartitenessProtocol::message_bits(1024) as f64
            / crate::connectivity::SketchConnectivityProtocol::message_bits(1024) as f64;
        assert!((2.0..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn malformed_messages_rejected() {
        let p = SketchBipartitenessProtocol::new(3);
        assert!(p.global(4, &vec![Message::empty(); 4]).is_err());
        assert!(p.global(4, &vec![Message::empty(); 2]).is_err());
    }
}
