//! E12–E14: the §IV open-question protocols.
//!
//! * E12 — partition connectivity: bits/node vs number of parts k.
//! * E13 — bipartiteness ⟹ bipartite connectivity (executable reduction).
//! * E14 — O(log n)-round Borůvka connectivity: rounds vs n.

use rand::{rngs::StdRng, SeedableRng};
use referee_core::partition::partition_connectivity;
use referee_graph::{algo, generators};
use referee_protocol::multiround::boruvka_connectivity;
use referee_protocol::run_protocol;
use referee_reductions::oracle::BipartitenessOracle;
use referee_reductions::BipartiteConnectivityReduction;

/// E12 rows: (k, max bits/node, bound, correct on all seeds).
pub fn partition_sweep(n: usize, ks: &[usize], seeds: u64) -> Vec<(usize, usize, usize, bool)> {
    ks.iter()
        .map(|&k| {
            let mut max_bits = 0;
            let mut bound = 0;
            let mut all_correct = true;
            for seed in 0..seeds {
                let mut rng = StdRng::seed_from_u64(300 + seed);
                let g = generators::gnp(n, 1.5 / n as f64, &mut rng);
                let out = partition_connectivity(&g, k);
                max_bits = max_bits.max(out.max_message_bits);
                bound = out.bound_bits;
                all_correct &= out.connected == algo::is_connected(&g);
            }
            (k, max_bits, bound, all_correct)
        })
        .collect()
}

/// E13 rows: (n, density, reduction answer == truth over all seeds).
pub fn bipartite_connectivity_sweep(ns: &[usize], seeds: u64) -> Vec<(usize, u64, u64)> {
    let delta = BipartiteConnectivityReduction::new(BipartitenessOracle);
    ns.iter()
        .map(|&n| {
            let mut agree = 0u64;
            let mut total = 0u64;
            for seed in 0..seeds {
                let mut rng = StdRng::seed_from_u64(400 + seed);
                // density around the connectivity threshold to get both answers
                let g = generators::random_balanced_bipartite(n, 2.0 / n as f64, &mut rng);
                let ans = run_protocol(&delta, &g).output.expect("honest messages");
                total += 1;
                if ans == algo::is_connected(&g) {
                    agree += 1;
                }
            }
            (n, agree, total)
        })
        .collect()
}

/// E17 rows: (n, sketch bits/node, adjacency bits/node on Δ=n−1,
/// agreement count, runs) — the public-coin one-round connectivity
/// protocol vs the open question's deterministic setting.
pub fn sketch_sweep(ns: &[usize], seeds: u64) -> Vec<(usize, usize, usize, u64, u64)> {
    use referee_sketches::connectivity::sketch_connectivity;
    use referee_sketches::SketchConnectivityProtocol;
    ns.iter()
        .map(|&n| {
            let sketch_bits = SketchConnectivityProtocol::message_bits(n);
            let adj_bits = n * referee_protocol::bits_for(n) as usize;
            let mut agree = 0u64;
            let mut total = 0u64;
            for seed in 0..seeds {
                let mut rng = StdRng::seed_from_u64(500 + seed);
                let g = generators::gnp(n, 2.5 / n as f64, &mut rng);
                total += 1;
                if sketch_connectivity(&g, 9000 + seed) == algo::is_connected(&g) {
                    agree += 1;
                }
            }
            (n, sketch_bits, adj_bits, agree, total)
        })
        .collect()
}

/// E14 rows: (n, rounds, ⌈log₂ n⌉, max message bits anywhere, correct).
pub fn boruvka_sweep(ns: &[usize]) -> Vec<(usize, usize, u32, usize, bool)> {
    ns.iter()
        .map(|&n| {
            // Path graphs are the adversarial case for label flooding.
            let g = generators::path(n);
            let (ans, stats) = boruvka_connectivity(&g);
            let max_bits =
                stats.max_uplink_bits.max(stats.max_downlink_bits).max(stats.max_link_bits);
            (n, stats.rounds, referee_protocol::bits_for(n), max_bits, ans)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_sweep_correct_and_bounded() {
        for (k, bits, bound, correct) in partition_sweep(80, &[2, 4, 8], 3) {
            assert!(correct, "k={k}");
            assert!(bits <= bound, "k={k}: {bits} > {bound}");
        }
    }

    #[test]
    fn bipartite_sweep_agrees() {
        for (n, agree, total) in bipartite_connectivity_sweep(&[8, 12], 4) {
            assert_eq!(agree, total, "n={n}");
        }
    }

    #[test]
    fn boruvka_rounds_grow_slowly() {
        let rows = boruvka_sweep(&[64, 1024]);
        for (n, rounds, logn, bits, ans) in rows {
            assert!(ans, "paths are connected (n={n})");
            assert!(rounds <= 6 * logn as usize, "n={n}: {rounds} rounds");
            assert!(bits <= 2 * logn as usize, "n={n}: {bits} bits");
        }
    }
}
