//! Histogram algebra, pinned: bucket-wise merge is commutative and
//! associative across any shard count in `1..=8` and any merge shape
//! (left fold vs pairwise tree vs recording everything into one
//! histogram), quantiles are monotone in `q` and overestimate a recorded
//! sample by strictly less than 2×, and snapshots survive their wire
//! encoding exactly.

use proptest::prelude::*;
use referee_protocol::hist::{bucket_of, HistSnapshot, LatencyHistogram, HIST_BUCKETS};

/// All samples folded into one snapshot.
fn snap_of(samples: &[u64]) -> HistSnapshot {
    let mut s = HistSnapshot::new();
    for &v in samples {
        s.record_us(v);
    }
    s
}

/// Merge a list of snapshots as a pairwise tree (the shape a fan-in of
/// shard hosts produces).
fn tree_merge(mut parts: Vec<HistSnapshot>) -> HistSnapshot {
    if parts.is_empty() {
        return HistSnapshot::new();
    }
    while parts.len() > 1 {
        let mut next = Vec::new();
        let mut it = parts.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                a.merge(&b);
            }
            next.push(a);
        }
        parts = next;
    }
    parts.pop().expect("non-empty")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// `a ∪ b = b ∪ a`.
    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(any::<u64>(), 0..150),
        b in proptest::collection::vec(any::<u64>(), 0..150),
    ) {
        let (sa, sb) = (snap_of(&a), snap_of(&b));
        let mut ab = sa;
        ab.merge(&sb);
        let mut ba = sb;
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
    }

    /// Split a sample multiset across `k ∈ 1..=8` shards: a left fold of
    /// the shard snapshots, a pairwise tree, and one histogram that saw
    /// every sample all agree exactly.
    #[test]
    fn merge_is_associative_across_shards(
        samples in proptest::collection::vec(any::<u64>(), 0..300),
        k in 1usize..=8,
    ) {
        let whole = snap_of(&samples);
        // Partition the multiset across shards by `v % k`.
        let shards: Vec<HistSnapshot> = (0..k)
            .map(|i| {
                let part: Vec<u64> =
                    samples.iter().copied().filter(|v| (*v % k as u64) == i as u64).collect();
                snap_of(&part)
            })
            .collect();
        let mut fold = HistSnapshot::new();
        for s in &shards {
            fold.merge(s);
        }
        let tree = tree_merge(shards.clone());
        prop_assert_eq!(fold, whole);
        prop_assert_eq!(tree, whole);
    }

    /// Quantiles never decrease as `q` grows, and every reported value
    /// is a valid bucket bound at least as large as some recorded sample.
    #[test]
    fn quantile_is_monotone(
        samples in proptest::collection::vec(any::<u64>(), 1..200),
        qs in proptest::collection::vec(0u32..=1_000_000, 2..10),
    ) {
        let s = snap_of(&samples);
        let mut sorted = qs.clone();
        sorted.sort_unstable();
        let values: Vec<u64> =
            sorted.iter().map(|&q| s.quantile(f64::from(q) / 1e6)).collect();
        for w in values.windows(2) {
            prop_assert!(w[0] <= w[1], "quantile not monotone: {:?}", values);
        }
    }

    /// A bucket bound overestimates the sample it covers by strictly
    /// less than 2× for every value below the overflow bucket.
    #[test]
    fn bucket_bound_error_is_under_2x(v in 1u64..(1 << 62)) {
        let mut s = HistSnapshot::new();
        s.record_us(v);
        for q in [0.001, 0.5, 0.99, 1.0] {
            let got = s.quantile(q);
            prop_assert!(got >= v, "quantile({q}) = {got} under-reports {v}");
            prop_assert!(got < v.saturating_mul(2), "quantile({q}) = {got} ≥ 2×{v}");
        }
    }

    /// Encode → decode is the identity, and decoding distributes over
    /// merge: merging decoded copies equals decoding nothing and merging
    /// the originals.
    #[test]
    fn encode_decode_round_trip(
        a in proptest::collection::vec(any::<u64>(), 0..200),
        b in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let (sa, sb) = (snap_of(&a), snap_of(&b));
        let da = HistSnapshot::decode(&sa.encode()).expect("own encoding decodes");
        let db = HistSnapshot::decode(&sb.encode()).expect("own encoding decodes");
        prop_assert_eq!(da, sa);
        prop_assert_eq!(db, sb);
        let mut merged_decoded = da;
        merged_decoded.merge(&db);
        let mut merged = sa;
        merged.merge(&sb);
        prop_assert_eq!(merged_decoded, merged);
        // The merged snapshot round-trips too.
        prop_assert_eq!(HistSnapshot::decode(&merged.encode()).expect("decodes"), merged);
    }

    /// The atomic recorder and the plain snapshot agree sample-for-sample.
    #[test]
    fn atomic_and_plain_recorders_agree(
        samples in proptest::collection::vec(any::<u64>(), 0..200),
    ) {
        let h = LatencyHistogram::new();
        for &v in &samples {
            h.record_us(v);
        }
        prop_assert_eq!(h.snapshot(), snap_of(&samples));
        for &v in &samples {
            prop_assert!(bucket_of(v) < HIST_BUCKETS);
        }
    }
}
