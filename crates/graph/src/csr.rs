//! [`Csr`]: an immutable compressed-sparse-row snapshot of a
//! [`LabelledGraph`].
//!
//! Traversal-heavy algorithms (all-pairs BFS for diameter, triangle
//! counting) iterate neighbourhoods millions of times; CSR packs all
//! adjacency into two flat arrays so those scans are a single contiguous
//! slice read. Vertices here are **0-based indices** (`id - 1`) because the
//! algorithms index arrays with them; the public `algo` functions translate
//! back to 1-based [`VertexId`](crate::VertexId)s at their boundaries.

use crate::LabelledGraph;

/// Immutable CSR adjacency. Build once with [`Csr::from_graph`], then read.
#[derive(Debug, Clone)]
pub struct Csr {
    /// `offsets[i]..offsets[i+1]` indexes `targets` for vertex index `i`.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbour *indices* (0-based).
    targets: Vec<u32>,
}

impl Csr {
    /// Snapshot a graph. O(n + m).
    pub fn from_graph(g: &LabelledGraph) -> Self {
        let n = g.n();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut targets = Vec::with_capacity(g.degree_sum());
        offsets.push(0);
        for v in 1..=n as u32 {
            for &w in g.neighbourhood(v) {
                targets.push(w - 1);
            }
            offsets.push(targets.len() as u32);
        }
        Csr { offsets, targets }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Sorted neighbour indices (0-based) of vertex index `i`.
    #[inline]
    pub fn neighbours(&self, i: usize) -> &[u32] {
        &self.targets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Degree of vertex index `i`.
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Total number of directed arcs (2m).
    pub fn arc_count(&self) -> usize {
        self.targets.len()
    }

    /// Adjacency test by binary search.
    pub fn has_arc(&self, i: usize, j: usize) -> bool {
        self.neighbours(i).binary_search(&(j as u32)).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_matches_graph() {
        let g = LabelledGraph::from_edges(4, [(1, 2), (2, 3), (3, 4), (1, 4)]).unwrap();
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.n(), 4);
        assert_eq!(csr.arc_count(), 8);
        assert_eq!(csr.neighbours(0), &[1, 3]); // vertex 1 ↔ ids 2,4 ↔ idx 1,3
        assert_eq!(csr.degree(1), 2);
        assert!(csr.has_arc(0, 1));
        assert!(!csr.has_arc(0, 2));
    }

    #[test]
    fn empty_and_isolated() {
        let g = LabelledGraph::new(3);
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.n(), 3);
        assert_eq!(csr.arc_count(), 0);
        assert!(csr.neighbours(1).is_empty());
    }
}
