//! Preferential-attachment (Barabási–Albert) generators.
//!
//! Scale-free topologies are the realistic stress test for Theorem 5:
//! they have hubs of *huge* degree (so the footnote-1 adjacency upload
//! is hopeless) yet **degeneracy ≤ m by construction** — every vertex
//! after the seed arrives with exactly `m` edges, so peeling vertices in
//! reverse arrival order never sees degree > m. The one-round protocol
//! therefore reconstructs internet-like graphs at `O(m² log n)` bits per
//! node while the naive protocol pays `Θ(Δ log n) = Θ(n^{1/2} log n)` at
//! the hubs.

use crate::{GraphError, LabelledGraph, VertexId};
use rand::Rng;

/// Barabási–Albert preferential attachment: start from a clique on
/// `m + 1` seed vertices; each new vertex attaches to `m` distinct
/// existing vertices chosen proportionally to their current degree.
///
/// Degeneracy is at most `m` (reverse-arrival elimination order), and
/// exactly `m` for `n > m + 1`.
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use referee_graph::{algo, generators};
/// let g = generators::barabasi_albert(100, 2, &mut StdRng::seed_from_u64(7)).unwrap();
/// assert_eq!(algo::degeneracy_ordering(&g).degeneracy, 2); // not Δ!
/// assert!(g.max_degree() > 8); // hubs emerge anyway
/// ```
pub fn barabasi_albert(
    n: usize,
    m: usize,
    rng: &mut impl Rng,
) -> Result<LabelledGraph, GraphError> {
    if m == 0 || n < m + 1 {
        return Err(GraphError::Parse(format!(
            "barabasi_albert needs m ≥ 1 and n ≥ m + 1, got n = {n}, m = {m}"
        )));
    }
    let mut g = LabelledGraph::new(n);
    // Seed clique on 1..=m+1.
    for u in 1..=(m + 1) as VertexId {
        for v in (u + 1)..=(m + 1) as VertexId {
            g.add_edge(u, v)?;
        }
    }
    // Degree-proportional sampling via the "repeated endpoints" trick:
    // every edge contributes both endpoints to the urn.
    let mut urn: Vec<VertexId> = Vec::with_capacity(2 * (m * n));
    for e in g.edges() {
        urn.push(e.0);
        urn.push(e.1);
    }
    for v in (m as VertexId + 2)..=n as VertexId {
        let mut targets: Vec<VertexId> = Vec::with_capacity(m);
        while targets.len() < m {
            let pick = urn[rng.gen_range(0..urn.len())];
            if !targets.contains(&pick) {
                targets.push(pick);
            }
        }
        for &t in &targets {
            g.add_edge(v, t)?;
            urn.push(v);
            urn.push(t);
        }
    }
    Ok(g)
}

/// Uniform-attachment variant (each new vertex picks `m` *uniform*
/// existing vertices): same degeneracy bound, exponential rather than
/// power-law degree tail. The pair isolates what preferential choice
/// contributes in the experiments.
pub fn uniform_attachment(
    n: usize,
    m: usize,
    rng: &mut impl Rng,
) -> Result<LabelledGraph, GraphError> {
    if m == 0 || n < m + 1 {
        return Err(GraphError::Parse(format!(
            "uniform_attachment needs m ≥ 1 and n ≥ m + 1, got n = {n}, m = {m}"
        )));
    }
    let mut g = LabelledGraph::new(n);
    for u in 1..=(m + 1) as VertexId {
        for v in (u + 1)..=(m + 1) as VertexId {
            g.add_edge(u, v)?;
        }
    }
    for v in (m as VertexId + 2)..=n as VertexId {
        let mut targets: Vec<VertexId> = Vec::with_capacity(m);
        while targets.len() < m {
            let pick = rng.gen_range(1..v);
            if !targets.contains(&pick) {
                targets.push(pick);
            }
        }
        for &t in &targets {
            g.add_edge(v, t)?;
        }
    }
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{degeneracy_ordering, is_connected};
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn ba_shape_and_degeneracy() {
        let mut rng = StdRng::seed_from_u64(1);
        for (n, m) in [(50usize, 1usize), (100, 2), (200, 3), (120, 5)] {
            let g = barabasi_albert(n, m, &mut rng).unwrap();
            assert_eq!(g.n(), n);
            // edges: seed clique + m per newcomer
            assert_eq!(g.m(), m * (m + 1) / 2 + m * (n - m - 1), "n={n}, m={m}");
            assert!(is_connected(&g));
            assert_eq!(degeneracy_ordering(&g).degeneracy, m, "n={n}, m={m}");
        }
    }

    #[test]
    fn ba_has_hubs() {
        // Preferential attachment concentrates degree: the max degree
        // should far exceed the uniform variant's at the same (n, m).
        let mut rng = StdRng::seed_from_u64(2);
        let ba = barabasi_albert(2000, 2, &mut rng).unwrap();
        let ua = uniform_attachment(2000, 2, &mut rng).unwrap();
        assert!(
            ba.max_degree() > 2 * ua.max_degree(),
            "BA hub {} vs uniform {}",
            ba.max_degree(),
            ua.max_degree()
        );
    }

    #[test]
    fn uniform_attachment_shape() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = uniform_attachment(150, 3, &mut rng).unwrap();
        assert!(is_connected(&g));
        assert_eq!(degeneracy_ordering(&g).degeneracy, 3);
        assert_eq!(g.m(), 6 + 3 * (150 - 4));
    }

    #[test]
    fn rejects_bad_parameters() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(barabasi_albert(5, 0, &mut rng).is_err());
        assert!(barabasi_albert(3, 3, &mut rng).is_err());
        assert!(uniform_attachment(2, 2, &mut rng).is_err());
    }

    #[test]
    fn reverse_arrival_is_an_elimination_order() {
        // The witness behind "degeneracy ≤ m": peeling n, n−1, …
        let mut rng = StdRng::seed_from_u64(5);
        let m = 4;
        let g = barabasi_albert(60, m, &mut rng).unwrap();
        let order: Vec<u32> = (1..=60).rev().collect();
        assert!(crate::algo::degeneracy::verify_elimination_order(&g, &order, m));
    }
}
