//! Wire-codec properties: `decode ∘ encode = id` on arbitrary
//! envelopes, and a fuzz-style sweep proving that mangled frames always
//! come back as an error (or "incomplete") — never a bogus frame, never
//! a panic.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use referee_protocol::{BitWriter, Message};
use referee_simnet::{Envelope, SessionId};
use referee_wirenet::frame::{HEADER_BYTES, MAX_BODY_BYTES, TAG_BYTES};
use referee_wirenet::{
    decode_frame, decode_frames, encode_frame, encode_frame_into, AuthKey, FrameKind, WireError,
};

/// An arbitrary payload from (value-seed, bit-width ≤ 96).
fn payload(seed: u64, bits: usize) -> Message {
    let mut w = BitWriter::new();
    let mut x = seed;
    let mut left = bits;
    while left > 0 {
        let chunk = left.min(32) as u32;
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let v = if chunk == 64 { x } else { x & ((1u64 << chunk) - 1) };
        w.write_bits(v, chunk);
        left -= chunk as usize;
    }
    Message::from_writer(w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// encode ∘ decode = id, with exact byte accounting, under any key.
    #[test]
    fn round_trip_is_identity(
        session in any::<u64>(),
        round in any::<u32>(),
        from in any::<u32>(),
        to in any::<u32>(),
        bits in 0usize..96,
        value_seed in any::<u64>(),
        key_seed in any::<u64>(),
    ) {
        let env = Envelope {
            session: SessionId(session),
            round,
            from,
            to,
            payload: payload(value_seed, bits),
        };
        let key = AuthKey::from_seed(key_seed);
        let bytes = encode_frame(&key, &env);
        prop_assert_eq!(bytes.len(), 4 + HEADER_BYTES + bits.div_ceil(8) + TAG_BYTES);
        let decoded = decode_frame(&key, &bytes).unwrap().unwrap();
        prop_assert_eq!(decoded.consumed, bytes.len());
        prop_assert_eq!(decoded.envelope, env);
    }

    /// Every strict prefix of a frame is "incomplete", not an error and
    /// not a frame — a streaming decoder must wait, never guess.
    #[test]
    fn truncation_never_yields_a_frame(
        bits in 0usize..64,
        value_seed in any::<u64>(),
        key_seed in any::<u64>(),
    ) {
        let env = Envelope {
            session: SessionId(9),
            round: 4,
            from: 2,
            to: 0,
            payload: payload(value_seed, bits),
        };
        let key = AuthKey::from_seed(key_seed);
        let bytes = encode_frame(&key, &env);
        for cut in 0..bytes.len() {
            prop_assert_eq!(decode_frame(&key, &bytes[..cut]).unwrap(), None);
        }
    }

    /// The batched read path's streaming invariant: a frame sequence
    /// chopped at *arbitrary* byte boundaries (mid-length-prefix,
    /// mid-header, mid-MAC — wherever the chunk sizes land) and decoded
    /// incrementally with [`decode_frames`] yields exactly the frames of
    /// whole-buffer delivery, in order; a torn final frame is never
    /// consumed and completes once its bytes arrive.
    #[test]
    fn split_boundaries_decode_identically(
        specs in proptest::collection::vec((any::<u64>(), 0usize..96, any::<u64>()), 1..6),
        chunks in proptest::collection::vec(1usize..48, 1..24),
        key_seed in any::<u64>(),
    ) {
        let key = AuthKey::from_seed(key_seed);
        let mut wire = Vec::new();
        let mut want = Vec::new();
        for (i, (value_seed, bits, session)) in specs.iter().enumerate() {
            let env = Envelope {
                session: SessionId(*session),
                round: i as u32,
                from: i as u32 + 1,
                to: 0,
                payload: payload(*value_seed, *bits),
            };
            encode_frame_into(&key, FrameKind::Data, &env, &mut wire);
            want.push(env);
        }
        let (whole, whole_used) = decode_frames(&key, &wire).unwrap();
        prop_assert_eq!(whole_used, wire.len());
        prop_assert_eq!(whole.len(), want.len());

        // Deliver the same bytes in arbitrary chunks, draining consumed
        // frames after every "read" exactly like the reactor does.
        let mut buf: Vec<u8> = Vec::new();
        let mut got = Vec::new();
        let mut fed = 0usize;
        for chunk in chunks {
            let next = (fed + chunk).min(wire.len());
            buf.extend_from_slice(&wire[fed..next]);
            fed = next;
            let (frames, used) = decode_frames(&key, &buf).unwrap();
            prop_assert!(used <= buf.len(), "consumed past the buffer");
            buf.drain(..used);
            got.extend(frames);
        }
        // The torn tail (if the chunks ran out mid-frame) stays
        // buffered; completing it must release the remaining frames.
        buf.extend_from_slice(&wire[fed..]);
        let (frames, used) = decode_frames(&key, &buf).unwrap();
        buf.drain(..used);
        got.extend(frames);
        prop_assert!(buf.is_empty(), "complete delivery must leave nothing buffered");
        prop_assert_eq!(got.len(), want.len());
        for ((g, w), r) in got.iter().zip(&want).zip(&whole) {
            prop_assert_eq!(g.kind, FrameKind::Data);
            prop_assert_eq!(&g.envelope, w);
            prop_assert_eq!(&g.envelope, &r.envelope);
        }
    }
}

#[test]
fn bit_flip_sweep_every_position_rejected() {
    // Flip every single bit of several frames; the body region must be
    // a MAC reject, the length prefix must be a structural error or a
    // stall — never a decoded frame, never a panic.
    let key = AuthKey::from_seed(2024);
    for (bits, seed) in [(0usize, 1u64), (1, 2), (13, 3), (64, 4)] {
        let env = Envelope {
            session: SessionId(77),
            round: 6,
            from: 5,
            to: 1,
            payload: payload(seed, bits),
        };
        let bytes = encode_frame(&key, &env);
        for bit in 0..bytes.len() * 8 {
            let mut bad = bytes.clone();
            bad[bit / 8] ^= 1 << (7 - bit % 8);
            match decode_frame(&key, &bad) {
                Ok(Some(frame)) => {
                    panic!("bit {bit} flip yielded a frame: {frame:?} (payload {bits} bits)")
                }
                // A length-prefix flip may stall (larger lie), fail
                // structurally (out of bounds), or fail the MAC over the
                // wrong span (smaller lie) — anything but a frame.
                Ok(None) => {
                    assert!(bit < 32, "only a length-prefix flip may stall, bit {bit} must not")
                }
                Err(WireError::BadMac) => {}
                Err(_) => assert!(bit < 32, "body flip at bit {bit} must be a MAC reject"),
            }
        }
    }
}

#[test]
fn random_garbage_never_panics_and_never_authenticates() {
    // Feed raw noise to the decoder: any outcome except a decoded frame
    // is acceptable; panics are not. 2⁻⁶⁴ forgery probability makes an
    // authenticated frame from noise effectively impossible.
    let key = AuthKey::from_seed(99);
    let mut rng = StdRng::seed_from_u64(1234);
    for len in 0..512usize {
        let buf: Vec<u8> = (0..len).map(|_| rng.gen_range(0..=255u64) as u8).collect();
        if let Ok(Some(frame)) = decode_frame(&key, &buf) {
            panic!("random garbage authenticated as {frame:?}");
        }
    }
}

#[test]
fn length_lying_frames_never_yield_a_frame() {
    // Overwrite the length prefix with every value in a wide sweep
    // around the truth plus the structural extremes.
    let key = AuthKey::from_seed(5);
    let env =
        Envelope { session: SessionId(3), round: 2, from: 1, to: 0, payload: payload(11, 24) };
    let bytes = encode_frame(&key, &env);
    let truth = bytes.len() - 4;
    let mut lies: Vec<u64> = (0..=(truth as u64 + 64)).collect();
    lies.extend([MAX_BODY_BYTES as u64, MAX_BODY_BYTES as u64 + 1, u32::MAX as u64]);
    for lie in lies {
        if lie as usize == truth {
            continue;
        }
        let mut bad = bytes.clone();
        bad[..4].copy_from_slice(&(lie as u32).to_be_bytes());
        if let Ok(Some(frame)) = decode_frame(&key, &bad) {
            panic!("length lie {lie} produced {frame:?}");
        }
    }
}
