//! Causal event tracing: the per-session "why" companion to
//! [`hist`](crate::hist)'s fleet-wide "how much".
//!
//! [`hist`](crate::hist) answers *that* a tail regressed; this module
//! records *what happened to one session* — as compact binary
//! [`TraceEvent`]s (session id, endpoint id, monotone per-endpoint
//! sequence number, clock timestamp, event kind + small payload) written
//! into a lock-free fixed-capacity ring buffer, the [`FlightRecorder`].
//! The recorder is a black box: it is always cheap enough to leave on,
//! it drops the *oldest* events under overflow (surfacing the drop count
//! so dashboards notice), and its contents are only materialized when
//! something goes wrong.
//!
//! Snapshots follow the same mergeable-partial-state discipline as
//! [`HistSnapshot`](crate::hist::HistSnapshot): a frozen
//! [`TraceSnapshot`] merges commutatively and associatively (canonical
//! event order, exact duplicates deduplicated) and has a canonical
//! [`encode`](TraceSnapshot::encode)/[`decode`](TraceSnapshot::decode)
//! wire form, so shard hosts ship their trace segments back to the
//! coordinator exactly like partial states, and the coordinator
//! stitches one causally-ordered timeline per session.
//!
//! For post-mortems the stitched snapshot renders as Chrome
//! `trace_event` JSON ([`TraceSnapshot::to_chrome_json`]) — load the
//! dump into `chrome://tracing` / Perfetto with one endpoint per `pid`
//! row and one session per `tid` track. [`dump_if_armed`] gates dumps
//! behind the `REFEREE_TRACE_DUMP` environment variable so production
//! runs pay nothing unless a human armed the recorder.

use crate::{BitReader, BitWriter, DecodeError, Message};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Default [`FlightRecorder`] ring capacity (events). At 48 bytes of
/// atomics per slot this is ~400 KiB per endpoint — sized so a
/// several-second incident window survives at typical wire rates
/// (~10k sessions/s × a handful of events each) before drop-oldest
/// kicks in.
pub const DEFAULT_TRACE_CAPACITY: usize = 8192;

/// Environment variable arming post-mortem dumps (see [`dump_if_armed`]).
pub const TRACE_DUMP_ENV: &str = "REFEREE_TRACE_DUMP";

/// Hard ceiling on decoded snapshot size — rejects absurd length
/// prefixes before allocating (the same defensive posture as the frame
/// layer's `MAX_BODY_BYTES`).
pub const MAX_TRACE_EVENTS: usize = 1 << 22;

/// What happened, compressed to one byte on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum TraceKind {
    /// A connection was dialed (payload: generation or conn id).
    Dial = 0,
    /// A proxy re-dialed its shard host after loss (payload: generation).
    Redial = 1,
    /// A session announce was sent or accepted (payload: `n`).
    Announce = 2,
    /// One uplink frame crossed the endpoint (payload: sender vertex).
    Uplink = 3,
    /// A shard emitted its partial state (payload: shard index).
    PartialEmit = 4,
    /// A partial state merged into an accumulator (payload: shard index).
    PartialMerge = 5,
    /// One referee invocation — the global phase or one multi-round
    /// step (payload: protocol round).
    RefereeStep = 6,
    /// A frame failed MAC verification (payload: frame byte length).
    MacReject = 7,
    /// A session was poisoned / a poison notice was synthesized
    /// (payload: offending sender when known).
    Poison = 8,
    /// A journaled frame was replayed to a restarted shard host
    /// (payload: sender vertex).
    Replay = 9,
    /// A verdict was issued or observed (payload: verdict bit length).
    Verdict = 10,
    /// A host/process was killed by a chaos schedule (payload: host id).
    Kill = 11,
    /// A scheduler task began (payload: task index).
    TaskStart = 12,
    /// A scheduler task finished (payload: task index).
    TaskEnd = 13,
    /// An evidence bundle was emitted for a provable violation
    /// (payload: accused principal when known).
    Evidence = 14,
}

impl TraceKind {
    /// Every kind, in wire-code order.
    pub const ALL: [TraceKind; 15] = [
        TraceKind::Dial,
        TraceKind::Redial,
        TraceKind::Announce,
        TraceKind::Uplink,
        TraceKind::PartialEmit,
        TraceKind::PartialMerge,
        TraceKind::RefereeStep,
        TraceKind::MacReject,
        TraceKind::Poison,
        TraceKind::Replay,
        TraceKind::Verdict,
        TraceKind::Kill,
        TraceKind::TaskStart,
        TraceKind::TaskEnd,
        TraceKind::Evidence,
    ];

    /// Stable snake_case name (used in Chrome trace output and logs).
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Dial => "dial",
            TraceKind::Redial => "redial",
            TraceKind::Announce => "announce",
            TraceKind::Uplink => "uplink",
            TraceKind::PartialEmit => "partial_emit",
            TraceKind::PartialMerge => "partial_merge",
            TraceKind::RefereeStep => "referee_step",
            TraceKind::MacReject => "mac_reject",
            TraceKind::Poison => "poison",
            TraceKind::Replay => "replay",
            TraceKind::Verdict => "verdict",
            TraceKind::Kill => "kill",
            TraceKind::TaskStart => "task_start",
            TraceKind::TaskEnd => "task_end",
            TraceKind::Evidence => "evidence",
        }
    }

    /// Inverse of `kind as u8`; `None` for unknown codes (strict
    /// decoding rejects them).
    pub fn from_code(code: u8) -> Option<TraceKind> {
        TraceKind::ALL.get(code as usize).copied()
    }
}

/// One recorded event. `seq` is assigned by the recording
/// [`FlightRecorder`] from a single monotone counter, so within any
/// `(session, endpoint)` pair sequence numbers are strictly increasing
/// — the property stitching relies on to order an endpoint's view of a
/// session even when timestamps tie.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceEvent {
    /// Session the event belongs to (0 for endpoint-scoped events like
    /// dials and kills).
    pub session: u64,
    /// The recording endpoint (coordinator, client, proxy, shard host —
    /// the deployment assigns the id space).
    pub endpoint: u32,
    /// Monotone per-recorder sequence number.
    pub seq: u64,
    /// Clock timestamp, microseconds. Wire deployments stamp wall-clock
    /// time so same-machine processes stitch onto one axis; simnet
    /// stamps a [`ManualClock`](../../referee_simnet/clock) for
    /// bit-for-bit reproducible traces.
    pub ts_us: u64,
    /// What happened.
    pub kind: TraceKind,
    /// Small kind-specific payload (see [`TraceKind`] docs).
    pub payload: u64,
}

impl TraceEvent {
    /// The canonical total order: by session, then endpoint, then the
    /// endpoint's own sequence — so a stitched snapshot groups each
    /// session's per-endpoint histories, each internally in causal
    /// (recording) order.
    fn key(&self) -> (u64, u32, u64, u64, u8, u64) {
        (self.session, self.endpoint, self.seq, self.ts_us, self.kind as u8, self.payload)
    }
}

// One ring slot: a seqlock-style version word plus the event fields.
// `version` is `2·cursor+1` while a writer owns the slot and `2·cursor+2`
// once it is stable; concurrent writers claim distinct cursors, so a
// reader observing the *same even* version before and after its field
// loads saw a torn-free event.
#[derive(Default)]
struct Slot {
    version: AtomicU64,
    session: AtomicU64,
    endpoint_kind: AtomicU64,
    seq: AtomicU64,
    ts_us: AtomicU64,
    payload: AtomicU64,
}

/// A lock-free, fixed-capacity, drop-oldest ring of [`TraceEvent`]s.
///
/// Writers claim slots with one `fetch_add` and never block; once the
/// ring wraps, each write overwrites the oldest surviving event and
/// bumps [`dropped`](FlightRecorder::dropped). A zero-capacity recorder
/// ([`FlightRecorder::disabled`]) makes every record a no-op, for
/// overhead-sensitive runs.
pub struct FlightRecorder {
    slots: Vec<Slot>,
    cursor: AtomicU64,
    next_seq: AtomicU64,
    dropped: AtomicU64,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.slots.len())
            .field("recorded", &self.cursor.load(Ordering::Relaxed))
            .field("dropped", &self.dropped.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::with_capacity(DEFAULT_TRACE_CAPACITY)
    }
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events (0 disables it),
    /// assigning sequence numbers from 0 — deterministic, for sim use.
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder::with_capacity_and_epoch(capacity, 0)
    }

    /// A recorder whose sequence numbers start at `epoch` instead of 0.
    ///
    /// Sequence numbers are per-*recorder*, but a stitched timeline
    /// groups events per `(session, endpoint)` lane — and a restarted
    /// process observing the same endpoint (a killed-and-respawned
    /// shard host) starts a *fresh* recorder. Seeding the epoch with
    /// the recorder's creation wall-clock (as `wirenet` does) keeps
    /// each incarnation's seq range disjoint and increasing, so lane
    /// order stays strictly monotone across restarts. Deterministic
    /// users (simnet) keep epoch 0.
    pub fn with_capacity_and_epoch(capacity: usize, epoch: u64) -> FlightRecorder {
        FlightRecorder {
            slots: (0..capacity).map(|_| Slot::default()).collect(),
            cursor: AtomicU64::new(0),
            next_seq: AtomicU64::new(epoch),
            dropped: AtomicU64::new(0),
        }
    }

    /// A recorder with the default capacity.
    pub fn new() -> FlightRecorder {
        FlightRecorder::default()
    }

    /// A no-op recorder: records nothing, drops nothing.
    pub fn disabled() -> FlightRecorder {
        FlightRecorder::with_capacity(0)
    }

    /// Whether this recorder stores anything at all.
    pub fn is_enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events overwritten by drop-oldest overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// The next sequence number this recorder will assign — pass an
    /// earlier reading to [`snapshot_since`](FlightRecorder::snapshot_since)
    /// to ship only the segment recorded in between.
    pub fn last_seq(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Record one event. Lock-free; never blocks, never fails — under
    /// overflow the oldest surviving event is overwritten instead.
    pub fn record(
        &self,
        ts_us: u64,
        session: u64,
        endpoint: u32,
        kind: TraceKind,
        payload: u64,
    ) {
        let cap = self.slots.len() as u64;
        if cap == 0 {
            return;
        }
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let cursor = self.cursor.fetch_add(1, Ordering::Relaxed);
        if cursor >= cap {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let slot = &self.slots[(cursor % cap) as usize];
        slot.version.store(2 * cursor + 1, Ordering::SeqCst);
        slot.session.store(session, Ordering::SeqCst);
        slot.endpoint_kind.store((u64::from(endpoint) << 8) | kind as u64, Ordering::SeqCst);
        slot.seq.store(seq, Ordering::SeqCst);
        slot.ts_us.store(ts_us, Ordering::SeqCst);
        slot.payload.store(payload, Ordering::SeqCst);
        slot.version.store(2 * cursor + 2, Ordering::SeqCst);
    }

    /// Freeze the surviving ring contents into a canonical snapshot.
    /// Slots torn by a concurrent writer are skipped (they will appear
    /// in a later snapshot); in quiescent or single-threaded use the
    /// snapshot is exact.
    pub fn snapshot(&self) -> TraceSnapshot {
        self.snapshot_since(0)
    }

    /// Like [`snapshot`](FlightRecorder::snapshot), restricted to
    /// events with `seq ≥ floor` — the incremental segment a shard host
    /// ships on `Finish`/`Retire` without resending history.
    pub fn snapshot_since(&self, floor: u64) -> TraceSnapshot {
        let mut events = Vec::new();
        for slot in &self.slots {
            let v1 = slot.version.load(Ordering::SeqCst);
            if v1 == 0 || v1 % 2 == 1 {
                continue; // never written, or mid-write
            }
            let session = slot.session.load(Ordering::SeqCst);
            let endpoint_kind = slot.endpoint_kind.load(Ordering::SeqCst);
            let seq = slot.seq.load(Ordering::SeqCst);
            let ts_us = slot.ts_us.load(Ordering::SeqCst);
            let payload = slot.payload.load(Ordering::SeqCst);
            if slot.version.load(Ordering::SeqCst) != v1 {
                continue; // torn by a wrapping writer
            }
            let Some(kind) = TraceKind::from_code((endpoint_kind & 0xff) as u8) else {
                continue;
            };
            if seq < floor {
                continue;
            }
            events.push(TraceEvent {
                session,
                endpoint: (endpoint_kind >> 8) as u32,
                seq,
                ts_us,
                kind,
                payload,
            });
        }
        TraceSnapshot::from_events(events)
    }
}

/// A frozen, mergeable set of trace events in canonical order — the
/// trace analogue of [`HistSnapshot`](crate::hist::HistSnapshot).
///
/// Merging is commutative, associative and idempotent (set union under
/// the canonical order), so segments from any number of endpoints,
/// shipped in any order, stitch into the same timeline.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSnapshot {
    events: Vec<TraceEvent>,
}

impl TraceSnapshot {
    /// An empty snapshot.
    pub fn new() -> TraceSnapshot {
        TraceSnapshot::default()
    }

    /// Canonicalize a raw event list: sort by
    /// `(session, endpoint, seq, …)` and drop exact duplicates.
    pub fn from_events(mut events: Vec<TraceEvent>) -> TraceSnapshot {
        events.sort_unstable_by_key(TraceEvent::key);
        events.dedup();
        TraceSnapshot { events }
    }

    /// The events, in canonical order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the snapshot holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Every event belonging to `session`, in canonical order — the
    /// per-session timeline a post-mortem reads.
    pub fn session_events(&self, session: u64) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.session == session)
    }

    /// Set-union `other` into `self` (commutative, associative,
    /// idempotent — pinned by property tests).
    pub fn merge(&mut self, other: &TraceSnapshot) {
        if other.events.is_empty() {
            return;
        }
        self.events.extend_from_slice(&other.events);
        self.events.sort_unstable_by_key(TraceEvent::key);
        self.events.dedup();
    }

    /// Canonical wire form. Layout: `gamma(count+1)`, then per event
    /// (in canonical order) each field as a minimal-width value —
    /// `gamma(width)` + `width` bits — except the kind, fixed at 5
    /// bits. Strictly canonical: any non-minimal width, out-of-order
    /// event, unknown kind, or trailing bit fails decoding.
    pub fn encode(&self) -> Message {
        let mut w = BitWriter::new();
        w.write_gamma(self.events.len() as u64 + 1);
        for e in &self.events {
            write_compact(&mut w, e.session);
            write_compact(&mut w, u64::from(e.endpoint));
            write_compact(&mut w, e.seq);
            write_compact(&mut w, e.ts_us);
            w.write_bits(e.kind as u64, 5);
            write_compact(&mut w, e.payload);
        }
        Message::from_writer(w)
    }

    /// Strict inverse of [`encode`](TraceSnapshot::encode).
    pub fn decode(msg: &Message) -> Result<TraceSnapshot, DecodeError> {
        let mut r = msg.reader();
        let count = r.read_gamma()? - 1;
        if count > MAX_TRACE_EVENTS as u64 {
            return Err(DecodeError::OutOfRange(format!(
                "{count} trace events, max {MAX_TRACE_EVENTS}"
            )));
        }
        let mut events = Vec::with_capacity(count as usize);
        let mut prev: Option<(u64, u32, u64, u64, u8, u64)> = None;
        for _ in 0..count {
            let session = read_compact(&mut r)?;
            let endpoint = read_compact(&mut r)?;
            if endpoint > u64::from(u32::MAX) {
                return Err(DecodeError::OutOfRange(format!("endpoint {endpoint} > u32")));
            }
            let seq = read_compact(&mut r)?;
            let ts_us = read_compact(&mut r)?;
            let code = r.read_bits(5)? as u8;
            let kind = TraceKind::from_code(code)
                .ok_or_else(|| DecodeError::OutOfRange(format!("trace kind {code}")))?;
            let payload = read_compact(&mut r)?;
            let e =
                TraceEvent { session, endpoint: endpoint as u32, seq, ts_us, kind, payload };
            if let Some(p) = prev {
                if e.key() <= p {
                    return Err(DecodeError::Invalid(
                        "trace events out of canonical order".into(),
                    ));
                }
            }
            prev = Some(e.key());
            events.push(e);
        }
        if !r.is_exhausted() {
            return Err(DecodeError::Invalid("trailing bits after trace snapshot".into()));
        }
        Ok(TraceSnapshot { events })
    }

    /// Render as Chrome `trace_event` JSON (the object form with a
    /// `traceEvents` array of instant events): one `pid` row per
    /// endpoint, one `tid` track per session — load into
    /// `chrome://tracing` or Perfetto.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"referee\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{\"seq\":{},\"payload\":{}}}}}",
                e.kind.name(),
                e.ts_us,
                e.endpoint,
                e.session,
                e.seq,
                e.payload
            ));
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// Minimal-width value coding: `gamma(width)` then `width` bits, with
/// the top bit of multi-bit values required to be set (so every `u64`
/// has exactly one encoding).
fn write_compact(w: &mut BitWriter, v: u64) {
    let width = (64 - v.leading_zeros()).max(1);
    w.write_gamma(u64::from(width));
    w.write_bits(v, width);
}

/// Strict inverse of [`write_compact`]: rejects widths outside
/// `1..=64` and non-minimal encodings.
fn read_compact(r: &mut BitReader) -> Result<u64, DecodeError> {
    let width = r.read_gamma()?;
    if width == 0 || width > 64 {
        return Err(DecodeError::OutOfRange(format!("field width {width}")));
    }
    let v = r.read_bits(width as u32)?;
    if width > 1 && (v >> (width - 1)) == 0 {
        return Err(DecodeError::Invalid("non-minimal field width".into()));
    }
    Ok(v)
}

/// Wall-clock microseconds since the UNIX epoch — the shared timestamp
/// base for wire deployments, so traces from cooperating processes on
/// one machine stitch onto a single time axis.
pub fn wall_clock_us() -> u64 {
    SystemTime::now().duration_since(UNIX_EPOCH).map(|d| d.as_micros() as u64).unwrap_or(0)
}

/// Whether post-mortem trace dumps are armed (`REFEREE_TRACE_DUMP` set
/// to anything non-empty other than `0`). Off by default: production
/// runs record into the ring but never touch the filesystem.
pub fn dump_armed() -> bool {
    std::env::var(TRACE_DUMP_ENV).map(|v| !v.is_empty() && v != "0").unwrap_or(false)
}

/// If dumps are armed and `snap` is non-empty, write it as Chrome
/// trace JSON to `TRACE_{label}.json` in the current directory and
/// return the path. Failures to write are reported, not fatal — a
/// post-mortem must never take down the run it is diagnosing.
pub fn dump_if_armed(label: &str, snap: &TraceSnapshot) -> Option<std::path::PathBuf> {
    if !dump_armed() || snap.is_empty() {
        return None;
    }
    let path = std::path::PathBuf::from(format!("TRACE_{label}.json"));
    match std::fs::write(&path, snap.to_chrome_json()) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("trace dump to {} failed: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(session: u64, endpoint: u32, seq: u64, ts: u64, kind: TraceKind) -> TraceEvent {
        TraceEvent { session, endpoint, seq, ts_us: ts, kind, payload: seq * 7 }
    }

    #[test]
    fn recorder_records_in_order() {
        let r = FlightRecorder::with_capacity(16);
        r.record(10, 1, 0, TraceKind::Announce, 5);
        r.record(20, 1, 0, TraceKind::Uplink, 3);
        r.record(30, 1, 0, TraceKind::Verdict, 1);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 3);
        let kinds: Vec<TraceKind> = snap.events().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, [TraceKind::Announce, TraceKind::Uplink, TraceKind::Verdict]);
        let seqs: Vec<u64> = snap.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [0, 1, 2]);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn drop_oldest_under_overflow() {
        let r = FlightRecorder::with_capacity(4);
        for i in 0..10u64 {
            r.record(i, 0, 0, TraceKind::Uplink, i);
        }
        assert_eq!(r.dropped(), 6, "10 events into 4 slots drop the oldest 6");
        let snap = r.snapshot();
        assert_eq!(snap.len(), 4);
        // The *newest* four survive.
        let seqs: Vec<u64> = snap.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [6, 7, 8, 9]);
    }

    #[test]
    fn disabled_recorder_is_a_noop() {
        let r = FlightRecorder::disabled();
        assert!(!r.is_enabled());
        r.record(1, 1, 1, TraceKind::Dial, 0);
        assert!(r.snapshot().is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn snapshot_since_ships_increments() {
        let r = FlightRecorder::with_capacity(16);
        r.record(1, 9, 2, TraceKind::Announce, 0);
        let mark = r.last_seq();
        r.record(2, 9, 2, TraceKind::Verdict, 0);
        let inc = r.snapshot_since(mark);
        assert_eq!(inc.len(), 1);
        assert_eq!(inc.events()[0].kind, TraceKind::Verdict);
    }

    #[test]
    fn merge_is_union_and_idempotent() {
        let a = TraceSnapshot::from_events(vec![
            ev(2, 0, 1, 100, TraceKind::Announce),
            ev(1, 0, 0, 90, TraceKind::Dial),
        ]);
        let b = TraceSnapshot::from_events(vec![
            ev(1, 1, 0, 95, TraceKind::Uplink),
            ev(1, 0, 0, 90, TraceKind::Dial), // duplicate of a's event
        ]);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.len(), 3, "exact duplicates deduplicate");
        let mut again = ab.clone();
        again.merge(&b);
        assert_eq!(again, ab, "merge is idempotent");
    }

    #[test]
    fn encode_decode_round_trip() {
        let snap = TraceSnapshot::from_events(vec![
            ev(7, 3, 0, 1000, TraceKind::Announce),
            ev(7, 3, 1, 2000, TraceKind::Verdict),
            ev(8, 0, 2, u64::MAX, TraceKind::Kill),
            TraceEvent {
                session: u64::MAX,
                endpoint: u32::MAX,
                seq: u64::MAX,
                ts_us: 0,
                kind: TraceKind::TaskEnd,
                payload: u64::MAX,
            },
        ]);
        let decoded = TraceSnapshot::decode(&snap.encode()).expect("own encoding decodes");
        assert_eq!(decoded, snap);
        let empty = TraceSnapshot::new();
        assert_eq!(TraceSnapshot::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn decode_rejects_out_of_order_and_trailing_bits() {
        // Build a non-canonical stream by hand: two events in reversed
        // order.
        let hi = ev(5, 0, 1, 10, TraceKind::Uplink);
        let lo = ev(5, 0, 0, 5, TraceKind::Announce);
        let mut w = BitWriter::new();
        w.write_gamma(3);
        for e in [hi, lo] {
            write_compact(&mut w, e.session);
            write_compact(&mut w, u64::from(e.endpoint));
            write_compact(&mut w, e.seq);
            write_compact(&mut w, e.ts_us);
            w.write_bits(e.kind as u64, 5);
            write_compact(&mut w, e.payload);
        }
        let msg = Message::from_writer(w);
        assert!(matches!(TraceSnapshot::decode(&msg), Err(DecodeError::Invalid(_))));

        // Trailing bit after a valid snapshot.
        let snap = TraceSnapshot::from_events(vec![lo]);
        let (bytes, len_bits) = {
            let mut w = BitWriter::new();
            w.write_gamma(2);
            write_compact(&mut w, lo.session);
            write_compact(&mut w, u64::from(lo.endpoint));
            write_compact(&mut w, lo.seq);
            write_compact(&mut w, lo.ts_us);
            w.write_bits(lo.kind as u64, 5);
            write_compact(&mut w, lo.payload);
            w.push_bit(false);
            w.finish()
        };
        let msg = Message::from_bits(bytes, len_bits).expect("well-formed byte carrier");
        assert!(matches!(TraceSnapshot::decode(&msg), Err(DecodeError::Invalid(_))));
        // Sanity: the canonical form still decodes.
        assert_eq!(TraceSnapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn decode_rejects_unknown_kind_and_nonminimal_width() {
        // Unknown kind code 31.
        let mut w = BitWriter::new();
        w.write_gamma(2);
        write_compact(&mut w, 1);
        write_compact(&mut w, 0);
        write_compact(&mut w, 0);
        write_compact(&mut w, 0);
        w.write_bits(31, 5);
        write_compact(&mut w, 0);
        let msg = Message::from_writer(w);
        assert!(matches!(TraceSnapshot::decode(&msg), Err(DecodeError::OutOfRange(_))));

        // Non-minimal width: value 1 encoded in 2 bits.
        let mut w = BitWriter::new();
        w.write_gamma(2);
        w.write_gamma(2); // width 2 …
        w.write_bits(1, 2); // … for value 1 (top bit clear)
        let msg = Message::from_writer(w);
        assert!(matches!(TraceSnapshot::decode(&msg), Err(DecodeError::Invalid(_))));
    }

    #[test]
    fn chrome_json_shape() {
        let snap = TraceSnapshot::from_events(vec![ev(4, 2, 0, 1500, TraceKind::Redial)]);
        let json = snap.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"name\":\"redial\""));
        assert!(json.contains("\"ts\":1500"));
        assert!(json.contains("\"pid\":2"));
        assert!(json.contains("\"tid\":4"));
        assert!(json.ends_with("]}\n") || json.ends_with("\"ms\"}\n"));
    }

    #[test]
    fn concurrent_recording_loses_nothing_within_capacity() {
        let r = FlightRecorder::with_capacity(4096);
        std::thread::scope(|s| {
            for t in 0..4u32 {
                let r = &r;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        r.record(i, u64::from(t), t, TraceKind::Uplink, i);
                    }
                });
            }
        });
        let snap = r.snapshot();
        assert_eq!(snap.len(), 4000);
        assert_eq!(r.dropped(), 0);
        // Per-endpoint seqs strictly increase.
        for t in 0..4u32 {
            let seqs: Vec<u64> =
                snap.events().iter().filter(|e| e.endpoint == t).map(|e| e.seq).collect();
            assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn dump_respects_the_env_contract() {
        // Unarmed by default in the test environment.
        assert!(!dump_armed() || std::env::var(TRACE_DUMP_ENV).is_ok());
        let snap = TraceSnapshot::new();
        // Empty snapshots never dump, armed or not.
        assert_eq!(dump_if_armed("unit_test_empty", &snap), None);
    }
}
