//! E26 (systems side): the simnet session runtime under heavy traffic —
//! thousands of concurrent protocol sessions per process, across perfect
//! and adversarial transports.
//!
//! Run: `cargo run --release -p referee-bench --bin exp_simnet`

use rand::{rngs::StdRng, SeedableRng};
use referee_bench::{render_table, section, write_bench_json_axis, BenchRecord, Percentiles};
use referee_degeneracy::{DegeneracyProtocol, Reconstruction};
use referee_graph::{generators, LabelledGraph};
use referee_protocol::multiround::BoruvkaConnectivity;
use referee_simnet::{FaultConfig, Scheduler, SweepReport};

/// One bench-trajectory record for a sweep: the network label as the
/// backend, the fleet size on the `sessions` axis, throughput, and the
/// aggregate's latency percentiles.
fn record<R: referee_simnet::scheduler::Report>(
    label: &str,
    sweep: &SweepReport<R>,
) -> BenchRecord {
    BenchRecord::new(label, sweep.aggregate.sessions, sweep.aggregate.throughput())
        .with_percentiles(Percentiles::from_hist(&sweep.aggregate.latency))
}

fn fleet(count: usize, seed: u64) -> Vec<LabelledGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|i| generators::random_k_degenerate(20 + i % 30, 2, 1.0, &mut rng)).collect()
}

fn row<R: referee_simnet::scheduler::Report>(
    label: &str,
    sweep: &SweepReport<R>,
) -> Vec<String> {
    let a = &sweep.aggregate;
    vec![
        label.into(),
        a.sessions.to_string(),
        a.ok.to_string(),
        a.rejected.to_string(),
        a.transport.dropped.to_string(),
        a.transport.duplicated.to_string(),
        a.transport.corrupted.to_string(),
        a.transport.reordered.to_string(),
        format!("{:.2}", a.mean_rounds()),
        format!("{:.0}", a.throughput()),
    ]
}

fn header() -> Vec<String> {
    [
        "network", "sessions", "ok", "rejected", "drop", "dup", "corrupt", "reorder", "rounds",
        "sess/s",
    ]
    .into_iter()
    .map(String::from)
    .collect()
}

fn main() {
    println!("# E26: simnet session runtime under heavy concurrent traffic");
    println!("# expectation: perfect network = zero rejections and exact reconstructions;");
    println!("# adversarial networks reject cleanly (DecodeError), never fabricate results.");

    let scheduler = Scheduler::default();
    let sessions = 2000usize;

    section(&format!(
        "one-round degeneracy protocol, {sessions} sessions, {} workers",
        scheduler.workers
    ));
    let graphs = fleet(sessions, 2011);
    let protocol = DegeneracyProtocol::new(2);
    let mut rows = vec![header()];
    let mut records: Vec<BenchRecord> = Vec::new();

    let perfect = scheduler.sweep_one_round(&protocol, &graphs, None);
    let exact = perfect
        .reports
        .iter()
        .zip(&graphs)
        .filter(|(r, g)| matches!(&r.outcome, Ok(Ok(Reconstruction::Graph(h))) if h == *g))
        .count();
    assert_eq!(exact, sessions, "perfect network must reconstruct everything");
    rows.push(row("perfect", &perfect));
    records.push(record("perfect", &perfect));

    for (label, cfg) in [
        ("lossless-decorator", FaultConfig::lossless(7)),
        ("noisy", FaultConfig::noisy(7)),
        ("corrupting-5%", FaultConfig::corrupting(7, 0.05)),
        (
            "lossy-2%",
            FaultConfig {
                seed: 7,
                loss: 0.02,
                duplication: 0.0,
                reorder: 0.0,
                corruption: 0.0,
            },
        ),
    ] {
        let mut sweep = scheduler.sweep_one_round(&protocol, &graphs, Some(cfg));
        for (r, g) in sweep.reports.iter().zip(&graphs) {
            if let Ok(Ok(Reconstruction::Graph(h))) = &r.outcome {
                assert_eq!(h, g, "fabricated graph under {label}");
            }
        }
        // Count decoder-level rejections (DecodeError inside the typed
        // output) as rejections too, not just delivery failures.
        sweep.reclassify_ok(|r| matches!(&r.outcome, Ok(Ok(_))));
        rows.push(row(label, &sweep));
        records.push(record(label, &sweep));
    }
    println!("{}", render_table(&rows));

    section("multi-round Borůvka connectivity, 1000 sessions");
    let mut rng = StdRng::seed_from_u64(4);
    let graphs: Vec<LabelledGraph> =
        (0..1000).map(|i| generators::gnp(10 + i % 50, 0.12, &mut rng)).collect();
    let mut rows = vec![header()];
    let perfect = scheduler.sweep_multi_round(&BoruvkaConnectivity, &graphs, 96, None);
    for (r, g) in perfect.reports.iter().zip(&graphs) {
        let verdict = r
            .outcome
            .as_ref()
            .expect("perfect delivery")
            .as_ref()
            .expect("finished under cap")
            .as_ref()
            .expect("honest decode");
        assert_eq!(*verdict, referee_graph::algo::is_connected(g));
    }
    rows.push(row("perfect", &perfect));
    records.push(record("boruvka-perfect", &perfect));
    let mut noisy = scheduler.sweep_multi_round(
        &BoruvkaConnectivity,
        &graphs,
        96,
        Some(FaultConfig {
            seed: 9,
            loss: 0.001,
            duplication: 0.05,
            reorder: 0.2,
            corruption: 0.0,
        }),
    );
    noisy.reclassify_ok(|r| matches!(&r.outcome, Ok(Some(Ok(_)))));
    rows.push(row("noisy", &noisy));
    records.push(record("boruvka-noisy", &noisy));
    println!("{}", render_table(&rows));

    // The sweep axis here is the fleet size per network condition.
    let json =
        write_bench_json_axis("exp_simnet", "sessions", &records).expect("write BENCH json");
    println!("\nmachine-readable results: {}", json.display());
    println!("heavy-traffic sweeps completed ✓");
}
