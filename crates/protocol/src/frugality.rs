//! Empirical frugality audits.
//!
//! A protocol is frugal if `max_G |Γ^l(G)| = O(log n)`. No finite run can
//! prove an asymptotic bound, but an audit across a family sweep exposes
//! the empirical constant `c(n) = max-bits(n) / log₂(n)`: for a frugal
//! protocol it stays bounded as `n` grows, for a non-frugal one (e.g. the
//! adjacency baseline on cliques) it diverges. The experiment binaries
//! print these tables (E15/E16).

use crate::model::OneRoundProtocol;
use crate::referee::local_phase;
use referee_graph::LabelledGraph;

/// One row of a frugality sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FrugalityRow {
    /// Graph size.
    pub n: usize,
    /// Max message bits observed at this size.
    pub max_bits: usize,
    /// Mean message bits at this size.
    pub mean_bits: f64,
    /// `max_bits / log₂ n`.
    pub ratio: f64,
}

/// Result of [`FrugalityAudit::run`].
#[derive(Debug, Clone)]
pub struct FrugalityReport {
    /// Protocol name audited.
    pub protocol: String,
    /// Per-size measurements, ascending `n`.
    pub rows: Vec<FrugalityRow>,
}

impl FrugalityReport {
    /// Largest observed ratio `max_bits / log₂ n`.
    pub fn worst_ratio(&self) -> f64 {
        self.rows.iter().map(|r| r.ratio).fold(0.0, f64::max)
    }

    /// Heuristic divergence test: does the ratio grow monotonically by
    /// more than `tolerance` per doubling across the sweep? A frugal
    /// protocol's ratio flattens; the adjacency baseline on cliques grows
    /// linearly in `n / log n`.
    pub fn ratio_diverges(&self, tolerance: f64) -> bool {
        self.rows.windows(2).all(|w| w[1].ratio > w[0].ratio + tolerance)
            && self.rows.len() >= 2
    }

    /// Render as an aligned text table (used by `exp_message_size`).
    pub fn to_table(&self) -> String {
        let mut s = format!("# frugality audit: {}\n", self.protocol);
        s.push_str("n\tmax_bits\tmean_bits\tmax_bits/log2(n)\n");
        for r in &self.rows {
            s.push_str(&format!(
                "{}\t{}\t{:.1}\t{:.3}\n",
                r.n, r.max_bits, r.mean_bits, r.ratio
            ));
        }
        s
    }
}

/// Sweep driver: measures message sizes of a protocol across a graph
/// family indexed by `n`.
pub struct FrugalityAudit<'a, P> {
    protocol: &'a P,
    sizes: Vec<usize>,
}

impl<'a, P: OneRoundProtocol + Sync> FrugalityAudit<'a, P> {
    /// Audit `protocol` at each size in `sizes`.
    pub fn new(protocol: &'a P, sizes: impl IntoIterator<Item = usize>) -> Self {
        FrugalityAudit { protocol, sizes: sizes.into_iter().collect() }
    }

    /// Generate a graph per size with `family` and measure the local phase.
    pub fn run(&self, mut family: impl FnMut(usize) -> LabelledGraph) -> FrugalityReport {
        let mut rows = Vec::with_capacity(self.sizes.len());
        for &n in &self.sizes {
            let g = family(n);
            assert_eq!(g.n(), n, "family produced wrong size");
            let msgs = local_phase(self.protocol, &g);
            let max_bits = msgs.iter().map(|m| m.len_bits()).max().unwrap_or(0);
            let mean_bits = if n == 0 {
                0.0
            } else {
                msgs.iter().map(|m| m.len_bits()).sum::<usize>() as f64 / n as f64
            };
            let ratio = if n > 1 { max_bits as f64 / (n as f64).log2() } else { 0.0 };
            rows.push(FrugalityRow { n, max_bits, mean_bits, ratio });
        }
        FrugalityReport { protocol: self.protocol.name(), rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::AdjacencyListProtocol;
    use referee_graph::generators;

    #[test]
    fn adjacency_on_paths_is_flat() {
        // Path graphs have Δ = 2, so the adjacency protocol uses
        // O(log n) bits and the ratio stays near-constant.
        let p = AdjacencyListProtocol;
        let report = FrugalityAudit::new(&p, [64, 256, 1024, 4096]).run(generators::path);
        assert!(report.worst_ratio() < 5.0, "ratio {}", report.worst_ratio());
        assert!(!report.ratio_diverges(0.05));
    }

    #[test]
    fn adjacency_on_cliques_diverges() {
        let p = AdjacencyListProtocol;
        let report = FrugalityAudit::new(&p, [16, 32, 64, 128]).run(generators::complete);
        // each message lists n-1 neighbours ⇒ ratio ~ n
        assert!(report.worst_ratio() > 50.0);
        assert!(report.ratio_diverges(0.5));
    }

    #[test]
    fn table_renders() {
        let p = AdjacencyListProtocol;
        let report = FrugalityAudit::new(&p, [8, 16]).run(generators::path);
        let t = report.to_table();
        assert!(t.contains("max_bits"));
        assert!(t.lines().count() >= 4);
    }
}
