//! Experiment harness for the `referee-one-round` reproduction.
//!
//! The paper (a theory paper) has two figures — both gadget constructions
//! — and no measured tables; `EXPERIMENTS.md` at the repository root
//! defines the experiment grid E1–E25 that substitutes for them. Each
//! submodule of [`experiments`] computes one experiment's rows; the
//! `exp_*` binaries in `src/bin/` print them, and the Criterion benches in
//! `benches/` measure the runtime-scaling claims (local time O(n),
//! reconstruction O(n²), table-vs-Newton decoding).
//!
//! Everything here is deterministic under fixed seeds so `EXPERIMENTS.md`
//! can quote exact numbers.

pub mod experiments;

/// Render aligned rows (first row = header) as a markdown-ish table.
pub fn render_table(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        out.push('|');
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            out.push_str(&format!(" {cell:>w$} |"));
        }
        out.push('\n');
        if ri == 0 {
            out.push('|');
            for w in &widths {
                out.push_str(&format!("{}|", "-".repeat(w + 2)));
            }
            out.push('\n');
        }
    }
    out
}

/// Print a section header for the experiment binaries.
pub fn section(title: &str) {
    println!("\n### {title}\n");
}

/// Tail-latency summary riding along with a throughput number: the
/// p50/p99/p999 bucket bounds (microseconds) of a per-session latency
/// histogram. Log₂-bucketed upstream, so each value overestimates the
/// true percentile by less than 2× — coarse, but stable across runs and
/// cheap enough to record on every session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Percentiles {
    /// Median session latency, µs (bucket upper bound).
    pub p50_us: u64,
    /// 99th-percentile session latency, µs (bucket upper bound).
    pub p99_us: u64,
    /// 99.9th-percentile session latency, µs (bucket upper bound).
    pub p999_us: u64,
}

impl Percentiles {
    /// Summarise a latency histogram; `None` when it holds no samples
    /// (so empty sweeps keep the old JSON shape).
    pub fn from_hist(h: &referee_protocol::HistSnapshot) -> Option<Percentiles> {
        if h.count() == 0 {
            None
        } else {
            Some(Percentiles { p50_us: h.p50(), p99_us: h.p99(), p999_us: h.p999() })
        }
    }
}

/// One machine-readable throughput measurement for the bench
/// trajectory: a backend (`"simnet"`, `"wirenet"`, `"remote"`), a sweep
/// axis value (shard count for the shard sweeps, connection count for
/// the fleet sweeps — the axis is named in the JSON), and the measured
/// sessions per second.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Which backend produced the number.
    pub backend: String,
    /// The sweep's axis value (shards or conns, named per bench).
    pub shards: usize,
    /// Verified sessions per wall-clock second.
    pub sessions_per_sec: f64,
    /// Optional tail-latency summary. `None` (the [`BenchRecord::new`]
    /// default) keeps the emitted JSON byte-identical to the historic
    /// format, so old trajectory files stay comparable.
    pub percentiles: Option<Percentiles>,
    /// Extra numeric measurements emitted as additional JSON keys (in
    /// order). Empty by default, which — like `percentiles: None` —
    /// keeps the historic byte format. `exp_catalog` uses this for
    /// round/bit complexity per (service, family) cell.
    pub extras: Vec<(String, f64)>,
}

impl BenchRecord {
    /// Convenience constructor.
    pub fn new(backend: &str, shards: usize, sessions_per_sec: f64) -> BenchRecord {
        BenchRecord {
            backend: backend.into(),
            shards,
            sessions_per_sec,
            percentiles: None,
            extras: Vec::new(),
        }
    }

    /// Attach a tail-latency summary (builder style); `None` is a no-op
    /// so callers can pass [`Percentiles::from_hist`] straight through.
    pub fn with_percentiles(mut self, p: Option<Percentiles>) -> BenchRecord {
        self.percentiles = p;
        self
    }

    /// Append an extra numeric measurement (builder style). Keys must
    /// be plain identifiers — they are emitted into JSON unescaped.
    pub fn with_extra(mut self, key: &str, value: f64) -> BenchRecord {
        debug_assert!(
            key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "extra key {key:?} must be a plain identifier"
        );
        self.extras.push((key.to_string(), value));
        self
    }
}

/// Serialize bench records as the `BENCH_{name}.json` document the
/// bench trajectory accumulates (hand-rolled writer — the offline build
/// has no serde). Format, pinned by tests:
///
/// ```json
/// {"bench":"exp_shard","unit":"sessions_per_second","results":[
///   {"backend":"simnet","shards":1,"sessions_per_sec":12345.6}, …]}
/// ```
pub fn bench_json(name: &str, records: &[BenchRecord]) -> String {
    bench_json_axis(name, "shards", records)
}

/// Like [`bench_json`], with the sweep axis named explicitly — a bench
/// whose independent variable is not a shard count (e.g. `exp_wirenet`
/// sweeping connection pools) names its axis (`"conns"`) instead of
/// mislabelling it.
pub fn bench_json_axis(name: &str, axis: &str, records: &[BenchRecord]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"bench\":\"{name}\",\"unit\":\"sessions_per_second\",\"results\":["
    ));
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"backend\":\"{}\",\"{axis}\":{},\"sessions_per_sec\":{:.1}",
            r.backend, r.shards, r.sessions_per_sec
        ));
        for (key, value) in &r.extras {
            out.push_str(&format!(",\"{key}\":{value:.1}"));
        }
        if let Some(p) = r.percentiles {
            out.push_str(&format!(
                ",\"p50_us\":{},\"p99_us\":{},\"p999_us\":{}",
                p.p50_us, p.p99_us, p.p999_us
            ));
        }
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

/// Write `BENCH_{name}.json` into `dir` and return its path.
pub fn write_bench_json_in(
    dir: &std::path::Path,
    name: &str,
    records: &[BenchRecord],
) -> std::io::Result<std::path::PathBuf> {
    write_bench_json_axis_in(dir, name, "shards", records)
}

/// The one place the `BENCH_{name}.json` path and write live: every
/// other writer delegates here, mirroring how [`bench_json`] delegates
/// to [`bench_json_axis`].
pub fn write_bench_json_axis_in(
    dir: &std::path::Path,
    name: &str,
    axis: &str,
    records: &[BenchRecord],
) -> std::io::Result<std::path::PathBuf> {
    let path = dir.join(format!("BENCH_{name}.json"));
    std::fs::write(&path, bench_json_axis(name, axis, records))?;
    Ok(path)
}

/// [`write_bench_json`] with an explicit axis name (see
/// [`bench_json_axis`]).
pub fn write_bench_json_axis(
    name: &str,
    axis: &str,
    records: &[BenchRecord],
) -> std::io::Result<std::path::PathBuf> {
    write_bench_json_axis_in(std::path::Path::new("."), name, axis, records)
}

/// Write `BENCH_{name}.json` into the current directory (the repo root
/// under `cargo run`) and return its path.
pub fn write_bench_json(
    name: &str,
    records: &[BenchRecord],
) -> std::io::Result<std::path::PathBuf> {
    write_bench_json_in(std::path::Path::new("."), name, records)
}

/// A tail-latency SLO assertion for soak runs: ceilings (µs) on the
/// p99 and/or p999 session latency. Disabled bounds are `None`, so a
/// default `SloCheck` passes everything — soak examples call
/// [`SloCheck::from_env`] and get a no-op unless CI opts in by setting
/// `REFEREE_SLO_P99_US` / `REFEREE_SLO_P999_US`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SloCheck {
    /// Ceiling on p99 session latency, µs. `None` = unchecked.
    pub p99_us: Option<u64>,
    /// Ceiling on p999 session latency, µs. `None` = unchecked.
    pub p999_us: Option<u64>,
}

impl SloCheck {
    /// Build from `REFEREE_SLO_P99_US` / `REFEREE_SLO_P999_US`.
    /// Unset or unparsable variables leave that bound disabled.
    pub fn from_env() -> SloCheck {
        let read = |key: &str| std::env::var(key).ok().and_then(|v| v.parse::<u64>().ok());
        SloCheck { p99_us: read("REFEREE_SLO_P99_US"), p999_us: read("REFEREE_SLO_P999_US") }
    }

    /// Whether any bound is armed.
    pub fn is_enabled(&self) -> bool {
        self.p99_us.is_some() || self.p999_us.is_some()
    }

    /// Check measured percentiles against the armed bounds. `Ok(())`
    /// when every armed bound holds (or none are armed); `Err` carries
    /// a human-readable violation report naming `label`.
    pub fn check(&self, label: &str, p: &Percentiles) -> Result<(), String> {
        let mut violations = Vec::new();
        if let Some(cap) = self.p99_us {
            if p.p99_us > cap {
                violations.push(format!("p99 {}us > SLO {}us", p.p99_us, cap));
            }
        }
        if let Some(cap) = self.p999_us {
            if p.p999_us > cap {
                violations.push(format!("p999 {}us > SLO {}us", p.p999_us, cap));
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(format!("SLO violation in {label}: {}", violations.join(", ")))
        }
    }

    /// [`SloCheck::check`], panicking on violation — the form soak
    /// examples use so a tail-latency regression fails CI loudly.
    pub fn enforce(&self, label: &str, p: &Percentiles) {
        if let Err(e) = self.check(label, p) {
            panic!("{e}");
        }
        if self.is_enabled() {
            println!(
                "SLO ok for {label}: p99 {}us, p999 {}us within bounds",
                p.p99_us, p.p999_us
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let rows = vec![
            vec!["n".into(), "bits".into()],
            vec!["8".into(), "24".into()],
            vec!["1024".into(), "77".into()],
        ];
        let t = render_table(&rows);
        assert!(t.contains("|    n | bits |"));
        assert!(t.lines().count() == 4);
        let widths: Vec<usize> = t.lines().map(str::len).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "aligned: {t}");
    }

    #[test]
    fn empty_table() {
        assert_eq!(render_table(&[]), "");
    }

    #[test]
    fn bench_json_format_is_stable() {
        let records =
            [BenchRecord::new("simnet", 1, 70000.049), BenchRecord::new("wirenet", 8, 5234.0)];
        let json = bench_json("exp_shard", &records);
        assert_eq!(
            json,
            "{\"bench\":\"exp_shard\",\"unit\":\"sessions_per_second\",\"results\":[\
             {\"backend\":\"simnet\",\"shards\":1,\"sessions_per_sec\":70000.0},\
             {\"backend\":\"wirenet\",\"shards\":8,\"sessions_per_sec\":5234.0}]}\n"
        );
    }

    #[test]
    fn bench_json_axis_renames_the_axis_only() {
        let records = [BenchRecord::new("wirenet", 8, 7700.0)];
        assert_eq!(
            bench_json_axis("exp_wirenet", "conns", &records),
            "{\"bench\":\"exp_wirenet\",\"unit\":\"sessions_per_second\",\"results\":[\
             {\"backend\":\"wirenet\",\"conns\":8,\"sessions_per_sec\":7700.0}]}\n"
        );
        // The default axis stays "shards" — the pinned historic format.
        assert_eq!(bench_json("x", &records), bench_json_axis("x", "shards", &records));
    }

    #[test]
    fn bench_json_percentiles_extend_the_record_in_place() {
        // With percentiles attached, the three `*_us` fields append
        // inside the record; records without them are untouched, so a
        // mixed trajectory stays valid line-by-line.
        let records = [
            BenchRecord::new("wirenet", 4, 900.0).with_percentiles(Some(Percentiles {
                p50_us: 1023,
                p99_us: 16383,
                p999_us: 65535,
            })),
            BenchRecord::new("simnet", 4, 70000.0),
        ];
        assert_eq!(
            bench_json("exp_shard", &records),
            "{\"bench\":\"exp_shard\",\"unit\":\"sessions_per_second\",\"results\":[\
             {\"backend\":\"wirenet\",\"shards\":4,\"sessions_per_sec\":900.0,\
             \"p50_us\":1023,\"p99_us\":16383,\"p999_us\":65535},\
             {\"backend\":\"simnet\",\"shards\":4,\"sessions_per_sec\":70000.0}]}\n"
        );
    }

    #[test]
    fn percentiles_from_hist_summarises_nonempty_only() {
        let mut h = referee_protocol::HistSnapshot::new();
        assert_eq!(Percentiles::from_hist(&h), None);
        h.record_us(1000);
        assert_eq!(
            Percentiles::from_hist(&h),
            Some(Percentiles { p50_us: 1023, p99_us: 1023, p999_us: 1023 })
        );
    }

    #[test]
    fn slo_check_bounds() {
        let p = Percentiles { p50_us: 511, p99_us: 4095, p999_us: 16383 };
        // Disarmed: passes anything.
        assert!(SloCheck::default().check("x", &p).is_ok());
        assert!(!SloCheck::default().is_enabled());
        // Armed and satisfied.
        let ok = SloCheck { p99_us: Some(5000), p999_us: Some(20000) };
        assert!(ok.check("x", &p).is_ok());
        // Armed and violated — the report names the label and bound.
        let tight = SloCheck { p99_us: Some(1000), p999_us: None };
        let err = tight.check("soak", &p).unwrap_err();
        assert!(err.contains("soak") && err.contains("p99 4095us > SLO 1000us"), "{err}");
        // Both bounds violated → both reported.
        let both = SloCheck { p99_us: Some(1), p999_us: Some(2) };
        let err = both.check("s", &p).unwrap_err();
        assert!(err.contains("p99 ") && err.contains("p999 "), "{err}");
    }

    #[test]
    fn bench_json_writes_a_file() {
        let dir = std::env::temp_dir().join(format!("bench-json-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path =
            write_bench_json_in(&dir, "unit_test", &[BenchRecord::new("simnet", 2, 1.5)])
                .unwrap();
        assert!(path.ends_with("BENCH_unit_test.json"));
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"shards\":2"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
