//! Seeded workload **families** for catalog-wide experiment sweeps.
//!
//! Every constructor here takes an explicit `seed: u64` (not a borrowed
//! RNG): the same `(family, n, seed)` triple always yields the
//! byte-identical graph — pinned by proptests via
//! [`to_graph6`](crate::graph6::to_graph6) — so benchmark runs, wire
//! soaks and local ground-truth replays all agree on their inputs
//! without shipping graphs around.
//!
//! The families cover the axes the catalog experiments sweep:
//!
//! * [`bounded_treewidth`] — partial k-trees built along an explicit
//!   elimination order, so `treewidth ≤ width` holds by construction;
//! * [`power_law`] — Chung–Lu graphs with degree weights
//!   `w_i ∝ i^(-1/(γ-1))`, the heavy-tailed regime where a few hubs
//!   dominate uplink sizes;
//! * [`disconnected`] — forced multi-component inputs (connectivity
//!   services must answer *no*, spanning-forest services must not
//!   invent cross edges);
//! * per-protocol adversarial inputs: [`adversarial_boruvka`] (a
//!   label-scrambled path maximising merge phases),
//!   [`adversarial_degeneracy`] (a dense core hiding behind a long
//!   peeling tail) and [`adversarial_sketch`] (two dense halves joined
//!   by a single bridge the sketch sampler must not miss).
//!
//! [`GraphFamily`] enumerates them behind one `generate(n, seed)` entry
//! point so a bench can iterate `GraphFamily::standard()` × services.

use crate::generators::{degenerate, random, structured};
use crate::{LabelledGraph, VertexId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Mix the family discriminant into the user seed so two families given
/// the same seed do not walk identical RNG streams.
fn rng_for(seed: u64, salt: u64) -> StdRng {
    StdRng::seed_from_u64(
        seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(salt).rotate_left(17),
    )
}

/// Scramble vertex labels with a seeded permutation so construction
/// order is not revealed by the labelling.
fn scramble(g: &LabelledGraph, rng: &mut StdRng) -> LabelledGraph {
    let mut perm: Vec<VertexId> = (1..=g.n() as VertexId).collect();
    perm.shuffle(rng);
    g.relabel(&perm)
}

/// Random partial k-tree: treewidth ≤ `width` **by construction**.
///
/// A k-tree is grown along an explicit elimination order (each new
/// vertex joined to an existing k-clique), then each edge survives with
/// probability `density`. Subgraphs of k-trees are exactly the graphs
/// of treewidth ≤ k, so thinning never breaks the bound — it only
/// hides the witnessing order from the referee.
pub fn bounded_treewidth(n: usize, width: usize, density: f64, seed: u64) -> LabelledGraph {
    assert!(width >= 1, "treewidth bound must be >= 1");
    assert!(n > width, "partial k-tree needs n > width (n={n}, width={width})");
    let mut rng = rng_for(seed, 0x07u64.wrapping_add(width as u64));
    let full = degenerate::k_tree(n, width, &mut rng);
    let kept = full.edges().filter(|_| density >= 1.0 || rng.gen_bool(density.clamp(0.0, 1.0)));
    let thin = LabelledGraph::from_edges(n, kept.map(|e| (e.0, e.1)))
        .expect("subset of simple edges stays simple");
    scramble(&thin, &mut rng)
}

/// Chung–Lu power-law graph: vertex `i` gets weight
/// `w_i ∝ (i + 1)^(-1/(γ - 1))`, edge `{i, j}` appears independently
/// with probability `min(1, w_i · w_j / Σw)`. Smaller `gamma` (must be
/// > 2) means a heavier tail — a few hubs of very high degree.
pub fn power_law(n: usize, gamma: f64, seed: u64) -> LabelledGraph {
    assert!(gamma > 2.0, "power-law exponent must be > 2 (got {gamma})");
    let mut rng = rng_for(seed, 0x1a);
    let exponent = 1.0 / (gamma - 1.0);
    let raw: Vec<f64> = (0..n).map(|i| ((i + 1) as f64).powf(-exponent)).collect();
    let raw_sum: f64 = raw.iter().sum();
    // Scale weights so the expected average degree is ~4 (capped for
    // tiny n), keeping the sweep's session cost comparable across
    // exponents while the *shape* of the degree sequence varies.
    let target_avg = 4.0_f64.min((n.saturating_sub(1)) as f64);
    let scale = if raw_sum > 0.0 { (target_avg * n as f64 / raw_sum).sqrt() } else { 0.0 };
    let w: Vec<f64> = raw.iter().map(|x| x * scale).collect();
    let total: f64 = w.iter().sum();
    let mut g = LabelledGraph::new(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let p = (w[i] * w[j] / total.max(f64::MIN_POSITIVE)).min(1.0);
            if rng.gen_bool(p) {
                g.add_edge((i + 1) as VertexId, (j + 1) as VertexId).expect("fresh edge");
            }
        }
    }
    scramble(&g, &mut rng)
}

/// Exactly `parts` connected components: random trees (plus a few
/// random chords) of near-equal size, disjoint-unioned and then
/// label-scrambled so components interleave in the label space instead
/// of forming contiguous runs.
pub fn disconnected(n: usize, parts: usize, seed: u64) -> LabelledGraph {
    assert!(parts >= 1 && parts <= n, "need 1 <= parts <= n (n={n}, parts={parts})");
    let mut rng = rng_for(seed, 0x2bu64.wrapping_add(parts as u64));
    let base = n / parts;
    let extra = n % parts;
    let mut g = LabelledGraph::new(0);
    for p in 0..parts {
        let size = base + usize::from(p < extra);
        let mut component = random::random_tree(size, &mut rng);
        // A few chords so components are not all trees (spanning-forest
        // services must still pick n_c - 1 edges per component).
        if size >= 3 {
            for _ in 0..(size / 4) {
                let u = rng.gen_range(1..=size as VertexId);
                let v = rng.gen_range(1..=size as VertexId);
                if u != v && !component.has_edge(u, v) {
                    component.add_edge(u, v).expect("checked fresh");
                }
            }
        }
        g = g.disjoint_union(&component);
    }
    scramble(&g, &mut rng)
}

/// Borůvka's worst case: a single path. Every merge phase only doubles
/// component sizes along the line, so the round count hits the
/// `⌈log₂ n⌉` ceiling; labels are scrambled so fragment IDs carry no
/// positional hints.
pub fn adversarial_boruvka(n: usize, seed: u64) -> LabelledGraph {
    let mut rng = rng_for(seed, 0x3c);
    scramble(&structured::path(n), &mut rng)
}

/// Adversarial input for peel-based degeneracy protocols: a dense
/// `k_core` (a k-tree on half the vertices, degeneracy exactly `k`)
/// hiding behind a long path tail. Degree-1 peeling must walk the whole
/// tail, round after round, before the core's structure is even
/// reachable — maximising adaptive-protocol round counts while the
/// degeneracy stays exactly `max(k, 1)`.
pub fn adversarial_degeneracy(n: usize, k: usize, seed: u64) -> LabelledGraph {
    assert!(k >= 1, "degeneracy target must be >= 1");
    let core_n = (n / 2).max(k + 1);
    assert!(core_n < n, "need room for a tail (n={n}, k={k})");
    let mut rng = rng_for(seed, 0x4du64.wrapping_add(k as u64));
    let core = degenerate::k_tree(core_n, k, &mut rng);
    let tail = structured::path(n - core_n);
    let mut g = core.disjoint_union(&tail);
    // Attach the tail's first vertex to a random core vertex.
    let anchor = rng.gen_range(1..=core_n as VertexId);
    g.add_edge(anchor, (core_n + 1) as VertexId).expect("cross edge is fresh");
    scramble(&g, &mut rng)
}

/// Adversarial input for sketch-based connectivity: two G(n/2, ½)
/// halves joined by a **single** bridge. The verdict flips on one edge
/// out of ~n²/8 — exactly the needle an ℓ₀-sampling sketch must
/// recover from a sea of dense intra-half noise.
pub fn adversarial_sketch(n: usize, seed: u64) -> LabelledGraph {
    assert!(n >= 2, "bridge needs two endpoints (n={n})");
    let mut rng = rng_for(seed, 0x5e);
    // Each half is a random spanning tree (connected by construction)
    // densified with ~p = ½ chords, so the only cut edge is the bridge.
    let mut dense_half = |size: usize| {
        let mut half = random::random_tree(size, &mut rng);
        for u in 1..=size as VertexId {
            for v in (u + 1)..=size as VertexId {
                if !half.has_edge(u, v) && rng.gen_bool(0.5) {
                    half.add_edge(u, v).expect("checked fresh");
                }
            }
        }
        half
    };
    let left_n = n / 2;
    let left = dense_half(left_n);
    let right = dense_half(n - left_n);
    let mut g = left.disjoint_union(&right);
    let u = rng.gen_range(1..=left_n.max(1) as VertexId);
    let v = rng.gen_range((left_n + 1) as VertexId..=n as VertexId);
    g.add_edge(u, v).expect("cross-half edge is fresh");
    scramble(&g, &mut rng)
}

/// One axis of the catalog experiment sweep: a named, seeded workload
/// family. `generate(n, seed)` is deterministic per variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GraphFamily {
    /// [`bounded_treewidth`] with this width bound and edge density.
    BoundedTreewidth {
        /// Treewidth bound `k` (partial k-tree).
        width: usize,
        /// Probability each k-tree edge survives thinning.
        density: f64,
    },
    /// [`power_law`] with this exponent.
    PowerLaw {
        /// Tail exponent γ > 2; smaller is heavier-tailed.
        gamma: f64,
    },
    /// [`disconnected`] with this many components.
    Disconnected {
        /// Exact number of connected components.
        parts: usize,
    },
    /// [`adversarial_boruvka`].
    AdversarialBoruvka,
    /// [`adversarial_degeneracy`] with this degeneracy target.
    AdversarialDegeneracy {
        /// Degeneracy of the hidden core.
        k: usize,
    },
    /// [`adversarial_sketch`].
    AdversarialSketch,
}

impl GraphFamily {
    /// Stable machine-readable name (used as the benchmark axis label).
    pub fn name(&self) -> String {
        match self {
            GraphFamily::BoundedTreewidth { width, density } => {
                format!("treewidth{width}-d{density:.2}")
            }
            GraphFamily::PowerLaw { gamma } => format!("powerlaw{gamma:.1}"),
            GraphFamily::Disconnected { parts } => format!("disconnected{parts}"),
            GraphFamily::AdversarialBoruvka => "adversarial-boruvka".into(),
            GraphFamily::AdversarialDegeneracy { k } => format!("adversarial-degeneracy{k}"),
            GraphFamily::AdversarialSketch => "adversarial-sketch".into(),
        }
    }

    /// Generate the family's graph on `n` vertices. Deterministic: the
    /// same `(self, n, seed)` always yields the byte-identical graph.
    pub fn generate(&self, n: usize, seed: u64) -> LabelledGraph {
        match *self {
            GraphFamily::BoundedTreewidth { width, density } => {
                bounded_treewidth(n, width, density, seed)
            }
            GraphFamily::PowerLaw { gamma } => power_law(n, gamma, seed),
            GraphFamily::Disconnected { parts } => disconnected(n, parts, seed),
            GraphFamily::AdversarialBoruvka => adversarial_boruvka(n, seed),
            GraphFamily::AdversarialDegeneracy { k } => adversarial_degeneracy(n, k, seed),
            GraphFamily::AdversarialSketch => adversarial_sketch(n, seed),
        }
    }

    /// The standard sweep set: every family the `exp_catalog` bench
    /// crosses with every catalog service.
    pub fn standard() -> Vec<GraphFamily> {
        vec![
            GraphFamily::BoundedTreewidth { width: 3, density: 0.8 },
            GraphFamily::PowerLaw { gamma: 2.5 },
            GraphFamily::Disconnected { parts: 3 },
            GraphFamily::AdversarialBoruvka,
            GraphFamily::AdversarialDegeneracy { k: 3 },
            GraphFamily::AdversarialSketch,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo;
    use crate::graph6::to_graph6;

    #[test]
    fn bounded_treewidth_honours_width_bound() {
        for width in 1..=4 {
            for seed in 0..4 {
                let g = bounded_treewidth(24, width, 0.7, seed);
                // treewidth ≤ w ⇒ degeneracy ≤ w; certified directly.
                assert!(
                    degenerate::check_degeneracy_at_most(&g, width),
                    "width={width} seed={seed}"
                );
            }
        }
        // Exact treewidth check on a size the exact solver handles.
        let g = bounded_treewidth(10, 2, 1.0, 7);
        assert!(algo::treewidth_exact(&g) <= 2);
    }

    #[test]
    fn power_law_exponent_shapes_the_tail() {
        let heavy = power_law(300, 2.2, 42);
        let light = power_law(300, 3.5, 42);
        let max_deg = |g: &LabelledGraph| {
            g.vertices().map(|v| g.neighbourhood(v).len()).max().unwrap_or(0)
        };
        assert!(
            max_deg(&heavy) > max_deg(&light),
            "γ=2.2 should grow bigger hubs than γ=3.5 (got {} vs {})",
            max_deg(&heavy),
            max_deg(&light)
        );
    }

    #[test]
    fn disconnected_has_exactly_the_requested_parts() {
        for parts in 1..=5 {
            let g = disconnected(23, parts, 9);
            assert_eq!(algo::component_count(&g), parts, "parts={parts}");
        }
    }

    #[test]
    fn adversarial_boruvka_is_a_scrambled_path() {
        let g = adversarial_boruvka(33, 5);
        assert_eq!(g.m(), 32);
        assert!(algo::is_connected(&g));
        assert!(algo::is_forest(&g));
    }

    #[test]
    fn adversarial_degeneracy_pins_the_core_degeneracy() {
        for k in 1..=3 {
            let g = adversarial_degeneracy(40, k, 11);
            assert!(algo::is_connected(&g), "k={k}");
            assert!(degenerate::check_degeneracy_at_most(&g, k), "k={k}");
            assert!(!degenerate::check_degeneracy_at_most(&g, k - 1), "k={k} should be tight");
        }
    }

    #[test]
    fn adversarial_sketch_hinges_on_one_bridge() {
        let g = adversarial_sketch(30, 3);
        assert!(algo::is_connected(&g));
        // Exactly one cross-half edge: the min cut is that bridge.
        assert_eq!(algo::global_min_cut(&g).expect("n >= 2").weight, 1);
    }

    #[test]
    fn every_standard_family_is_seed_deterministic() {
        for fam in GraphFamily::standard() {
            for seed in [0u64, 1, 0xdead_beef] {
                let a = to_graph6(&fam.generate(20, seed));
                let b = to_graph6(&fam.generate(20, seed));
                assert_eq!(a, b, "{} seed={seed}", fam.name());
            }
            // Different seeds should (overwhelmingly) differ.
            let a = to_graph6(&fam.generate(20, 1));
            let b = to_graph6(&fam.generate(20, 2));
            if fam != GraphFamily::AdversarialBoruvka {
                assert_ne!(a, b, "{} should vary with the seed", fam.name());
            }
        }
    }
}
