//! The **standard service catalog**: every protocol family the
//! workspace ships, registered under stable names so one catalog-mode
//! [`FleetServer`](referee_wirenet::FleetServer) (or one
//! [`Scheduler::sweep_mixed`](referee_simnet::Scheduler::sweep_mixed)
//! pool) serves them all concurrently.
//!
//! | name | protocol | verdict codec |
//! |------|----------|---------------|
//! | `boruvka` | [`BoruvkaConnectivity`] | [`encode_bool_output`] |
//! | `adaptive-degeneracy` | [`AdaptiveDegeneracyProtocol`] | [`encode_graph_output`] |
//! | `sketch-connectivity` | [`OneRoundAsMultiRound`]([`SketchConnectivityProtocol`]) | [`encode_bool_output`] |
//! | `sketch-then-reconstruct` | [`Chain`] of the two above | [`encode_sketch_then_reconstruct`] |
//! | `boruvka-degrees` | [`Extend`]([`BoruvkaConnectivity`], [`DegreeCensus`]) | [`encode_boruvka_degrees`] |
//!
//! All codecs are prefix-free, so composite outputs are plain
//! concatenations of the part codecs and every verdict is bit-for-bit
//! comparable across the wire, the simnet and a local
//! [`run_multiround`](referee_protocol::multiround::run_multiround)
//! replay.

use referee_degeneracy::AdaptiveDegeneracyProtocol;
use referee_graph::LabelledGraph;
use referee_protocol::combinators::{Chain, DegreeCensus, Extend, OneRoundAsMultiRound};
use referee_protocol::multiround::BoruvkaConnectivity;
use referee_protocol::service::{
    class_error, decode_graph_part, encode_bool_output, encode_graph_output, error_class,
    ServiceCatalog,
};
use referee_protocol::{BitReader, BitWriter, DecodeError, Message};
use referee_sketches::SketchConnectivityProtocol;

/// Output type of the `sketch-then-reconstruct` chain: the sketch
/// connectivity verdict, then the adaptive reconstruction.
pub type SketchThenReconstructOutput =
    (Result<bool, DecodeError>, Result<LabelledGraph, DecodeError>);

/// Output type of the `boruvka-degrees` extension: the untouched
/// Borůvka verdict plus the piggybacked degree-census sum.
pub type BoruvkaDegreesOutput = (Result<bool, DecodeError>, Result<u64, DecodeError>);

/// Codec for the `sketch-then-reconstruct` chain output: the bool part
/// followed by the graph part, each in its standalone prefix-free
/// encoding.
pub fn encode_sketch_then_reconstruct(out: &SketchThenReconstructOutput) -> Message {
    let mut w = BitWriter::new();
    encode_bool_output(&out.0).append_to(&mut w);
    encode_graph_output(&out.1).append_to(&mut w);
    Message::from_writer(w)
}

/// Inverse of [`encode_sketch_then_reconstruct`]. The outer `Err` is a
/// framing failure; the inner `Result`s are the phase outputs.
pub fn decode_sketch_then_reconstruct(
    msg: &Message,
) -> Result<SketchThenReconstructOutput, DecodeError> {
    let mut r = msg.reader();
    let first = decode_bool_part(&mut r)?;
    let second = decode_graph_part(&mut r)?;
    if !r.is_exhausted() {
        return Err(DecodeError::Invalid("trailing bits after chain output".into()));
    }
    Ok((first, second))
}

/// Codec for the `boruvka-degrees` extension output: the bool part,
/// then `1` + the 64-bit census sum on success (else `0` + the 2-bit
/// rejection class).
pub fn encode_boruvka_degrees(out: &BoruvkaDegreesOutput) -> Message {
    let mut w = BitWriter::new();
    encode_bool_output(&out.0).append_to(&mut w);
    match &out.1 {
        Ok(sum) => {
            w.push_bit(true);
            w.write_bits(*sum, 64);
        }
        Err(e) => {
            w.push_bit(false);
            w.write_bits(error_class(e), 2);
        }
    }
    Message::from_writer(w)
}

/// Inverse of [`encode_boruvka_degrees`].
pub fn decode_boruvka_degrees(msg: &Message) -> Result<BoruvkaDegreesOutput, DecodeError> {
    let mut r = msg.reader();
    let base = decode_bool_part(&mut r)?;
    let census =
        if r.read_bit()? { Ok(r.read_bits(64)?) } else { Err(class_error(r.read_bits(2)?)) };
    if !r.is_exhausted() {
        return Err(DecodeError::Invalid("trailing bits after extension output".into()));
    }
    Ok((base, census))
}

/// Decode one [`encode_bool_output`] unit mid-stream (the prefix-free
/// twin of [`decode_graph_part`]).
fn decode_bool_part(r: &mut BitReader<'_>) -> Result<Result<bool, DecodeError>, DecodeError> {
    if r.read_bit()? {
        return Ok(Ok(r.read_bit()?));
    }
    Ok(Err(class_error(r.read_bits(2)?)))
}

/// The standard catalog: Borůvka connectivity, adaptive degeneracy
/// reconstruction, sketch-based connectivity (seeded with the shared
/// public coins), a chained sketch-then-reconstruct composite and the
/// degree-census-extended Borůvka. One server process typically builds
/// this once and serves every protocol concurrently.
pub fn standard_catalog(seed: u64) -> ServiceCatalog {
    ServiceCatalog::new()
        .register("boruvka", BoruvkaConnectivity, encode_bool_output)
        .register("adaptive-degeneracy", AdaptiveDegeneracyProtocol, encode_graph_output)
        .register(
            "sketch-connectivity",
            OneRoundAsMultiRound(SketchConnectivityProtocol::new(seed)),
            encode_bool_output,
        )
        .register(
            "sketch-then-reconstruct",
            Chain::new(
                OneRoundAsMultiRound(SketchConnectivityProtocol::new(seed)),
                AdaptiveDegeneracyProtocol,
            ),
            encode_sketch_then_reconstruct,
        )
        .register(
            "boruvka-degrees",
            Extend::new(BoruvkaConnectivity, DegreeCensus),
            encode_boruvka_degrees,
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use referee_graph::generators;
    use referee_protocol::multiround::run_multiround;
    use referee_protocol::service::decode_bool_output;

    #[test]
    fn standard_catalog_names_are_stable() {
        let cat = standard_catalog(7);
        assert_eq!(
            cat.names().collect::<Vec<_>>(),
            vec![
                "boruvka",
                "adaptive-degeneracy",
                "sketch-connectivity",
                "sketch-then-reconstruct",
                "boruvka-degrees",
            ]
        );
    }

    #[test]
    fn every_service_replays_locally_and_round_trips_its_codec() {
        let g = generators::grid(3, 4);
        let cat = standard_catalog(21);
        for entry in cat.entries() {
            let (verdict, stats) =
                entry.run_local(&g, 64).expect("standard entries register a local half");
            let verdict = verdict.expect("round budget suffices");
            assert!(stats.rounds >= 1, "{}", entry.name());
            match entry.name() {
                "boruvka" | "sketch-connectivity" => {
                    assert_eq!(decode_bool_output(&verdict), Ok(true));
                }
                "adaptive-degeneracy" => {
                    let got = referee_protocol::service::decode_graph_output(&verdict)
                        .expect("reconstruction succeeds");
                    assert_eq!(got, g);
                }
                "sketch-then-reconstruct" => {
                    let (conn, rec) =
                        decode_sketch_then_reconstruct(&verdict).expect("well-framed");
                    assert_eq!(conn, Ok(true));
                    assert_eq!(rec.expect("reconstruction succeeds"), g);
                }
                "boruvka-degrees" => {
                    let (conn, census) = decode_boruvka_degrees(&verdict).expect("well-framed");
                    assert_eq!(conn, Ok(true));
                    // Census sums degrees over all rounds; the exact
                    // value is pinned by the direct replay below.
                    assert!(census.is_ok());
                }
                other => panic!("unexpected service {other}"),
            }
        }
    }

    #[test]
    fn run_local_matches_direct_run_multiround_bit_for_bit() {
        let g = generators::petersen();
        let cat = standard_catalog(5);

        let entry = cat.get("sketch-then-reconstruct").expect("registered");
        let (wire, _) = entry.run_local(&g, 64).expect("local half");
        let chain = Chain::new(
            OneRoundAsMultiRound(SketchConnectivityProtocol::new(5)),
            AdaptiveDegeneracyProtocol,
        );
        let (direct, _) = run_multiround(&chain, &g, 64);
        let direct = encode_sketch_then_reconstruct(&direct.expect("verdict"));
        let wire = wire.expect("verdict");
        assert_eq!(wire.len_bits(), direct.len_bits());
        assert_eq!(wire.as_bytes(), direct.as_bytes());

        let entry = cat.get("boruvka-degrees").expect("registered");
        let (wire, _) = entry.run_local(&g, 64).expect("local half");
        let ext = Extend::new(BoruvkaConnectivity, DegreeCensus);
        let (direct, _) = run_multiround(&ext, &g, 64);
        let direct = encode_boruvka_degrees(&direct.expect("verdict"));
        let wire = wire.expect("verdict");
        assert_eq!(wire.as_bytes(), direct.as_bytes());
    }

    #[test]
    fn composite_codecs_reject_malformed_payloads() {
        let out: SketchThenReconstructOutput = (Ok(true), Err(DecodeError::Truncated));
        let msg = encode_sketch_then_reconstruct(&out);
        assert_eq!(decode_sketch_then_reconstruct(&msg), Ok(out.clone()));
        // Truncating the payload must fail framing, not mis-decode.
        let cut = Message::from_writer({
            let mut w = BitWriter::new();
            let mut r = msg.reader();
            for _ in 0..msg.len_bits() - 1 {
                w.push_bit(r.read_bit().unwrap());
            }
            w
        });
        assert!(decode_sketch_then_reconstruct(&cut).is_err());
    }
}
