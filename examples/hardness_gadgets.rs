//! The negative results of §II, live: the gadget constructions of
//! Theorems 1–3 (Figures 1 and 2) and the executable reductions Δ that
//! turn any decision protocol Γ into a reconstruction protocol.
//!
//! Run with: `cargo run --release --example hardness_gadgets`

use rand::{rngs::StdRng, SeedableRng};
use referee_one_round::prelude::*;
use referee_one_round::reductions::gadgets;
use referee_one_round::reductions::oracle::{DiameterOracle, SquareOracle, TriangleOracle};

fn main() {
    let mut rng = StdRng::seed_from_u64(2011);

    // ---- Figure 1: the diameter gadget -----------------------------------
    println!("== Theorem 2 / Figure 1: diameter gadget ==");
    let g = generators::gnp(7, 0.35, &mut rng);
    println!("G on 7 vertices: {g:?}");
    for (s, t) in [(1u32, 7u32), (2, 5)] {
        let gadget = gadgets::diameter_gadget(&g, s, t);
        println!(
            "  G'_{{{s},{t}}}: 10 vertices, diam ≤ 3? {}  — {{{s},{t}}} ∈ E? {}",
            algo::diameter_at_most(&gadget, 3),
            g.has_edge(s, t),
        );
        assert_eq!(algo::diameter_at_most(&gadget, 3), g.has_edge(s, t));
    }

    // ---- Figure 2: the triangle gadget ------------------------------------
    println!("\n== Theorem 3 / Figure 2: triangle gadget ==");
    let bip = generators::random_balanced_bipartite(8, 0.4, &mut rng);
    for (s, t) in [(2u32, 7u32), (1, 5)] {
        let gadget = gadgets::triangle_gadget(&bip, s, t);
        println!(
            "  G'_{{{s},{t}}}: triangle? {}  — {{{s},{t}}} ∈ E? {}",
            algo::has_triangle(&gadget),
            bip.has_edge(s, t),
        );
        assert_eq!(algo::has_triangle(&gadget), bip.has_edge(s, t));
    }

    // ---- The reductions Δ, end to end --------------------------------------
    // Instantiate Γ with (non-frugal) oracles; Δ must reconstruct exactly.
    println!("\n== Executable reductions Δ (Algorithms 1–2, Thm 3) ==");

    let sq_free = generators::random_square_free(14, &mut rng);
    let delta1 = SquareReduction::new(SquareOracle);
    let out1 = run_protocol(&delta1, &sq_free);
    assert_eq!(out1.output, sq_free);
    println!(
        "Δ₁ (squares):  reconstructed a 14-vertex square-free graph, {} bits/msg",
        out1.stats.max_message_bits
    );

    let any = generators::gnp(12, 0.5, &mut rng);
    let delta2 = DiameterReduction::new(DiameterOracle);
    let out2 = run_protocol(&delta2, &any);
    assert_eq!(out2.output.unwrap(), any);
    println!(
        "Δ₂ (diameter): reconstructed an ARBITRARY 12-vertex graph, {} bits/msg (3 bundled Γ messages)",
        out2.stats.max_message_bits
    );

    let delta3 = TriangleReduction::new(TriangleOracle);
    let out3 = run_protocol(&delta3, &bip);
    assert_eq!(out3.output.unwrap(), bip);
    println!(
        "Δ₃ (triangle): reconstructed an 8-vertex bipartite graph, {} bits/msg (2 bundled Γ messages)",
        out3.stats.max_message_bits
    );

    println!(
        "\nConclusion (Lemma 1): since Δ reconstructs families of size \
         2^Θ(n^{{3/2}}) or 2^Θ(n²) from n messages, no frugal Γ can exist — \
         a frugal Γ would make Δ frugal, but frugal protocols distinguish \
         only 2^O(n log n) graphs."
    );
}
