//! E12–E14: the §IV open-question protocols — partition connectivity,
//! the bipartiteness ⟹ bipartite-connectivity reduction, and O(log n)-
//! round Borůvka connectivity.
//!
//! Run: `cargo run --release -p referee-bench --bin exp_openq`

use referee_bench::experiments::openq;
use referee_bench::section;

fn main() {
    println!(
        "# §IV: why the hardness technique fails for connectivity, and what more rounds buy"
    );

    section("E12 — k-part partition connectivity: O(k log n) bits/node (n = 300)");
    println!("k\tbits/node\tbound 2(k+1)⌈log n⌉+⌈log n⌉\tcorrect");
    for (k, bits, bound, ok) in openq::partition_sweep(300, &[1, 2, 4, 8, 16, 32], 5) {
        println!("{k}\t{bits}\t{bound}\t{ok}");
        assert!(ok && bits <= bound);
    }
    println!("→ per-node cost grows with k: the partition argument cannot reach k = n parts.");

    section("E13 — bipartiteness Γ ⟹ bipartite-connectivity Δ (ongoing-work remark)");
    println!("n\tagreements\truns");
    for (n, agree, total) in openq::bipartite_connectivity_sweep(&[8, 12, 16, 20], 6) {
        println!("{n}\t{agree}\t{total}");
        assert_eq!(agree, total);
    }
    println!("→ Δ's answer matched centralized connectivity on every run.");

    section("E14 — multi-round extension: Borůvka connectivity rounds vs ⌈log₂ n⌉ (paths)");
    println!("n\trounds\t⌈log₂ n⌉\tmax bits anywhere\tconnected");
    for (n, rounds, logn, bits, ans) in openq::boruvka_sweep(&[16, 64, 256, 1024, 4096, 16384])
    {
        println!("{n}\t{rounds}\t{logn}\t{bits}\t{ans}");
        assert!(ans && bits <= 2 * logn as usize);
    }
    println!(
        "→ rounds stay far below the 2⌈log₂ n⌉+2 worst case (the referee unions all\n\
         proposals transitively, so most topologies converge in a few rounds);\n\
         every message (uplink/downlink/link) stays ≤ 2⌈log₂ n⌉ bits."
    );

    section("E17 — extension: ONE round + public coins (AGM sketches) decides connectivity");
    println!("n\tsketch bits/node (O(log³n))\tnaive adjacency bits (Δ=n−1)\tagreements\truns");
    for (n, sketch, adj, agree, total) in openq::sketch_sweep(&[32, 64, 128, 256], 8) {
        println!("{n}\t{sketch}\t{adj}\t{agree}\t{total}");
    }
    println!(
        "\n(size formulas at scale — sketch O(log³n) vs adjacency n·⌈log n⌉ on dense graphs)"
    );
    println!("n\tsketch bits/node\tadjacency bits/node (Δ=n−1)");
    for n in [1 << 13, 1 << 16, 1 << 20] {
        use referee_sketches::SketchConnectivityProtocol;
        println!(
            "{n}\t{}\t{}",
            SketchConnectivityProtocol::message_bits(n),
            n * referee_protocol::bits_for(n) as usize
        );
    }
    println!(
        "→ with shared randomness one round suffices at polylog bits (Monte-Carlo,\n\
         one-sided error) — evidence that the open question's obstacle is determinism."
    );
}
