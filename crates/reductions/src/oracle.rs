//! Concrete `Γ` instantiations for the reductions.
//!
//! The impossibility theorems quantify over *all* frugal protocols, so no
//! frugal `Γ` deciding squares/triangles/diameter exists. To validate that
//! the `Δ` constructions are faithful simulations, we instantiate them
//! with **non-frugal oracles**: each node ships its full adjacency list
//! (the footnote-1 baseline encoding) and the referee decodes the whole
//! graph and answers exactly. The reductions must then reconstruct `G`
//! perfectly — and their measured message sizes exhibit the paper's
//! closing remark of §II: `k(2n)` bits for squares, `3·k(n+3)` for
//! diameter, `2·k(n+1)` for triangles, where `k(·)` is `Γ`'s message size.

use referee_graph::algo;
use referee_protocol::baseline::AdjacencyListProtocol;
use referee_protocol::{Message, NodeView, OneRoundProtocol};

macro_rules! oracle {
    ($(#[$doc:meta])* $name:ident, $label:expr, |$g:ident| $decide:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, Default)]
        pub struct $name;

        impl OneRoundProtocol for $name {
            /// `true` iff the property holds. Malformed message vectors
            /// decode to `false` (the oracle is only ever fed honest
            /// simulated messages; reductions do not rely on this arm).
            type Output = bool;

            fn name(&self) -> String {
                $label.into()
            }

            fn local(&self, view: NodeView<'_>) -> Message {
                AdjacencyListProtocol.local(view)
            }

            fn global(&self, n: usize, messages: &[Message]) -> bool {
                match AdjacencyListProtocol.global(n, messages) {
                    Ok($g) => $decide,
                    Err(_) => false,
                }
            }
        }
    };
}

oracle!(
    /// Oracle `Γ` for Theorem 1: "does G contain a square?"
    SquareOracle,
    "square-detection oracle",
    |g| algo::has_square(&g)
);

oracle!(
    /// Oracle `Γ` for Theorem 2: "is diam(G) ≤ 3?"
    DiameterOracle,
    "diameter≤3 oracle",
    |g| algo::diameter_at_most(&g, 3)
);

oracle!(
    /// Oracle `Γ` for Theorem 3: "does G contain a triangle?"
    TriangleOracle,
    "triangle-detection oracle",
    |g| algo::has_triangle(&g)
);

oracle!(
    /// Oracle `Γ` for the §IV reduction: "is G bipartite?"
    BipartitenessOracle,
    "bipartiteness oracle",
    |g| algo::is_bipartite(&g)
);

oracle!(
    /// Oracle `Γ` for §II.A's closing remark: "does G contain a square as
    /// an **induced** subgraph?" The same Δ (Algorithm 1) reconstructs
    /// square-free graphs from it — the paper: "By the same arguments we
    /// deduce that there is no frugal one-round protocol testing if the
    /// graph has a square as an induced subgraph."
    InducedSquareOracle,
    "induced-square-detection oracle",
    |g| algo::has_induced_square(&g)
);

#[cfg(test)]
mod tests {
    use super::*;
    use referee_graph::generators;
    use referee_protocol::run_protocol;

    #[test]
    fn oracles_answer_correctly() {
        let c4 = generators::cycle(4).unwrap();
        let c5 = generators::cycle(5).unwrap();
        let k3 = generators::complete(3);
        let p8 = generators::path(8);

        assert!(run_protocol(&SquareOracle, &c4).output);
        assert!(!run_protocol(&SquareOracle, &c5).output);

        assert!(run_protocol(&TriangleOracle, &k3).output);
        assert!(!run_protocol(&TriangleOracle, &c4).output);

        assert!(run_protocol(&DiameterOracle, &c4).output); // diam 2
        assert!(!run_protocol(&DiameterOracle, &p8).output); // diam 7

        assert!(run_protocol(&BipartitenessOracle, &c4).output);
        assert!(!run_protocol(&BipartitenessOracle, &c5).output);
    }

    #[test]
    fn oracle_message_size_is_adjacency_size() {
        let g = generators::complete(10);
        let out = run_protocol(&SquareOracle, &g);
        // (deg + 1) fields of bits_for(10) = 4 bits
        assert_eq!(out.stats.max_message_bits, 10 * 4);
    }
}
