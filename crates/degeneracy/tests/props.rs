//! Property tests: the Theorem 5 protocol round-trips on random members
//! of its class, Wright uniqueness holds on random subsets, and decoders
//! agree.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use referee_degeneracy::protocol::Reconstruction;
use referee_degeneracy::{
    newton, DecoderKind, DegeneracyProtocol, ForestProtocol, GeneralizedDegeneracyProtocol,
    NeighbourhoodDecoder, NewtonDecoder, TableDecoder,
};
use referee_graph::generators;
use referee_protocol::run_protocol;
use referee_wideint::UBig;

fn sums_of(ids: &[u32], k: usize) -> Vec<UBig> {
    (1..=k)
        .map(|p| {
            let mut acc = UBig::zero();
            for &i in ids {
                acc.add_assign_ref(&UBig::pow_of(i as u64, p as u32));
            }
            acc
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn newton_decode_round_trips(
        n in 5usize..2000,
        seed in any::<u64>(),
        d in 0usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // d distinct ids in 1..=n
        let mut ids: Vec<u32> = Vec::new();
        let d = d.min(n);
        while ids.len() < d {
            let c = rand::Rng::gen_range(&mut rng, 1..=n as u32);
            if !ids.contains(&c) {
                ids.push(c);
            }
        }
        ids.sort_unstable();
        let k = d.max(1) + 1; // one extra sum for the verification path
        let sums = sums_of(&ids, k);
        prop_assert_eq!(newton::decode_neighbours(n, d, &sums).unwrap(), ids);
    }

    #[test]
    fn degeneracy_protocol_round_trips(
        n in 2usize..40,
        k in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_k_degenerate(n, k, 0.8, &mut rng);
        let out = run_protocol(&DegeneracyProtocol::new(k), &g).output.unwrap();
        prop_assert_eq!(out, Reconstruction::Graph(g));
    }

    #[test]
    fn forest_protocol_round_trips(n in 1usize..120, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_forest(n, 0.8, &mut rng);
        let out = run_protocol(&ForestProtocol, &g).output.unwrap();
        prop_assert_eq!(out, Reconstruction::Graph(g));
    }

    #[test]
    fn generalized_handles_complements(n in 4usize..24, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sparse = generators::random_k_degenerate(n, 2, 0.9, &mut rng);
        let dense = sparse.complement();
        let out = run_protocol(&GeneralizedDegeneracyProtocol::new(2), &dense)
            .output
            .unwrap();
        prop_assert_eq!(out, Reconstruction::Graph(dense));
    }

    #[test]
    fn recognition_is_sound_and_complete(n in 3usize..20, seed in any::<u64>()) {
        // For an arbitrary random graph, the k-protocol accepts iff the
        // true degeneracy is ≤ k (and then reconstructs exactly).
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(n, 0.4, &mut rng);
        let true_k = referee_graph::algo::degeneracy_ordering(&g).degeneracy;
        for k in 1usize..=4 {
            let out = run_protocol(&DegeneracyProtocol::new(k), &g).output.unwrap();
            if true_k <= k {
                prop_assert_eq!(out, Reconstruction::Graph(g.clone()), "k={}", k);
            } else {
                prop_assert_eq!(out, Reconstruction::NotInClass, "k={}", k);
            }
        }
    }

    #[test]
    fn decoders_agree(seed in any::<u64>(), d in 0usize..4) {
        let n = 10usize;
        let k = 3usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ids: Vec<u32> = Vec::new();
        while ids.len() < d {
            let c = rand::Rng::gen_range(&mut rng, 1..=n as u32);
            if !ids.contains(&c) {
                ids.push(c);
            }
        }
        ids.sort_unstable();
        let sums = sums_of(&ids, k);
        let table = TableDecoder::new(n, k).unwrap();
        prop_assert_eq!(
            NewtonDecoder.decode(n, d, &sums).unwrap(),
            table.decode(n, d, &sums).unwrap()
        );
    }

    #[test]
    fn reconstruction_commutes_with_relabelling(n in 3usize..25, seed in any::<u64>()) {
        // "Graph" means LABELLED graph: the protocol must reconstruct the
        // exact labelling, and relabelling the input relabels the output.
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_k_degenerate(n, 2, 0.9, &mut rng);
        let mut perm: Vec<u32> = (1..=n as u32).collect();
        perm.shuffle(&mut rng);
        let h = g.relabel(&perm);
        let out = run_protocol(&DegeneracyProtocol::new(2), &h).output.unwrap();
        prop_assert_eq!(out, Reconstruction::Graph(h));
    }

    #[test]
    fn table_and_newton_protocols_identical(n in 4usize..14, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::random_k_degenerate(n, 2, 1.0, &mut rng);
        let a = run_protocol(&DegeneracyProtocol::new(2), &g).output.unwrap();
        let b = run_protocol(&DegeneracyProtocol::with_decoder(2, DecoderKind::Table), &g)
            .output
            .unwrap();
        prop_assert_eq!(a, b);
    }
}

// ---------------------------------------------------------------------------
// Extension-layer properties: the adaptive unknown-k protocol
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Adaptive reconstruction round-trips on random graphs of random
    /// degeneracy, in exactly ⌈log₂ d⌉ + 1 rounds, with k_final < 2d.
    #[test]
    fn adaptive_round_trip(n in 2usize..40, seed in any::<u64>(), k in 1usize..6) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::random_k_degenerate(n.max(k + 1), k, 0.8, &mut rng);
        let d = referee_graph::algo::degeneracy_ordering(&g).degeneracy;
        let (out, stats, k_final) = referee_degeneracy::adaptive_reconstruct(&g);
        prop_assert_eq!(out.unwrap(), g.clone());
        prop_assert_eq!(
            stats.rounds,
            referee_degeneracy::adaptive::rounds_for_degeneracy(g.n(), d)
        );
        if d >= 1 {
            prop_assert!(k_final < 2 * d.max(1) || k_final == 1);
        }
    }

    /// Adaptive and known-k protocols agree bit-for-bit on the result.
    #[test]
    fn adaptive_agrees_with_oneround(n in 3usize..30, seed in any::<u64>()) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generators::gnp(n, 0.25, &mut rng);
        let d = referee_graph::algo::degeneracy_ordering(&g).degeneracy.max(1);
        let one = run_protocol(&DegeneracyProtocol::new(d), &g).output.unwrap();
        let (adaptive, _, _) = referee_degeneracy::adaptive_reconstruct(&g);
        prop_assert_eq!(one.graph().unwrap(), adaptive.unwrap());
    }
}

// ---------------------------------------------------------------------------
// OneRoundAsMultiRound equivalence: every one-round degeneracy protocol
// rides the multi-round adapter without changing its answer.
// ---------------------------------------------------------------------------

use referee_graph::LabelledGraph;
use referee_protocol::combinators::OneRoundAsMultiRound;
use referee_protocol::multiround::run_multiround;
use referee_protocol::OneRoundProtocol;

fn adapter_matches_native<P>(p: &P, g: &LabelledGraph)
where
    P: OneRoundProtocol + Sync,
    P::Output: PartialEq + std::fmt::Debug,
{
    let native = run_protocol(p, g).output;
    let (adapted, stats) = run_multiround(&OneRoundAsMultiRound(p), g, 4);
    assert_eq!(adapted.expect("adapter finishes in one step"), native, "{}", p.name());
    assert_eq!(stats.rounds, 1, "{}", p.name());
    assert_eq!(stats.max_link_bits, 0, "{}", p.name());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn degeneracy_protocols_ride_the_multiround_adapter_unchanged(
        n in 2usize..12,
        seed in any::<u64>(),
        k in 1usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = generators::gnp(n, 0.3, &mut rng);
        adapter_matches_native(&ForestProtocol, &g);
        adapter_matches_native(&DegeneracyProtocol::new(k), &g);
        adapter_matches_native(&GeneralizedDegeneracyProtocol::new(k), &g);
    }
}
