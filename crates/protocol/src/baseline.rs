//! Baseline protocols.
//!
//! Footnote 1 of the paper: "if the network has bounded degree then each
//! processor can simply send its neighborhood to the referee, using only
//! O(log n) bits. And, with this information, the referee is able to
//! reconstruct the whole network." [`AdjacencyListProtocol`] is exactly
//! that protocol; it reconstructs *any* graph but is frugal only on
//! bounded-degree families — it is the baseline every experiment compares
//! the degeneracy sketch against, and the substrate the §II oracle
//! protocols are built on.

use crate::bits::BitWriter;
use crate::model::{NodeView, OneRoundProtocol};
use crate::{bits_for, DecodeError, Message};
use referee_graph::{LabelledGraph, VertexId};

/// Each node sends `(deg(v), ID(w₁), …, ID(w_deg))`; the referee rebuilds
/// the graph and cross-validates symmetry. Message size: `(deg(v) + 1) ·
/// ⌈log₂(n+1)⌉` bits — `O(log n)` iff the degree is bounded.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdjacencyListProtocol;

impl OneRoundProtocol for AdjacencyListProtocol {
    type Output = Result<LabelledGraph, DecodeError>;

    fn name(&self) -> String {
        "adjacency-list baseline (footnote 1)".into()
    }

    fn local(&self, view: NodeView<'_>) -> Message {
        let width = bits_for(view.n);
        let mut w = BitWriter::new();
        w.write_bits(view.degree() as u64, width);
        for &nbr in view.neighbours {
            w.write_bits(nbr as u64, width);
        }
        Message::from_writer(w)
    }

    fn global(&self, n: usize, messages: &[Message]) -> Result<LabelledGraph, DecodeError> {
        if messages.len() != n {
            return Err(DecodeError::Inconsistent(format!(
                "expected {n} messages, got {}",
                messages.len()
            )));
        }
        let width = bits_for(n);
        let mut lists: Vec<Vec<VertexId>> = Vec::with_capacity(n);
        for (i, msg) in messages.iter().enumerate() {
            let mut r = msg.reader();
            let deg = r.read_bits(width)? as usize;
            if deg >= n.max(1) {
                return Err(DecodeError::OutOfRange(format!(
                    "vertex {} claims degree {deg} ≥ n = {n}",
                    i + 1
                )));
            }
            let mut nbrs = Vec::with_capacity(deg);
            for _ in 0..deg {
                let id = r.read_bits(width)? as VertexId;
                if id == 0 || id as usize > n || id as usize == i + 1 {
                    return Err(DecodeError::OutOfRange(format!(
                        "vertex {} lists invalid neighbour {id}",
                        i + 1
                    )));
                }
                nbrs.push(id);
            }
            if !r.is_exhausted() {
                return Err(DecodeError::Invalid(format!(
                    "vertex {} sent {} trailing bits",
                    i + 1,
                    r.remaining()
                )));
            }
            nbrs.sort_unstable();
            nbrs.dedup();
            if nbrs.len() != deg {
                return Err(DecodeError::Invalid(format!(
                    "vertex {} repeated a neighbour",
                    i + 1
                )));
            }
            lists.push(nbrs);
        }
        // Symmetry check: u lists v ⟺ v lists u.
        let mut g = LabelledGraph::new(n);
        for (i, nbrs) in lists.iter().enumerate() {
            let u = (i + 1) as VertexId;
            for &v in nbrs {
                if lists[(v - 1) as usize].binary_search(&u).is_err() {
                    return Err(DecodeError::Inconsistent(format!(
                        "{u} lists {v} but {v} does not list {u}"
                    )));
                }
                if v > u {
                    g.add_edge(u, v).expect("validated edge");
                }
            }
        }
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::referee::run_protocol;
    use referee_graph::generators;

    #[test]
    fn reconstructs_exactly() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        for g in [
            generators::path(20),
            generators::petersen(),
            generators::gnp(30, 0.2, &mut rng),
            LabelledGraph::new(5),
        ] {
            let out = run_protocol(&AdjacencyListProtocol, &g);
            assert_eq!(out.output.expect("honest messages decode"), g);
        }
    }

    #[test]
    fn message_size_is_degree_dependent() {
        let g = generators::star(100).unwrap();
        let out = run_protocol(&AdjacencyListProtocol, &g);
        // centre sends (1 + 99) fields of 7 bits
        assert_eq!(out.stats.max_message_bits, 100 * 7);
        assert!(out.output.is_ok());
    }

    #[test]
    fn corrupted_message_rejected_not_misdecoded() {
        let g = generators::petersen();
        let views: Vec<Vec<u32>> = g.vertices().map(|v| g.neighbourhood(v).to_vec()).collect();
        let mut msgs: Vec<Message> = g
            .vertices()
            .map(|v| {
                AdjacencyListProtocol.local(NodeView::new(10, v, &views[(v - 1) as usize]))
            })
            .collect();
        let honest = AdjacencyListProtocol.global(10, &msgs).unwrap();
        assert_eq!(honest, g);
        // flip every bit position of message 0 in turn: decode must never
        // silently return a *different valid* graph that passes symmetry —
        // it either errors or (rarely) produces the same graph back.
        let original = msgs[0].clone();
        for bit in 0..original.len_bits() {
            msgs[0] = original.with_bit_flipped(bit);
            match AdjacencyListProtocol.global(10, &msgs) {
                Err(_) => {}
                Ok(decoded) => {
                    // a flip in a neighbour ID could only survive symmetry
                    // if it produced the identical graph — assert that.
                    assert_eq!(decoded, g, "bit {bit} produced a wrong graph silently");
                }
            }
        }
    }

    #[test]
    fn wrong_message_count_rejected() {
        let msgs = vec![Message::empty(); 3];
        assert!(matches!(
            AdjacencyListProtocol.global(5, &msgs),
            Err(DecodeError::Inconsistent(_))
        ));
    }

    #[test]
    fn asymmetric_lists_rejected() {
        // Hand-craft: vertex 1 lists 2, vertex 2 lists nothing.
        let width = bits_for(2);
        let m1 = {
            let mut w = BitWriter::new();
            w.write_bits(1, width);
            w.write_bits(2, width);
            Message::from_writer(w)
        };
        let m2 = {
            let mut w = BitWriter::new();
            w.write_bits(0, width);
            Message::from_writer(w)
        };
        assert!(matches!(
            AdjacencyListProtocol.global(2, &[m1, m2]),
            Err(DecodeError::Inconsistent(_))
        ));
    }
}
