//! Disjoint-set union (union–find) with path halving and union by size.
//!
//! Substrate for spanning forests, the k-part partition connectivity
//! protocol (§IV of the paper) and the referee-coordinated Borůvka rounds
//! of the multi-round extension.

/// Union–find over elements `0..len`.
#[derive(Debug, Clone)]
pub struct Dsu {
    parent: Vec<u32>,
    size: Vec<u32>,
    components: usize,
}

impl Dsu {
    /// `len` singleton sets.
    pub fn new(len: usize) -> Self {
        Dsu { parent: (0..len as u32).collect(), size: vec![1; len], components: len }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True iff there are no elements.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of the set containing `x` (path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        loop {
            let p = self.parent[x] as usize;
            if p == x {
                return x;
            }
            let gp = self.parent[p] as usize;
            self.parent[x] = gp as u32;
            x = gp;
        }
    }

    /// Merge the sets of `a` and `b`; returns false if already joined.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Current number of disjoint sets.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons() {
        let mut d = Dsu::new(4);
        assert_eq!(d.components(), 4);
        assert!(!d.same(0, 1));
        assert_eq!(d.set_size(2), 1);
    }

    #[test]
    fn union_reduces_components() {
        let mut d = Dsu::new(5);
        assert!(d.union(0, 1));
        assert!(d.union(1, 2));
        assert!(!d.union(0, 2)); // already same
        assert_eq!(d.components(), 3);
        assert!(d.same(0, 2));
        assert!(!d.same(0, 3));
        assert_eq!(d.set_size(1), 3);
    }

    #[test]
    fn full_merge() {
        let mut d = Dsu::new(100);
        for i in 1..100 {
            d.union(0, i);
        }
        assert_eq!(d.components(), 1);
        assert_eq!(d.set_size(57), 100);
        for i in 0..100 {
            assert!(d.same(i, 99 - i));
        }
    }

    #[test]
    fn empty() {
        let d = Dsu::new(0);
        assert!(d.is_empty());
        assert_eq!(d.components(), 0);
    }
}
