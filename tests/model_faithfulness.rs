//! Tests pinning the implementation to the paper's definitions: message
//! vectors are exactly `Γ^l(G)` of Definition 1, local functions are total
//! on arbitrary `(i, N)` pairs, and the stated size bounds hold verbatim.

use rand::{rngs::StdRng, SeedableRng};
use referee_one_round::degeneracy::{lemma2_bound_bits, PowerSumSketch};
use referee_one_round::prelude::*;
use referee_one_round::protocol::referee::local_phase;
use referee_one_round::wideint::UBig;

/// Definition 1: `Γ^l(G) = (Γ^l_n(1, N_G(1)), …, Γ^l_n(n, N_G(n)))` — the
/// simulator must produce exactly this vector, in ID order.
#[test]
fn message_vector_matches_definition_1() {
    let mut rng = StdRng::seed_from_u64(10);
    let g = generators::gnp(30, 0.2, &mut rng);
    let p = DegeneracyProtocol::new(3);
    let sim = local_phase(&p, &g);
    for v in 1..=30u32 {
        let direct = p.local(NodeView::new(30, v, g.neighbourhood(v)));
        assert_eq!(sim[(v - 1) as usize], direct, "slot {v}");
    }
}

/// "Γ^l_n can be evaluated in any pair (i, N)": synthetic views that
/// correspond to no generated graph must be accepted by every protocol's
/// local function (the reductions depend on it).
#[test]
fn local_functions_are_total() {
    let view = NodeView::new(100, 42, &[1, 50, 99, 100]);
    let _ = DegeneracyProtocol::new(4).local(view);
    let _ = ForestProtocol.local(NodeView::new(100, 42, &[7]));
    let _ = referee_one_round::protocol::baseline::AdjacencyListProtocol.local(view);
}

/// Lemma 2: "the size of the message generated in Algorithm 3 is O(log n)
/// bits – more precisely, O(k² log n) bits", with the exact constant
/// k(k+1)·log n for the sums. Check the exact widths at many (n, k).
#[test]
fn lemma2_exact_widths() {
    for n in [10usize, 100, 1000, 100_000] {
        for k in 1..=8usize {
            let bound = lemma2_bound_bits(n, k);
            let logn = (n as f64 + 1.0).log2().ceil();
            // sums: Σ_{p=1..k} ⌈(p+1) log⌉ ≤ (k(k+1)/2 + k)(log+1); plus id+deg.
            let upper = ((k * (k + 1) / 2 + k) as f64 + 2.0) * (logn + 1.0);
            assert!((bound as f64) <= upper, "n={n}, k={k}: {bound} > {upper}");
            // and the encoding really is that size on a worst-case vertex
            let nbrs: Vec<u32> = ((n - k.min(n) + 1)..=n).map(|x| x as u32).collect();
            let msg = PowerSumSketch::compute(n, 1, &nbrs, k).to_message(n, k);
            assert_eq!(msg.len_bits(), bound);
        }
    }
}

/// Theorem 4 (Wright): no two distinct ≤k-subsets of {1..n} share all k
/// power sums — verified exhaustively for n = 10, k = 2 over all pairs.
#[test]
fn wright_theorem_exhaustive_k2() {
    let n = 10u32;
    let mut seen = std::collections::HashMap::new();
    let mut subsets: Vec<Vec<u32>> = vec![vec![]];
    for a in 1..=n {
        subsets.push(vec![a]);
        for b in (a + 1)..=n {
            subsets.push(vec![a, b]);
        }
    }
    for s in subsets {
        let p1: u64 = s.iter().map(|&x| x as u64).sum();
        let p2: u64 = s.iter().map(|&x| (x as u64).pow(2)).sum();
        if let Some(prev) = seen.insert((p1, p2), s.clone()) {
            panic!("Wright violation: {prev:?} vs {s:?}");
        }
    }
}

/// The recognition protocol's acceptance region is EXACTLY
/// {G : degeneracy(G) ≤ k} — sound and complete on an exhaustive sweep.
#[test]
fn recognition_exact_on_all_graphs_n5() {
    use referee_one_round::graph::enumerate;
    for g in enumerate::all_graphs(5) {
        let truth = algo::degeneracy_ordering(&g).degeneracy;
        for k in 1..=3usize {
            let out = run_protocol(&DegeneracyProtocol::new(k), &g).output.unwrap();
            match out {
                Reconstruction::Graph(h) => {
                    assert!(truth <= k, "accepted degeneracy {truth} at k={k}");
                    assert_eq!(h, g);
                }
                Reconstruction::NotInClass => {
                    assert!(truth > k, "rejected degeneracy {truth} at k={k}");
                }
            }
        }
    }
}

/// §I.B asynchrony: "the network may be asynchronous … the referee can
/// wait until it has received one message from every vertex". Arrival
/// order must not affect any protocol's output.
#[test]
fn async_arrival_order_is_irrelevant() {
    use referee_one_round::protocol::referee::run_protocol_async;
    let mut rng = StdRng::seed_from_u64(14);
    let g = generators::random_k_degenerate(25, 2, 0.9, &mut rng);
    let p = DegeneracyProtocol::new(2);
    let sync = run_protocol(&p, &g).output.unwrap();
    let reversed: Vec<u32> = (1..=25u32).rev().collect();
    assert_eq!(run_protocol_async(&p, &g, &reversed).unwrap().unwrap(), sync);
    // an interleaved order too
    let mut weird: Vec<u32> = (1..=25u32).step_by(2).collect();
    weird.extend((2..=25u32).step_by(2));
    assert_eq!(run_protocol_async(&p, &g, &weird).unwrap().unwrap(), sync);
}

/// Power sums overflow u128 in-range — the reason the wideint substrate
/// exists — and the pipeline still round-trips.
#[test]
fn beyond_u128_pipeline() {
    // k = 8 on a graph with ids near 10^5: b_8 ~ 10^40 ≈ 2^133.
    let n = 100_000usize;
    let nbrs: Vec<u32> = vec![99_999, 100_000, 54_321, 12, 77_777];
    let sk = PowerSumSketch::compute(n, 5, &nbrs, 8);
    assert!(sk.sums[7].bit_len() > 128);
    let msg = sk.to_message(n, 8);
    let back = PowerSumSketch::from_message(&msg, n, 8).unwrap();
    assert_eq!(back, sk);
    let decoded =
        referee_one_round::degeneracy::newton::decode_neighbours(n, 5, &back.sums).unwrap();
    let mut expect = nbrs.clone();
    expect.sort_unstable();
    assert_eq!(decoded, expect);
    // exactness sanity against an independent big-int path
    let p1: u64 = nbrs.iter().map(|&x| x as u64).sum();
    assert_eq!(back.sums[0], UBig::from(p1));
}

// ---------------------------------------------------------------------------
// Frugality audits of the extension protocols
// ---------------------------------------------------------------------------

/// The positive-boundary protocols are frugal with tiny constants; the
/// sketch suite is deliberately *not* O(log n)-frugal (it buys the open
/// question's answer with O(log³ n) bits) — the audit must show exactly
/// that contrast.
#[test]
fn extension_protocols_frugality_contrast() {
    use referee_one_round::protocol::easy::{EdgeCountProtocol, NeighbourhoodSumProtocol};
    use referee_one_round::protocol::FrugalityAudit;

    let sizes = [64usize, 256, 1024, 4096];
    let family = |n: usize| {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(n as u64);
        generators::gnp(n, 3.0 / n as f64, &mut rng)
    };

    // Degree statistics: ratio ≤ 1 (one field of ⌈log₂ n⌉ bits or less).
    let report = FrugalityAudit::new(&EdgeCountProtocol, sizes).run(family);
    assert!(report.worst_ratio() <= 1.2, "edge count ratio {}", report.worst_ratio());
    assert!(!report.ratio_diverges(0.05));

    // Fingerprint: 3 fields → ratio ≈ 3, still flat.
    let report = FrugalityAudit::new(&NeighbourhoodSumProtocol, sizes).run(family);
    assert!(report.worst_ratio() <= 3.5);
    assert!(!report.ratio_diverges(0.05));

    // Sketch connectivity: ratio grows ~log² n — diverges by design.
    let report = FrugalityAudit::new(&SketchConnectivityProtocol::new(1), sizes).run(family);
    assert!(report.ratio_diverges(0.0), "sketches should NOT look frugal");

    // Theorem 5 at fixed k stays flat even on scale-free graphs.
    let ba_family = |n: usize| {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(n as u64);
        generators::barabasi_albert(n, 3, &mut rng).unwrap()
    };
    let report = FrugalityAudit::new(&DegeneracyProtocol::new(3), sizes).run(ba_family);
    assert!(!report.ratio_diverges(0.05), "Thm 5 must stay frugal on BA graphs");
    assert!(report.worst_ratio() < 25.0);
}

/// The diameter-t reduction's message is exactly a 3-bundle of the inner
/// protocol's messages at size n + t, for every t — the §II closing
/// remark generalized.
#[test]
fn diameter_t_blowup_accounting() {
    use referee_one_round::reductions::util::unbundle;
    let g = generators::path(10);
    for t in [3u32, 5, 9] {
        let delta = DiameterTReduction::new(DiameterTOracle { thresh: t }, t);
        let msgs = referee_one_round::protocol::referee::local_phase(&delta, &g);
        for m in &msgs {
            let parts = unbundle(m, 3).unwrap();
            let payload: usize = parts.iter().map(|p| p.len_bits()).sum();
            assert!(m.len_bits() >= payload);
            // bundling overhead is logarithmic, not linear
            assert!(m.len_bits() < payload + 3 * 32, "t = {t}");
        }
    }
}
