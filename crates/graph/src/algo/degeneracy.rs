//! Degeneracy orderings and k-cores (Definition 2 of the paper).
//!
//! A graph has degeneracy `k` if vertices can be removed one at a time,
//! always picking one of degree ≤ k in what remains. The Matula–Beck
//! bucket algorithm computes the exact degeneracy and a witness
//! *elimination order* in O(n + m). The referee's Algorithm 4 rediscovers
//! such an order from the messages alone — this module is the centralized
//! ground truth it is tested against.

use crate::csr::Csr;
use crate::{LabelledGraph, VertexId};

/// Output of [`degeneracy_ordering`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegeneracyOrdering {
    /// The degeneracy `k` of the graph (0 for edgeless).
    pub degeneracy: usize,
    /// Removal order: `order[0]` is deleted first. Matches Definition 2
    /// *reversed* — the paper's `(r_1, …, r_n)` lists `r_n` removed first;
    /// we store the order of removal, so `order` = `(r_n, …, r_1)`.
    pub order: Vec<VertexId>,
    /// `core[i]` = the largest `c` such that vertex `i + 1` lies in the
    /// c-core.
    pub core: Vec<u32>,
}

/// Matula–Beck smallest-last ordering. O(n + m).
pub fn degeneracy_ordering(g: &LabelledGraph) -> DegeneracyOrdering {
    let csr = Csr::from_graph(g);
    let n = csr.n();
    if n == 0 {
        return DegeneracyOrdering { degeneracy: 0, order: Vec::new(), core: Vec::new() };
    }

    // Bucket queue over current degrees.
    let mut deg: Vec<u32> = (0..n).map(|i| csr.degree(i) as u32).collect();
    let max_deg = deg.iter().copied().max().unwrap_or(0) as usize;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
    for (i, &d) in deg.iter().enumerate() {
        buckets[d as usize].push(i as u32);
    }

    let mut removed = vec![false; n];
    let mut order = Vec::with_capacity(n);
    let mut core = vec![0u32; n];
    let mut k = 0u32;
    let mut cursor = 0usize; // lowest possibly-nonempty bucket

    for _ in 0..n {
        // Find the lowest-degree live vertex. The cursor only needs to step
        // back by one after each removal, keeping the loop O(n + m) overall.
        cursor = cursor.min(max_deg);
        let v = loop {
            match buckets[cursor].pop() {
                Some(cand) => {
                    let ci = cand as usize;
                    if !removed[ci] && deg[ci] as usize == cursor {
                        break ci;
                    }
                    // stale entry — skip
                }
                None => cursor += 1,
            }
        };
        k = k.max(deg[v]);
        core[v] = k;
        removed[v] = true;
        order.push((v + 1) as VertexId);
        for &w in csr.neighbours(v) {
            let wi = w as usize;
            if !removed[wi] {
                deg[wi] -= 1;
                buckets[deg[wi] as usize].push(w);
            }
        }
        cursor = cursor.saturating_sub(1);
    }

    DegeneracyOrdering { degeneracy: k as usize, order, core }
}

/// Vertices of the `k`-core (maximal induced subgraph with min degree ≥ k),
/// ascending IDs. Empty if no such subgraph exists.
pub fn k_cores(g: &LabelledGraph, k: u32) -> Vec<VertexId> {
    let ord = degeneracy_ordering(g);
    (1..=g.n() as VertexId).filter(|&v| ord.core[(v - 1) as usize] >= k).collect()
}

/// Reference implementation of Definition 2 by literal simulation:
/// repeatedly delete *any* vertex of minimum degree, tracking the maximum
/// degree at deletion time. O(n²) — used to cross-check Matula–Beck.
pub fn degeneracy_brute_force(g: &LabelledGraph) -> usize {
    let n = g.n();
    let mut alive: Vec<bool> = vec![true; n];
    let mut deg: Vec<usize> = (1..=n as VertexId).map(|v| g.degree(v)).collect();
    let mut k = 0;
    for _ in 0..n {
        let v =
            (0..n).filter(|&i| alive[i]).min_by_key(|&i| deg[i]).expect("some vertex alive");
        k = k.max(deg[v]);
        alive[v] = false;
        for &w in g.neighbourhood((v + 1) as VertexId) {
            if alive[(w - 1) as usize] {
                deg[(w - 1) as usize] -= 1;
            }
        }
    }
    k
}

/// Verify that `order` (removal-first order) witnesses degeneracy ≤ `k`:
/// each vertex must have ≤ k live neighbours when removed.
pub fn verify_elimination_order(g: &LabelledGraph, order: &[VertexId], k: usize) -> bool {
    if order.len() != g.n() {
        return false;
    }
    let mut removed = vec![false; g.n()];
    for &v in order {
        if v == 0 || v as usize > g.n() || removed[(v - 1) as usize] {
            return false;
        }
        let live = g.neighbourhood(v).iter().filter(|&&w| !removed[(w - 1) as usize]).count();
        if live > k {
            return false;
        }
        removed[(v - 1) as usize] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn forest_degeneracy_one() {
        let g = LabelledGraph::from_edges(5, [(1, 2), (2, 3), (3, 4), (3, 5)]).unwrap();
        let ord = degeneracy_ordering(&g);
        assert_eq!(ord.degeneracy, 1);
        assert!(verify_elimination_order(&g, &ord.order, 1));
    }

    #[test]
    fn complete_graph() {
        let g = generators::complete(6);
        let ord = degeneracy_ordering(&g);
        assert_eq!(ord.degeneracy, 5);
        assert_eq!(degeneracy_brute_force(&g), 5);
        assert!(verify_elimination_order(&g, &ord.order, 5));
        assert!(!verify_elimination_order(&g, &ord.order, 4));
    }

    #[test]
    fn cycle_degeneracy_two() {
        let g = generators::cycle(7).unwrap();
        assert_eq!(degeneracy_ordering(&g).degeneracy, 2);
        assert_eq!(degeneracy_brute_force(&g), 2);
    }

    #[test]
    fn grid_degeneracy_two() {
        let g = generators::grid(4, 5);
        assert_eq!(degeneracy_ordering(&g).degeneracy, 2);
        assert_eq!(degeneracy_brute_force(&g), 2);
    }

    #[test]
    fn cores_of_clique_plus_tail() {
        // K4 on {1,2,3,4} plus pendant path 4-5-6
        let mut g = generators::complete(4).grow(6);
        g.add_edge(4, 5).unwrap();
        g.add_edge(5, 6).unwrap();
        let ord = degeneracy_ordering(&g);
        assert_eq!(ord.degeneracy, 3);
        assert_eq!(k_cores(&g, 3), vec![1, 2, 3, 4]);
        assert_eq!(k_cores(&g, 1), vec![1, 2, 3, 4, 5, 6]);
        assert!(k_cores(&g, 4).is_empty());
    }

    #[test]
    fn empty_graphs() {
        let ord = degeneracy_ordering(&LabelledGraph::new(0));
        assert_eq!(ord.degeneracy, 0);
        let ord = degeneracy_ordering(&LabelledGraph::new(4));
        assert_eq!(ord.degeneracy, 0);
        assert_eq!(ord.order.len(), 4);
    }

    #[test]
    fn matula_beck_matches_brute_force_on_random() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let g = generators::gnp(30, 0.15, &mut rng);
            assert_eq!(
                degeneracy_ordering(&g).degeneracy,
                degeneracy_brute_force(&g),
                "graph: {g:?}"
            );
        }
    }

    #[test]
    fn order_is_permutation() {
        let g = generators::grid(3, 3);
        let ord = degeneracy_ordering(&g);
        let mut sorted = ord.order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (1..=9).collect::<Vec<_>>());
    }
}
