//! Maximum clique (Bron–Kerbosch with pivoting) and the clique-number
//! sandwich `ω − 1 ≤ treewidth` it contributes to the invariant web.
//!
//! ω(G) is the third leg of the width triangle the experiments verify:
//! `ω − 1 ≤ treewidth` (a clique must fit inside some bag) and
//! `degeneracy ≥ ω − 1` (the last clique vertex eliminated still sees
//! the others). For chordal graphs all three collapse to equality,
//! which [`chordal`](crate::algo::chordal) exposes in `O(n·m)` — this
//! module is the general-graph oracle the chordal shortcut is checked
//! against.

use crate::{BitSet, LabelledGraph, VertexId};

/// A maximum clique of `g` (vertex list, ascending). Exponential in the
/// worst case (Bron–Kerbosch with pivoting, degeneracy-ordered outer
/// loop); fine for the reconstruction-scale graphs of this workspace.
pub fn max_clique(g: &LabelledGraph) -> Vec<VertexId> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    let adj: Vec<BitSet> = (1..=n as VertexId).map(|v| g.neighbourhood_bitset(v)).collect();
    let mut best: Vec<usize> = Vec::new();
    // Outer loop in degeneracy order shrinks the candidate sets fast.
    let order = crate::algo::degeneracy_ordering(g).order;
    let mut excluded_global = BitSet::new(n);
    for &v in &order {
        let vi = (v - 1) as usize;
        let mut p = adj[vi].clone();
        p.difference_with(&excluded_global);
        let mut x = adj[vi].clone();
        x.intersect_with(&excluded_global);
        let mut r = vec![vi];
        bron_kerbosch(&adj, &mut r, p, x, &mut best);
        excluded_global.set(vi);
    }
    let mut out: Vec<VertexId> = best.into_iter().map(|i| (i + 1) as VertexId).collect();
    out.sort_unstable();
    out
}

/// Clique number ω(G); 0 for the empty graph.
pub fn clique_number(g: &LabelledGraph) -> usize {
    max_clique(g).len()
}

fn bron_kerbosch(
    adj: &[BitSet],
    r: &mut Vec<usize>,
    p: BitSet,
    x: BitSet,
    best: &mut Vec<usize>,
) {
    if p.count() == 0 && x.count() == 0 {
        if r.len() > best.len() {
            *best = r.clone();
        }
        return;
    }
    if r.len() + p.count() <= best.len() {
        return; // bound: cannot beat the incumbent
    }
    // Pivot: the vertex of P ∪ X with most neighbours in P.
    let pivot = p
        .iter()
        .chain(x.iter())
        .max_by_key(|&u| adj[u].intersection_count(&p))
        .expect("P ∪ X nonempty");
    let mut candidates = p.clone();
    candidates.difference_with(&adj[pivot]);
    for v in candidates.iter().collect::<Vec<_>>() {
        let mut p2 = p.clone();
        p2.intersect_with(&adj[v]);
        let mut x2 = x.clone();
        x2.intersect_with(&adj[v]);
        r.push(v);
        bron_kerbosch(adj, r, p2, x2, best);
        r.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{chordal_max_clique, degeneracy_ordering, treewidth_exact};
    use crate::generators;
    use rand::{rngs::StdRng, SeedableRng};

    /// Brute-force ω by subset enumeration (n ≤ 16).
    fn brute_omega(g: &LabelledGraph) -> usize {
        let n = g.n();
        let mut best = 0;
        for mask in 0u32..(1 << n) {
            let members: Vec<VertexId> =
                (1..=n as VertexId).filter(|v| mask & (1 << (v - 1)) != 0).collect();
            if members.len() > best
                && members
                    .iter()
                    .enumerate()
                    .all(|(i, &u)| members[i + 1..].iter().all(|&w| g.has_edge(u, w)))
            {
                best = members.len();
            }
        }
        best
    }

    #[test]
    fn named_families() {
        assert_eq!(clique_number(&generators::complete(7)), 7);
        assert_eq!(clique_number(&generators::cycle(6).unwrap()), 2);
        assert_eq!(clique_number(&generators::complete(3)), 3);
        assert_eq!(clique_number(&generators::petersen()), 2); // triangle-free
        assert_eq!(clique_number(&generators::complete_bipartite(4, 4)), 2);
        assert_eq!(clique_number(&LabelledGraph::new(5)), 1);
        assert_eq!(clique_number(&LabelledGraph::new(0)), 0);
        assert_eq!(clique_number(&generators::wheel(7).unwrap()), 3);
    }

    #[test]
    fn returned_clique_is_a_clique() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let g = generators::gnp(14, 0.45, &mut rng);
            let c = max_clique(&g);
            for (i, &u) in c.iter().enumerate() {
                for &w in &c[i + 1..] {
                    assert!(g.has_edge(u, w), "non-edge in clique {c:?}");
                }
            }
            assert_eq!(c.len(), brute_omega(&g));
        }
    }

    #[test]
    fn matches_brute_exhaustively() {
        for g in crate::enumerate::all_graphs(5) {
            assert_eq!(clique_number(&g), brute_omega(&g), "{g:?}");
        }
    }

    #[test]
    fn width_triangle() {
        // ω − 1 ≤ treewidth, and degeneracy ≥ ω − 1.
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..12 {
            let g = generators::gnp(10, 0.4, &mut rng);
            let omega = clique_number(&g);
            if g.n() == 0 {
                continue;
            }
            assert!(omega.saturating_sub(1) <= treewidth_exact(&g));
            assert!(degeneracy_ordering(&g).degeneracy >= omega.saturating_sub(1));
        }
    }

    #[test]
    fn agrees_with_chordal_shortcut() {
        let mut rng = StdRng::seed_from_u64(3);
        for k in 1..=3usize {
            let g = generators::k_tree(13, k, &mut rng);
            assert_eq!(Some(clique_number(&g)), chordal_max_clique(&g));
        }
    }
}
