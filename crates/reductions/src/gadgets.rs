//! The auxiliary graphs `G'_{s,t}` of §II.
//!
//! Each negative result hinges on a gadget whose *decidable property*
//! encodes adjacency of `(s, t)` in the original graph:
//!
//! | Theorem | gadget | property ⟺ `{s,t} ∈ E(G)` | precondition on `G` |
//! |---------|--------|---------------------------|---------------------|
//! | Thm 1 | [`square_gadget`] (2n vertices) | contains a C4 | square-free |
//! | Thm 2 | [`diameter_gadget`] (n+3, Figure 1) | diameter ≤ 3 | connected-ness not required; works for all G |
//! | Thm 3 | [`triangle_gadget`] (n+1, Figure 2) | contains a K3 | triangle-free (e.g. bipartite) |
//!
//! The crucial structural feature (why the reductions stay one-round): the
//! neighbourhood of each *original* vertex in `G'_{s,t}` takes at most a
//! constant number of forms as `(s, t)` ranges over all pairs — exactly
//! one form for squares, three for diameter, two for triangles — so the
//! nodes can send messages for every form in one round.

use referee_graph::{LabelledGraph, VertexId};

/// Theorem 1's gadget: `G` plus `n` pendant mirror vertices (`i ↔ n+i`)
/// plus the probe edge `{n+s, n+t}`.
///
/// `G'_{s,t}` contains a square iff `{s, t} ∈ E(G)`, provided `G` itself
/// is square-free: the only candidate C4 is `s — t — (n+t) — (n+s) — s`.
pub fn square_gadget(g: &LabelledGraph, s: VertexId, t: VertexId) -> LabelledGraph {
    let n = g.n();
    assert!(s != t && s >= 1 && t >= 1 && s as usize <= n && t as usize <= n);
    let mut g2 = g.grow(2 * n);
    for i in 1..=n as VertexId {
        g2.add_edge(i, i + n as VertexId).expect("pendant edge");
    }
    g2.add_edge(s + n as VertexId, t + n as VertexId).expect("probe edge");
    g2
}

/// Theorem 2's gadget (Figure 1): `G` plus three vertices — `n+1` pendant
/// on `s`, `n+2` pendant on `t`, and `n+3` universal over `{1..n}`.
///
/// Diameter ≤ 3 iff `{s, t} ∈ E(G)`: all original vertices are within 2
/// of each other through `n+3`; the critical pair is `(n+1, n+2)`, at
/// distance 3 iff `s` and `t` are adjacent (else 4).
pub fn diameter_gadget(g: &LabelledGraph, s: VertexId, t: VertexId) -> LabelledGraph {
    let n = g.n();
    assert!(s != t && s >= 1 && t >= 1 && s as usize <= n && t as usize <= n);
    let mut g2 = g.grow(n + 3);
    let (a, b, u) = ((n + 1) as VertexId, (n + 2) as VertexId, (n + 3) as VertexId);
    g2.add_edge(s, a).expect("pendant on s");
    g2.add_edge(t, b).expect("pendant on t");
    for v in 1..=n as VertexId {
        g2.add_edge(v, u).expect("universal edge");
    }
    g2
}

/// Theorem 3's gadget (Figure 2): `G` plus one vertex `n+1` adjacent to
/// `s` and `t`.
///
/// Contains a triangle iff `{s, t} ∈ E(G)`, provided `G` is triangle-free
/// (the paper uses bipartite `G`): the only candidate K3 is `{s, t, n+1}`.
pub fn triangle_gadget(g: &LabelledGraph, s: VertexId, t: VertexId) -> LabelledGraph {
    let n = g.n();
    assert!(s != t && s >= 1 && t >= 1 && s as usize <= n && t as usize <= n);
    let mut g2 = g.grow(n + 1);
    let a = (n + 1) as VertexId;
    g2.add_edge(s, a).expect("probe edge s");
    g2.add_edge(t, a).expect("probe edge t");
    g2
}

/// Generalization of Theorem 2's gadget to an arbitrary threshold
/// `thresh ≥ 3` (our extension; `thresh = 3` is exactly Figure 1).
///
/// Construction: a pendant *path* `s — p₁ — … — p_L` with
/// `L = thresh − 2` fresh vertices (`pᵢ = n + i`), one pendant
/// `b = n + L + 1` on `t`, and a universal vertex `u = n + L + 2`
/// adjacent to all of `{1..n}`.
///
/// **Claim**: `diam(G'_{s,t}) ≤ thresh ⟺ {s, t} ∈ E(G)`, for every
/// graph `G` (connected or not) and every `thresh ≥ 3`.
///
/// *Proof.* All original vertices are within 2 of each other via `u`,
/// and `d(pᵢ, ·) ≤ i + 2 ≤ L + 2 = thresh` for every target reachable
/// from `s` within 2, which covers everything except `b`. The critical
/// pair is `(p_L, b)`: the pendant path forces any `p_L`–`b` walk
/// through `s`, and `b`'s only neighbour is `t`, so
/// `d(p_L, b) = L + d(s, t) + 1`, which is `thresh` when `s ∼ t`
/// (`d(s,t) = 1`) and `thresh + 1` otherwise (`d(s,t) = 2` via `u`). ∎
///
/// The neighbourhood of an original vertex still takes only **three**
/// forms as `(s, t)` varies — `N ∪ {u}`, `N ∪ {p₁, u}`, `N ∪ {b, u}` —
/// so the reduction remains one-round with a 3× message blow-up,
/// independent of `thresh`.
pub fn diameter_t_gadget(
    g: &LabelledGraph,
    s: VertexId,
    t: VertexId,
    thresh: u32,
) -> LabelledGraph {
    let n = g.n();
    assert!(thresh >= 3, "the construction needs thresh ≥ 3, got {thresh}");
    assert!(s != t && s >= 1 && t >= 1 && s as usize <= n && t as usize <= n);
    let ell = (thresh - 2) as usize;
    let mut g2 = g.grow(n + ell + 2);
    // Pendant path p_1 … p_L hanging off s.
    let p = |i: usize| (n + i) as VertexId;
    g2.add_edge(s, p(1)).expect("path root");
    for i in 1..ell {
        g2.add_edge(p(i), p(i + 1)).expect("path link");
    }
    let b = p(ell + 1);
    let u = p(ell + 2);
    g2.add_edge(t, b).expect("pendant on t");
    for v in 1..=n as VertexId {
        g2.add_edge(v, u).expect("universal edge");
    }
    g2
}

/// §IV bipartiteness reduction, even-parity probe: one fresh vertex
/// `n+1` adjacent to both `s` and `t` (a path of length 2 between them).
///
/// For bipartite `G`: the gadget is non-bipartite iff `s` and `t` are in
/// the same component at *odd* distance.
pub fn parity_even_gadget(g: &LabelledGraph, s: VertexId, t: VertexId) -> LabelledGraph {
    triangle_gadget(g, s, t) // structurally identical; property used differs
}

/// §IV bipartiteness reduction, odd-parity probe: fresh path
/// `s — n+1 — n+2 — t` of length 3.
///
/// For bipartite `G`: non-bipartite iff `s` and `t` are in the same
/// component at *even* distance.
pub fn parity_odd_gadget(g: &LabelledGraph, s: VertexId, t: VertexId) -> LabelledGraph {
    let n = g.n();
    assert!(s != t && s >= 1 && t >= 1 && s as usize <= n && t as usize <= n);
    let mut g2 = g.grow(n + 2);
    let (a, b) = ((n + 1) as VertexId, (n + 2) as VertexId);
    g2.add_edge(s, a).expect("path edge");
    g2.add_edge(a, b).expect("path edge");
    g2.add_edge(b, t).expect("path edge");
    g2
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use referee_graph::{algo, enumerate, generators};

    /// E3: exhaustive iff check for the square gadget over all square-free
    /// graphs on ≤ 5 vertices and all pairs.
    #[test]
    fn square_gadget_iff_exhaustive() {
        for n in 2..=5usize {
            for g in enumerate::all_graphs(n) {
                if algo::has_square(&g) {
                    continue;
                }
                for s in 1..=n as u32 {
                    for t in (s + 1)..=n as u32 {
                        let gadget = square_gadget(&g, s, t);
                        assert_eq!(
                            algo::has_square(&gadget),
                            g.has_edge(s, t),
                            "n={n}, g={g:?}, s={s}, t={t}"
                        );
                    }
                }
            }
        }
    }

    /// E1: exhaustive iff check for the diameter gadget (Figure 1) over
    /// ALL graphs on ≤ 5 vertices.
    #[test]
    fn diameter_gadget_iff_exhaustive() {
        for n in 2..=5usize {
            for g in enumerate::all_graphs(n) {
                for s in 1..=n as u32 {
                    for t in (s + 1)..=n as u32 {
                        let gadget = diameter_gadget(&g, s, t);
                        assert_eq!(
                            algo::diameter_at_most(&gadget, 3),
                            g.has_edge(s, t),
                            "n={n}, g={g:?}, s={s}, t={t}"
                        );
                    }
                }
            }
        }
    }

    /// E2: exhaustive iff check for the triangle gadget (Figure 2) over
    /// all balanced bipartite graphs on ≤ 6 vertices.
    #[test]
    fn triangle_gadget_iff_exhaustive_bipartite() {
        for n in 2..=6usize {
            for g in enumerate::all_balanced_bipartite(n) {
                for s in 1..=n as u32 {
                    for t in (s + 1)..=n as u32 {
                        let gadget = triangle_gadget(&g, s, t);
                        assert_eq!(
                            algo::has_triangle(&gadget),
                            g.has_edge(s, t),
                            "n={n}, g={g:?}, s={s}, t={t}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn diameter_gadget_longest_path_is_8_to_9() {
        // Figure 1's caption: "in both cases, the longest path goes from 8
        // to 9" (the two pendants). Check on a random graph.
        let mut rng = StdRng::seed_from_u64(30);
        let g = generators::gnp(7, 0.3, &mut rng);
        let gadget = diameter_gadget(&g, 1, 7);
        let n = g.n();
        let d_pend = algo::bfs_distances(&gadget, (n + 1) as u32)[n + 1]; // dist n+1 → n+2
        let expect = if g.has_edge(1, 7) { 3 } else { 4 };
        assert_eq!(d_pend, expect);
    }

    #[test]
    fn square_gadget_iff_random() {
        let mut rng = StdRng::seed_from_u64(31);
        let g = generators::random_square_free(25, &mut rng);
        for s in 1..=25u32 {
            for t in (s + 1)..=25 {
                assert_eq!(algo::has_square(&square_gadget(&g, s, t)), g.has_edge(s, t));
            }
        }
    }

    #[test]
    fn parity_gadgets_encode_same_component() {
        // On a bipartite graph with two components, the pair (even, odd)
        // probes detect exactly same-component pairs.
        let g = LabelledGraph::from_edges(
            6,
            [(1, 4), (4, 2), (3, 6)], // comp {1,2,4}, comp {3,6}, isolated 5
        )
        .unwrap();
        let comps = algo::components(&g);
        for s in 1..=6u32 {
            for t in (s + 1)..=6 {
                let same = comps[(s - 1) as usize] == comps[(t - 1) as usize];
                let even_nb = !algo::is_bipartite(&parity_even_gadget(&g, s, t));
                let odd_nb = !algo::is_bipartite(&parity_odd_gadget(&g, s, t));
                assert_eq!(even_nb || odd_nb, same, "s={s}, t={t}");
                // and never both (distance has one parity)
                assert!(!(even_nb && odd_nb), "s={s}, t={t}");
            }
        }
    }

    #[test]
    fn gadget_sizes() {
        let g = generators::path(4);
        assert_eq!(square_gadget(&g, 1, 3).n(), 8);
        assert_eq!(diameter_gadget(&g, 1, 3).n(), 7);
        assert_eq!(triangle_gadget(&g, 1, 3).n(), 5);
        assert_eq!(parity_odd_gadget(&g, 1, 3).n(), 6);
    }

    #[test]
    #[should_panic]
    fn gadget_rejects_s_equals_t() {
        let g = generators::path(4);
        let _ = triangle_gadget(&g, 2, 2);
    }

    #[test]
    fn original_vertex_neighbourhoods_are_stable() {
        // The one-round trick of Theorem 1: in the square gadget the
        // neighbourhood of every original vertex is N_G(i) ∪ {i+n},
        // independent of (s, t).
        let mut rng = StdRng::seed_from_u64(32);
        let g = generators::gnp(8, 0.3, &mut rng);
        let g12 = square_gadget(&g, 1, 2);
        let g78 = square_gadget(&g, 7, 8);
        for i in 1..=8u32 {
            assert_eq!(g12.neighbourhood(i), g78.neighbourhood(i));
        }
    }
}
