//! §IV's partition argument for connectivity (E12).
//!
//! The paper explains why its hardness technique fails for connectivity:
//!
//! > if a graph is split into k parts and vertices of each part are
//! > allowed to communicate to each other, there is an algorithm for
//! > connectivity using O(k log n) bits per node.
//!
//! This module implements that algorithm for balanced ID-range partitions.
//! Part `i` jointly knows every edge incident to one of its vertices; it
//! computes a spanning forest of that known subgraph (≤ n−1 edges) and
//! spreads the forest edges across its ~n/k members, so each node uplinks
//! at most `⌈(n−1)/(n/k)⌉ ≈ k` edges ≈ `2k·log n` bits. The referee unions
//! the k forests: since every edge of G is *known* to the part of either
//! endpoint, and a spanning forest preserves its subgraph's connectivity,
//! the union has exactly G's components.
//!
//! This is **not** a Definition-1 one-round protocol — nodes inside a part
//! share unbounded information, which is precisely why partition-based
//! lower-bound arguments cannot rule out a frugal connectivity protocol.

use referee_graph::dsu::Dsu;
use referee_graph::{algo, Edge, LabelledGraph};
use referee_protocol::{bits_for, shard_of, BitWriter, Message};

/// Result of a partition-connectivity run.
#[derive(Debug, Clone)]
pub struct PartitionOutcome {
    /// The referee's verdict.
    pub connected: bool,
    /// Number of parts `k`.
    pub k: usize,
    /// Largest per-node uplink, in bits.
    pub max_message_bits: usize,
    /// The §IV bound `2·(k+1)·⌈log₂(n+1)⌉` the measurement is checked
    /// against (k+1 because a part may own ⌈(n−1)/⌊n/k⌋⌉ = k+1 edges
    /// after rounding).
    pub bound_bits: usize,
}

/// Decide connectivity of `g` under a balanced `k`-part partition
/// (parts are contiguous ID ranges).
///
/// Panics if `k == 0`. A `k` larger than `n` is **clamped to `n`** —
/// more parts than vertices would only add empty parts, which know no
/// edges and change nothing — and the returned
/// [`PartitionOutcome::k`] reports the clamped value actually used (on
/// the trivial `n = 0` graph the run short-circuits and `k` is echoed
/// back unchanged). Pinned by `oversized_k_is_clamped`.
pub fn partition_connectivity(g: &LabelledGraph, k: usize) -> PartitionOutcome {
    let n = g.n();
    assert!(k >= 1, "need at least one part");
    if n == 0 {
        return PartitionOutcome { connected: true, k, max_message_bits: 0, bound_bits: 0 };
    }
    let k = k.min(n);
    let width = bits_for(n);

    // Balanced contiguous parts: vertex v belongs to part ⌊(v−1)·k/n⌋ —
    // the same partition arithmetic the sharded referee routes arrivals
    // with (`referee_protocol::shard`), so "a part of the §IV argument"
    // and "a referee shard" own identical ID ranges by construction.
    let part_of = |v: u32| shard_of(n, k, v);

    // Phase 1 (inside each part): spanning forest of the edges the part
    // knows, i.e. those with ≥ 1 endpoint in the part.
    let mut part_forests: Vec<Vec<Edge>> = vec![Vec::new(); k];
    for (p, forest) in part_forests.iter_mut().enumerate() {
        let mut dsu = Dsu::new(n);
        for e in g.edges() {
            if (part_of(e.0) == p || part_of(e.1) == p)
                && dsu.union((e.0 - 1) as usize, (e.1 - 1) as usize)
            {
                forest.push(e);
            }
        }
    }

    // Phase 2: distribute each part's forest edges round-robin over its
    // members and serialize the per-node uplinks (so the bit accounting
    // is real, not estimated).
    let mut max_bits = 0usize;
    let mut all_edges: Vec<Edge> = Vec::new();
    for (p, forest) in part_forests.iter().enumerate() {
        let members: Vec<u32> = (1..=n as u32).filter(|&v| part_of(v) == p).collect();
        if members.is_empty() {
            assert!(forest.is_empty(), "empty part cannot know edges");
            continue;
        }
        let mut per_member: Vec<Vec<Edge>> = vec![Vec::new(); members.len()];
        for (i, &e) in forest.iter().enumerate() {
            per_member[i % members.len()].push(e);
        }
        for edges in per_member {
            let mut w = BitWriter::new();
            // count prefix + 2 ids per edge
            w.write_bits(edges.len() as u64, width);
            for e in &edges {
                w.write_bits(e.0 as u64, width);
                w.write_bits(e.1 as u64, width);
            }
            let msg = Message::from_writer(w);
            max_bits = max_bits.max(msg.len_bits());
            all_edges.extend(edges);
        }
    }

    // Phase 3 (referee): union everything.
    let mut dsu = Dsu::new(n);
    for e in all_edges {
        dsu.union((e.0 - 1) as usize, (e.1 - 1) as usize);
    }

    PartitionOutcome {
        connected: dsu.components() <= 1,
        k,
        max_message_bits: max_bits,
        bound_bits: 2 * (k + 1) * width as usize + width as usize,
    }
}

/// Debug helper: check the partition protocol against centralized BFS.
pub fn verify_against_centralized(g: &LabelledGraph, k: usize) -> bool {
    partition_connectivity(g, k).connected == algo::is_connected(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use referee_graph::generators;

    #[test]
    fn matches_centralized_on_random() {
        let mut rng = StdRng::seed_from_u64(80);
        for _ in 0..20 {
            let g = generators::gnp(60, 0.04, &mut rng);
            for k in [1usize, 2, 4, 8] {
                assert!(verify_against_centralized(&g, k), "k={k}, graph {g:?}");
            }
        }
    }

    #[test]
    fn connected_families() {
        for k in [2usize, 4, 16] {
            assert!(partition_connectivity(&generators::path(100), k).connected);
            assert!(partition_connectivity(&generators::complete(40), k).connected);
            assert!(!partition_connectivity(&LabelledGraph::new(10), k).connected);
        }
    }

    #[test]
    fn message_bits_within_bound() {
        // Balanced parts: per-node uplink ≤ 2(k+1) log n + log n bits.
        let mut rng = StdRng::seed_from_u64(81);
        for k in [2usize, 4, 8, 16] {
            let g = generators::gnp(256, 0.05, &mut rng);
            let out = partition_connectivity(&g, k);
            assert!(
                out.max_message_bits <= out.bound_bits,
                "k={k}: {} > bound {}",
                out.max_message_bits,
                out.bound_bits
            );
        }
    }

    #[test]
    fn bits_scale_linearly_in_k() {
        // The point of the remark: cost grows with k, so a fixed-parts
        // partition argument cannot push k to n.
        let g = generators::complete(128);
        let b2 = partition_connectivity(&g, 2).max_message_bits;
        let b16 = partition_connectivity(&g, 16).max_message_bits;
        assert!(b16 > b2, "more parts, more bits per node");
    }

    #[test]
    fn k_one_is_centralized() {
        // One part = everything known by the part; each node carries ≈ 1
        // forest edge — the degenerate O(log n) case.
        let g = generators::grid(10, 10);
        let out = partition_connectivity(&g, 1);
        assert!(out.connected);
        let logn = (100f64).log2();
        assert!((out.max_message_bits as f64) < 5.0 * logn);
    }

    #[test]
    fn parts_coincide_with_referee_shards() {
        // The §IV parts and the sharded referee's ID ranges are the same
        // partition: `shard_range` is the exact preimage of the part
        // assignment used here.
        for n in [1usize, 7, 60, 256] {
            for k in [1usize, 2, 4, 8] {
                for i in 0..k.min(n) {
                    let r = referee_protocol::shard_range(n, k.min(n), i);
                    for v in 1..=n as u32 {
                        assert_eq!(
                            r.contains(v),
                            shard_of(n, k.min(n), v) == i,
                            "n={n} k={k} i={i} v={v}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn trivial_sizes() {
        assert!(partition_connectivity(&LabelledGraph::new(0), 3).connected);
        assert!(partition_connectivity(&LabelledGraph::new(1), 3).connected);
        assert!(!partition_connectivity(&LabelledGraph::new(2), 5).connected);
    }

    #[test]
    fn oversized_k_is_clamped() {
        // The documented contract: k > n clamps to n (the docs once
        // promised a panic the code never threw — clamping is the
        // friendlier behaviour, and this test pins it).
        let g = generators::path(5);
        let clamped = partition_connectivity(&g, 100);
        assert_eq!(clamped.k, 5, "k must report the clamped part count");
        let exact = partition_connectivity(&g, 5);
        assert_eq!(clamped.connected, exact.connected);
        assert_eq!(clamped.max_message_bits, exact.max_message_bits);
        assert_eq!(clamped.bound_bits, exact.bound_bits);
        // Still correct on a disconnected graph with an absurd k.
        let two = generators::path(3).disjoint_union(&generators::path(4));
        assert!(!partition_connectivity(&two, usize::MAX).connected);
        // The trivial graph short-circuits before clamping and echoes k.
        assert_eq!(partition_connectivity(&LabelledGraph::new(0), 9).k, 9);
    }
}
