//! Attributable misbehavior: MAC'd transcripts, provable errors, and
//! self-contained evidence bundles.
//!
//! Fail-closed rejection (a MAC-reject and a dead session) proves that
//! *something* misbehaved but not *who*. This module turns detection
//! into accountability, in the style of accountable-MPC session
//! frameworks: every transmission a party signs is retained as an
//! [`EvidenceRecord`] — the exact authenticated bytes plus the
//! key-schedule derivation path of the key that signed them — and when
//! the referee observes a provable violation it packages the offending
//! records into a gamma-coded, self-contained [`EvidenceBundle`]. A
//! third party holding only the session base key and the public
//! [`SessionParams`] runs [`verify_bundle`] to check the accusation —
//! no live state, no trust in the accuser.
//!
//! # Record format
//!
//! A record's `body` is byte-for-byte the authenticated body of a
//! `wirenet` frame (everything after the length prefix, before the
//! tag):
//!
//! ```text
//! [ver:1][kind:1][session:8][round:4][from:4][to:4][len_bits:4][payload]
//! ```
//!
//! all integers big-endian, and `tag = siphash24(key, body)` where
//! `key` is the base key folded through the record's derivation
//! [`path`](EvidenceRecord::path) (`base.derive(p₀).derive(p₁)…`).
//! Because the wire codec is canonical — encode ∘ decode is the
//! identity on authenticated frames — an endpoint that decoded a frame
//! can reconstruct the byte-identical record without retaining raw
//! buffers, and a record round-trips losslessly through a bundle.
//!
//! # Attribution and the no-framing argument
//!
//! The *principal* of a record is the last element of its derivation
//! path — the per-connection id in `wirenet` (path `[conn]`), the
//! per-party id in simnet (path `[EVIDENCE_DOMAIN, party]`). Only the
//! holder of the derived key can produce a MAC-valid record under that
//! path, so a verified bundle attributes the principal and nobody
//! else: an honest party signs at most one payload per `(session,
//! round)` uplink slot and always canonical, in-range, current-round
//! bodies, so no set of records signed by an honest party can satisfy
//! an attributable shape rule below. Replay and identical duplication
//! *can* be the network's (or a byzantine forwarder's) doing, which is
//! why [`ProvableError::DuplicateSender`] and
//! [`ProvableError::StaleReplay`] are documented facts with
//! `culprit == None` rather than accusations.
//!
//! The MAC is symmetric: both ends of a connection hold the derived
//! key, so a bundle proves "a holder of this key signed this" — the
//! accuser (the referee) could technically forge records against its
//! own clients. The model is therefore *honest-referee*: bundles let a
//! referee prove client misbehavior to a third party, not clients
//! prove referee misbehavior. Honest parties must also use fresh
//! session ids per run; reusing one across runs would make two honest
//! same-slot payloads indistinguishable from equivocation.

use crate::bits::BitWriter;
use crate::mac::{siphash24, MacKey};
use crate::message::Message;
use crate::DecodeError;
use std::collections::BTreeMap;

/// Domain-separation tweak prefixed to simnet per-party evidence key
/// paths, so party keys can never collide with `wirenet`'s
/// per-connection key paths (`[conn]`) or the placement schedule.
pub const EVIDENCE_DOMAIN: u64 = 0x4556_4944; // "EVID"

/// Size of the fixed record-body header: version, kind, session,
/// round, from, to, payload bit length.
pub const RECORD_HEADER_BYTES: usize = 1 + 1 + 8 + 4 + 4 + 4 + 4;

/// Record-body kind code for protocol data frames (matches
/// `wirenet::FrameKind::Data`). Every shape rule below concerns data
/// records; other kinds may appear as context but prove nothing here.
pub const RECORD_KIND_DATA: u8 = 0;

/// The referee / coordinator address in record `to` fields (matches
/// simnet's `REFEREE`): shape rules only fire on uplinks (`to == 0`),
/// never on referee downlinks (`from == 0`), so a downlink can never
/// be re-cut as an out-of-range-sender proof.
pub const RECORD_TO_REFEREE: u32 = 0;

/// Ceiling on a decoded record body — mirrors the frame layer's
/// `MAX_BODY_BYTES` plus header slack, rejecting absurd length
/// prefixes before allocating.
pub const MAX_RECORD_BYTES: usize = (1 << 20) + RECORD_HEADER_BYTES + 8;

/// Ceiling on records per bundle: every shape rule needs at most two.
pub const MAX_BUNDLE_RECORDS: usize = 8;

/// The provable-error taxonomy: violations whose proof fits in one or
/// two MAC'd records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum ProvableError {
    /// Two MAC-valid data records with the same `(session, round,
    /// sender)` slot under the same key path but different payloads.
    /// Attributable: an honest party signs one payload per slot.
    Equivocation = 0,
    /// A MAC-valid data record whose payload is not a canonical bit
    /// string (padding bits set, or byte count inconsistent with the
    /// declared bit length). Attributable: honest encoders are
    /// canonical by construction.
    MalformedUplink = 1,
    /// A MAC-valid uplink claiming a sender id outside `1..=n`.
    /// Attributable: honest parties send their own in-range id.
    OutOfRangeSender = 2,
    /// A MAC-valid uplink for round `0` or a round beyond the
    /// service's round cap. Attributable: honest parties track the
    /// session round.
    WrongRound = 3,
    /// The same MAC-valid record delivered more than once. **Not**
    /// attributable (`culprit == None`): at-least-once transports
    /// legitimately re-deliver, so pinning this on the signer would
    /// frame honest senders behind a duplicating network.
    DuplicateSender = 4,
    /// A record MAC'd under a superseded generation of a rotating key
    /// schedule, paired with a context record proving a newer
    /// generation was live. **Not** attributable: anyone who captured
    /// the old frame can replay it.
    StaleReplay = 5,
}

impl ProvableError {
    /// Every error, in wire-code order.
    pub const ALL: [ProvableError; 6] = [
        ProvableError::Equivocation,
        ProvableError::MalformedUplink,
        ProvableError::OutOfRangeSender,
        ProvableError::WrongRound,
        ProvableError::DuplicateSender,
        ProvableError::StaleReplay,
    ];

    /// Whether a verified bundle of this kind names a culprit.
    pub fn attributable(self) -> bool {
        !matches!(self, ProvableError::DuplicateSender | ProvableError::StaleReplay)
    }

    /// Stable snake_case name for logs and artifacts.
    pub fn name(self) -> &'static str {
        match self {
            ProvableError::Equivocation => "equivocation",
            ProvableError::MalformedUplink => "malformed_uplink",
            ProvableError::OutOfRangeSender => "out_of_range_sender",
            ProvableError::WrongRound => "wrong_round",
            ProvableError::DuplicateSender => "duplicate_sender",
            ProvableError::StaleReplay => "stale_replay",
        }
    }

    /// Inverse of `error as u8`; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<ProvableError> {
        ProvableError::ALL.get(code as usize).copied()
    }
}

/// The public session facts a third-party verifier must know: which
/// session the accusation concerns, how many parties it had, and the
/// highest legal uplink round. Everything else comes from the bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionParams {
    /// Session id every record must carry.
    pub session: u64,
    /// Number of parties; legal senders are `1..=n`.
    pub n: u32,
    /// Highest legal uplink round; legal rounds are `1..=round_cap`.
    pub round_cap: u32,
}

/// The parsed header of a record body, plus the raw payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordFields {
    /// Wire-format version byte.
    pub ver: u8,
    /// Frame kind code ([`RECORD_KIND_DATA`] for uplinks).
    pub kind: u8,
    /// Session id.
    pub session: u64,
    /// Protocol round.
    pub round: u32,
    /// Claimed sender vertex.
    pub from: u32,
    /// Destination vertex ([`RECORD_TO_REFEREE`] for uplinks).
    pub to: u32,
    /// Declared payload bit length.
    pub len_bits: u32,
    /// Raw payload bytes exactly as signed.
    pub payload: Vec<u8>,
}

impl RecordFields {
    /// The payload as a canonical [`Message`], or `None` when the raw
    /// bytes are non-canonical (the [`ProvableError::MalformedUplink`]
    /// case: MAC-valid, yet no honest encoder produces it).
    pub fn message(&self) -> Option<Message> {
        Message::from_bits(self.payload.clone(), self.len_bits as usize).ok()
    }
}

/// Build a canonical record body from parsed fields — the inverse of
/// [`EvidenceRecord::parse`], and byte-for-byte the authenticated body
/// `wirenet` puts on the socket for the same envelope.
pub fn encode_record_body(
    ver: u8,
    kind: u8,
    session: u64,
    round: u32,
    from: u32,
    to: u32,
    payload: &Message,
) -> Vec<u8> {
    encode_record_body_raw(
        ver,
        kind,
        session,
        round,
        from,
        to,
        payload.len_bits() as u32,
        payload.as_bytes(),
    )
}

/// [`encode_record_body`] on raw payload bytes + an explicit bit
/// length — the hook misbehavior injectors use to sign bodies no
/// honest encoder would emit (non-canonical padding, short buffers).
#[allow(clippy::too_many_arguments)]
pub fn encode_record_body_raw(
    ver: u8,
    kind: u8,
    session: u64,
    round: u32,
    from: u32,
    to: u32,
    len_bits: u32,
    payload: &[u8],
) -> Vec<u8> {
    let mut body = Vec::with_capacity(RECORD_HEADER_BYTES + payload.len());
    body.push(ver);
    body.push(kind);
    body.extend_from_slice(&session.to_be_bytes());
    body.extend_from_slice(&round.to_be_bytes());
    body.extend_from_slice(&from.to_be_bytes());
    body.extend_from_slice(&to.to_be_bytes());
    body.extend_from_slice(&len_bits.to_be_bytes());
    body.extend_from_slice(payload);
    body
}

/// Fold a derivation path over a base key: `base.derive(p₀)…derive(pₖ)`.
pub fn key_for_path(base: &MacKey, path: &[u64]) -> MacKey {
    path.iter().fold(*base, |k, &tweak| k.derive(tweak))
}

/// One authenticated transmission: the signed body, its tag, and the
/// key-schedule path identifying the signing key (and thereby the
/// principal — the path's last element).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvidenceRecord {
    /// Key derivation path from the session base key.
    pub path: Vec<u64>,
    /// Authenticated body bytes (see module docs for the layout).
    pub body: Vec<u8>,
    /// `siphash24(key_for_path(base, path), body)`.
    pub tag: u64,
}

impl EvidenceRecord {
    /// Sign `body` under `base` folded through `path`.
    pub fn sign(base: &MacKey, path: Vec<u64>, body: Vec<u8>) -> EvidenceRecord {
        let tag = siphash24(&key_for_path(base, &path), &body);
        EvidenceRecord { path, body, tag }
    }

    /// Check the tag against the session base key. Constant-time
    /// comparison is not needed: tags are public values on bundles.
    pub fn verify(&self, base: &MacKey) -> bool {
        siphash24(&key_for_path(base, &self.path), &self.body) == self.tag
    }

    /// The principal this record attributes to when a shape rule
    /// fires: the last path element, truncated to the id space.
    pub fn principal(&self) -> Option<u32> {
        self.path.last().map(|&p| p as u32)
    }

    /// Parse the body header. Fails only when the body cannot even
    /// carry a header — a malformed *payload* still parses (that is
    /// what makes [`ProvableError::MalformedUplink`] provable).
    pub fn parse(&self) -> Result<RecordFields, DecodeError> {
        if self.body.len() < RECORD_HEADER_BYTES {
            return Err(DecodeError::Truncated);
        }
        let b = &self.body;
        let be32 = |s: &[u8]| u32::from_be_bytes(s.try_into().expect("4 bytes"));
        Ok(RecordFields {
            ver: b[0],
            kind: b[1],
            session: u64::from_be_bytes(b[2..10].try_into().expect("8 bytes")),
            round: be32(&b[10..14]),
            from: be32(&b[14..18]),
            to: be32(&b[18..22]),
            len_bits: be32(&b[22..26]),
            payload: b[RECORD_HEADER_BYTES..].to_vec(),
        })
    }
}

/// A self-contained accusation: the claimed error, the accused
/// principal (for attributable errors), and the records that prove it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvidenceBundle {
    /// What violation the records prove.
    pub error: ProvableError,
    /// The accused principal; must be `None` exactly when
    /// [`ProvableError::attributable`] is false.
    pub accused: Option<u32>,
    /// The offending records (plus minimal context for two-record
    /// proofs). Order is part of the shape for [`ProvableError::StaleReplay`]:
    /// offender first, newer-generation context second.
    pub records: Vec<EvidenceRecord>,
}

impl EvidenceBundle {
    /// Gamma-coded canonical serialization.
    pub fn encode(&self) -> Message {
        let mut w = BitWriter::new();
        w.write_gamma(self.error as u64 + 1);
        match self.accused {
            None => w.write_bits(0, 1),
            Some(a) => {
                w.write_bits(1, 1);
                w.write_gamma(a as u64 + 1);
            }
        }
        w.write_gamma(self.records.len() as u64 + 1);
        for r in &self.records {
            w.write_gamma(r.path.len() as u64 + 1);
            for &p in &r.path {
                w.write_bits(p, 64);
            }
            w.write_gamma(r.body.len() as u64 + 1);
            for &b in &r.body {
                w.write_bits(b as u64, 8);
            }
            w.write_bits(r.tag, 64);
        }
        Message::from_writer(w)
    }

    /// Strict inverse of [`encode`](EvidenceBundle::encode): rejects
    /// unknown error codes, absurd lengths, and trailing bits.
    pub fn decode(msg: &Message) -> Result<EvidenceBundle, DecodeError> {
        let mut r = msg.reader();
        let code = r.read_gamma()? - 1;
        let error = ProvableError::from_code(
            u8::try_from(code)
                .map_err(|_| DecodeError::OutOfRange(format!("error code {code}")))?,
        )
        .ok_or_else(|| DecodeError::OutOfRange(format!("error code {code}")))?;
        let accused = if r.read_bits(1)? == 1 {
            let a = r.read_gamma()? - 1;
            Some(
                u32::try_from(a)
                    .map_err(|_| DecodeError::OutOfRange(format!("accused {a}")))?,
            )
        } else {
            None
        };
        let count = (r.read_gamma()? - 1) as usize;
        if count > MAX_BUNDLE_RECORDS {
            return Err(DecodeError::OutOfRange(format!("{count} records")));
        }
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            let path_len = (r.read_gamma()? - 1) as usize;
            if path_len > 16 {
                return Err(DecodeError::OutOfRange(format!("path length {path_len}")));
            }
            let mut path = Vec::with_capacity(path_len);
            for _ in 0..path_len {
                path.push(r.read_bits(64)?);
            }
            let body_len = (r.read_gamma()? - 1) as usize;
            if body_len > MAX_RECORD_BYTES {
                return Err(DecodeError::OutOfRange(format!("body length {body_len}")));
            }
            let mut body = Vec::with_capacity(body_len);
            for _ in 0..body_len {
                body.push(r.read_bits(8)? as u8);
            }
            let tag = r.read_bits(64)?;
            records.push(EvidenceRecord { path, body, tag });
        }
        if !r.is_exhausted() {
            return Err(DecodeError::Invalid("trailing bits after bundle".into()));
        }
        Ok(EvidenceBundle { error, accused, records })
    }

    /// Byte serialization for `EVIDENCE_*.bin` artifacts: a 4-byte
    /// big-endian bit count followed by the canonical payload bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let msg = self.encode();
        let mut out = Vec::with_capacity(4 + msg.as_bytes().len());
        out.extend_from_slice(&(msg.len_bits() as u32).to_be_bytes());
        out.extend_from_slice(msg.as_bytes());
        out
    }

    /// Inverse of [`to_bytes`](EvidenceBundle::to_bytes).
    pub fn from_bytes(bytes: &[u8]) -> Result<EvidenceBundle, DecodeError> {
        if bytes.len() < 4 {
            return Err(DecodeError::Truncated);
        }
        let len_bits = u32::from_be_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
        let msg = Message::from_bits(bytes[4..].to_vec(), len_bits)?;
        EvidenceBundle::decode(&msg)
    }
}

/// Why a bundle failed verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvidenceError {
    /// A record's tag does not verify under the session key schedule.
    BadMac {
        /// Index of the offending record within the bundle.
        index: usize,
    },
    /// A record names a different session than [`SessionParams`].
    WrongSession {
        /// Index of the offending record within the bundle.
        index: usize,
    },
    /// The records do not satisfy the claimed error's shape rule.
    Shape(String),
}

impl std::fmt::Display for EvidenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvidenceError::BadMac { index } => {
                write!(f, "record {index} fails MAC verification")
            }
            EvidenceError::WrongSession { index } => {
                write!(f, "record {index} names a different session")
            }
            EvidenceError::Shape(s) => write!(f, "shape rule violated: {s}"),
        }
    }
}

impl std::error::Error for EvidenceError {}

/// A verified accusation: what happened and (when the error is
/// attributable) who provably did it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attribution {
    /// The proven violation.
    pub error: ProvableError,
    /// The proven culprit — the signing principal — or `None` for
    /// non-attributable facts (duplicates, stale replays).
    pub culprit: Option<u32>,
}

fn shape_err<T>(msg: impl Into<String>) -> Result<T, EvidenceError> {
    Err(EvidenceError::Shape(msg.into()))
}

/// Verify an evidence bundle against *only* the session key schedule
/// and public parameters — no live referee state.
///
/// Checks, in order: every record MAC-verifies under `base` folded
/// through its path, every record names `params.session`, and the
/// records satisfy the claimed [`ProvableError`]'s shape rule (see
/// each variant's docs). On success the returned [`Attribution`]'s
/// `culprit` is guaranteed consistent with `bundle.accused` — a bundle
/// accusing anyone other than the proven principal fails.
pub fn verify_bundle(
    base: &MacKey,
    params: &SessionParams,
    bundle: &EvidenceBundle,
) -> Result<Attribution, EvidenceError> {
    if bundle.records.is_empty() {
        return shape_err("no records");
    }
    if bundle.records.len() > MAX_BUNDLE_RECORDS {
        return shape_err("too many records");
    }
    let mut fields = Vec::with_capacity(bundle.records.len());
    for (index, rec) in bundle.records.iter().enumerate() {
        if rec.path.is_empty() {
            return shape_err(format!("record {index} has an empty key path"));
        }
        if !rec.verify(base) {
            return Err(EvidenceError::BadMac { index });
        }
        let f =
            rec.parse().map_err(|e| EvidenceError::Shape(format!("record {index}: {e}")))?;
        if f.session != params.session {
            return Err(EvidenceError::WrongSession { index });
        }
        fields.push(f);
    }

    let uplink = |f: &RecordFields, what: &str| -> Result<(), EvidenceError> {
        if f.kind != RECORD_KIND_DATA {
            return shape_err(format!("{what}: not a data record"));
        }
        if f.to != RECORD_TO_REFEREE {
            return shape_err(format!("{what}: not addressed to the referee"));
        }
        Ok(())
    };
    let in_range = |v: u32| v >= 1 && v <= params.n;
    let round_ok = |r: u32| r >= 1 && r <= params.round_cap;

    let culprit = match bundle.error {
        ProvableError::Equivocation => {
            let [a, b] = two(&fields)?;
            uplink(a, "first record")?;
            uplink(b, "second record")?;
            if (a.round, a.from) != (b.round, b.from) {
                return shape_err("records occupy different (round, sender) slots");
            }
            if !in_range(a.from) {
                return shape_err(
                    "sender out of range (an out-of-range proof, not equivocation)",
                );
            }
            if !round_ok(a.round) {
                return shape_err("round out of range (a wrong-round proof, not equivocation)");
            }
            if bundle.records[0].path != bundle.records[1].path {
                return shape_err("records signed under different key paths");
            }
            let (ma, mb) = match (a.message(), b.message()) {
                (Some(ma), Some(mb)) => (ma, mb),
                _ => return shape_err("non-canonical payload (a malformed-uplink proof)"),
            };
            if ma == mb {
                return shape_err("payloads are identical (a duplicate, not equivocation)");
            }
            bundle.records[0].principal()
        }
        ProvableError::MalformedUplink => {
            let f = one(&fields)?;
            uplink(f, "record")?;
            if f.message().is_some() {
                return shape_err("payload is canonical — nothing malformed to prove");
            }
            bundle.records[0].principal()
        }
        ProvableError::OutOfRangeSender => {
            let f = one(&fields)?;
            uplink(f, "record")?;
            if in_range(f.from) {
                return shape_err(format!("sender {} is in range 1..={}", f.from, params.n));
            }
            bundle.records[0].principal()
        }
        ProvableError::WrongRound => {
            let f = one(&fields)?;
            uplink(f, "record")?;
            if round_ok(f.round) {
                return shape_err(format!(
                    "round {} is in range 1..={}",
                    f.round, params.round_cap
                ));
            }
            bundle.records[0].principal()
        }
        ProvableError::DuplicateSender => {
            let [a, _b] = two(&fields)?;
            uplink(a, "record")?;
            let (ra, rb) = (&bundle.records[0], &bundle.records[1]);
            if ra.body != rb.body || ra.path != rb.path || ra.tag != rb.tag {
                return shape_err("records are not identical transmissions");
            }
            None
        }
        ProvableError::StaleReplay => {
            let [off, ctx] = two(&fields)?;
            uplink(off, "offending record")?;
            let (ro, rc) = (&bundle.records[0], &bundle.records[1]);
            let (po, pc) = (&ro.path, &rc.path);
            if po.len() != pc.len() || po.is_empty() {
                return shape_err("paths are not generation siblings");
            }
            if po[..po.len() - 1] != pc[..pc.len() - 1] {
                return shape_err("paths diverge before the generation element");
            }
            let (go, gc) = (po[po.len() - 1], pc[pc.len() - 1]);
            if go >= gc {
                return shape_err(format!(
                    "offender generation {go} is not older than context generation {gc}"
                ));
            }
            let _ = ctx;
            None
        }
    };

    if bundle.accused != culprit {
        return shape_err(format!(
            "bundle accuses {:?} but the records prove {:?}",
            bundle.accused, culprit
        ));
    }
    Ok(Attribution { error: bundle.error, culprit })
}

fn one(fields: &[RecordFields]) -> Result<&RecordFields, EvidenceError> {
    match fields {
        [f] => Ok(f),
        _ => shape_err(format!("expected 1 record, got {}", fields.len())),
    }
}

fn two(fields: &[RecordFields]) -> Result<[&RecordFields; 2], EvidenceError> {
    match fields {
        [a, b] => Ok([a, b]),
        _ => shape_err(format!("expected 2 records, got {}", fields.len())),
    }
}

/// Scan a transcript of signed records and build every bundle the
/// generic shape rules support — the independent "prosecutor" used by
/// the byzantine harnesses. It trusts nothing but the MACs: records
/// that fail verification or parsing are ignored, and only uplink
/// records for `params.session` are considered. Bundles come out in a
/// deterministic order (by slot, then error code).
///
/// [`ProvableError::StaleReplay`] needs key-rotation semantics the
/// generic scan cannot see; rotating layers (placement) build those
/// bundles at the rotation point instead.
pub fn prosecute(
    base: &MacKey,
    params: &SessionParams,
    transcript: &[EvidenceRecord],
) -> Vec<EvidenceBundle> {
    // (round, from, path) → distinct signed uplink records for the slot.
    type SlotKey = (u32, u32, Vec<u64>);
    let mut slots: BTreeMap<SlotKey, Vec<(usize, RecordFields)>> = BTreeMap::new();
    let mut bundles = Vec::new();
    for (i, rec) in transcript.iter().enumerate() {
        if rec.path.is_empty() || !rec.verify(base) {
            continue;
        }
        let Ok(f) = rec.parse() else { continue };
        if f.session != params.session
            || f.kind != RECORD_KIND_DATA
            || f.to != RECORD_TO_REFEREE
        {
            continue;
        }
        if f.message().is_none() {
            bundles.push(EvidenceBundle {
                error: ProvableError::MalformedUplink,
                accused: rec.principal(),
                records: vec![rec.clone()],
            });
            continue;
        }
        if f.from == 0 || f.from > params.n {
            bundles.push(EvidenceBundle {
                error: ProvableError::OutOfRangeSender,
                accused: rec.principal(),
                records: vec![rec.clone()],
            });
            continue;
        }
        if f.round == 0 || f.round > params.round_cap {
            bundles.push(EvidenceBundle {
                error: ProvableError::WrongRound,
                accused: rec.principal(),
                records: vec![rec.clone()],
            });
            continue;
        }
        slots.entry((f.round, f.from, rec.path.clone())).or_default().push((i, f));
    }
    for ((_, _, path), entries) in &slots {
        // First equivocation pair (distinct payloads) and first exact
        // duplicate pair in the slot, if any.
        let mut equiv: Option<(usize, usize)> = None;
        let mut dup: Option<(usize, usize)> = None;
        for (ai, (a, _)) in entries.iter().enumerate() {
            for (b, _) in entries.iter().skip(ai + 1) {
                let (ra, rb) = (&transcript[*a], &transcript[*b]);
                if ra.body == rb.body {
                    dup.get_or_insert((*a, *b));
                } else {
                    equiv.get_or_insert((*a, *b));
                }
            }
        }
        if let Some((a, b)) = equiv {
            bundles.push(EvidenceBundle {
                error: ProvableError::Equivocation,
                accused: Some(*path.last().expect("non-empty path") as u32),
                records: vec![transcript[a].clone(), transcript[b].clone()],
            });
        }
        if let Some((a, b)) = dup {
            bundles.push(EvidenceBundle {
                error: ProvableError::DuplicateSender,
                accused: None,
                records: vec![transcript[a].clone(), transcript[b].clone()],
            });
        }
    }
    bundles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitWriter;

    fn base() -> MacKey {
        MacKey(*b"evidence-base-ky")
    }

    fn params() -> SessionParams {
        SessionParams { session: 7, n: 5, round_cap: 3 }
    }

    fn payload(value: u64, width: u32) -> Message {
        let mut w = BitWriter::new();
        w.write_bits(value, width);
        Message::from_writer(w)
    }

    fn uplink(party: u32, round: u32, msg: &Message) -> EvidenceRecord {
        let body = encode_record_body(2, RECORD_KIND_DATA, 7, round, party, 0, msg);
        EvidenceRecord::sign(&base(), vec![EVIDENCE_DOMAIN, party as u64], body)
    }

    #[test]
    fn record_sign_verify_parse_round_trip() {
        let m = payload(0b1011, 4);
        let rec = uplink(3, 1, &m);
        assert!(rec.verify(&base()));
        let f = rec.parse().unwrap();
        assert_eq!((f.session, f.round, f.from, f.to), (7, 1, 3, 0));
        assert_eq!(f.message().unwrap(), m);
        assert_eq!(rec.principal(), Some(3));
    }

    #[test]
    fn equivocation_bundle_verifies_and_attributes_signer() {
        let b = EvidenceBundle {
            error: ProvableError::Equivocation,
            accused: Some(2),
            records: vec![uplink(2, 1, &payload(1, 3)), uplink(2, 1, &payload(5, 3))],
        };
        let att = verify_bundle(&base(), &params(), &b).unwrap();
        assert_eq!(att.culprit, Some(2));
        assert_eq!(att.error, ProvableError::Equivocation);
    }

    #[test]
    fn identical_payloads_are_not_equivocation() {
        let b = EvidenceBundle {
            error: ProvableError::Equivocation,
            accused: Some(2),
            records: vec![uplink(2, 1, &payload(1, 3)), uplink(2, 1, &payload(1, 3))],
        };
        assert!(matches!(verify_bundle(&base(), &params(), &b), Err(EvidenceError::Shape(_))));
    }

    #[test]
    fn out_of_range_and_wrong_round_verify() {
        let oor = EvidenceBundle {
            error: ProvableError::OutOfRangeSender,
            accused: Some(4),
            records: vec![{
                let body = encode_record_body(2, RECORD_KIND_DATA, 7, 1, 99, 0, &payload(1, 1));
                EvidenceRecord::sign(&base(), vec![EVIDENCE_DOMAIN, 4], body)
            }],
        };
        assert_eq!(verify_bundle(&base(), &params(), &oor).unwrap().culprit, Some(4));
        let wr = EvidenceBundle {
            error: ProvableError::WrongRound,
            accused: Some(1),
            records: vec![uplink(1, 9, &payload(1, 1))],
        };
        assert_eq!(verify_bundle(&base(), &params(), &wr).unwrap().culprit, Some(1));
    }

    #[test]
    fn malformed_uplink_is_provable_and_canonical_is_not() {
        // 3 declared bits with a padding bit set: MAC-valid, yet no
        // honest encoder produces it.
        let body = encode_record_body_raw(2, RECORD_KIND_DATA, 7, 1, 3, 0, 3, &[0b1010_0001]);
        let rec = EvidenceRecord::sign(&base(), vec![EVIDENCE_DOMAIN, 3], body);
        let b = EvidenceBundle {
            error: ProvableError::MalformedUplink,
            accused: Some(3),
            records: vec![rec],
        };
        assert_eq!(verify_bundle(&base(), &params(), &b).unwrap().culprit, Some(3));
        let canon = EvidenceBundle {
            error: ProvableError::MalformedUplink,
            accused: Some(3),
            records: vec![uplink(3, 1, &payload(1, 3))],
        };
        assert!(verify_bundle(&base(), &params(), &canon).is_err());
    }

    #[test]
    fn duplicate_and_stale_replay_never_accuse() {
        let r = uplink(2, 1, &payload(1, 3));
        let dup = EvidenceBundle {
            error: ProvableError::DuplicateSender,
            accused: None,
            records: vec![r.clone(), r.clone()],
        };
        assert_eq!(verify_bundle(&base(), &params(), &dup).unwrap().culprit, None);
        // Accusing anyone on a duplicate fails.
        let framed = EvidenceBundle { accused: Some(2), ..dup.clone() };
        assert!(verify_bundle(&base(), &params(), &framed).is_err());

        // Stale replay: offender signed under generation 1, context
        // under generation 3 of the same schedule.
        let body = encode_record_body(2, RECORD_KIND_DATA, 7, 1, 2, 0, &payload(1, 3));
        let off = EvidenceRecord::sign(&base(), vec![42, 1], body.clone());
        let ctx_body = encode_record_body(2, RECORD_KIND_DATA, 7, 2, 2, 0, &payload(2, 3));
        let ctx = EvidenceRecord::sign(&base(), vec![42, 3], ctx_body);
        let stale = EvidenceBundle {
            error: ProvableError::StaleReplay,
            accused: None,
            records: vec![off.clone(), ctx.clone()],
        };
        assert_eq!(verify_bundle(&base(), &params(), &stale).unwrap().culprit, None);
        // Generations reversed: not a stale replay.
        let rev = EvidenceBundle {
            error: ProvableError::StaleReplay,
            accused: None,
            records: vec![ctx, off],
        };
        assert!(verify_bundle(&base(), &params(), &rev).is_err());
    }

    #[test]
    fn bundle_codec_round_trips() {
        let b = EvidenceBundle {
            error: ProvableError::Equivocation,
            accused: Some(2),
            records: vec![uplink(2, 1, &payload(1, 3)), uplink(2, 1, &payload(5, 3))],
        };
        let enc = b.encode();
        assert_eq!(EvidenceBundle::decode(&enc).unwrap(), b);
        let bytes = b.to_bytes();
        assert_eq!(EvidenceBundle::from_bytes(&bytes).unwrap(), b);
    }

    #[test]
    fn forged_bundles_fail_verification() {
        let good = EvidenceBundle {
            error: ProvableError::Equivocation,
            accused: Some(2),
            records: vec![uplink(2, 1, &payload(1, 3)), uplink(2, 1, &payload(5, 3))],
        };
        verify_bundle(&base(), &params(), &good).unwrap();

        // Any body bit flip breaks the MAC.
        for idx in 0..good.records[0].body.len() * 8 {
            let mut forged = good.clone();
            forged.records[0].body[idx / 8] ^= 1 << (7 - idx % 8);
            assert!(
                verify_bundle(&base(), &params(), &forged).is_err(),
                "body bit {idx} forgery verified"
            );
        }
        // Tag tampering breaks the MAC.
        let mut forged = good.clone();
        forged.records[1].tag ^= 1;
        assert!(matches!(
            verify_bundle(&base(), &params(), &forged),
            Err(EvidenceError::BadMac { index: 1 })
        ));
        // Re-pointing the accusation at an honest party fails.
        let mut forged = good.clone();
        forged.accused = Some(1);
        assert!(verify_bundle(&base(), &params(), &forged).is_err());
        // Changing the claimed error fails the shape rule.
        let mut forged = good.clone();
        forged.error = ProvableError::DuplicateSender;
        forged.accused = None;
        assert!(verify_bundle(&base(), &params(), &forged).is_err());
        // Splicing a record signed under a different path fails.
        let mut forged = good.clone();
        forged.records[1] = uplink(3, 1, &payload(5, 3));
        assert!(verify_bundle(&base(), &params(), &forged).is_err());
        // Wrong session key: nothing verifies.
        assert!(verify_bundle(&MacKey([9; 16]), &params(), &good).is_err());
    }

    #[test]
    fn wrong_session_is_rejected() {
        let b = EvidenceBundle {
            error: ProvableError::WrongRound,
            accused: Some(1),
            records: vec![uplink(1, 9, &payload(1, 1))],
        };
        let other = SessionParams { session: 8, ..params() };
        assert!(matches!(
            verify_bundle(&base(), &other, &b),
            Err(EvidenceError::WrongSession { index: 0 })
        ));
    }

    #[test]
    fn prosecutor_finds_planted_violations_and_nothing_else() {
        let p = params();
        let mut transcript = Vec::new();
        // Honest traffic: each party's single round-1 uplink.
        for v in 1..=p.n {
            transcript.push(uplink(v, 1, &payload(v as u64, 3)));
        }
        // Party 2 equivocates; party 4's uplink is replayed verbatim.
        transcript.push(uplink(2, 1, &payload(6, 3)));
        transcript.push(transcript[3].clone());
        // Party 5 sends an out-of-range claim.
        let body = encode_record_body(2, RECORD_KIND_DATA, 7, 1, 77, 0, &payload(1, 1));
        transcript.push(EvidenceRecord::sign(&base(), vec![EVIDENCE_DOMAIN, 5], body));

        let bundles = prosecute(&base(), &p, &transcript);
        assert_eq!(bundles.len(), 3);
        let mut culprits = Vec::new();
        for b in &bundles {
            let att = verify_bundle(&base(), &p, b).unwrap();
            culprits.push((att.error, att.culprit));
        }
        culprits.sort();
        assert_eq!(
            culprits,
            vec![
                (ProvableError::Equivocation, Some(2)),
                (ProvableError::OutOfRangeSender, Some(5)),
                (ProvableError::DuplicateSender, None),
            ]
        );
    }

    #[test]
    fn prosecutor_is_silent_on_honest_transcripts() {
        let p = params();
        let transcript: Vec<_> =
            (1..=p.n).map(|v| uplink(v, 1, &payload(v as u64, 3))).collect();
        assert!(prosecute(&base(), &p, &transcript).is_empty());
    }

    #[test]
    fn error_codes_round_trip() {
        for e in ProvableError::ALL {
            assert_eq!(ProvableError::from_code(e as u8), Some(e));
        }
        assert_eq!(ProvableError::from_code(6), None);
        assert!(ProvableError::Equivocation.attributable());
        assert!(!ProvableError::DuplicateSender.attributable());
        assert!(!ProvableError::StaleReplay.attributable());
    }
}
