//! The multi-round fleet mode over real loopback TCP: clients drive the
//! node half of Borůvka connectivity, the server's sharded referee runs
//! `referee_step` per round — verdicts pinned against in-process runs
//! and the centralized truth, tampering fails closed with zero
//! undetected corruption.

use rand::rngs::StdRng;
use rand::SeedableRng;
use referee_graph::{algo, generators, LabelledGraph};
use referee_protocol::multiround::{run_multiround, BoruvkaConnectivity};
use referee_simnet::{Scheduler, SessionId};
use referee_wirenet::{
    boruvka_connectivity_service, decode_bool_output, AuthKey, FleetClient, FleetServer,
    TamperConfig,
};

fn graphs(count: usize, seed: u64) -> Vec<LabelledGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|i| generators::gnp(6 + i % 18, 0.22, &mut rng)).collect()
}

const CAP: usize = 64;

/// Multi-round Borůvka sessions multiplexed over 4 connections against
/// a 4-shard multi-round server: every wire verdict equals the
/// in-process `run_multiround` verdict and the centralized truth, and
/// the server exchanged per-round partials and streamed downlinks.
#[test]
fn multiround_fleet_matches_in_process_runs() {
    let key = AuthKey::from_seed(51);
    let shards = 4usize;
    let server =
        FleetServer::spawn_multiround(key, shards, boruvka_connectivity_service()).unwrap();
    let client = FleetClient::connect(server.addr(), 4, key).unwrap();
    let fleet = graphs(120, 71);

    let verdicts: Vec<bool> = Scheduler::new(8, 4).run_indexed(fleet.len(), |i| {
        let out = client
            .run_multiround_session(SessionId(i as u64), &BoruvkaConnectivity, &fleet[i], CAP)
            .expect("honest session completes");
        decode_bool_output(&out).expect("honest uplinks decode")
    });

    for (i, (wire, g)) in verdicts.iter().zip(&fleet).enumerate() {
        let (local, _) = run_multiround(&BoruvkaConnectivity, g, CAP);
        let local = local.expect("terminates").expect("decodes");
        assert_eq!(*wire, local, "session {i} diverged from the in-process run");
        assert_eq!(*wire, algo::is_connected(g), "session {i} vs centralized");
    }

    let stats = server.stop();
    assert_eq!(stats.verdict_frames as usize, fleet.len());
    assert_eq!(stats.mac_rejects, 0);
    assert_eq!(stats.decode_rejects, 0);
    assert!(stats.partial_frames > 0, "rounds must exchange shard partials");
    assert!(stats.downlink_frames > 0, "continuing rounds must stream downlinks");
}

/// Trivial sizes ride the same wire path: the empty graph (the server
/// steps empty uplink vectors from the implied-empty-shard quorum), a
/// single node, and a two-node disconnected graph.
#[test]
fn multiround_fleet_handles_trivial_sizes() {
    let key = AuthKey::from_seed(52);
    let server = FleetServer::spawn_multiround(key, 3, boruvka_connectivity_service()).unwrap();
    let client = FleetClient::connect(server.addr(), 1, key).unwrap();
    for (i, (g, want)) in [
        (LabelledGraph::new(0), true),
        (LabelledGraph::new(1), true),
        (LabelledGraph::new(2), false),
        (generators::path(2), true),
    ]
    .into_iter()
    .enumerate()
    {
        let out = client
            .run_multiround_session(SessionId(i as u64), &BoruvkaConnectivity, &g, CAP)
            .expect("honest session completes");
        assert_eq!(decode_bool_output(&out).unwrap(), want, "graph {i}");
    }
    let stats = server.stop();
    assert_eq!(stats.verdict_frames, 4);
    assert_eq!(stats.mac_rejects, 0);
}

/// Session ids are keyed per connection and reusable after their
/// verdict, exactly like the one-round service.
#[test]
fn multiround_session_ids_are_reusable() {
    let key = AuthKey::from_seed(53);
    let server = FleetServer::spawn_multiround(key, 2, boruvka_connectivity_service()).unwrap();
    let a = FleetClient::connect(server.addr(), 1, key).unwrap();
    let b = FleetClient::connect(server.addr(), 1, key).unwrap();
    let g = generators::cycle(9).unwrap();
    for client in [&a, &b] {
        for _ in 0..2 {
            let out = client
                .run_multiround_session(SessionId(7), &BoruvkaConnectivity, &g, CAP)
                .unwrap();
            assert!(decode_bool_output(&out).unwrap());
        }
    }
    let stats = server.stop();
    assert_eq!(stats.verdict_frames, 4);
    assert_eq!(stats.decode_rejects, 0, "honest reuse must not poison anything");
}

/// The acceptance adversary: every third outbound frame is corrupted
/// after MAC computation. Every tampered frame must die at the router's
/// MAC check; affected sessions fail closed; any session that *does*
/// verify saw only clean frames, so its verdict must equal the truth —
/// zero undetected corruption.
#[test]
fn multiround_tampering_yields_zero_undetected_corruption() {
    let key = AuthKey::from_seed(54);
    let server = FleetServer::spawn_multiround(key, 2, boruvka_connectivity_service()).unwrap();
    let sessions = 8usize;
    let client = FleetClient::connect(server.addr(), sessions, key)
        .unwrap()
        .with_tamper(TamperConfig { flip_every: 3 });
    let fleet = graphs(sessions, 55);

    let mut failed_closed = 0usize;
    let mut undetected = 0usize;
    for (i, g) in fleet.iter().enumerate() {
        match client.run_multiround_session(SessionId(i as u64), &BoruvkaConnectivity, g, CAP) {
            Err(_) => failed_closed += 1,
            Ok(out) => {
                let verdict = decode_bool_output(&out);
                if verdict != Ok(algo::is_connected(g)) {
                    undetected += 1;
                }
            }
        }
    }
    assert_eq!(undetected, 0, "a corrupted session was accepted");
    assert!(failed_closed > 0, "tampering every 3rd frame must hit most sessions");

    let client_stats = client.metrics();
    let server_stats = server.stop();
    assert!(client_stats.tampered > 0, "tamper hook never fired");
    assert!(server_stats.mac_rejects > 0, "no corruption reached MAC verification");
}

/// A zero-round cap mirrors `run_multiround`'s contract — no protocol
/// runs at all: the client errors before announcing anything, so the
/// server sees no session state.
#[test]
fn zero_round_cap_runs_nothing() {
    let key = AuthKey::from_seed(57);
    let server = FleetServer::spawn_multiround(key, 2, boruvka_connectivity_service()).unwrap();
    let client = FleetClient::connect(server.addr(), 1, key).unwrap();
    let g = generators::path(4);
    let err = client
        .run_multiround_session(SessionId(1), &BoruvkaConnectivity, &g, 0)
        .expect_err("a 0-round cap can never produce a verdict");
    assert!(format!("{err}").contains("0-round cap"), "{err}");
    assert_eq!(client.metrics().frames_sent, 0, "nothing may be announced");
    let stats = server.stop();
    assert_eq!(stats.frames_received, 0);
    assert_eq!(stats.verdict_frames, 0);
}

/// A multi-round session against the wrong kind of server fails closed
/// (the echo mailbox reflects the Announce, which the client rejects as
/// an unexpected frame) — never hangs.
#[test]
fn multiround_against_echo_server_fails_closed() {
    let key = AuthKey::from_seed(56);
    let server = FleetServer::spawn(key).unwrap(); // echo mailbox
    let client = FleetClient::connect(server.addr(), 1, key).unwrap();
    let g = generators::path(5);
    let err = client
        .run_multiround_session(SessionId(1), &BoruvkaConnectivity, &g, CAP)
        .expect_err("an echo server cannot referee");
    let _ = err; // any DecodeError is acceptable; the point is: no hang
    server.stop();
}
