#![warn(missing_docs)]
//! **Extension (E17):** one-round connectivity *with public randomness*,
//! via Ahn–Guha–McGregor-style linear graph sketches.
//!
//! The main open question of Becker et al. (IPDPS 2011, §IV) is whether a
//! *deterministic* one-round frugal protocol can decide connectivity; the
//! authors "rather tend to believe there is no such protocol". This crate
//! probes the boundary of that conjecture from the other side: if nodes
//! may use **shared (public-coin) randomness**, connectivity *is*
//! decidable in one round with `O(log³ n)`-bit messages — each node sends
//! an ℓ₀-sampling sketch of its signed edge-incidence vector, and the
//! referee runs Borůvka entirely on the sketches, because they are
//! *linear*: the sum of the sketches of a vertex set `S` is a sketch of
//! the edge boundary `∂S` (interior edges cancel in the signed encoding).
//!
//! So whatever makes one-round connectivity hard in the paper's model is
//! the *determinism*, not the bandwidth — a sharp, executable commentary
//! on the open question. (This is a reproduction extension; the
//! construction follows Ahn, Guha, McGregor, *Analyzing graph structure
//! via linear measurements*, SODA 2012, simplified to fixed sampling
//! levels with 2⁻⁶⁴ fingerprint error.)
//!
//! * [`l0`] — the linear ℓ₀-sampler over the edge-slot universe.
//! * [`boruvka`] — the shared sketch-space Borůvka driver (component
//!   counting, forest extraction, boundary-zero certificates).
//! * [`connectivity`] — the one-round connectivity protocol (E17).
//! * [`bipartiteness`] — one-round bipartiteness through the bipartite
//!   double cover, `cc(B) = 2·cc(G) ⟺ bipartite` (E18).
//! * [`forest`] — one-round spanning-forest *witness* recovery.
//! * [`kconn`] — k-edge-connectivity by peeling: linearity lets the
//!   referee subtract recovered forests and keep sampling (E19).

pub mod bipartiteness;
pub mod boruvka;
pub mod connectivity;
pub mod forest;
pub mod hash;
pub mod kconn;
pub mod l0;

pub use bipartiteness::{double_cover, sketch_bipartiteness, SketchBipartitenessProtocol};
pub use boruvka::{boruvka_components, BoruvkaOutcome};
pub use connectivity::{SketchConnectivityProtocol, SketchStats};
pub use forest::{sketch_spanning_forest, ForestResult, SketchSpanningForestProtocol};
pub use kconn::{sketch_edge_connectivity, SketchKConnectivityProtocol};
pub use l0::{EdgeSlot, L0Sampler};
