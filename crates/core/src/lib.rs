#![warn(missing_docs)]
//! `referee-core` — the public facade of the `referee-one-round`
//! workspace, a production-quality Rust reproduction of:
//!
//! > F. Becker, M. Matamala, N. Nisse, I. Rapaport, K. Suchan, I. Todinca.
//! > *Adding a referee to an interconnection network: What can(not) be
//! > computed in one round.* IPDPS 2011.
//!
//! # Quick start
//!
//! ```
//! use referee_core::prelude::*;
//!
//! // A planar-ish graph (degeneracy 2):
//! let g = generators::grid(6, 8);
//!
//! // Theorem 5: each node sends O(k² log n) bits, the referee rebuilds G.
//! let outcome = run_protocol(&DegeneracyProtocol::new(2), &g);
//! assert_eq!(outcome.output.unwrap(), Reconstruction::Graph(g));
//! assert!(outcome.stats.frugality_ratio() < 15.0); // O(log n) messages
//! ```
//!
//! # Crate map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`referee_wideint`] | exact big integers (power sums, counting) |
//! | [`referee_graph`] | labelled graphs, generators, algorithms, enumeration |
//! | [`referee_protocol`] | the model: messages, `OneRoundProtocol`, simulator, frugality audits, multi-round extension |
//! | [`referee_degeneracy`] | Theorem 5 (+ forests §III.A, generalized degeneracy) |
//! | [`referee_simnet`] | sans-I/O session runtime: pluggable transports, fault injection, concurrent scheduler |
//! | [`referee_wirenet`] | real-socket reactor: multiplexed, MAC-authenticated wire frames for simnet fleets |
//! | [`referee_reductions`] | Theorems 1–3 as executable reductions, Lemma 1 counting, collision witnesses, §IV bipartiteness reduction |
//! | this crate | prelude, high-level helpers, §IV partition-connectivity |

pub mod api;
pub mod catalog;
pub mod partition;

pub use referee_degeneracy as degeneracy;
pub use referee_graph as graph;
pub use referee_protocol as protocol;
pub use referee_reductions as reductions;
pub use referee_simnet as simnet;
pub use referee_sketches as sketches;
pub use referee_wideint as wideint;
pub use referee_wirenet as wirenet;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use crate::api::{
        reconstruct_adaptive, reconstruct_bounded_degeneracy, reconstruct_forest,
        sketch_census, AdaptiveReport, ReconstructionReport, SketchCensus,
    };
    pub use crate::catalog::standard_catalog;
    pub use crate::partition::{partition_connectivity, PartitionOutcome};
    pub use referee_degeneracy::{
        adaptive_reconstruct, AdaptiveDegeneracyProtocol, DecoderKind, DegeneracyProtocol,
        ForestProtocol, GeneralizedDegeneracyProtocol, Reconstruction,
    };
    pub use referee_graph::{
        algo, generators, BitSet, Edge, GraphError, LabelledGraph, VertexId,
    };
    pub use referee_protocol::multiround::boruvka_connectivity;
    pub use referee_protocol::{
        bits_for, DecodeError, FrugalityAudit, Message, NodeView, OneRoundProtocol, RunOutcome,
        RunStats,
    };
    // The facade's `run_protocol` executes through the simnet session
    // runtime (a pinned bit-for-bit equivalent of the legacy
    // `referee_protocol::run_protocol`, which remains available for
    // direct use as the reference simulator).
    pub use referee_reductions::{
        DiameterReduction, DiameterTOracle, DiameterTReduction, SquareReduction,
        TriangleReduction,
    };
    pub use referee_simnet::{run_protocol, FaultConfig, Scheduler};
    pub use referee_sketches::connectivity::sketch_connectivity;
    pub use referee_sketches::kconn::sketch_edge_connectivity;
    pub use referee_sketches::{
        sketch_bipartiteness, SketchBipartitenessProtocol, SketchConnectivityProtocol,
        SketchKConnectivityProtocol,
    };
}
