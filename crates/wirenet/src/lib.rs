#![warn(missing_docs)]
//! `referee-wirenet` — a real-socket reactor that drives `simnet`
//! sessions over multiplexed, MAC-authenticated wire frames.
//!
//! PR 1 built the session runtime sans-I/O on purpose: protocol
//! executions are pollable state machines behind a pluggable
//! [`Transport`](referee_simnet::Transport). This crate is the payoff —
//! the backend that puts *real OS sockets* under those unchanged state
//! machines, turning the referee model into a system that ships bytes:
//!
//! * [`frame`] — the wire codec: length-prefixed, versioned binary
//!   framing of [`Envelope`](referee_simnet::Envelope)s, carrying the
//!   [`SessionId`](referee_simnet::SessionId) that lets one connection
//!   multiplex a whole fleet.
//! * [`auth`] — the authentication layer: a keyed 64-bit SipHash-2-4
//!   tag on every frame; verification failures surface through the
//!   existing `DecodeError` rejection paths.
//! * [`reactor`] — nonblocking `std::net` connections with explicit
//!   read/write buffers, advanced by readiness-polling pump sweeps.
//! * [`fleet`] — the referee-side acceptor ([`FleetServer`]) and
//!   node-side pool ([`FleetClient`]) whose [`SocketTransport`] runs
//!   1000+ sessions over a handful of TCP connections with wire-level
//!   metrics ([`WireSnapshot`]): frames, bytes, MAC rejects,
//!   backpressure stalls.
//!
//! # Frame layout
//!
//! ```text
//!  4 bytes  1     8       4      4     4      4      ⌈bits/8⌉     8
//! ┌────────┬────┬────────┬──────┬─────┬─────┬────────┬──────────┬─────────┐
//! │ length │ver │session │round │from │ to  │len_bits│ payload  │ MAC tag │
//! └────────┴────┴────────┴──────┴─────┴─────┴────────┴──────────┴─────────┘
//!          └────────────── MAC-covered (SipHash-2-4, 64-bit) ─────────────┘
//! ```
//!
//! # Threat model (summary — details in [`auth`])
//!
//! Any modification of the MAC-covered region is detected except with
//! probability `2⁻⁶⁴` per frame; length-prefix lies are caught
//! structurally or fail the tag over the wrong span. Replays are
//! absorbed by the session runtime's idempotent duplicate handling.
//! Confidentiality and key distribution are out of scope. A connection
//! that carries one bad frame is poisoned immediately; its sessions
//! starve and reject through the ordinary delivery-failure paths.
//!
//! # Example: a fleet over loopback TCP
//!
//! ```
//! use referee_wirenet::{AuthKey, FleetClient, FleetServer};
//! use referee_simnet::{OneRoundSession, SessionId};
//! use referee_graph::generators;
//! use referee_protocol::easy::EdgeCountProtocol;
//!
//! let key = AuthKey::from_seed(7);
//! let server = FleetServer::spawn(key).unwrap();
//! let client = FleetClient::connect(server.addr(), 2, key).unwrap();
//!
//! let g = generators::grid(3, 4);
//! let id = SessionId(1);
//! let mut transport = client.transport(id);
//! let report =
//!     OneRoundSession::new(&EdgeCountProtocol, &g).with_session(id).run(&mut transport);
//! assert_eq!(report.outcome.unwrap().unwrap(), g.m());
//!
//! let stats = server.stop();
//! assert_eq!(stats.mac_rejects, 0);
//! assert_eq!(stats.frames_received as usize, g.n());
//! ```

pub mod auth;
pub mod fleet;
pub mod frame;
pub mod metrics;
pub mod reactor;

pub use auth::AuthKey;
pub use fleet::{FleetClient, FleetServer, SocketTransport, TamperConfig};
pub use frame::{decode_frame, encode_frame, DecodedFrame, WireError, WIRE_VERSION};
pub use metrics::{WireMetrics, WireSnapshot};
