//! Lemma 1, quantitatively.
//!
//! > If there is a frugal one-round protocol for reconstructing graphs in
//! > G, then log g(n) = O(n log n).
//!
//! The proof is a pigeonhole count: a referee receiving at most
//! `c·log n` bits from each of `n` nodes can distinguish at most
//! `2^{c·n·log n}` message vectors, so a family with more members *cannot*
//! be reconstructed. This module computes both sides exactly:
//!
//! * budgets `2^{c·n·⌈log₂ n⌉}` as [`UBig`]s,
//! * family sizes — closed-form for *all graphs* (`2^{C(n,2)}`) and
//!   *balanced bipartite* (`2^{⌈n/2⌉·⌊n/2⌋}`), exhaustive for
//!   *square-free* at small `n` (Kleitman–Winston: `2^{Θ(n^{3/2})}`
//!   asymptotically, which is what makes Theorem 1 go through).

use referee_graph::{algo, enumerate};
use referee_wideint::UBig;

/// `2^{c·n·⌈log₂(n+1)⌉}` — the number of distinguishable message vectors
/// of a protocol sending at most `c·⌈log₂(n+1)⌉` bits per node.
pub fn message_vector_budget(n: usize, c: usize) -> UBig {
    UBig::one().shl(c * n * referee_protocol::bits_for(n) as usize)
}

/// Exponent of the budget: `c·n·⌈log₂(n+1)⌉`.
pub fn budget_log2(n: usize, c: usize) -> usize {
    c * n * referee_protocol::bits_for(n) as usize
}

/// `g(n)` for the family of **all** labelled graphs: `2^{C(n,2)}`.
pub fn count_all_graphs(n: usize) -> UBig {
    UBig::one().shl(n * n.saturating_sub(1) / 2)
}

/// `g(n)` for Theorem 3's family, balanced bipartite graphs with fixed
/// parts: `2^{⌈n/2⌉·⌊n/2⌋}`.
pub fn count_balanced_bipartite(n: usize) -> UBig {
    UBig::one().shl(n.div_ceil(2) * (n / 2))
}

/// Exact `g(n)` for Theorem 1's family, square-free labelled graphs, by
/// exhaustive enumeration. Feasible for `n ≤ 7` (2^21 graphs); panics on
/// larger `n` to avoid silent day-long loops.
pub fn count_square_free_exact(n: usize) -> u64 {
    assert!(n <= 7, "exhaustive square-free count infeasible beyond n = 7");
    let (matching, _) = enumerate::count_graphs(n, |g| !algo::has_square(g));
    matching
}

/// Exact `g(n)` for labelled forests (a family the positive side *can*
/// reconstruct — its count is `O(n log n)`-compatible). Exhaustive.
pub fn count_forests_exact(n: usize) -> u64 {
    assert!(n <= 7, "exhaustive forest count infeasible beyond n = 7");
    let (matching, _) = enumerate::count_graphs(n, algo::is_forest);
    matching
}

/// Cayley's formula: the number of labelled **trees** on `n` vertices is
/// `n^{n-2}`. Since `log₂ n^{n-2} = (n−2)·log₂ n = Θ(n log n)`, trees sit
/// *exactly at* Lemma 1's boundary — which is why the forest protocol of
/// §III.A can exist with Θ(log n)-bit messages and nothing smaller can.
pub fn cayley_trees(n: usize) -> UBig {
    match n {
        0 => UBig::zero(),
        1 | 2 => UBig::one(),
        _ => UBig::from(n as u64).pow((n - 2) as u32),
    }
}

/// The Kleitman–Winston reference exponent `n^{3/2}/2`, the leading term
/// of `log₂` of the square-free count — the curve the measured exact
/// counts are compared against in E5.
pub fn kleitman_winston_exponent(n: usize) -> f64 {
    0.5 * (n as f64).powf(1.5)
}

/// One row of the Lemma 1 comparison table (E5).
#[derive(Debug, Clone)]
pub struct CountingRow {
    /// Graph size.
    pub n: usize,
    /// `log₂ g(n)` of the family.
    pub family_log2: f64,
    /// `log₂` of the message-vector budget at constant `c`.
    pub budget_log2: usize,
    /// Pigeonhole verdict: family too big for the budget ⇒ reconstruction
    /// impossible at this `(n, c)`.
    pub impossible: bool,
}

/// Build the Lemma 1 table for a family given by its `log₂ g(n)`.
pub fn lemma1_rows(
    ns: &[usize],
    c: usize,
    mut family_log2: impl FnMut(usize) -> f64,
) -> Vec<CountingRow> {
    ns.iter()
        .map(|&n| {
            let fl = family_log2(n);
            let bl = budget_log2(n, c);
            CountingRow { n, family_log2: fl, budget_log2: bl, impossible: fl > bl as f64 }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_matches_formula() {
        // n = 8 → bits_for(8) = 4 → budget = 2^(c·32)
        assert_eq!(message_vector_budget(8, 1), UBig::one().shl(32));
        assert_eq!(message_vector_budget(8, 3), UBig::one().shl(96));
        assert_eq!(budget_log2(8, 3), 96);
    }

    #[test]
    fn all_graph_counts() {
        assert_eq!(count_all_graphs(0), UBig::one());
        assert_eq!(count_all_graphs(4), UBig::from(64u64));
        assert_eq!(count_all_graphs(7).log2(), 21.0);
    }

    #[test]
    fn bipartite_counts() {
        assert_eq!(count_balanced_bipartite(4), UBig::from(16u64));
        // n = 5: parts of size 3 and 2 → 2^6
        assert_eq!(count_balanced_bipartite(5), UBig::from(64u64));
    }

    #[test]
    fn square_free_exact_small() {
        // n ≤ 3: no graph has 4 vertices to form a C4.
        assert_eq!(count_square_free_exact(3), 8);
        // n = 4: 64 − 10 supergraphs of a C4 (see enumerate tests).
        assert_eq!(count_square_free_exact(4), 54);
        // monotone under n (as raw counts): more vertices, more graphs
        assert!(count_square_free_exact(5) > 54);
    }

    #[test]
    fn forests_exact_small() {
        // labelled forests: 1, 1, 2, 7, 38, 291, 2932 … (OEIS A001858)
        assert_eq!(count_forests_exact(1), 1);
        assert_eq!(count_forests_exact(2), 2);
        assert_eq!(count_forests_exact(3), 7);
        assert_eq!(count_forests_exact(4), 38);
        assert_eq!(count_forests_exact(5), 291);
    }

    #[test]
    fn cayley_matches_enumeration() {
        use referee_graph::{algo, enumerate};
        // trees = connected forests; Cayley says n^{n-2}
        for n in 2..=6usize {
            let (trees, _) =
                enumerate::count_graphs(n, |g| algo::is_forest(g) && algo::is_connected(g));
            assert_eq!(UBig::from(trees), cayley_trees(n), "n={n}");
        }
        assert_eq!(cayley_trees(5), UBig::from(125u64));
        assert_eq!(cayley_trees(0), UBig::zero());
        assert_eq!(cayley_trees(1), UBig::one());
    }

    #[test]
    fn trees_sit_at_the_lemma1_boundary() {
        // log₂(n^{n-2}) = (n−2) log₂ n ≤ budget c·n·⌈log₂(n+1)⌉ for any
        // c ≥ 1 — trees never violate Lemma 1 (consistent with Theorem 5).
        for n in [8usize, 64, 512, 4096] {
            let trees_log2 = cayley_trees(n).log2();
            assert!(trees_log2 <= budget_log2(n, 1) as f64, "n={n}");
        }
    }

    #[test]
    fn lemma1_rows_verdicts() {
        // All-graphs family: log2 g(n) = C(n,2) = Θ(n²) must eventually
        // exceed any c·n·log n budget. With c = 1 the crossover is small.
        let ns = [4usize, 8, 16, 32, 64];
        let rows = lemma1_rows(&ns, 1, |n| (n * (n - 1) / 2) as f64);
        assert!(!rows[0].impossible); // 6 ≤ 12
        assert!(rows.last().unwrap().impossible); // 2016 > 448
                                                  // and the verdict is monotone once triggered
        let first_imp = rows.iter().position(|r| r.impossible).unwrap();
        assert!(rows[first_imp..].iter().all(|r| r.impossible));
    }

    #[test]
    fn kw_exponent_shape() {
        assert!(kleitman_winston_exponent(100) > kleitman_winston_exponent(50) * 2.0);
        assert_eq!(kleitman_winston_exponent(4), 4.0);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn square_free_guard() {
        count_square_free_exact(12);
    }
}
