//! Accountable referee service under seeded byzantine clients, over
//! real loopback TCP — the attributable-misbehavior acceptance demo.
//!
//! For each shard count `k ∈ {1, 2, 4, 8}` the example runs one
//! sharded [`FleetServer`] and throws two populations at it:
//!
//! - **honest sessions** driven through the ordinary [`FleetClient`]
//!   API — every one must verify, and none may ever be accused;
//! - **byzantine clients** speaking the raw wire protocol on their own
//!   sockets, each committing a seeded provable violation per session
//!   (equivocation, bit-identical duplicate, or out-of-range sender).
//!
//! The gates, enforced with `assert!` so CI fails loudly:
//!
//! 1. **Completeness** — every byzantine session ends with at least one
//!    [`EvidenceBundle`] that `verify_bundle` accepts, and every
//!    *attributable* violation (equivocation, out-of-range) is pinned
//!    on the byzantine connection that committed it.
//! 2. **No-framing** — across every seed and shard count, no bundle
//!    ever attributes an honest connection; identical duplicates
//!    (which an at-least-once network can produce without malice)
//!    accuse nobody.
//! 3. **Forgery rejection** — every emitted bundle, bit-flipped in
//!    body or tag, fails `verify_bundle`.
//!
//! Each bundle the server retains is also written to
//! `EVIDENCE_<k>_<i>.bin` (gamma-coded, self-contained) when
//! `REFEREE_EVIDENCE_DIR` names a directory — CI uploads these as
//! artifacts, and `verify_bundle` can re-check them offline with
//! nothing but the base key.
//!
//! Run: `cargo run --release --example byzantine_fleet`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use referee_one_round::protocol::easy::EdgeCountProtocol;
use referee_one_round::protocol::evidence::{
    verify_bundle, EvidenceBundle, ProvableError, SessionParams,
};
use referee_one_round::protocol::referee::local_phase;
use referee_one_round::protocol::{BitWriter, Message};
use referee_simnet::{Envelope, SessionId};
use referee_wirenet::{
    decode_frame, encode_frame, encode_wire_frame, AuthKey, FleetClient, FleetServer, FrameKind,
};
use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const SEED: u64 = 0xbad_c0de;
const BYZ_SESSIONS_PER_CONN: usize = 12;
const BYZ_CONNS: usize = 2;
const HONEST_SESSIONS: usize = 24;

/// Blocking raw-socket read: accumulate bytes until one frame decodes.
fn read_raw_frame(
    stream: &mut TcpStream,
    key: &AuthKey,
    buf: &mut Vec<u8>,
) -> (FrameKind, Envelope) {
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut chunk = [0u8; 4096];
    loop {
        if let Ok(Some(d)) = decode_frame(key, buf) {
            buf.drain(..d.consumed);
            return (d.kind, d.envelope);
        }
        let k = stream.read(&mut chunk).expect("read from server");
        assert!(k > 0, "server closed the connection");
        buf.extend_from_slice(&chunk[..k]);
    }
}

fn msg(bits: u64, width: u32) -> Message {
    let mut w = BitWriter::new();
    w.write_bits(bits, width);
    Message::from_writer(w)
}

/// One byzantine client: raw handshake, then `BYZ_SESSIONS_PER_CONN`
/// sessions each committing one seeded violation. Returns the
/// connection id and, per session, the violation and the bundles the
/// server shipped back before the verdict.
fn run_byzantine_conn(
    server: &FleetServer,
    base: &AuthKey,
    n: usize,
    session0: u64,
    rng: &mut StdRng,
) -> (u32, Vec<(u64, ProvableError, Vec<EvidenceBundle>)>) {
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut buf = Vec::new();
    let (kind, hello) = read_raw_frame(&mut stream, base, &mut buf);
    assert_eq!(kind, FrameKind::Hello);
    let conn = hello.from;
    let key = base.derive(u64::from(conn));

    let mut outcomes = Vec::new();
    for s in 0..BYZ_SESSIONS_PER_CONN as u64 {
        let session = SessionId(session0 + s);
        let announce =
            Envelope { session, round: 0, from: 0, to: 0, payload: msg(n as u64, 32) };
        stream.write_all(&encode_wire_frame(&key, FrameKind::Announce, &announce)).unwrap();

        let uplink =
            |from: u32, payload: Message| Envelope { session, round: 1, from, to: 0, payload };
        let violation = match rng.gen_range(0u32..3) {
            0 => {
                // Equivocation: sender 1 speaks twice, differently.
                stream.write_all(&encode_frame(&key, &uplink(1, msg(3, 5)))).unwrap();
                stream.write_all(&encode_frame(&key, &uplink(1, msg(9, 5)))).unwrap();
                ProvableError::Equivocation
            }
            1 => {
                // Bit-identical duplicate: provable, but accuses nobody.
                let frame = encode_frame(&key, &uplink(1, msg(3, 5)));
                stream.write_all(&frame).unwrap();
                stream.write_all(&frame).unwrap();
                ProvableError::DuplicateSender
            }
            _ => {
                // Out-of-range sender.
                let stray = n as u32 + rng.gen_range(1u32..9);
                stream.write_all(&encode_frame(&key, &uplink(stray, msg(3, 5)))).unwrap();
                ProvableError::OutOfRangeSender
            }
        };

        // Every violation above poisons the session: the referee judges
        // fast, shipping evidence (FIFO per connection) ahead of the
        // verdict.
        let mut bundles = Vec::new();
        loop {
            let (kind, env) = read_raw_frame(&mut stream, &key, &mut buf);
            match kind {
                FrameKind::Evidence => {
                    bundles.push(EvidenceBundle::decode(&env.payload).expect("bundle decodes"));
                }
                FrameKind::Verdict => break,
                other => panic!("unexpected {other:?} frame awaiting the verdict"),
            }
        }
        outcomes.push((session.0, violation, bundles));
    }
    (conn, outcomes)
}

fn main() {
    let evidence_dir = std::env::var("REFEREE_EVIDENCE_DIR").ok();
    let g = referee_one_round::graph::generators::grid(2, 3);
    let n = g.n();
    let messages = local_phase(&EdgeCountProtocol, &g);
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut total_bundles = 0usize;
    let mut total_attributed = 0usize;
    let mut dumped = 0usize;

    for &k in &[1usize, 2, 4, 8] {
        let key = AuthKey::from_seed(SEED ^ k as u64);
        let server = FleetServer::spawn_sharded(key, k).expect("bind loopback");

        // Byzantine population first (ids disjoint from the honest ids).
        let mut byz_conns = HashSet::new();
        let mut outcomes = Vec::new();
        for c in 0..BYZ_CONNS {
            let (conn, runs) = run_byzantine_conn(
                &server,
                &key,
                n,
                (1000 * (c as u64 + 1)) + k as u64 * 100_000,
                &mut rng,
            );
            byz_conns.insert(conn);
            outcomes.extend(runs);
        }

        // Honest population: every session must verify.
        let client = FleetClient::connect(server.addr(), 2, key).expect("connect");
        for i in 0..HONEST_SESSIONS {
            let arrivals = messages.iter().cloned().enumerate().map(|(j, m)| (j as u32 + 1, m));
            client
                .verify_session(SessionId(i as u64), n, arrivals)
                .unwrap_or_else(|e| panic!("honest session {i} rejected at k={k}: {e}"));
        }

        // Gate 1: completeness. Every byzantine session produced at
        // least one bundle, every bundle verifies standalone, and the
        // attributable violations name the byzantine connection.
        for (session, violation, bundles) in &outcomes {
            assert!(
                !bundles.is_empty(),
                "k={k}: byzantine session {session} ({violation:?}) produced no evidence"
            );
            let params = SessionParams { session: *session, n: n as u32, round_cap: 1 };
            for bundle in bundles {
                assert_eq!(bundle.error, *violation, "k={k} session {session}");
                let att = verify_bundle(key.mac_key(), &params, bundle)
                    .unwrap_or_else(|e| panic!("k={k} session {session}: bundle fails: {e}"));
                if violation.attributable() {
                    let culprit = att.culprit.expect("attributable violation");
                    assert!(
                        byz_conns.contains(&culprit),
                        "k={k} session {session}: accused {culprit} is not byzantine — FRAMING"
                    );
                    total_attributed += 1;
                } else {
                    assert_eq!(att.culprit, None, "a duplicate must accuse nobody");
                }
            }
            total_bundles += bundles.len();
        }

        // Gate 2: no-framing, server-side. Every retained bundle's
        // accused (if any) is a byzantine connection.
        let retained = server.evidence();
        for bundle in &retained {
            if let Some(accused) = bundle.accused {
                assert!(
                    byz_conns.contains(&accused),
                    "k={k}: server log accuses honest connection {accused} — FRAMING"
                );
            }
        }

        // Gate 3: forgery rejection. Bit-flip every bundle in body and
        // tag; both mutations must fail verification.
        for (session, _, bundles) in &outcomes {
            let params = SessionParams { session: *session, n: n as u32, round_cap: 1 };
            for bundle in bundles {
                let mut body_flip = bundle.clone();
                let last = body_flip.records[0].body.len() - 1;
                body_flip.records[0].body[last] ^= 0x01;
                assert!(
                    verify_bundle(key.mac_key(), &params, &body_flip).is_err(),
                    "k={k} session {session}: body-flipped bundle verified"
                );
                let mut tag_flip = bundle.clone();
                tag_flip.records[0].tag ^= 0x8000_0000;
                assert!(
                    verify_bundle(key.mac_key(), &params, &tag_flip).is_err(),
                    "k={k} session {session}: tag-flipped bundle verified"
                );
            }
        }

        // Artifact dump: self-contained bundles, re-verifiable offline.
        if let Some(dir) = &evidence_dir {
            for bundle in &retained {
                let path = format!("{dir}/EVIDENCE_{k}_{dumped}.bin");
                std::fs::write(&path, bundle.to_bytes())
                    .unwrap_or_else(|e| panic!("writing {path}: {e}"));
                dumped += 1;
            }
        }

        let stats = server.stop();
        println!(
            "k={k}: {} byzantine sessions, {} honest sessions, {} bundles \
             (server logged {}), 0 framings",
            outcomes.len(),
            HONEST_SESSIONS,
            outcomes.iter().map(|(_, _, b)| b.len()).sum::<usize>(),
            stats.evidence_bundles,
        );
        assert!(stats.evidence_bundles >= outcomes.len() as u64);
    }

    println!(
        "byzantine_fleet: {total_bundles} bundles verified, {total_attributed} attributed, \
         {dumped} dumped, 0 framings / 100% completeness"
    );
}
