//! A 1200-session fleet verified by the **sharded referee service** —
//! the PR 3 acceptance demo.
//!
//! Phase 1: a `FleetServer` in sharded mode (4 shard workers) assembles
//! and verifies 1200 sessions streamed over 8 multiplexed TCP
//! connections. Every verdict carries a keyed digest of the assembled
//! message vector, cross-checked against the locally computed vector —
//! so the referee provably assembled *exactly* what each session sent,
//! with shard partials exchanged as MAC'd wire frames.
//!
//! Phase 2: deliberate wire corruption (one bit flipped in every third
//! frame, after MAC computation) against a 2-shard server — every
//! tampered frame is MAC-rejected at the router, affected sessions fail
//! closed, and zero corrupted sessions are accepted.
//!
//! Run: `cargo run --release --example sharded_fleet`

use rand::rngs::StdRng;
use rand::SeedableRng;
use referee_one_round::prelude::*;
use referee_one_round::protocol::easy::EdgeCountProtocol;
use referee_one_round::protocol::referee::local_phase;
use referee_simnet::{Scheduler, SessionId};
use referee_wirenet::{vector_digest, AuthKey, FleetClient, FleetServer, TamperConfig};

fn fleet_graphs(count: usize, seed: u64) -> Vec<LabelledGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|i| generators::gnp(10 + i % 24, 0.2, &mut rng)).collect()
}

fn main() {
    let sessions = 1200usize;
    let shards = 4usize;
    let conns = 8usize;
    let key = AuthKey::from_seed(2013);
    let graphs = fleet_graphs(sessions, 2013);
    let protocol = EdgeCountProtocol;

    // ---- Phase 1: honest fleet, digests cross-checked -----------------
    let server = FleetServer::spawn_sharded(key, shards).expect("bind loopback");
    let client = FleetClient::connect(server.addr(), conns, key).expect("connect");
    println!(
        "phase 1: {sessions} sessions over {conns} TCP connections, verified by \
         {shards} referee shards at {}",
        server.addr()
    );

    let scheduler = Scheduler::new(8, 8);
    let t0 = std::time::Instant::now();
    let digests: Vec<u64> = scheduler.run_indexed(sessions, |i| {
        let g = &graphs[i];
        let arrivals =
            local_phase(&protocol, g).into_iter().enumerate().map(|(j, m)| (j as u32 + 1, m));
        client
            .verify_session(SessionId(i as u64), g.n(), arrivals)
            .expect("honest session verifies")
    });
    let wall = t0.elapsed().as_secs_f64();

    for (i, digest) in digests.iter().enumerate() {
        let messages = local_phase(&protocol, &graphs[i]);
        assert_eq!(
            *digest,
            vector_digest(&key, &messages),
            "session {i}: the referee assembled a different vector than was sent"
        );
    }

    let client_stats = client.metrics();
    let server_stats = server.stop();
    assert_eq!(server_stats.verdict_frames as usize, sessions);
    assert_eq!(server_stats.partial_frames as usize, sessions * (shards - 1));
    assert_eq!(server_stats.mac_rejects, 0);
    assert_eq!(client_stats.mac_rejects, 0);
    println!("  all {sessions} verdict digests match the locally computed vectors ✓");
    println!(
        "  {} cross-shard partial frames exchanged (MAC'd, {} per session) ✓",
        server_stats.partial_frames,
        shards - 1
    );
    println!("  client: {client_stats}");
    println!("  server: {server_stats}");
    println!("  wall {wall:.3}s ≈ {:.0} sessions/s verified by shards", sessions as f64 / wall);

    // ---- Phase 2: wire corruption, zero undetected --------------------
    let corrupt_sessions = 64usize;
    let server = FleetServer::spawn_sharded(key, 2).expect("bind loopback");
    let client = FleetClient::connect(server.addr(), corrupt_sessions, key)
        .expect("connect")
        .with_tamper(TamperConfig { flip_every: 3 });
    println!(
        "\nphase 2: {corrupt_sessions} sessions, one connection each, 2 shards, \
         every 3rd frame corrupted on the wire"
    );

    let mut failed_closed = 0usize;
    let mut undetected = 0usize;
    for (i, g) in graphs.iter().take(corrupt_sessions).enumerate() {
        let messages = local_phase(&protocol, g);
        let arrivals = messages.iter().cloned().enumerate().map(|(j, m)| (j as u32 + 1, m));
        match client.verify_session(SessionId(i as u64), g.n(), arrivals) {
            Err(_) => failed_closed += 1,
            Ok(digest) => {
                // Only possible if no tampered frame hit this session's
                // connection — the digest must then pin the clean vector.
                if digest != vector_digest(&key, &messages) {
                    undetected += 1;
                }
            }
        }
    }

    let client_stats = client.metrics();
    let server_stats = server.stop();
    assert!(client_stats.tampered > 0, "tamper hook never fired");
    assert!(server_stats.mac_rejects > 0, "no corruption ever reached MAC verification");
    assert_eq!(undetected, 0, "a corrupted session was accepted");
    println!(
        "  {} frames tampered; {} connections poisoned by MAC verification; \
         {failed_closed}/{corrupt_sessions} sessions failed closed ✓",
        client_stats.tampered, server_stats.mac_rejects
    );
    println!("  zero corrupted sessions accepted (0 undetected) ✓");
    println!("  server: {server_stats}");

    println!("\nsharded fleet demo completed ✓");
}
