//! Cross-crate integration tests for the extension layer (E18–E25):
//! adaptive rounds vs the one-round protocol, the public-coin sketch
//! suite vs exact reconstruction, and the generalized diameter
//! reduction vs the paper's t = 3 instance.

use rand::{rngs::StdRng, SeedableRng};
use referee_one_round::prelude::*;
use referee_one_round::reductions::oracle::DiameterOracle;

/// The adaptive (unknown-k, multi-round) and classic (known-k,
/// one-round) protocols must produce identical reconstructions.
#[test]
fn adaptive_and_oneround_agree_across_families() {
    let mut rng = StdRng::seed_from_u64(700);
    let graphs = vec![
        generators::random_tree(60, &mut rng),
        generators::grid(7, 9),
        generators::random_apollonian(50, &mut rng).unwrap(),
        generators::random_k_degenerate(40, 4, 0.85, &mut rng),
        generators::petersen(),
        LabelledGraph::new(5),
    ];
    for g in graphs {
        let k = algo::degeneracy_ordering(&g).degeneracy.max(1);
        let one_round = run_protocol(&DegeneracyProtocol::new(k), &g)
            .output
            .unwrap()
            .graph()
            .expect("k = degeneracy always accepts");
        let (adaptive, stats, k_final) = adaptive_reconstruct(&g);
        let adaptive = adaptive.unwrap();
        assert_eq!(one_round, adaptive, "reconstructions differ");
        assert_eq!(adaptive, g);
        assert!(k_final >= k || g.m() == 0, "k_final {k_final} < degeneracy {k}");
        assert!(stats.rounds <= (g.n().max(2) as f64).log2() as usize + 2);
    }
}

/// Everything the sketch suite reports must match what the referee
/// could compute after an exact Theorem 5 reconstruction.
#[test]
fn sketch_suite_consistent_with_reconstruction() {
    let mut rng = StdRng::seed_from_u64(701);
    for trial in 0..8u64 {
        let g = generators::random_k_degenerate(30, 3, 0.7, &mut rng);
        let rebuilt = run_protocol(&DegeneracyProtocol::new(3), &g)
            .output
            .unwrap()
            .graph()
            .expect("3-degenerate by construction");
        let seed = 9000 + trial;
        assert_eq!(
            sketch_connectivity(&g, seed),
            algo::is_connected(&rebuilt),
            "trial {trial}: connectivity"
        );
        assert_eq!(
            sketch_bipartiteness(&g, seed),
            algo::is_bipartite(&rebuilt),
            "trial {trial}: bipartiteness"
        );
        assert_eq!(
            sketch_edge_connectivity(&g, seed, 2),
            algo::edge_connectivity(&rebuilt).min(2),
            "trial {trial}: λ"
        );
    }
}

/// At t = 3 the generalized reduction must coincide with the paper's
/// Algorithm 2 instance (same gadget, same answers).
#[test]
fn diameter_t_reduction_specializes_to_paper() {
    let mut rng = StdRng::seed_from_u64(702);
    let g = generators::gnp(10, 0.35, &mut rng);
    let paper = DiameterReduction::new(DiameterOracle);
    let generalized = DiameterTReduction::new(DiameterTOracle { thresh: 3 }, 3);
    let a = run_protocol(&paper, &g).output.unwrap();
    let b = run_protocol(&generalized, &g).output.unwrap();
    assert_eq!(a, b);
    assert_eq!(a, g);
}

/// The §I.A chain end-to-end: for every planar-hierarchy generator, the
/// degeneracy protocol at k = measured treewidth must also accept
/// (degeneracy ≤ treewidth), and the tree decomposition must validate.
#[test]
fn treewidth_chain_end_to_end() {
    let mut rng = StdRng::seed_from_u64(703);
    let graphs = vec![
        generators::random_outerplanar(12, &mut rng).unwrap(),
        generators::random_series_parallel(12, &mut rng).unwrap(),
        generators::random_apollonian(12, &mut rng).unwrap(),
        generators::wheel(10).unwrap(),
    ];
    for g in graphs {
        let tw = algo::treewidth_exact(&g);
        let order = algo::min_fill_order(&g);
        let td = algo::decomposition_from_order(&g, &order.order);
        td.validate(&g).expect("decomposition valid");
        assert!(td.width() >= tw);
        let r = run_protocol(&DegeneracyProtocol::new(tw.max(1)), &g).output.unwrap();
        assert_eq!(r.graph().expect("degeneracy ≤ treewidth accepts"), g);
    }
}

/// Biconnectivity + mincut agree on what a single failure can break:
/// λ(G) = 1 exactly when a bridge exists (for connected G).
#[test]
fn failure_analysis_substrates_agree() {
    let mut rng = StdRng::seed_from_u64(704);
    for _ in 0..15 {
        let g = generators::gnp(18, 0.15, &mut rng);
        if !algo::is_connected(&g) {
            continue;
        }
        let has_bridge = !algo::bridges(&g).is_empty();
        let lambda = algo::edge_connectivity(&g);
        assert_eq!(lambda == 1, has_bridge, "{g:?}");
        assert_eq!(lambda >= 2, algo::is_two_edge_connected(&g), "{g:?}");
    }
}

/// Corrupted sketch-suite messages must decode to errors, not silently
/// wrong verdicts.
#[test]
fn sketch_protocols_reject_malformed_messages() {
    let g = generators::grid(3, 3);
    let n = g.n();
    let conn = SketchConnectivityProtocol::new(1);
    let bip = SketchBipartitenessProtocol::new(1);
    let kcp = SketchKConnectivityProtocol::new(1, 2);
    // Truncated / empty messages.
    assert!(conn.global(n, &vec![Message::empty(); n]).is_err());
    assert!(bip.global(n, &vec![Message::empty(); n]).is_err());
    assert!(kcp.global(n, &vec![Message::empty(); n]).is_err());
    // Wrong count.
    let msgs = referee_one_round::protocol::referee::local_phase(&conn, &g);
    assert!(conn.global(n, &msgs[..n - 1]).is_err());
}

/// Subgraph detection generalizes the paper's two hard patterns: the
/// generic detector, the specialized detectors, and the gadget
/// constructions must all tell the same story.
#[test]
fn generic_subgraph_detector_matches_gadget_semantics() {
    use referee_one_round::reductions::gadgets::{square_gadget, triangle_gadget};
    let mut rng = StdRng::seed_from_u64(705);
    let c3 = generators::complete(3);
    let c4 = generators::cycle(4).unwrap();
    let g = generators::random_square_free(12, &mut rng);
    for s in 1..=6u32 {
        for t in (s + 1)..=6 {
            let sq = square_gadget(&g, s, t);
            assert_eq!(algo::has_subgraph(&sq, &c4), g.has_edge(s, t), "square s={s},t={t}");
        }
    }
    let b = generators::random_balanced_bipartite(12, 0.3, &mut rng);
    for s in 1..=6u32 {
        for t in (s + 1)..=6 {
            let tri = triangle_gadget(&b, s, t);
            assert_eq!(algo::has_subgraph(&tri, &c3), b.has_edge(s, t), "tri s={s},t={t}");
        }
    }
}

/// The one-call census agrees with the individual protocols and with
/// centralized ground truth on structured fabrics.
#[test]
fn sketch_census_cross_checks() {
    let g = generators::grid(5, 5);
    let c = referee_one_round::prelude::sketch_census(&g, 2011, 2);
    assert!(c.connected && c.bipartite);
    assert_eq!(c.edge_connectivity, 2);
    assert!(c.forest_complete);
    assert_eq!(c.forest_edges.len(), 24);
    for e in &c.forest_edges {
        assert!(g.has_edge(e.0, e.1));
    }

    let mut degraded = g.clone();
    degraded.remove_edge(1, 2).unwrap();
    degraded.remove_edge(1, 6).unwrap(); // vertex 1 cut off
    let c = referee_one_round::prelude::sketch_census(&degraded, 2011, 2);
    assert!(!c.connected);
    assert_eq!(c.edge_connectivity, 0);
}

/// The Lemma 1 story in one test. The exact (deg, ΣID) fingerprint is
/// *injective* on all graphs at n = 5 (small-case search cannot witness
/// Lemma 1 — only the counting bound can, with its first crossover near
/// n = 30; see E6). A coarsened fingerprint — the same sums mod 4 —
/// collides immediately, exhibiting the pigeonhole in miniature.
#[test]
fn fingerprint_injective_small_but_coarse_version_collides() {
    use referee_one_round::protocol::easy::NeighbourhoodSumProtocol;
    use referee_one_round::protocol::{BitWriter, NodeView as NV};
    use referee_one_round::reductions::find_collision;

    // Exact fingerprint: no collision among all 1024 graphs at n = 5.
    assert!(find_collision(
        &NeighbourhoodSumProtocol,
        referee_one_round::graph::enumerate::all_graphs(5),
    )
    .is_none());

    // Coarse fingerprint (ΣID mod 2 — one bit per node): 2⁵ = 32
    // possible message vectors for 2¹⁰ = 1024 graphs, so the pigeonhole
    // FORCES a collision. This is Lemma 1's mechanism in miniature.
    struct Coarse;
    impl OneRoundProtocol for Coarse {
        type Output = ();
        fn name(&self) -> String {
            "ΣID mod 2".into()
        }
        fn local(&self, view: NV<'_>) -> Message {
            let mut w = BitWriter::new();
            let sum: u64 = view.neighbours.iter().map(|&v| v as u64).sum();
            w.write_bits(sum % 2, 1);
            Message::from_writer(w)
        }
        fn global(&self, _n: usize, _messages: &[Message]) {}
    }
    let (a, b) = find_collision(&Coarse, referee_one_round::graph::enumerate::all_graphs(5))
        .expect("5 bits total cannot describe 1024 graphs");
    assert_ne!(a, b);
}

/// Chordal shortcut vs general machinery on the Theorem 5 families.
#[test]
fn chordal_shortcut_agrees_with_general_oracles() {
    let mut rng = StdRng::seed_from_u64(706);
    for k in 1..=3usize {
        let g = generators::k_tree(12, k, &mut rng);
        assert!(algo::is_chordal(&g));
        assert_eq!(algo::chordal_treewidth(&g), Some(algo::treewidth_exact(&g)));
        assert_eq!(algo::chordal_max_clique(&g), Some(algo::clique_number(&g)));
        // and the colouring payoff: χ = ω = k + 1 on chordal graphs
        assert_eq!(algo::chromatic_number_exact(&g), k + 1);
        assert!(algo::degeneracy_coloring(&g).num_colours <= k + 1);
    }
    assert_eq!(algo::chordal_treewidth(&generators::cycle(6).unwrap()), None);
}
