//! The sharded referee: incremental, mergeable message assembly.
//!
//! §I.B observes that the referee "can wait until it has received one
//! message from every vertex (this only requires that the referee knows
//! the size of the network)". A single mailbox doing that wait is the
//! scale-out bottleneck of the whole system: every arrival funnels into
//! one assembly step. This module splits the wait across **shards**:
//!
//! * [`shard_of`]/[`shard_range`] — the balanced contiguous ID partition
//!   (the same arithmetic as §IV's partition argument in
//!   `referee_core::partition`): shard `i` of `k` owns a contiguous
//!   range of node IDs, every ID owned by exactly one shard.
//! * [`RefereeShard`] — ingests arrivals for its range only, in any
//!   order, classifying each as fresh, duplicate, or out of range.
//! * [`PartialState`] — a shard's serializable summary. `merge` is
//!   **commutative and associative**, so any merge tree over the shards
//!   of a partition — a left fold, a binary tree, whatever a cross-host
//!   topology dictates — yields the same [`finish`](PartialState::finish)
//!   verdict, bit for bit.
//!
//! The monolithic
//! [`assemble_from_arrivals`](crate::referee::assemble_from_arrivals)
//! is now a thin wrapper: one shard covering `1..=n`, finished
//! directly. Equivalence between any shard count and the monolithic
//! path is pinned by property tests.
//!
//! The [`multiround`] submodule lifts the same split to multi-round
//! protocols: a [`RoundShard`](multiround::RoundShard) collects one
//! round's uplinks for its range, and per-round
//! [`RoundPartialState`](multiround::RoundPartialState)s merge into the
//! exact input `referee_step` would have seen —
//! [`run_multiround`](crate::multiround::run_multiround) is the
//! one-shard special case of
//! [`run_multiround_sharded`](multiround::run_multiround_sharded).
//!
//! Two further submodules serve cross-host deployments of this split:
//! [`placement`] assigns shards to hosts (the same balanced-contiguous
//! arithmetic one level up, plus static maps and loss-remap), and
//! [`replay`] is the coordinator-side journal/resume machinery that
//! rebuilds a lost host's volatile shard state bit-for-bit.
//!
//! # Canonical verdicts
//!
//! A sequential assembler can report the *first* fault in arrival order;
//! a sharded one cannot (shards see disjoint sub-streams, merge order is
//! arbitrary). Verdicts are therefore **canonical** — independent of both
//! arrival order and merge shape:
//!
//! 1. an out-of-range sender, smallest offender first
//!    ([`DecodeError::OutOfRange`]);
//! 2. then a duplicated sender, smallest offender first
//!    ([`DecodeError::Inconsistent`]);
//! 3. then a missing node, smallest first ([`DecodeError::Inconsistent`]);
//! 4. otherwise the ID-indexed message vector `Γ^l(G)`.

pub mod multiround;
pub mod placement;
pub mod replay;

use crate::{DecodeError, Message};
use referee_graph::VertexId;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;

/// The contiguous node-ID range `lo..=hi` owned by one shard (1-based,
/// inclusive; empty when `lo > hi`, which happens for some shards when
/// `shards > n`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRange {
    /// First owned ID.
    pub lo: VertexId,
    /// Last owned ID.
    pub hi: VertexId,
}

impl ShardRange {
    /// Whether `v` belongs to this shard.
    pub fn contains(&self, v: VertexId) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Number of IDs owned.
    pub fn len(&self) -> usize {
        if self.lo > self.hi {
            0
        } else {
            (self.hi - self.lo + 1) as usize
        }
    }

    /// Whether the shard owns no IDs.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }
}

impl std::fmt::Display for ShardRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            write!(f, "∅")
        } else {
            write!(f, "{}..={}", self.lo, self.hi)
        }
    }
}

/// The shard owning node `v` under a balanced `shards`-way contiguous
/// partition of `1..=n`: `⌊(v−1)·shards / n⌋` — the same balanced-parts
/// arithmetic as §IV's partition-connectivity argument.
///
/// Panics if `v` is not in `1..=n` or `shards == 0` (route validated
/// traffic only; see [`route_arrival`] for raw arrivals).
pub fn shard_of(n: usize, shards: usize, v: VertexId) -> usize {
    assert!(shards >= 1, "need at least one shard");
    assert!(v >= 1 && v as usize <= n, "vertex {v} not in 1..={n}");
    ((v as usize - 1) * shards) / n
}

/// Where to route an *unvalidated* arrival: in-range senders go to their
/// [`shard_of`] owner; out-of-range senders (0 or `> n`, which any shard
/// records faithfully) go to shard 0.
pub fn route_arrival(n: usize, shards: usize, sender: VertexId) -> usize {
    if sender == 0 || sender as usize > n {
        0
    } else {
        shard_of(n, shards, sender)
    }
}

/// The ID range `{v : shard_of(n, shards, v) == index}` — the exact
/// preimage of [`shard_of`], so the ranges of `0..shards` partition
/// `1..=n` (pinned by tests).
pub fn shard_range(n: usize, shards: usize, index: usize) -> ShardRange {
    assert!(shards >= 1, "need at least one shard");
    assert!(index < shards, "shard {index} out of 0..{shards}");
    // ⌊(v−1)k/n⌋ ≥ i  ⇔  (v−1)k ≥ i·n  ⇔  v ≥ ⌈i·n/k⌉ + 1.
    let lo = (index * n).div_ceil(shards) + 1;
    let hi = ((index + 1) * n).div_ceil(shards);
    ShardRange { lo: lo as VertexId, hi: hi as VertexId }
}

/// How [`RefereeShard::ingest`] classified one arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Arrival {
    /// First message from this sender.
    Fresh,
    /// The sender already has a recorded message. `identical` says
    /// whether the payloads agree — callers choose the policy (the
    /// monolithic assembler rejects *any* duplicate via
    /// [`RefereeShard::note_duplicate`]; the session runtime absorbs
    /// identical re-deliveries as at-least-once noise).
    Duplicate {
        /// Payload equals the recorded original.
        identical: bool,
    },
    /// Sender 0 or `> n`: recorded in the partial state, surfaces as the
    /// canonical [`DecodeError::OutOfRange`] verdict at finish.
    OutOfRange,
}

/// A mergeable, serializable summary of the arrivals one shard (or any
/// merged set of shards) has absorbed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartialState {
    n: usize,
    /// Recorded messages, keyed by sender (all in `1..=n`).
    slots: BTreeMap<VertexId, Message>,
    /// Smallest out-of-range sender observed.
    oor_min: Option<VertexId>,
    /// Smallest duplicated sender observed.
    dup_min: Option<VertexId>,
}

fn min_opt(a: Option<VertexId>, b: Option<VertexId>) -> Option<VertexId> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

impl PartialState {
    /// An empty summary for a size-`n` network.
    pub fn new(n: usize) -> PartialState {
        PartialState { n, slots: BTreeMap::new(), oor_min: None, dup_min: None }
    }

    /// The network size this summary is for.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Distinct senders recorded so far.
    pub fn arrivals(&self) -> usize {
        self.slots.len()
    }

    /// Whether a fault (out-of-range or duplicated sender) has been
    /// recorded — the finish verdict is already known to be an error.
    pub fn poisoned(&self) -> bool {
        self.oor_min.is_some() || self.dup_min.is_some()
    }

    /// Record an out-of-range sender directly (min-tracked). Routers use
    /// this when they observe a stray arrival *after* the shard that
    /// would have recorded it already shipped its partial.
    pub fn note_out_of_range(&mut self, sender: VertexId) {
        self.oor_min = min_opt(self.oor_min, Some(sender));
    }

    /// Record a duplicated sender directly (min-tracked). An arrival for
    /// a shard whose partial already shipped is by definition a
    /// duplicate (the shard only ships once its range is fully
    /// recorded), so routers report it here.
    pub fn note_duplicate(&mut self, sender: VertexId) {
        self.dup_min = min_opt(self.dup_min, Some(sender));
    }

    /// The single-fault summary for a straggler behind an
    /// already-merged range partial: by definition a duplicate (in
    /// range) or a stray (out of range). Every deployment that reports
    /// post-commit stragglers — the in-process shard worker, the
    /// placement proxy, the placement sim — merges exactly this notice,
    /// so the fail-fast verdict cannot drift between them.
    pub fn poison_notice(n: usize, sender: VertexId) -> PartialState {
        let mut p = PartialState::new(n);
        if sender == 0 || sender as usize > n {
            p.note_out_of_range(sender);
        } else {
            p.note_duplicate(sender);
        }
        p
    }

    /// Fold `other` into `self`. Commutative and associative up to the
    /// [`finish`](PartialState::finish) verdict: a sender recorded on
    /// both sides is a duplicate (which message survives is immaterial —
    /// the duplicate verdict overrides the output).
    ///
    /// Errors if the two summaries describe different network sizes.
    pub fn merge(&mut self, other: PartialState) -> Result<(), DecodeError> {
        if self.n != other.n {
            return Err(DecodeError::Inconsistent(format!(
                "cannot merge partial states for n = {} and n = {}",
                self.n, other.n
            )));
        }
        self.oor_min = min_opt(self.oor_min, other.oor_min);
        self.dup_min = min_opt(self.dup_min, other.dup_min);
        for (sender, msg) in other.slots {
            match self.slots.entry(sender) {
                Entry::Vacant(e) => {
                    e.insert(msg);
                }
                Entry::Occupied(_) => self.note_duplicate(sender),
            }
        }
        Ok(())
    }

    /// The canonical verdict (see the module docs): out-of-range sender,
    /// then duplicate, then missing node — smallest offender first — else
    /// the complete ID-ordered message vector.
    pub fn finish(self) -> Result<Vec<Message>, DecodeError> {
        if let Some(v) = self.oor_min {
            return Err(DecodeError::OutOfRange(format!(
                "message from unknown node {v} (n = {})",
                self.n
            )));
        }
        if let Some(v) = self.dup_min {
            return Err(DecodeError::Inconsistent(format!("duplicate message from node {v}")));
        }
        let mut out = Vec::with_capacity(self.n);
        let mut slots = self.slots.into_iter();
        for want in 1..=self.n as VertexId {
            match slots.next() {
                Some((got, msg)) if got == want => out.push(msg),
                // Keys ascend, so a mismatch means `want` never arrived.
                _ => {
                    return Err(DecodeError::Inconsistent(format!(
                        "no message from node {want}"
                    )))
                }
            }
        }
        Ok(out)
    }

    /// Serialize into a [`Message`] (the payload cross-shard exchange
    /// ships — over `simnet` envelopes or MAC'd `wirenet` frames).
    ///
    /// Layout (MSB-first): `n:32`, out-of-range flag:1 (+ sender:32),
    /// duplicate flag:1 (+ sender:32), arrival count:32, then per
    /// arrival in ascending sender order: sender:32, payload bit
    /// length:32, payload bits.
    pub fn encode(&self) -> Message {
        let mut w = crate::BitWriter::new();
        w.write_bits(self.n as u64, 32);
        match self.oor_min {
            Some(v) => {
                w.push_bit(true);
                w.write_bits(v as u64, 32);
            }
            None => w.push_bit(false),
        }
        match self.dup_min {
            Some(v) => {
                w.push_bit(true);
                w.write_bits(v as u64, 32);
            }
            None => w.push_bit(false),
        }
        w.write_bits(self.slots.len() as u64, 32);
        for (sender, msg) in &self.slots {
            w.write_bits(*sender as u64, 32);
            w.write_bits(msg.len_bits() as u64, 32);
            msg.append_to(&mut w);
        }
        Message::from_writer(w)
    }

    /// Deserialize a summary produced by [`encode`](PartialState::encode),
    /// validating every field: the network size must equal `expected_n`,
    /// senders must be strictly ascending and in range, fault markers in
    /// range, and the bit stream must end exactly at the last payload —
    /// anything else (including any truncation) is a [`DecodeError`].
    pub fn decode(expected_n: usize, msg: &Message) -> Result<PartialState, DecodeError> {
        let mut r = msg.reader();
        let n = r.read_bits(32)? as usize;
        if n != expected_n {
            return Err(DecodeError::Inconsistent(format!(
                "partial state for n = {n}, expected n = {expected_n}"
            )));
        }
        let oor_min = if r.read_bit()? { Some(r.read_bits(32)? as VertexId) } else { None };
        let dup_min = if r.read_bit()? { Some(r.read_bits(32)? as VertexId) } else { None };
        if let Some(v) = oor_min {
            if v >= 1 && v as usize <= n {
                return Err(DecodeError::OutOfRange(format!(
                    "out-of-range marker names in-range node {v}"
                )));
            }
        }
        if let Some(v) = dup_min {
            if v == 0 || v as usize > n {
                return Err(DecodeError::OutOfRange(format!(
                    "duplicate marker names out-of-range node {v}"
                )));
            }
        }
        let count = r.read_bits(32)? as usize;
        if count > n {
            return Err(DecodeError::OutOfRange(format!("{count} arrivals for n = {n}")));
        }
        let mut slots = BTreeMap::new();
        let mut prev: VertexId = 0;
        for _ in 0..count {
            let sender = r.read_bits(32)? as VertexId;
            if sender <= prev || sender as usize > n {
                return Err(DecodeError::Invalid(format!(
                    "arrival senders must ascend within 1..={n}, got {sender} after {prev}"
                )));
            }
            prev = sender;
            let len_bits = r.read_bits(32)? as usize;
            if r.remaining() < len_bits {
                return Err(DecodeError::Truncated);
            }
            let mut w = crate::BitWriter::new();
            r.copy_bits_into(&mut w, len_bits)?;
            slots.insert(sender, Message::from_writer(w));
        }
        if !r.is_exhausted() {
            return Err(DecodeError::Invalid(format!(
                "{} trailing bits after the last arrival",
                r.remaining()
            )));
        }
        Ok(PartialState { n, slots, oor_min, dup_min })
    }
}

/// One shard of the referee's wait: accepts arrivals for its ID range,
/// accumulating a [`PartialState`].
#[derive(Debug, Clone)]
pub struct RefereeShard {
    index: usize,
    shards: usize,
    range: ShardRange,
    state: PartialState,
}

impl RefereeShard {
    /// Shard `index` of `shards` over a size-`n` network.
    pub fn new(n: usize, shards: usize, index: usize) -> RefereeShard {
        RefereeShard {
            index,
            shards,
            range: shard_range(n, shards, index),
            state: PartialState::new(n),
        }
    }

    /// This shard's position in the partition.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total shards in the partition.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The ID range this shard owns.
    pub fn range(&self) -> ShardRange {
        self.range
    }

    /// Whether every node in the shard's range has a recorded message
    /// (trivially true for empty ranges).
    pub fn is_complete(&self) -> bool {
        self.state.arrivals() == self.range.len()
    }

    /// Whether a fault has been recorded — the eventual verdict is
    /// already known to be an error, so waiting for more arrivals
    /// cannot change the outcome's `Ok`/`Err` shape.
    pub fn is_poisoned(&self) -> bool {
        self.state.poisoned()
    }

    /// The recorded message of `sender`, if any.
    pub fn message_for(&self, sender: VertexId) -> Option<&Message> {
        self.state.slots.get(&sender)
    }

    /// Absorb one arrival, classifying it (the caller picks the
    /// duplicate policy — see [`Arrival`]). Out-of-range senders are
    /// recorded no matter which shard they were routed to; an in-range
    /// sender owned by a *different* shard is a router bug and errors.
    pub fn ingest(
        &mut self,
        sender: VertexId,
        payload: Message,
    ) -> Result<Arrival, DecodeError> {
        if sender == 0 || sender as usize > self.state.n {
            self.state.note_out_of_range(sender);
            return Ok(Arrival::OutOfRange);
        }
        if !self.range.contains(sender) {
            return Err(DecodeError::Invalid(format!(
                "arrival from node {sender} routed to shard {}/{} owning {}",
                self.index, self.shards, self.range
            )));
        }
        match self.state.slots.entry(sender) {
            Entry::Vacant(e) => {
                e.insert(payload);
                Ok(Arrival::Fresh)
            }
            Entry::Occupied(e) => Ok(Arrival::Duplicate { identical: *e.get() == payload }),
        }
    }

    /// Record `sender` as duplicated (the monolithic assembler's policy
    /// for every [`Arrival::Duplicate`]).
    pub fn note_duplicate(&mut self, sender: VertexId) {
        self.state.note_duplicate(sender);
    }

    /// The shard's summary, ready to exchange and merge.
    pub fn into_partial(self) -> PartialState {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BitWriter;

    fn msg(value: u64, width: u32) -> Message {
        let mut w = BitWriter::new();
        w.write_bits(value, width);
        Message::from_writer(w)
    }

    #[test]
    fn ranges_partition_the_ids() {
        for n in [0usize, 1, 2, 3, 7, 10, 64, 100] {
            for k in 1..=9usize {
                let mut owners = vec![0usize; n];
                for i in 0..k {
                    let r = shard_range(n, k, i);
                    for v in r.lo..=r.hi {
                        owners[(v - 1) as usize] += 1;
                        assert_eq!(shard_of(n, k, v), i, "n={n} k={k} v={v}");
                    }
                }
                assert!(owners.iter().all(|&c| c == 1), "n={n} k={k}: {owners:?}");
            }
        }
    }

    #[test]
    fn ranges_are_balanced() {
        // No shard owns more than ⌈n/k⌉ + 1 IDs (the rounding slack the
        // §IV bound already budgets for).
        for n in [5usize, 16, 97, 1000] {
            for k in [1usize, 2, 3, 8] {
                for i in 0..k {
                    assert!(shard_range(n, k, i).len() <= n.div_ceil(k) + 1);
                }
            }
        }
    }

    #[test]
    fn single_shard_assembles_in_any_order() {
        let mut shard = RefereeShard::new(3, 1, 0);
        for v in [2u32, 3, 1] {
            assert_eq!(shard.ingest(v, msg(v as u64, 8)).unwrap(), Arrival::Fresh);
        }
        assert!(shard.is_complete());
        let messages = shard.into_partial().finish().unwrap();
        assert_eq!(messages, vec![msg(1, 8), msg(2, 8), msg(3, 8)]);
    }

    #[test]
    fn merge_tree_shape_is_immaterial() {
        let n = 10usize;
        let k = 4usize;
        let ingest_all = || -> Vec<PartialState> {
            (0..k)
                .map(|i| {
                    let mut s = RefereeShard::new(n, k, i);
                    let r = s.range();
                    for v in r.lo..=r.hi {
                        s.ingest(v, msg(v as u64, 16)).unwrap();
                    }
                    s.into_partial()
                })
                .collect()
        };
        // Left fold 0→3.
        let mut fold = PartialState::new(n);
        for p in ingest_all() {
            fold.merge(p).unwrap();
        }
        // Reverse fold with a pre-merged pair ((3·2)·(1·0)).
        let mut parts = ingest_all();
        let mut right = parts.pop().unwrap();
        right.merge(parts.pop().unwrap()).unwrap();
        let mut left = parts.pop().unwrap();
        left.merge(parts.pop().unwrap()).unwrap();
        right.merge(left).unwrap();
        assert_eq!(fold.finish().unwrap(), right.finish().unwrap());
    }

    #[test]
    fn canonical_verdict_precedence() {
        // Out-of-range beats duplicate beats missing, smallest first.
        let mut s = RefereeShard::new(4, 1, 0);
        s.ingest(2, msg(2, 4)).unwrap();
        s.ingest(2, msg(2, 4)).unwrap();
        s.note_duplicate(2);
        s.ingest(9, msg(9, 4)).unwrap();
        s.ingest(7, msg(7, 4)).unwrap();
        match s.into_partial().finish() {
            Err(DecodeError::OutOfRange(m)) => assert!(m.contains("node 7"), "{m}"),
            other => panic!("expected smallest out-of-range verdict, got {other:?}"),
        }

        let mut s = RefereeShard::new(4, 1, 0);
        for v in 1..=4u32 {
            s.ingest(v, msg(v as u64, 4)).unwrap();
        }
        s.ingest(3, msg(0, 4)).unwrap();
        s.note_duplicate(3);
        match s.into_partial().finish() {
            Err(DecodeError::Inconsistent(m)) => {
                assert!(m.contains("duplicate message from node 3"), "{m}")
            }
            other => panic!("expected duplicate verdict, got {other:?}"),
        }

        let mut s = RefereeShard::new(4, 1, 0);
        s.ingest(1, msg(1, 4)).unwrap();
        s.ingest(4, msg(4, 4)).unwrap();
        match s.into_partial().finish() {
            Err(DecodeError::Inconsistent(m)) => {
                assert!(m.contains("no message from node 2"), "{m}")
            }
            other => panic!("expected missing verdict, got {other:?}"),
        }
    }

    #[test]
    fn misrouted_arrival_is_a_router_bug() {
        let mut s = RefereeShard::new(10, 2, 0);
        assert!(s.range().contains(5));
        assert!(!s.range().contains(6));
        assert!(matches!(s.ingest(6, msg(0, 1)), Err(DecodeError::Invalid(_))));
    }

    #[test]
    fn duplicate_classification_is_content_based() {
        let mut s = RefereeShard::new(2, 1, 0);
        assert_eq!(s.ingest(1, msg(7, 8)).unwrap(), Arrival::Fresh);
        assert_eq!(s.ingest(1, msg(7, 8)).unwrap(), Arrival::Duplicate { identical: true });
        assert_eq!(s.ingest(1, msg(8, 8)).unwrap(), Arrival::Duplicate { identical: false });
        assert_eq!(s.message_for(1), Some(&msg(7, 8)));
    }

    #[test]
    fn encode_decode_round_trip() {
        let mut s = RefereeShard::new(6, 2, 1);
        let r = s.range();
        for v in r.lo..=r.hi {
            s.ingest(v, msg(v as u64 * 3, 10)).unwrap();
        }
        s.ingest(0, Message::empty()).unwrap();
        s.ingest(99, Message::empty()).unwrap();
        s.note_duplicate(4);
        let p = s.into_partial();
        let decoded = PartialState::decode(6, &p.encode()).unwrap();
        assert_eq!(decoded, p);
    }

    #[test]
    fn decode_rejects_wrong_n_and_garbage() {
        let p = PartialState::new(5);
        let enc = p.encode();
        assert!(matches!(PartialState::decode(6, &enc), Err(DecodeError::Inconsistent(_))));
        // Truncations never panic and never decode.
        let bits = enc.len_bits();
        for cut in 0..bits {
            let mut w = BitWriter::new();
            let mut rd = enc.reader();
            for _ in 0..cut {
                w.push_bit(rd.read_bit().unwrap());
            }
            assert!(PartialState::decode(5, &Message::from_writer(w)).is_err());
        }
    }

    #[test]
    fn empty_network_finishes_empty() {
        assert_eq!(PartialState::new(0).finish().unwrap(), Vec::<Message>::new());
        let shard = RefereeShard::new(0, 3, 2);
        assert!(shard.range().is_empty());
        assert!(shard.is_complete());
    }

    #[test]
    fn route_arrival_sends_strays_to_shard_zero() {
        assert_eq!(route_arrival(10, 4, 0), 0);
        assert_eq!(route_arrival(10, 4, 11), 0);
        assert_eq!(route_arrival(10, 4, 10), shard_of(10, 4, 10));
    }
}
