//! E29 (systems side): the sharded **multi-round** referee — 1/2/4/8
//! shards swept through both backends, running Borůvka connectivity.
//!
//! * **simnet**: `Scheduler::sweep_multi_round_sharded` — per-round
//!   shard states exchanging serialized `RoundPartialState`s through
//!   the transport before every `referee_step`; outcomes pinned against
//!   the monolithic multi-round sweep, exchange overhead in bits.
//! * **wirenet**: `FleetServer::spawn_multiround` — the server runs
//!   `referee_step` per round over its sharded uplink wait, streaming
//!   MAC'd downlinks back; verdicts pinned against in-process runs.
//!
//! Emits `BENCH_exp_multiround_shard.json` (sessions/s per shard count
//! per backend) for the bench trajectory.
//!
//! Run: `cargo run --release -p referee-bench --bin exp_multiround_shard`

use rand::rngs::StdRng;
use rand::SeedableRng;
use referee_bench::{render_table, section, write_bench_json, BenchRecord, Percentiles};
use referee_graph::{generators, LabelledGraph};
use referee_protocol::multiround::BoruvkaConnectivity;
use referee_simnet::{Scheduler, SessionId};
use referee_wirenet::{
    boruvka_connectivity_service, decode_bool_output, AuthKey, FleetClient, FleetServer, Stage,
};
use std::time::Instant;

fn fleet(count: usize, seed: u64) -> Vec<LabelledGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|i| generators::gnp(8 + i % 16, 0.2, &mut rng)).collect()
}

const CAP: usize = 64;

fn main() {
    println!("# E29: sharded multi-round referee — Borůvka connectivity, both backends");
    println!("# expectation: verdicts identical at every shard count (per-round merge is");
    println!("# commutative and associative); exchange overhead grows with rounds × k;");
    println!("# wire throughput is bounded by the per-round round trips.");

    let sessions = 600usize;
    let graphs = fleet(sessions, 2029);
    let scheduler = Scheduler::new(8, 8);
    let mut records: Vec<BenchRecord> = Vec::new();

    // ---- simnet: sharded multi-round sweeps vs the monolithic sweep ---
    section(&format!("simnet: {sessions} Borůvka sessions, scheduler 8×8"));
    let t0 = Instant::now();
    let mono = scheduler.sweep_multi_round(&BoruvkaConnectivity, &graphs, CAP, None);
    let mono_wall = t0.elapsed().as_secs_f64();
    assert_eq!(mono.aggregate.ok, sessions);

    let mut rows = vec![["shards", "ok", "rejected", "exchange KiB", "sess/s"]
        .into_iter()
        .map(String::from)
        .collect::<Vec<_>>()];
    rows.push(vec![
        "1 (monolithic)".into(),
        mono.aggregate.ok.to_string(),
        mono.aggregate.rejected.to_string(),
        "-".into(),
        format!("{:.0}", sessions as f64 / mono_wall),
    ]);
    for shards in [1usize, 2, 4, 8] {
        let t0 = Instant::now();
        let sweep = scheduler.sweep_multi_round_sharded(
            &BoruvkaConnectivity,
            &graphs,
            shards,
            CAP,
            None,
        );
        let wall = t0.elapsed().as_secs_f64();
        let exchange_bits: usize = sweep.reports.iter().map(|r| r.exchange_bits).sum();
        for (s, m) in sweep.reports.iter().zip(&mono.reports) {
            assert_eq!(
                s.outcome.as_ref().unwrap(),
                m.outcome.as_ref().unwrap(),
                "sharded multi-round outcome diverged at k={shards}"
            );
        }
        records.push(
            BenchRecord::new("simnet", shards, sessions as f64 / wall)
                .with_percentiles(Percentiles::from_hist(&sweep.aggregate.latency)),
        );
        rows.push(vec![
            shards.to_string(),
            sweep.aggregate.ok.to_string(),
            sweep.aggregate.rejected.to_string(),
            format!("{:.0}", exchange_bits as f64 / 8.0 / 1024.0),
            format!("{:.0}", sessions as f64 / wall),
        ]);
    }
    println!("{}", render_table(&rows));

    // ---- wirenet: the multi-round referee service ----------------------
    section(&format!("wirenet: {sessions}-session Borůvka fleets, sharded wire referee"));
    let key = AuthKey::from_seed(29);
    let truth: Vec<bool> = mono
        .reports
        .iter()
        .map(|r| *r.outcome.as_ref().unwrap().as_ref().unwrap().as_ref().unwrap())
        .collect();
    let mut rows =
        vec![["shards", "conns", "sess/s", "partials", "downlinks", "verdicts", "mac-rej"]
            .into_iter()
            .map(String::from)
            .collect::<Vec<_>>()];
    for shards in [1usize, 2, 4, 8] {
        let server = FleetServer::spawn_multiround(key, shards, boruvka_connectivity_service())
            .expect("bind");
        let conns = 8usize;
        let client = FleetClient::connect(server.addr(), conns, key).expect("connect");
        let t0 = Instant::now();
        let verdicts: Vec<bool> = scheduler.run_indexed(sessions, |i| {
            let out = client
                .run_multiround_session(
                    SessionId(i as u64),
                    &BoruvkaConnectivity,
                    &graphs[i],
                    CAP,
                )
                .expect("honest session completes");
            decode_bool_output(&out).expect("honest uplinks decode")
        });
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(verdicts, truth, "wire verdicts must pin the in-process sweep");
        let c = client.metrics();
        let s = server.stop();
        assert_eq!(s.mac_rejects, 0);
        assert_eq!(s.verdict_frames as usize, sessions);
        // Announce→verdict per session, stamped client-side.
        records.push(
            BenchRecord::new("wirenet", shards, sessions as f64 / wall)
                .with_percentiles(Percentiles::from_hist(c.stage(Stage::Verdict))),
        );
        rows.push(vec![
            shards.to_string(),
            conns.to_string(),
            format!("{:.0}", sessions as f64 / wall),
            s.partial_frames.to_string(),
            s.downlink_frames.to_string(),
            s.verdict_frames.to_string(),
            s.mac_rejects.to_string(),
        ]);
    }
    println!("{}", render_table(&rows));

    let json = write_bench_json("exp_multiround_shard", &records).expect("write BENCH json");
    println!("\nmachine-readable results: {}", json.display());
    println!("sharded multi-round referee experiments completed ✓");
}
