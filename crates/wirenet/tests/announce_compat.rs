//! Legacy announce compatibility: a **bare 32-bit-n** `Announce` (the
//! exact wire bytes pre-catalog clients sent) must keep selecting
//! catalog entry 0 and produce bit-for-bit the verdict a name-selected
//! entry-0 session gets — while malformed announces (truncated name,
//! name no catalog can hold) fail closed instead of hanging.

use referee_protocol::combinators::OneRoundAsMultiRound;
use referee_protocol::easy::EdgeCountProtocol;
use referee_protocol::multiround::BoruvkaConnectivity;
use referee_protocol::{BitWriter, DecodeError, Message};
use referee_simnet::{Envelope, SessionId};
use referee_wirenet::{
    decode_frame, encode_bool_output, encode_wire_frame, AuthKey, FleetClient, FleetServer,
    FrameKind, ServiceCatalog, MAX_SERVICE_NAME_BYTES,
};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

const CAP: usize = 64;

fn encode_count(out: &Result<usize, DecodeError>) -> Message {
    let mut w = BitWriter::new();
    match out {
        Ok(v) => {
            w.push_bit(true);
            w.write_bits(*v as u64, 32);
        }
        Err(_) => w.push_bit(false),
    }
    Message::from_writer(w)
}

/// Entry 0 is Borůvka — the "legacy single-service deployment" a bare
/// announce must keep reaching; entry 1 exists so selection is real.
fn test_catalog() -> ServiceCatalog {
    ServiceCatalog::new().register("boruvka", BoruvkaConnectivity, encode_bool_output).register(
        "edge-count",
        OneRoundAsMultiRound(EdgeCountProtocol),
        encode_count,
    )
}

/// Blocking raw-socket read: accumulate bytes until one frame decodes,
/// or `None` once the server closes the connection.
fn read_raw_frame(
    stream: &mut TcpStream,
    key: &AuthKey,
    buf: &mut Vec<u8>,
) -> Option<(FrameKind, Envelope)> {
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut chunk = [0u8; 4096];
    loop {
        if let Ok(Some(d)) = decode_frame(key, buf) {
            buf.drain(..d.consumed);
            return Some((d.kind, d.envelope));
        }
        match stream.read(&mut chunk) {
            Ok(0) => return None,
            Ok(k) => buf.extend_from_slice(&chunk[..k]),
            Err(_) => return None,
        }
    }
}

fn raw_connect(server: &FleetServer, base: &AuthKey) -> (TcpStream, AuthKey, Vec<u8>) {
    let mut stream = TcpStream::connect(server.addr()).unwrap();
    let mut buf = Vec::new();
    let (kind, hello) = read_raw_frame(&mut stream, base, &mut buf).expect("hello");
    assert_eq!(kind, FrameKind::Hello);
    let key = base.derive(u64::from(hello.from));
    (stream, key, buf)
}

/// Announce with an arbitrary raw payload and return the session's
/// verdict payload (n = 0 sessions are judged straight from announce).
fn announce_and_await_verdict(
    stream: &mut TcpStream,
    key: &AuthKey,
    buf: &mut Vec<u8>,
    session: u64,
    payload: Message,
) -> Message {
    let announce = Envelope { session: SessionId(session), round: 0, from: 0, to: 0, payload };
    stream.write_all(&encode_wire_frame(key, FrameKind::Announce, &announce)).unwrap();
    loop {
        let (kind, env) = read_raw_frame(stream, key, buf).expect("verdict before close");
        if kind == FrameKind::Verdict {
            assert_eq!(env.session.0, session);
            return env.payload;
        }
    }
}

fn bare_announce(n: u64) -> Message {
    let mut w = BitWriter::new();
    w.write_bits(n, 32);
    Message::from_writer(w)
}

fn named_announce(n: u64, name: &str) -> Message {
    let mut w = BitWriter::new();
    w.write_bits(n, 32);
    w.write_bits(name.len() as u64, 8);
    for b in name.bytes() {
        w.write_bits(u64::from(b), 8);
    }
    Message::from_writer(w)
}

/// The compat pin, raw wire level: a bare-n announce (exactly 32 bits,
/// the pre-catalog format) and a `"boruvka"`-named announce produce
/// **bit-for-bit** the same entry-0 verdict; and the high-level legacy
/// client API (`run_multiround_session`, no name) matches the named
/// entry-0 API on a real session.
#[test]
fn bare_n_announce_selects_entry_zero_bit_for_bit() {
    let base = AuthKey::from_seed(61);
    let server =
        FleetServer::builder(base).shards(2).catalog(test_catalog()).spawn().expect("bind");

    // Raw wire: n = 0 sessions are judged straight from the announce,
    // so the verdict isolates exactly the service-selection path.
    let (mut stream, key, mut buf) = raw_connect(&server, &base);
    let bare = announce_and_await_verdict(&mut stream, &key, &mut buf, 1, bare_announce(0));
    let named = announce_and_await_verdict(
        &mut stream,
        &key,
        &mut buf,
        2,
        named_announce(0, "boruvka"),
    );
    assert_eq!(
        (bare.len_bits(), bare.as_bytes()),
        (named.len_bits(), named.as_bytes()),
        "bare-n verdict differs from the named entry-0 verdict"
    );
    drop(stream);

    // High-level: the un-named legacy client API on a real graph equals
    // the name-selected entry-0 session bit for bit.
    let client = FleetClient::connect(server.addr(), 1, base).expect("connect");
    let g = referee_graph::generators::grid(3, 3);
    let legacy = client
        .run_multiround_session(SessionId(100), &BoruvkaConnectivity, &g, CAP)
        .expect("legacy session");
    let named = client
        .run_multiround_session_as(SessionId(101), "boruvka", &BoruvkaConnectivity, &g, CAP)
        .expect("named session");
    assert_eq!(
        (legacy.len_bits(), legacy.as_bytes()),
        (named.len_bits(), named.as_bytes()),
        "legacy client API diverged from named entry 0"
    );

    let stats = server.stop();
    assert_eq!(stats.mac_rejects, 0);
    assert_eq!(stats.decode_rejects, 0, "every announce above is well-formed");
}

/// A truncated name — length prefix promising more bytes than the
/// payload holds — is undecodable: the router rejects it and closes the
/// connection, exactly like any other malformed frame.
#[test]
fn truncated_name_announce_closes_the_connection() {
    let base = AuthKey::from_seed(62);
    let server =
        FleetServer::builder(base).shards(1).catalog(test_catalog()).spawn().expect("bind");
    let (mut stream, key, mut buf) = raw_connect(&server, &base);

    let mut w = BitWriter::new();
    w.write_bits(3, 32);
    w.write_bits(7, 8); // promises 7 name bytes...
    w.write_bits(u64::from(b'b'), 8); // ...delivers 1
    let announce = Envelope {
        session: SessionId(1),
        round: 0,
        from: 0,
        to: 0,
        payload: Message::from_writer(w),
    };
    stream.write_all(&encode_wire_frame(&key, FrameKind::Announce, &announce)).unwrap();

    assert!(
        read_raw_frame(&mut stream, &key, &mut buf).is_none(),
        "a malformed announce must close the connection, not answer"
    );
    let stats = server.stop();
    assert_eq!(stats.decode_rejects, 1);
}

/// Oversize names fail closed at both ends. The wire's 8-bit length
/// field tops out at [`MAX_SERVICE_NAME_BYTES`], so a longer name is
/// *unencodable* — the client API rejects it with a typed error before
/// anything is announced. A max-length name the catalog doesn't know
/// does reach the server and comes back as a typed error verdict, with
/// the connection still usable afterwards.
#[test]
fn oversize_name_announce_fails_closed_with_typed_verdict() {
    let base = AuthKey::from_seed(63);
    let server =
        FleetServer::builder(base).shards(1).catalog(test_catalog()).spawn().expect("bind");

    // Server side: the longest name the wire can carry, unknown to the
    // catalog — typed rejection verdict, not a hang or a close.
    let (mut stream, key, mut buf) = raw_connect(&server, &base);
    let unknown = "x".repeat(MAX_SERVICE_NAME_BYTES);
    let verdict =
        announce_and_await_verdict(&mut stream, &key, &mut buf, 1, named_announce(0, &unknown));
    // Typed rejection: leading 0 bit, then the 2-bit error class.
    let mut r = verdict.reader();
    assert!(!r.read_bit().unwrap(), "unknown max-length name must reject, got an Ok verdict");

    // The connection survived: a bare legacy announce still verifies.
    let ok = announce_and_await_verdict(&mut stream, &key, &mut buf, 2, bare_announce(0));
    let mut r = ok.reader();
    assert!(r.read_bit().unwrap(), "entry-0 session after the rejection must succeed");
    drop(stream);

    // Client side: one byte past the wire limit never leaves the
    // process — typed error, no session announced.
    let client = FleetClient::connect(server.addr(), 1, base).expect("connect");
    let g = referee_graph::generators::grid(2, 2);
    let oversize = "x".repeat(MAX_SERVICE_NAME_BYTES + 1);
    let err = client
        .run_multiround_session_as(SessionId(3), &oversize, &BoruvkaConnectivity, &g, CAP)
        .expect_err("an unencodable name must fail closed client-side");
    assert!(matches!(err, DecodeError::Invalid(_)), "typed rejection expected, got {err:?}");

    server.stop();
}
