//! E5 + E6: Lemma 1's counting table and pigeonhole witnesses.

use referee_graph::{algo, enumerate, graph6};
use referee_reductions::collision::{
    find_collision, guaranteed_collision_n, DegreeSumSketch, ModularSumSketch,
};
use referee_reductions::counting;

/// One row of the E5 table: a family's exact log-count vs budgets.
#[derive(Debug, Clone)]
pub struct CountRow {
    /// Graph size.
    pub n: usize,
    /// log₂ #(all labelled graphs) = C(n,2).
    pub all_log2: f64,
    /// log₂ #(balanced bipartite).
    pub bipartite_log2: f64,
    /// log₂ #(square-free), exact by enumeration.
    pub square_free_log2: f64,
    /// log₂ #(forests), exact — the *reconstructible* family for contrast.
    pub forests_log2: f64,
    /// Budget exponents at c ∈ {1, 2, 8}.
    pub budgets: [usize; 3],
}

/// Exact counting table for `n ∈ 2..=n_max` (`n_max ≤ 7`).
pub fn exact_table(n_max: usize) -> Vec<CountRow> {
    (2..=n_max)
        .map(|n| CountRow {
            n,
            all_log2: counting::count_all_graphs(n).log2(),
            bipartite_log2: counting::count_balanced_bipartite(n).log2(),
            square_free_log2: (counting::count_square_free_exact(n) as f64).log2(),
            forests_log2: (counting::count_forests_exact(n) as f64).log2(),
            budgets: [
                counting::budget_log2(n, 1),
                counting::budget_log2(n, 2),
                counting::budget_log2(n, 8),
            ],
        })
        .collect()
}

/// The asymptotic race (no enumeration): family exponents vs budget, at
/// sizes where the crossover is visible.
pub fn asymptotic_rows(ns: &[usize], c: usize) -> Vec<Vec<String>> {
    let mut out = vec![vec![
        "n".into(),
        "n²/2 (all)".into(),
        "⌈n/2⌉⌊n/2⌋ (bipartite)".into(),
        "n^1.5/2 (square-free, K–W)".into(),
        format!("budget c={c}"),
        "reconstruction possible?".into(),
    ]];
    for &n in ns {
        let all = (n * n.saturating_sub(1) / 2) as f64;
        let bip = (n.div_ceil(2) * (n / 2)) as f64;
        let sf = counting::kleitman_winston_exponent(n);
        let budget = counting::budget_log2(n, c) as f64;
        out.push(vec![
            n.to_string(),
            format!("{all:.0}"),
            format!("{bip:.0}"),
            format!("{sf:.0}"),
            format!("{budget:.0}"),
            if sf > budget {
                "NO (even square-free too big)"
            } else if all > budget {
                "no for all-graphs"
            } else {
                "not yet excluded"
            }
            .into(),
        ]);
    }
    out
}

/// E6: collision witnesses. Returns human-readable findings.
pub fn collision_findings() -> Vec<String> {
    let mut out = Vec::new();
    let (a, b) = find_collision(&ModularSumSketch { bits: 1 }, enumerate::all_graphs(4))
        .expect("mod-2 collides at n=4");
    out.push(format!(
        "ModularSumSketch(1 bit): collision at n=4 → {} vs {}",
        graph6::to_graph6(&a),
        graph6::to_graph6(&b)
    ));
    let sf = enumerate::all_graphs(5).filter(|g| !algo::has_square(g));
    let (a, b) = find_collision(&ModularSumSketch { bits: 2 }, sf)
        .expect("mod-4 collides on square-free n=5");
    out.push(format!(
        "ModularSumSketch(2 bits) on square-free n=5 → {} vs {}",
        graph6::to_graph6(&a),
        graph6::to_graph6(&b)
    ));
    for n in 2..=5 {
        assert!(
            find_collision(&DegreeSumSketch, enumerate::all_graphs(n)).is_none(),
            "unexpected (deg,Σ) collision at n={n}"
        );
    }
    out.push(
        "DegreeSumSketch (§III.A triple): collision-free on ALL graphs n ≤ 5 (exhaustive)"
            .into(),
    );
    let n0 = guaranteed_collision_n(DegreeSumSketch::message_bits);
    out.push(format!(
        "DegreeSumSketch: Lemma 1 pigeonhole guarantees a collision by n = {n0} \
         ({}·{} = {} total bits < C({n0},2) = {})",
        n0,
        DegreeSumSketch::message_bits(n0),
        n0 * DegreeSumSketch::message_bits(n0),
        n0 * (n0 - 1) / 2
    ));
    out
}

/// Render the E5 exact table.
pub fn to_table(rows: &[CountRow]) -> Vec<Vec<String>> {
    let mut out = vec![vec![
        "n".into(),
        "log₂ all".into(),
        "log₂ bipartite".into(),
        "log₂ square-free".into(),
        "log₂ forests".into(),
        "budget c=1".into(),
        "c=2".into(),
        "c=8".into(),
    ]];
    for r in rows {
        out.push(vec![
            r.n.to_string(),
            format!("{:.1}", r.all_log2),
            format!("{:.1}", r.bipartite_log2),
            format!("{:.1}", r.square_free_log2),
            format!("{:.1}", r.forests_log2),
            r.budgets[0].to_string(),
            r.budgets[1].to_string(),
            r.budgets[2].to_string(),
        ]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_table_matches_known_values() {
        let rows = exact_table(5);
        assert_eq!(rows.len(), 4);
        let r4 = &rows[2];
        assert_eq!(r4.n, 4);
        assert_eq!(r4.all_log2, 6.0);
        assert!((r4.square_free_log2 - 54f64.log2()).abs() < 1e-12);
        assert!((r4.forests_log2 - 38f64.log2()).abs() < 1e-12);
    }

    #[test]
    fn collision_findings_nonempty() {
        let f = collision_findings();
        assert_eq!(f.len(), 4);
        assert!(f[0].contains("collision at n=4"));
    }

    #[test]
    fn asymptotic_verdicts_flip() {
        let rows = asymptotic_rows(&[16, 4096, 1 << 20], 8);
        // header + 3 rows; the large-n row must say reconstruction is
        // impossible even for square-free.
        assert!(rows[3][5].contains("NO"));
    }
}
