//! Low-level single-limb primitives shared by the multi-limb algorithms.
//!
//! A *limb* is a `u64`. All multi-limb routines in this crate are built from
//! the three carry/borrow primitives below plus the widening multiply. They
//! are kept `#[inline]` and branch-free where possible: the encoder of
//! Algorithm 3 calls them in a tight loop over every vertex of the graph.

/// Add with carry: returns `(sum, carry_out)` for `a + b + carry_in`.
///
/// `carry_in` must be 0 or 1; `carry_out` is 0 or 1.
#[inline]
pub(crate) fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    debug_assert!(carry <= 1);
    let (s1, c1) = a.overflowing_add(b);
    let (s2, c2) = s1.overflowing_add(carry);
    (s2, u64::from(c1) + u64::from(c2))
}

/// Subtract with borrow: returns `(diff, borrow_out)` for `a - b - borrow_in`.
///
/// `borrow_in` must be 0 or 1; `borrow_out` is 0 or 1.
#[inline]
pub(crate) fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    debug_assert!(borrow <= 1);
    let (d1, b1) = a.overflowing_sub(b);
    let (d2, b2) = d1.overflowing_sub(borrow);
    (d2, u64::from(b1) + u64::from(b2))
}

/// Widening multiply-accumulate: `a * b + acc + carry` as `(low, high)`.
///
/// The result cannot overflow 128 bits: `(2^64-1)^2 + 2*(2^64-1) < 2^128`.
#[inline]
pub(crate) fn mac(acc: u64, a: u64, b: u64, carry: u64) -> (u64, u64) {
    let wide = (a as u128) * (b as u128) + (acc as u128) + (carry as u128);
    (wide as u64, (wide >> 64) as u64)
}

/// Divide the two-limb value `(hi, lo)` by a single limb `d`, returning
/// `(quotient, remainder)`. Requires `hi < d` so the quotient fits one limb.
#[inline]
pub(crate) fn div2by1(hi: u64, lo: u64, d: u64) -> (u64, u64) {
    debug_assert!(d != 0);
    debug_assert!(hi < d, "quotient would overflow a limb");
    let num = ((hi as u128) << 64) | (lo as u128);
    ((num / d as u128) as u64, (num % d as u128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adc_basic() {
        assert_eq!(adc(1, 2, 0), (3, 0));
        assert_eq!(adc(u64::MAX, 1, 0), (0, 1));
        assert_eq!(adc(u64::MAX, u64::MAX, 1), (u64::MAX, 1));
        assert_eq!(adc(u64::MAX, 0, 1), (0, 1));
    }

    #[test]
    fn sbb_basic() {
        assert_eq!(sbb(3, 2, 0), (1, 0));
        assert_eq!(sbb(0, 1, 0), (u64::MAX, 1));
        assert_eq!(sbb(0, 0, 1), (u64::MAX, 1));
        assert_eq!(sbb(0, u64::MAX, 1), (0, 1));
    }

    #[test]
    fn mac_basic() {
        assert_eq!(mac(0, 0, 0, 0), (0, 0));
        assert_eq!(mac(5, 2, 3, 7), (18, 0));
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        let (lo, hi) = mac(0, u64::MAX, u64::MAX, 0);
        assert_eq!(lo, 1);
        assert_eq!(hi, u64::MAX - 1);
        // max everything still fits
        let (lo, hi) = mac(u64::MAX, u64::MAX, u64::MAX, u64::MAX);
        assert_eq!((hi, lo), (u64::MAX, u64::MAX));
    }

    #[test]
    fn div2by1_basic() {
        assert_eq!(div2by1(0, 10, 3), (3, 1));
        // (1 << 64 | 0) / 2 = 1 << 63
        assert_eq!(div2by1(1, 0, 2), (1 << 63, 0));
        assert_eq!(
            div2by1(2, 5, 7),
            ((((2u128 << 64) + 5) / 7) as u64, (((2u128 << 64) + 5) % 7) as u64)
        );
    }
}
