//! The sans-I/O transport boundary.
//!
//! A [`Transport`] is a mailbox between a session's two sides (nodes and
//! referee): the session *pushes* every message it produces with
//! [`Transport::send`] and *pulls* whatever the network chose to deliver
//! with [`Transport::recv`]. No threads, sockets or clocks live here —
//! which is exactly what makes the runtime testable: a perfect FIFO
//! ([`PerfectTransport`]), a seeded adversary
//! ([`FaultyTransport`](crate::FaultyTransport)), and the real-socket
//! `wirenet::SocketTransport` (MAC-authenticated frames multiplexed over
//! nonblocking TCP) all plug into the same session state machines.

use crate::metrics::TransportCounters;
use referee_graph::VertexId;
use referee_protocol::Message;
use std::collections::VecDeque;

/// The referee's address (vertex IDs are `1..=n`, so 0 is free).
pub const REFEREE: VertexId = 0;

/// Identifies one session on a shared transport, so a single connection
/// can carry a whole fleet's envelopes (cross-session multiplexing).
///
/// In-memory transports are usually dedicated to one session, where the
/// default id `0` is fine; multiplexing transports (`wirenet`) assign a
/// distinct id per session and demultiplex inbound traffic by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// One transmission: a session-tagged, round-stamped, addressed
/// [`Message`].
///
/// `from`/`to` use vertex IDs with [`REFEREE`] (0) for the referee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// The session this envelope belongs to (multiplexing key).
    pub session: SessionId,
    /// Protocol round the payload belongs to (1-based).
    pub round: u32,
    /// Sender.
    pub from: VertexId,
    /// Recipient.
    pub to: VertexId,
    /// The message bits.
    pub payload: Message,
}

/// A pluggable, polled message channel.
pub trait Transport {
    /// Accept an outbound envelope.
    fn send(&mut self, env: Envelope);

    /// Deliver the next envelope, if any is currently deliverable.
    ///
    /// `None` means the channel is *empty* — every envelope ever sent has
    /// been delivered or destroyed. Sessions treat `None` while still
    /// expecting traffic as evidence of loss.
    fn recv(&mut self) -> Option<Envelope>;

    /// Delivery accounting so far.
    fn counters(&self) -> TransportCounters;
}

/// Lossless, orderly, in-memory FIFO transport.
#[derive(Debug, Default)]
pub struct PerfectTransport {
    queue: VecDeque<Envelope>,
    counters: TransportCounters,
}

impl PerfectTransport {
    /// An empty channel.
    pub fn new() -> Self {
        Self::default()
    }

    /// Envelopes currently in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }
}

impl Transport for PerfectTransport {
    fn send(&mut self, env: Envelope) {
        self.counters.sent += 1;
        self.queue.push_back(env);
    }

    fn recv(&mut self) -> Option<Envelope> {
        let env = self.queue.pop_front()?;
        self.counters.delivered += 1;
        Some(env)
    }

    fn counters(&self) -> TransportCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(round: u32, from: VertexId, to: VertexId) -> Envelope {
        Envelope { session: SessionId::default(), round, from, to, payload: Message::empty() }
    }

    #[test]
    fn fifo_order_and_counters() {
        let mut t = PerfectTransport::new();
        t.send(env(1, 1, REFEREE));
        t.send(env(1, 2, REFEREE));
        assert_eq!(t.in_flight(), 2);
        assert_eq!(t.recv().unwrap().from, 1);
        assert_eq!(t.recv().unwrap().from, 2);
        assert!(t.recv().is_none());
        let c = t.counters();
        assert_eq!((c.sent, c.delivered, c.dropped), (2, 2, 0));
    }
}
